#!/bin/sh
# Whitespace lint over the source tree: no trailing whitespace, no tab
# characters, final newline present; OCaml sources, dune files, shell
# scripts (scripts/, bench/) and workflow YAML must additionally use LF
# line endings, and OCaml/dune/shell files must not end in blank lines.
# This is the *enforcing* half of the format gate — the ocamlformat job
# proper stays advisory until the tree has been bulk-formatted (see
# .github/workflows/ci.yml). Generated and third-party reference files
# (PAPERS.md, SNIPPETS.md) are exempt.
set -eu
cd "$(dirname "$0")/.."
TAB=$(printf '\t')
CR=$(printf '\r')
status=0
# *.t (cram) files are exempt: blank expected-output lines are encoded as
# two trailing spaces, which is load-bearing there.
for f in $(git ls-files '*.ml' '*.mli' '*.yml' '*.sh' 'dune-project' '*dune' \
             README.md DESIGN.md ROADMAP.md EXPERIMENTS.md CHANGES.md); do
  if grep -nE '[ '"$TAB"']+$' "$f" /dev/null >/dev/null 2>&1; then
    echo "trailing whitespace in $f:"
    grep -nE '[ '"$TAB"']+$' "$f" | head -3
    status=1
  fi
  case "$f" in
    *.sh) ;; # here-doc payloads may legitimately hold tabs
    *)
      if grep -n "$TAB" "$f" /dev/null >/dev/null 2>&1; then
        echo "tab character in $f:"
        grep -n "$TAB" "$f" | head -3
        status=1
      fi
      ;;
  esac
  if [ -s "$f" ] && [ -n "$(tail -c1 "$f")" ]; then
    echo "missing final newline: $f"
    status=1
  fi
  # OCaml sources, dune files, shell scripts and workflow YAML: strict LF
  # endings (CRs break shebang lines and the streaming-parser cram goldens);
  # everything but YAML additionally rejects a blank line at EOF (it
  # survives careless editors and breaks the dune diff-based promotion
  # workflow in subtle ways).
  case "$f" in
    *.ml|*.mli|*/dune|dune|dune-project|*.sh|*.yml)
      if grep -n "$CR" "$f" /dev/null >/dev/null 2>&1; then
        echo "CR line ending in $f:"
        grep -n "$CR" "$f" | head -3
        status=1
      fi
      ;;
  esac
  case "$f" in
    *.ml|*.mli|*/dune|dune|dune-project|*.sh)
      if [ -s "$f" ] && [ "$(tail -c2 "$f" | wc -l)" -ge 2 ]; then
        echo "trailing blank line at end of $f"
        status=1
      fi
      ;;
  esac
done
if [ "$status" -eq 0 ]; then
  echo "whitespace lint: clean"
fi
exit $status
