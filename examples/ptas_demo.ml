(* PTAS accuracy sweep: the (1+epsilon) trade-off of Theorems 10/14 made
   visible. For one instance we sweep delta = 1, 1/2, 1/3 and report the
   measured makespan, the accepted guess, the ILP size and the time — the
   "price of accuracy" is the exponential growth of the configuration
   space, exactly as the n^{O(poly(1/delta))} running times predict.

   Run with: dune exec examples/ptas_demo.exe *)

module Q = Rat

let time f =
  let t0 = Ccs_util.Mono.now_s () in
  let r = f () in
  (r, Ccs_util.Mono.now_s () -. t0)

let () =
  let inst =
    Ccs.Instance.make ~machines:3 ~slots:2
      [ (13, 0); (11, 0); (9, 1); (7, 1); (6, 2); (5, 2); (4, 3); (3, 3); (2, 4); (2, 4) ]
  in
  Printf.printf "instance: n=%d m=%d c=%d C=%d, total load %d\n\n" (Ccs.Instance.n inst)
    (Ccs.Instance.m inst) (Ccs.Instance.c inst) (Ccs.Instance.num_classes inst)
    (Ccs.Instance.total_load inst);

  let exact_np =
    match Ccs_exact.Bnb.solve inst with Some (opt, _) -> opt | None -> -1
  in
  Printf.printf "non-preemptive exact optimum: %d\n" exact_np;
  Printf.printf "%-8s %-10s %-12s %-10s %-8s %-8s\n" "delta" "makespan" "ratio" "T accepted" "ILP vars" "time";
  List.iter
    (fun d ->
      let param = Ccs.Ptas.Common.param d in
      let (sched, stats), elapsed = time (fun () -> Ccs.Ptas.Nonpreemptive_ptas.solve param inst) in
      match Ccs.Schedule.validate_nonpreemptive inst sched with
      | Ok mk ->
          Printf.printf "1/%-6d %-10d %-12.4f %-10s %-8d %.2fs\n" d mk
            (float_of_int mk /. float_of_int exact_np)
            (Q.to_string stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted)
            stats.Ccs.Ptas.Nonpreemptive_ptas.ilp_vars elapsed
      | Error e -> failwith e)
    [ 1; 2; 3 ];

  Printf.printf "\nsplittable case, same sweep:\n";
  let exact_sp =
    match Ccs_exact.Splittable_opt.solve inst with
    | Some opt -> Q.to_float opt
    | None -> nan
  in
  Printf.printf "splittable exact optimum: %.4f\n" exact_sp;
  Printf.printf "%-8s %-10s %-12s %-10s %-8s %-8s\n" "delta" "makespan" "ratio" "T accepted" "ILP vars" "time";
  List.iter
    (fun d ->
      let param = Ccs.Ptas.Common.param d in
      let (sched, stats), elapsed = time (fun () -> Ccs.Ptas.Splittable_ptas.solve param inst) in
      match Ccs.Schedule.validate_splittable inst sched with
      | Ok mk ->
          Printf.printf "1/%-6d %-10.4f %-12.4f %-10s %-8d %.2fs\n" d (Q.to_float mk)
            (Q.to_float mk /. exact_sp)
            (Q.to_string stats.Ccs.Ptas.Splittable_ptas.t_accepted)
            stats.Ccs.Ptas.Splittable_ptas.ilp_vars elapsed
      | Error e -> failwith e)
    [ 1; 2; 3 ]
