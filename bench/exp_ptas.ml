(* E6, E7, E8 — the three PTASs.

   Each table sweeps the accuracy delta on a fixed pool of small instances
   and reports the measured ratio against ground truth (exact optimum where
   computable, the strongest proven lower bound otherwise), plus the sizes
   the configuration ILP reached and the wall time. The paper's shape to
   reproduce: measured ratios are already near 1 at coarse delta (the
   rounding is pessimistic in analysis, tight in practice), while the cost
   grows exponentially in 1/delta — and the accepted guess T* is within
   (1+delta) of the optimum, which is the PTAS completeness claim. *)

module Q = Rat
module U = Bench_util
module T = Ccs_util.Tables

(* Instances within a delta row are independent, so each row fans its pool
   out with Ccs_par.parallel_map and folds the per-instance results back in
   input order — every aggregate (mean included, a sequential float sum) is
   bit-identical at any -j. *)
let pool ~count ~max_n ~max_m seed0 =
  Array.init count (fun i ->
      let seed = seed0 + (i * 101) in
      let rng = Ccs_util.Prng.create seed in
      let machines = Ccs_util.Prng.int_in rng 2 max_m in
      let slots = Ccs_util.Prng.int_in rng 1 3 in
      let classes = min (Ccs_util.Prng.int_in rng 2 5) (slots * machines) in
      U.instance ~seed ~family:Ccs.Generator.Uniform ~n:(Ccs_util.Prng.int_in rng classes max_n)
        ~classes ~machines ~slots ~p_hi:30)

let e6 () =
  U.header "E6 — splittable PTAS (Theorems 10 and 11)";
  let instances = pool ~count:6 ~max_n:9 ~max_m:3 500 in
  let table = T.create [ "delta"; "mean ratio vs opt"; "max"; "T* <= (1+d)opt"; "mean ILP vars"; "total time" ] in
  List.iter
    (fun d ->
      let p = Ccs.Ptas.Common.param d in
      let ratios = ref [] and vars = ref [] and ok_t = ref true in
      let results, elapsed =
        U.time (fun () ->
            Ccs_par.parallel_map
              (fun inst ->
                match Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst with
                | None -> None
                | Some opt ->
                    let sched, stats = Ccs.Ptas.Splittable_ptas.solve p inst in
                    let ratio =
                      match Ccs.Schedule.validate_splittable inst sched with
                      | Error e -> failwith ("E6: " ^ e)
                      | Ok mk -> Q.to_float mk /. Q.to_float opt
                    in
                    let t_ok =
                      let t_accepted = stats.Ccs.Ptas.Splittable_ptas.t_accepted in
                      Q.(t_accepted <= Q.mul (Q.add Q.one (Ccs.Ptas.Common.delta p)) opt)
                    in
                    Some (ratio, float_of_int stats.Ccs.Ptas.Splittable_ptas.ilp_vars, t_ok))
              instances)
      in
      Array.iter
        (function
          | None -> ()
          | Some (r, v, t_ok) ->
              ratios := r :: !ratios;
              vars := v :: !vars;
              if not t_ok then ok_t := false)
        results;
      let mx, mean = U.summarize !ratios in
      let _, mean_vars = U.summarize !vars in
      T.add_row table
        [ Printf.sprintf "1/%d" d; U.f4 mean; U.f4 mx; string_of_bool !ok_t;
          U.f2 mean_vars; Printf.sprintf "%.1fs" elapsed ])
    [ 1; 2; 3 ];
  T.print table;
  (* Theorem 11: exponential machine count *)
  let inst =
    Ccs.Instance.make ~machines:1_000_000_000_000 ~slots:1
      [ (700, 0); (650, 1); (600, 2); (11, 0) ]
  in
  let p = Ccs.Ptas.Common.param 2 in
  let (sched, stats), elapsed = U.time (fun () -> Ccs.Ptas.Splittable_ptas.solve p inst) in
  (match Ccs.Schedule.validate_splittable inst sched with
  | Ok mk ->
      Printf.printf
        "Theorem 11 (m = 10^12): makespan %s at T* = %s, compressed=%b, blocks=%d, %.1fs\n"
        (Q.to_string mk)
        (Q.to_string stats.Ccs.Ptas.Splittable_ptas.t_accepted)
        stats.Ccs.Ptas.Splittable_ptas.compressed
        (List.length sched.Ccs.Schedule.blocks) elapsed
  | Error e -> failwith e);
  U.footnote
    "claims: T* <= (1+delta) opt on every instance (PTAS completeness) and the\n\
     makespan stays within the (1+5delta)T* construction guarantee. At coarse\n\
     delta the Tbar = (1+4delta)T budget dominates measured quality (~1.5x), so\n\
     ratios do not approach 1 until delta is far below what the exponential\n\
     configuration space allows — see DESIGN.md, 'Coarse-delta reality'."

let e7 () =
  U.header "E7 — non-preemptive PTAS (Theorem 14)";
  let instances = pool ~count:6 ~max_n:10 ~max_m:3 900 in
  let table = T.create [ "delta"; "mean ratio vs opt"; "max"; "T* <= (1+d)opt"; "vs 7/3-approx (mean)"; "total time" ] in
  List.iter
    (fun d ->
      let p = Ccs.Ptas.Common.param d in
      let ratios = ref [] and vs73 = ref [] and ok_t = ref true in
      let results, elapsed =
        U.time (fun () ->
            Ccs_par.parallel_map
              (fun inst ->
                match Ccs_exact.Bnb.solve inst with
                | None -> None
                | Some (opt, _) ->
                    let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve p inst in
                    let row =
                      match Ccs.Schedule.validate_nonpreemptive inst sched with
                      | Error e -> failwith ("E7: " ^ e)
                      | Ok mk ->
                          let approx, _ = Ccs.Approx.Nonpreemptive.solve inst in
                          let amk = Ccs.Schedule.nonpreemptive_makespan inst approx in
                          ( float_of_int mk /. float_of_int opt,
                            float_of_int mk /. float_of_int amk )
                    in
                    let t_ok =
                      let t_accepted = stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted in
                      Q.(t_accepted <= Q.mul (Q.add Q.one (Ccs.Ptas.Common.delta p)) (Q.of_int opt))
                    in
                    Some (row, t_ok))
              instances)
      in
      Array.iter
        (function
          | None -> ()
          | Some ((r, v), t_ok) ->
              ratios := r :: !ratios;
              vs73 := v :: !vs73;
              if not t_ok then ok_t := false)
        results;
      let mx, mean = U.summarize !ratios in
      let _, mean73 = U.summarize !vs73 in
      T.add_row table
        [ Printf.sprintf "1/%d" d; U.f4 mean; U.f4 mx; string_of_bool !ok_t; U.f3 mean73;
          Printf.sprintf "%.1fs" elapsed ])
    [ 1; 2; 3 ];
  T.print table;
  U.footnote
    "claims: T* <= (1+delta) opt on every instance (completeness), makespan within\n\
     the ((1+3d)(1+2d)+d)T* guarantee. The measured crossover against the 7/3\n\
     algorithm needs deltas finer than the configuration space permits; at\n\
     delta >= 1/3 the simple algorithm usually wins on makespan while the PTAS\n\
     wins on certified optimality gap (T* brackets opt to within 1+delta)."

let e8 () =
  U.header "E8 — preemptive PTAS (Theorem 19)";
  let instances = pool ~count:5 ~max_n:9 ~max_m:3 1300 in
  let table = T.create [ "delta"; "layers"; "mean ratio vs opt"; "max"; "realization failures"; "total time" ] in
  List.iter
    (fun d ->
      let p = Ccs.Ptas.Common.param d in
      let ratios = ref [] and failures = ref 0 and layers = ref 0 in
      let results, elapsed =
        U.time (fun () ->
            Ccs_par.parallel_map
              (fun inst ->
                (* true preemptive optimum (open-shop reduction), falling
                   back to the strongest lower bound if out of budget *)
                let lb =
                  match Ccs_exact.Preemptive_opt.opt ~max_nodes:3_000 inst with
                  | Some opt -> opt
                  | None -> (
                      match Ccs_exact.Splittable_opt.solve ~max_nodes:300 inst with
                      | Some split -> Q.max split (Q.of_int (Ccs.Instance.pmax inst))
                      | None -> Ccs.Bounds.lb_preemptive inst)
                in
                try
                  let sched, stats = Ccs.Ptas.Preemptive_ptas.solve p inst in
                  match Ccs.Schedule.validate_preemptive inst sched with
                  | Error e -> failwith ("E8: " ^ e)
                  | Ok mk ->
                      `Solved
                        ( stats.Ccs.Ptas.Preemptive_ptas.layers,
                          Q.to_float mk /. Q.to_float lb )
                with Failure _ -> `Failed)
              instances)
      in
      Array.iter
        (function
          | `Failed -> incr failures
          | `Solved (l, r) ->
              layers := max !layers l;
              ratios := r :: !ratios)
        results;
      let mx, mean = U.summarize !ratios in
      T.add_row table
        [ Printf.sprintf "1/%d" d; string_of_int !layers; U.f4 mean; U.f4 mx;
          string_of_int !failures; Printf.sprintf "%.1fs" elapsed ])
    [ 1; 2 ];
  T.print table;
  U.footnote
    "ratios are against the true preemptive optimum (exact open-shop-reduction\n\
     solver, Ccs_exact.Preemptive_opt) whenever it fits the budget, else against\n\
     the strongest lower bound. Realization failures would indicate the layer\n\
     symmetrization lost a solution — expect 0."
