(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E1 F5   # selected experiments
     dune exec bench/main.exe -- -j 4 E6 # parallel repetitions on 4 domains

   Experiment ids: E1-E9 (theorem reproductions), A1-A2 (ablations; A2 also
   covers A3), X1 (the Section 5 extension), XL (the million-job
   streaming/flat throughput tier), F1-F5 (the paper's illustrative
   figures). See DESIGN.md section 3 for the index and
   EXPERIMENTS.md for recorded results. Tables are deterministic at any -j
   (per-instance results are gathered in input order). *)

let experiments =
  [ ("E1", Exp_approx.e1); ("E2", Exp_approx.e2); ("E3", Exp_approx.e3);
    ("E4", Exp_search.e4); ("E5", Exp_timing.e5); ("E6", Exp_ptas.e6);
    ("E7", Exp_ptas.e7); ("E8", Exp_ptas.e8); ("E9", Exp_nfold.e9);
    ("A1", Exp_search.a1); ("A2", Exp_ablation.a2_a3); ("X1", Exp_ext.x1);
    ("XL", Exp_xl.xl); ("EX", Exp_exact.ex);
    ("F1", Exp_figures.f1);
    ("F2", Exp_figures.f2); ("F3", Exp_figures.f3); ("F4", Exp_figures.f4);
    ("F5", Exp_figures.f5) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_jobs acc = function
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            Ccs_par.set_jobs j;
            split_jobs acc rest
        | _ ->
            Printf.eprintf "bad -j value %S (want an integer >= 1)\n" n;
            exit 1)
    | ("-j" | "--jobs") :: [] ->
        Printf.eprintf "-j needs a value\n";
        exit 1
    | id :: rest -> split_jobs (id :: acc) rest
    | [] -> List.rev acc
  in
  let ids = split_jobs [] args in
  let requested =
    match ids with
    | _ :: _ -> List.map String.uppercase_ascii ids
    | [] -> List.map fst experiments
  in
  let unknown = List.filter (fun id -> not (List.mem_assoc id experiments)) requested in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  Printf.printf "CCS reproduction benchmarks — %d experiment(s)\n" (List.length requested);
  let t0 = Ccs_util.Mono.now_s () in
  List.iter
    (fun id ->
      let f = List.assoc id experiments in
      let t = Ccs_util.Mono.now_s () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" id (Ccs_util.Mono.now_s () -. t))
    requested;
  Printf.printf "\nall done in %.1fs\n" (Ccs_util.Mono.now_s () -. t0)
