(* Measurement and threshold logic for the bench regression gate, shared
   by its two front-ends: bench/check_regression.exe (the CI gate, plain
   text, exit code) and bin/ccs_report --check (markdown trend reports).
   Keeping it in one module means the calibrated workloads, the counter
   list and the tolerance rule exist in exactly one place.

   Each phase is timed as the minimum wall clock over a few repetitions
   (minimum, not mean: noise only adds time). Raw walls are not comparable
   across machines, so the baseline also records a fixed pure-OCaml
   calibration workload; at comparison time every baseline wall is scaled
   by calibration_now / calibration_baseline, which cancels machine speed
   to first order. A phase regresses when its scaled wall exceeds
   baseline * (1 + tolerance); the tolerance defaults to 0.25 and can be
   widened for noisy runners via CCS_BENCH_TOLERANCE (e.g.
   CCS_BENCH_TOLERANCE=1.5 on shared CI machines). *)

module J = Ccs_obs.Jsonx

let default_baseline_path = "BENCH_baseline.json"
let reps = 5

let tolerance =
  match Sys.getenv_opt "CCS_BENCH_TOLERANCE" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t > 0.0 -> t
      | _ ->
          Printf.eprintf "bad CCS_BENCH_TOLERANCE %S (want a positive float)\n" s;
          exit 2)

let instance ~seed ~n ~classes ~machines ~slots =
  Ccs.Generator.generate ~seed
    { Ccs.Generator.n; classes; machines; slots; p_lo = 1; p_hi = 1000;
      family = Ccs.Generator.Uniform }

(* ---------------- XL tier (opt-in) ----------------

   Million-job workloads through the flat paths: streaming parse and the
   splittable / non-preemptive 2-approximations. Gated behind CCS_BENCH_XL
   because materializing the instance costs ~16 MB off-heap and the phases
   take seconds, which would slow every ordinary gate run; the bench-xl CI
   job sets the variable, everyone else sees the baseline's xl_* entries as
   benign dropped phases. The Uniform family is mandatory here — Zipf's
   weighted draw is O(classes) per job, which at C = 150k would time the
   generator, not the solver. *)

let xl_enabled = Sys.getenv_opt "CCS_BENCH_XL" <> None

let xl_spec =
  { Ccs.Generator.n = 1_000_000; classes = 150_000; machines = 100_000;
    slots = 3; p_lo = 1; p_hi = 1000; family = Ccs.Generator.Uniform }

let xl_instance = lazy (Ccs.Generator.generate_flat ~seed:(9 * 7919) xl_spec)

let xl_text = lazy (Ccs.Io.to_string_flat (Lazy.force xl_instance))

let xl_phases () =
  if not xl_enabled then []
  else
    [ ("xl_parse_stream",
       fun () ->
         match Ccs.Io.of_string_flat (Lazy.force xl_text) with
         | Ok f -> ignore (Ccs.Instance.Flat.n f)
         | Error e -> failwith e);
      ("xl_solve_splittable",
       fun () -> ignore (Ccs.Approx.Splittable.solve_flat (Lazy.force xl_instance)));
      ("xl_solve_nonpreemptive",
       fun () -> ignore (Ccs.Approx.Nonpreemptive.solve_flat (Lazy.force xl_instance)))
    ]

(* The conflict-driven B&B's gate workload: a bnb-stress instance sized so
   the search visits ~90k nodes (~0.1 s), enough to exercise no-good
   learning, probing and a few Luby restarts. The node count is exact and
   machine-independent, so the counter side of the gate catches a weakened
   search (lost no-goods, broken symmetry breaking) even where the wall
   would hide in noise. *)
let exact_instance =
  Ccs.Generator.generate ~seed:1234
    { Ccs.Generator.n = 18; classes = 4; machines = 4; slots = 2; p_lo = 1;
      p_hi = 100; family = Ccs.Generator.Bnb_stress }

(* The E5 shape, sized so every phase takes a few milliseconds at least —
   sub-millisecond phases would drown a 25% gate in scheduler noise — while
   the whole gate still runs in seconds. The approximation algorithms repeat
   their solve inside the phase for the same reason. *)
let phases =
  let approx = instance ~seed:(400 * 7919) ~n:4000 ~classes:800 ~machines:400 ~slots:3 in
  let small = instance ~seed:(30 * 7919) ~n:30 ~classes:6 ~machines:3 ~slots:3 in
  let param = Ccs.Ptas.Common.param 1 in
  let times k f () = for _ = 1 to k do f () done in
  [ ("approx_splittable", times 10 (fun () -> ignore (Ccs.Approx.Splittable.solve approx)));
    ("approx_preemptive", times 10 (fun () -> ignore (Ccs.Approx.Preemptive.solve approx)));
    ("approx_nonpreemptive",
     times 10 (fun () -> ignore (Ccs.Approx.Nonpreemptive.solve approx)));
    (* the warm-started simplex left a single PTAS solve sub-millisecond,
       so these repeat enough to stay a few ms above scheduler noise *)
    ("ptas_splittable",
     times 20 (fun () -> ignore (Ccs.Ptas.Splittable_ptas.solve param small)));
    ("ptas_nonpreemptive",
     times 50 (fun () -> ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param small)));
    ("exact_bnb",
     fun () -> ignore (Ccs_exact.Bnb.solve_result exact_instance))
  ]
  @ xl_phases ()

let time_phase f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Ccs_util.Mono.now_s () in
    f ();
    best := min !best (Ccs_util.Mono.now_s () -. t0)
  done;
  !best

(* A workload touching the same machinery the solvers lean on (rational
   arithmetic, hence allocation and bigint work) but independent of any
   code under test, used to cancel out raw machine speed. *)
let calibrate () =
  time_phase (fun () ->
      (* overwritten every iteration so numerators stay small — a running
         sum would grow its denominator without bound *)
      let acc = ref Rat.zero in
      for i = 1 to 200_000 do
        let x = Rat.of_ints (1 + (i mod 97)) (1 + (i mod 89)) in
        let y = Rat.of_ints (1 + (i mod 83)) (1 + (i mod 79)) in
        acc := Rat.add (Rat.mul x y) (Rat.div x y)
      done;
      ignore !acc)

let measure () = List.map (fun (name, f) -> (name, time_phase f)) phases

(* Deterministic solver-effort counters over a fixed PTAS workload. Unlike
   walls these are exact and machine-independent, so they are compared
   unscaled: lp.phase1_iterations guards the simplex crash-basis/warm-start
   machinery (a cold-start regression shows up here long before it moves a
   noisy wall), and rat.promotions guards the small-int fast path (a single
   careless magnitude blow-up sends the hot numbers to the Bigint arm). *)
let counter_names =
  [ "lp.phase1_iterations"; "rat.promotions"; "resil.cancel_checks";
    (* exact-search effort on the fixed bnb-stress instance: nodes is the
       headline capability number, the others break a node regression down
       (store too small, probing disabled, restarts misfiring) *)
    "bnb.nodes"; "bnb.nogoods"; "bnb.nogood_hits"; "bnb.probe_failed";
    "bnb.restarts" ]
  @
  (* XL counters are exact and machine-independent too: the token count
     pins the streaming lexer's behavior on a fixed 10^6-job file, the
     probe count pins the border / binary searches, and the byte gauge
     pins the flat representation at exactly 16 bytes per job. *)
  if xl_enabled then
    [ "io.stream_tokens"; "border_search.probes"; "approx.flat_solves";
      "xl.flat_bytes" ]
  else []

let m_xl_flat_bytes =
  Ccs_obs.Metrics.counter "xl.flat_bytes"
    ~help:"Off-heap bytes of the XL tier's flat instance (16 per job)"

let measure_counters () =
  let small = instance ~seed:(30 * 7919) ~n:30 ~classes:6 ~machines:3 ~slots:3 in
  let param = Ccs.Ptas.Common.param 1 in
  Ccs_obs.Metrics.reset ();
  Ccs_resil.Deadline.reset_stats ();
  ignore (Ccs.Ptas.Splittable_ptas.solve param small);
  ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param small);
  ignore (Ccs_exact.Bnb.solve_result exact_instance);
  if xl_enabled then begin
    let fl = Lazy.force xl_instance in
    (match Ccs.Io.of_string_flat (Lazy.force xl_text) with
    | Ok f -> ignore (Ccs.Instance.Flat.n f)
    | Error e -> failwith e);
    ignore (Ccs.Approx.Splittable.solve_flat fl);
    ignore (Ccs.Approx.Nonpreemptive.solve_flat fl);
    Ccs_obs.Metrics.add m_xl_flat_bytes (Ccs.Instance.Flat.mem_bytes fl)
  end;
  (* the exact checkpoint count guards the cancellation layer's overhead:
     a new checkpoint in a hot loop moves this long before it moves a wall *)
  Ccs_resil.Deadline.flush_stats ();
  let snap = Ccs_obs.Metrics.snapshot ~all:true () in
  List.map
    (fun name ->
      match Option.bind (List.assoc_opt name snap) (function
        | J.Int i -> Some i
        | _ -> None) with
      | Some v -> (name, v)
      | None ->
          Printf.eprintf "counter %S missing from the metrics registry\n" name;
          exit 2)
    counter_names

(* ---------------- baseline file ---------------- *)

type baseline = {
  calibration_s : float;
  walls : (string * float) list;
  counters : (string * int) list;
}

let number = function
  | J.Float w -> Some w
  | J.Int w -> Some (float_of_int w)
  | _ -> None

let read_baseline path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no %s — run check_regression --update to create it" path)
  else
    let text = In_channel.with_open_text path In_channel.input_all in
    match J.of_string text with
    | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
    | Ok json -> (
        match Option.bind (J.member "calibration_s" json) number with
        | Some calibration_s when calibration_s > 0.0 -> (
            let counters =
              (* absent in baselines written before the counter gate existed *)
              match J.member "counters" json with
              | Some (J.Obj kvs) ->
                  List.filter_map
                    (fun (k, v) -> match v with J.Int i -> Some (k, i) | _ -> None)
                    kvs
              | _ -> []
            in
            match J.member "phases" json with
            | Some (J.Obj kvs) ->
                Ok
                  { calibration_s;
                    walls =
                      List.filter_map
                        (fun (k, v) -> Option.map (fun w -> (k, w)) (number v))
                        kvs;
                    counters }
            | _ -> Error (Printf.sprintf "%s: missing \"phases\" object" path))
        | _ -> Error (Printf.sprintf "%s: missing \"calibration_s\"" path))

let write_baseline path =
  let cal = calibrate () in
  let walls = measure () in
  let counters = measure_counters () in
  let round = J.round_sig 9 in
  let json =
    J.Obj
      [ ("calibration_s", J.Float (round cal));
        ("phases", J.Obj (List.map (fun (n, w) -> (n, J.Float (round w))) walls));
        ("counters", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) counters)) ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (J.to_string json);
      Out_channel.output_char oc '\n');
  (cal, List.length walls)

(* ---------------- comparison ---------------- *)

type wall_row = {
  name : string;
  expected_s : float option;  (* baseline wall, machine-speed scaled *)
  current_s : float;
  delta : float option;       (* (current - expected) / expected *)
  regressed : bool;
}

type counter_row = {
  cname : string;
  expected : int option;
  current : int;
  cdelta : float option;
  cregressed : bool;
}

type comparison = {
  scale : float;  (* calibration_now / calibration_baseline *)
  calibration_s : float;
  base_calibration_s : float;
  wall_rows : wall_row list;
  dropped_phases : string list;  (* in baseline, no longer measured *)
  counter_rows : counter_row list;
  tol : float;
}

let regressions cmp =
  List.filter_map (fun r -> if r.regressed then Some r.name else None) cmp.wall_rows
  @ List.filter_map
      (fun r -> if r.cregressed then Some r.cname else None)
      cmp.counter_rows

(* Re-measures the gate workloads and compares against [path]. *)
let compare_to_baseline ?(path = default_baseline_path) () =
  match read_baseline path with
  | Error _ as e -> e
  | Ok base ->
      let cal = calibrate () in
      let scale = cal /. base.calibration_s in
      let current = measure () in
      let current_counters = measure_counters () in
      let wall_rows =
        List.map
          (fun (name, wall) ->
            match List.assoc_opt name base.walls with
            | None ->
                { name; expected_s = None; current_s = wall; delta = None;
                  regressed = false }
            | Some b ->
                let expected = b *. scale in
                let delta = (wall -. expected) /. expected in
                { name; expected_s = Some expected; current_s = wall;
                  delta = Some delta; regressed = delta > tolerance })
          current
      in
      let dropped_phases =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name current then None else Some name)
          base.walls
      in
      (* counters are exact: no machine-speed scaling, same relative tolerance *)
      let counter_rows =
        List.map
          (fun (cname, v) ->
            match List.assoc_opt cname base.counters with
            | None ->
                { cname; expected = None; current = v; cdelta = None;
                  cregressed = false }
            | Some b ->
                let delta =
                  if b = 0 then if v = 0 then 0.0 else infinity
                  else float_of_int (v - b) /. float_of_int b
                in
                { cname; expected = Some b; current = v; cdelta = Some delta;
                  cregressed = delta > tolerance })
          current_counters
      in
      Ok
        { scale; calibration_s = cal; base_calibration_s = base.calibration_s;
          wall_rows; dropped_phases; counter_rows; tol = tolerance }
