(* Bench regression gate: time a small fixed sweep of solver phases and
   compare against the committed BENCH_baseline.json.

     dune exec bench/check_regression.exe              # compare, exit 1 on regression
     dune exec bench/check_regression.exe -- --update  # rewrite the baseline

   Each phase is timed as the minimum wall clock over a few repetitions
   (minimum, not mean: noise only adds time). Raw walls are not comparable
   across machines, so the baseline also records a fixed pure-OCaml
   calibration workload; at comparison time every baseline wall is scaled
   by calibration_now / calibration_baseline, which cancels machine speed
   to first order. A phase regresses when its scaled wall exceeds
   baseline * (1 + tolerance); the tolerance defaults to 0.25 and can be
   widened for noisy runners via CCS_BENCH_TOLERANCE (e.g.
   CCS_BENCH_TOLERANCE=1.5 on shared CI machines). *)

module J = Ccs_obs.Jsonx

let baseline_path = "BENCH_baseline.json"
let reps = 5

let tolerance =
  match Sys.getenv_opt "CCS_BENCH_TOLERANCE" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t > 0.0 -> t
      | _ ->
          Printf.eprintf "bad CCS_BENCH_TOLERANCE %S (want a positive float)\n" s;
          exit 2)

let instance ~seed ~n ~classes ~machines ~slots =
  Ccs.Generator.generate ~seed
    { Ccs.Generator.n; classes; machines; slots; p_lo = 1; p_hi = 1000;
      family = Ccs.Generator.Uniform }

(* The E5 shape, sized so every phase takes a few milliseconds at least —
   sub-millisecond phases would drown a 25% gate in scheduler noise — while
   the whole gate still runs in seconds. The approximation algorithms repeat
   their solve inside the phase for the same reason. *)
let phases =
  let approx = instance ~seed:(400 * 7919) ~n:4000 ~classes:800 ~machines:400 ~slots:3 in
  let small = instance ~seed:(30 * 7919) ~n:30 ~classes:6 ~machines:3 ~slots:3 in
  let param = Ccs.Ptas.Common.param 1 in
  let times k f () = for _ = 1 to k do f () done in
  [ ("approx_splittable", times 10 (fun () -> ignore (Ccs.Approx.Splittable.solve approx)));
    ("approx_preemptive", times 10 (fun () -> ignore (Ccs.Approx.Preemptive.solve approx)));
    ("approx_nonpreemptive",
     times 10 (fun () -> ignore (Ccs.Approx.Nonpreemptive.solve approx)));
    (* the warm-started simplex left a single PTAS solve sub-millisecond,
       so these repeat enough to stay a few ms above scheduler noise *)
    ("ptas_splittable",
     times 20 (fun () -> ignore (Ccs.Ptas.Splittable_ptas.solve param small)));
    ("ptas_nonpreemptive",
     times 50 (fun () -> ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param small)))
  ]

let time_phase f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Ccs_util.Mono.now_s () in
    f ();
    best := min !best (Ccs_util.Mono.now_s () -. t0)
  done;
  !best

(* A workload touching the same machinery the solvers lean on (rational
   arithmetic, hence allocation and bigint work) but independent of any
   code under test, used to cancel out raw machine speed. *)
let calibrate () =
  time_phase (fun () ->
      (* overwritten every iteration so numerators stay small — a running
         sum would grow its denominator without bound *)
      let acc = ref Rat.zero in
      for i = 1 to 200_000 do
        let x = Rat.of_ints (1 + (i mod 97)) (1 + (i mod 89)) in
        let y = Rat.of_ints (1 + (i mod 83)) (1 + (i mod 79)) in
        acc := Rat.add (Rat.mul x y) (Rat.div x y)
      done;
      ignore !acc)

let measure () = List.map (fun (name, f) -> (name, time_phase f)) phases

(* Deterministic solver-effort counters over a fixed PTAS workload. Unlike
   walls these are exact and machine-independent, so they are compared
   unscaled: lp.phase1_iterations guards the simplex crash-basis/warm-start
   machinery (a cold-start regression shows up here long before it moves a
   noisy wall), and rat.promotions guards the small-int fast path (a single
   careless magnitude blow-up sends the hot numbers to the Bigint arm). *)
let counter_names = [ "lp.phase1_iterations"; "rat.promotions"; "resil.cancel_checks" ]

let measure_counters () =
  let small = instance ~seed:(30 * 7919) ~n:30 ~classes:6 ~machines:3 ~slots:3 in
  let param = Ccs.Ptas.Common.param 1 in
  Ccs_obs.Metrics.reset ();
  Ccs_resil.Deadline.reset_stats ();
  ignore (Ccs.Ptas.Splittable_ptas.solve param small);
  ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param small);
  (* the exact checkpoint count guards the cancellation layer's overhead:
     a new checkpoint in a hot loop moves this long before it moves a wall *)
  Ccs_resil.Deadline.flush_stats ();
  let snap = Ccs_obs.Metrics.snapshot ~all:true () in
  List.map
    (fun name ->
      match Option.bind (List.assoc_opt name snap) (function
        | J.Int i -> Some i
        | _ -> None) with
      | Some v -> (name, v)
      | None ->
          Printf.eprintf "counter %S missing from the metrics registry\n" name;
          exit 2)
    counter_names

let write_baseline () =
  let cal = calibrate () in
  let walls = measure () in
  let counters = measure_counters () in
  let json =
    J.Obj
      [ ("calibration_s", J.Float cal);
        ("phases", J.Obj (List.map (fun (n, w) -> (n, J.Float w)) walls));
        ("counters", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) counters)) ]
  in
  Out_channel.with_open_text baseline_path (fun oc ->
      Out_channel.output_string oc (J.to_string json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s (%d phases, calibration %.4fs)\n" baseline_path
    (List.length walls) cal

let number = function
  | J.Float w -> Some w
  | J.Int w -> Some (float_of_int w)
  | _ -> None

let read_baseline () =
  if not (Sys.file_exists baseline_path) then begin
    Printf.eprintf "no %s — run with --update to create it\n" baseline_path;
    exit 2
  end;
  let text = In_channel.with_open_text baseline_path In_channel.input_all in
  match J.of_string text with
  | Error e ->
      Printf.eprintf "%s: parse error: %s\n" baseline_path e;
      exit 2
  | Ok json -> (
      let cal =
        match Option.bind (J.member "calibration_s" json) number with
        | Some c when c > 0.0 -> c
        | _ ->
            Printf.eprintf "%s: missing \"calibration_s\"\n" baseline_path;
            exit 2
      in
      let counters =
        (* absent in baselines written before the counter gate existed *)
        match J.member "counters" json with
        | Some (J.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> match v with J.Int i -> Some (k, i) | _ -> None)
              kvs
        | _ -> []
      in
      match J.member "phases" json with
      | Some (J.Obj kvs) ->
          ( cal,
            List.filter_map (fun (k, v) -> Option.map (fun w -> (k, w)) (number v)) kvs,
            counters )
      | _ ->
          Printf.eprintf "%s: missing \"phases\" object\n" baseline_path;
          exit 2)

let compare_runs () =
  let base_cal, base, base_counters = read_baseline () in
  let cal = calibrate () in
  let scale = cal /. base_cal in
  let current = measure () in
  let current_counters = measure_counters () in
  let regressed = ref [] in
  Printf.printf "machine speed vs baseline: %.2fx (calibration %.4fs vs %.4fs)\n" scale cal
    base_cal;
  Printf.printf "%-22s %12s %12s %9s\n" "phase" "expected" "current" "delta";
  List.iter
    (fun (name, wall) ->
      match List.assoc_opt name base with
      | None -> Printf.printf "%-22s %12s %10.4fs %9s\n" name "(new)" wall "-"
      | Some b ->
          let expected = b *. scale in
          let delta = (wall -. expected) /. expected in
          let flag = if delta > tolerance then " REGRESSED" else "" in
          if delta > tolerance then regressed := name :: !regressed;
          Printf.printf "%-22s %10.4fs %10.4fs %+8.1f%%%s\n" name expected wall
            (100.0 *. delta) flag)
    current;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name current) then
        Printf.printf "%-22s (phase no longer measured)\n" name)
    base;
  (* counters are exact: no machine-speed scaling, same relative tolerance *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name base_counters with
      | None -> Printf.printf "%-22s %12s %12d %9s\n" name "(new)" v "-"
      | Some b ->
          let delta =
            if b = 0 then if v = 0 then 0.0 else infinity
            else float_of_int (v - b) /. float_of_int b
          in
          let flag = if delta > tolerance then " REGRESSED" else "" in
          if delta > tolerance then regressed := name :: !regressed;
          Printf.printf "%-22s %12d %12d %+8.1f%%%s\n" name b v (100.0 *. delta) flag)
    current_counters;
  if !regressed = [] then
    Printf.printf "ok: no phase regressed by more than %.0f%%\n" (100.0 *. tolerance)
  else begin
    Printf.printf "FAIL: %d phase(s) regressed by more than %.0f%%: %s\n"
      (List.length !regressed) (100.0 *. tolerance)
      (String.concat ", " (List.rev !regressed));
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "--update" ] -> write_baseline ()
  | _ :: [] -> compare_runs ()
  | _ ->
      Printf.eprintf "usage: check_regression [--update]\n";
      exit 2
