(* Bench regression gate front-end (the measurement and threshold logic
   lives in Gate, shared with bin/ccs_report --check):

     dune exec bench/check_regression.exe              # compare, exit 1 on regression
     dune exec bench/check_regression.exe -- --update  # rewrite the baseline *)

let write_baseline () =
  let cal, n_phases = Gate.write_baseline Gate.default_baseline_path in
  Printf.printf "wrote %s (%d phases, calibration %.4fs)\n" Gate.default_baseline_path
    n_phases cal

let compare_runs () =
  match Gate.compare_to_baseline () with
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  | Ok cmp ->
      Printf.printf "machine speed vs baseline: %.2fx (calibration %.4fs vs %.4fs)\n"
        cmp.Gate.scale cmp.Gate.calibration_s cmp.Gate.base_calibration_s;
      Printf.printf "%-22s %12s %12s %9s\n" "phase" "expected" "current" "delta";
      List.iter
        (fun (r : Gate.wall_row) ->
          match (r.expected_s, r.delta) with
          | Some expected, Some delta ->
              Printf.printf "%-22s %10.4fs %10.4fs %+8.1f%%%s\n" r.name expected
                r.current_s (100.0 *. delta)
                (if r.regressed then " REGRESSED" else "")
          | _ -> Printf.printf "%-22s %12s %10.4fs %9s\n" r.name "(new)" r.current_s "-")
        cmp.Gate.wall_rows;
      List.iter
        (fun name -> Printf.printf "%-22s (phase no longer measured)\n" name)
        cmp.Gate.dropped_phases;
      List.iter
        (fun (r : Gate.counter_row) ->
          match (r.expected, r.cdelta) with
          | Some b, Some delta ->
              Printf.printf "%-22s %12d %12d %+8.1f%%%s\n" r.cname b r.current
                (100.0 *. delta)
                (if r.cregressed then " REGRESSED" else "")
          | _ -> Printf.printf "%-22s %12s %12d %9s\n" r.cname "(new)" r.current "-")
        cmp.Gate.counter_rows;
      let regressed = Gate.regressions cmp in
      if regressed = [] then
        Printf.printf "ok: no phase regressed by more than %.0f%%\n" (100.0 *. cmp.Gate.tol)
      else begin
        Printf.printf "FAIL: %d phase(s) regressed by more than %.0f%%: %s\n"
          (List.length regressed) (100.0 *. cmp.Gate.tol)
          (String.concat ", " regressed);
        exit 1
      end

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "--update" ] -> write_baseline ()
  | _ :: [] -> compare_runs ()
  | _ ->
      Printf.eprintf "usage: check_regression [--update]\n";
      exit 2
