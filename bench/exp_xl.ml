(* XL — million-job throughput tier (n = 10^6, m = 10^5).

   The paper's 2-approximations are near-linear; this experiment checks the
   implementation actually is, end to end: generate a 10^6-job instance
   straight into the flat representation, parse it back through both the
   streaming text tokenizer and the ccsb1 binary reader, run the flat
   splittable / preemptive / non-preemptive paths, and record instances/sec
   (jobs/sec) plus peak heap words in the "xl_sweep" section of
   BENCH_timing.json — the same numbers the bench-xl CI job gates via the
   shared Gate workloads. Schedules are validated (untimed) against the
   record-form validators. *)

module U = Bench_util
module J = Ccs_obs.Jsonx
module T = Ccs_util.Tables

let n_jobs = Gate.xl_spec.Ccs.Generator.n

let jobs_per_s wall = if wall > 0.0 then float_of_int n_jobs /. wall else 0.0

let xl () =
  U.header "XL — million-job streaming + flat 2-approx throughput";
  let fl, gen_s = U.time (fun () -> Ccs.Generator.generate_flat ~seed:(9 * 7919) Gate.xl_spec) in
  let text = Ccs.Io.to_string_flat fl in
  let parsed_text, parse_text_s =
    U.time (fun () ->
        match Ccs.Io.of_string_flat text with
        | Ok f -> f
        | Error e -> failwith ("xl: text parse failed: " ^ e))
  in
  let bin_path = Filename.temp_file "ccs_xl" ".ccsb" in
  Ccs.Io.save_flat bin_path fl;
  let parsed_bin, parse_bin_s =
    U.time (fun () ->
        match Ccs.Io.load_flat bin_path with
        | Ok f -> f
        | Error e -> failwith ("xl: binary parse failed: " ^ e))
  in
  Sys.remove bin_path;
  (* both parses must reproduce the generated instance exactly *)
  let same g =
    Ccs.Instance.Flat.n g = Ccs.Instance.Flat.n fl
    && Ccs.Instance.Flat.m g = Ccs.Instance.Flat.m fl
    && Ccs.Instance.Flat.c g = Ccs.Instance.Flat.c fl
    &&
    let ok = ref true in
    for i = 0 to Ccs.Instance.Flat.n fl - 1 do
      if
        Ccs.Instance.Flat.job_p g i <> Ccs.Instance.Flat.job_p fl i
        || Ccs.Instance.Flat.job_cls g i <> Ccs.Instance.Flat.job_cls fl i
      then ok := false
    done;
    !ok
  in
  if not (same parsed_text && same parsed_bin) then failwith "xl: parse mismatch";
  let inst = Ccs.Instance.of_flat fl in
  let solve_row name solve validate =
    let (sched, _), wall, counters = U.time_observed (fun () -> solve fl) in
    let valid = Result.is_ok (validate inst sched) in
    if not valid then failwith ("xl: invalid " ^ name ^ " schedule");
    ( (name, wall),
      J.Obj
        [ ("variant", J.Str name);
          ("wall_s", J.Float (U.round9 wall));
          ("jobs_per_s", J.Float (U.round9 (jobs_per_s wall)));
          ("valid", J.Bool valid);
          ("counters", J.Obj counters) ] )
  in
  let rows =
    [ solve_row "splittable" Ccs.Approx.Splittable.solve_flat
        Ccs.Schedule.validate_splittable;
      solve_row "preemptive" Ccs.Approx.Preemptive.solve_flat
        Ccs.Schedule.validate_preemptive;
      solve_row "nonpreemptive" Ccs.Approx.Nonpreemptive.solve_flat
        (fun i a -> Result.map ignore (Ccs.Schedule.validate_nonpreemptive i a)) ]
  in
  let peak_words = (Gc.quick_stat ()).Gc.top_heap_words in
  let sweep =
    J.Obj
      [ ("n", J.Int n_jobs);
        ("machines", J.Int (Ccs.Instance.Flat.m fl));
        ("classes", J.Int (Ccs.Instance.Flat.num_classes fl));
        ("slots", J.Int (Ccs.Instance.Flat.c fl));
        ("flat_mem_bytes", J.Int (Ccs.Instance.Flat.mem_bytes fl));
        ("gen_s", J.Float (U.round9 gen_s));
        ("gen_jobs_per_s", J.Float (U.round9 (jobs_per_s gen_s)));
        ("parse_text_s", J.Float (U.round9 parse_text_s));
        ("parse_text_jobs_per_s", J.Float (U.round9 (jobs_per_s parse_text_s)));
        ("parse_bin_s", J.Float (U.round9 parse_bin_s));
        ("parse_bin_jobs_per_s", J.Float (U.round9 (jobs_per_s parse_bin_s)));
        ("peak_heap_words", J.Int peak_words);
        ("solves", J.List (List.map snd rows)) ]
  in
  (* merge into BENCH_timing.json without clobbering the E5 sections *)
  let path = "BENCH_timing.json" in
  let existing =
    if Sys.file_exists path then
      match J.of_string (In_channel.with_open_text path In_channel.input_all) with
      | Ok (J.Obj kvs) -> List.filter (fun (k, _) -> k <> "xl_sweep") kvs
      | _ -> []
    else []
  in
  U.write_json path (J.Obj (existing @ [ ("xl_sweep", sweep) ]));
  let table = T.create [ "phase"; "wall"; "jobs/s" ] in
  let add name wall =
    T.add_row table
      [ name; Printf.sprintf "%.3f s" wall;
        Printf.sprintf "%.2e" (jobs_per_s wall) ]
  in
  add "generate (flat)" gen_s;
  add "parse text (stream)" parse_text_s;
  add "parse binary (ccsb1)" parse_bin_s;
  List.iter (fun ((name, wall), _) -> add ("solve " ^ name) wall) rows;
  T.print table;
  U.footnote
    (Printf.sprintf
       "wrote %s xl_sweep (n=%d, m=%d, C=%d; flat form %d MB off-heap, peak heap %d Mwords)"
       path n_jobs (Ccs.Instance.Flat.m fl)
       (Ccs.Instance.Flat.num_classes fl)
       (Ccs.Instance.Flat.mem_bytes fl / 1_000_000)
       (peak_words / 1_000_000))
