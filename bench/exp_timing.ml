(* E5 — running-time scaling of the Section 3 algorithms (Bechamel).

   The paper claims O(n^2 log n) for the splittable/preemptive algorithms
   and O(n^2 log^2 n) for the non-preemptive one. We time each algorithm on
   doubling n and report the estimated ns/run together with the empirical
   growth exponent log2(t(2n)/t(n)) — the shape to observe is an exponent
   comfortably below the worst-case 2+o(1) (the quadratic term comes from
   C ~ n classes; with C fixed the algorithms are near-linear). *)

module U = Bench_util
module T = Ccs_util.Tables
open Bechamel

let sizes = [ 100; 200; 400; 800 ]

let make_instance n =
  U.instance ~seed:(n * 7919) ~family:Ccs.Generator.Uniform ~n ~classes:(n / 5)
    ~machines:(max 2 (n / 10)) ~slots:3 ~p_hi:1000

(* one Bechamel Test.make per (algorithm, n) cell of the table *)
let tests =
  List.concat_map
    (fun n ->
      let inst = make_instance n in
      [ Test.make
          ~name:(Printf.sprintf "splittable/%d" n)
          (Staged.stage (fun () -> ignore (Ccs.Approx.Splittable.solve inst)));
        Test.make
          ~name:(Printf.sprintf "preemptive/%d" n)
          (Staged.stage (fun () -> ignore (Ccs.Approx.Preemptive.solve inst)));
        Test.make
          ~name:(Printf.sprintf "nonpreemptive/%d" n)
          (Staged.stage (fun () -> ignore (Ccs.Approx.Nonpreemptive.solve inst))) ])
    sizes

let rec e5 () =
  U.header "E5 — running-time scaling (Theorems 4, 5, 6)";
  let grouped = Test.make_grouped ~name:"approx" tests in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let value name =
    match Hashtbl.fold (fun k v acc -> if k = "approx/" ^ name then Some v else acc) analyzed None with
    | Some o -> (
        match Analyze.OLS.estimates o with
        | Some (t :: _) -> t
        | _ -> nan)
    | None -> nan
  in
  let table = T.create [ "algorithm"; "n"; "time/run"; "growth exp vs previous n" ] in
  List.iter
    (fun algo ->
      let prev = ref None in
      List.iter
        (fun n ->
          let t = value (Printf.sprintf "%s/%d" algo n) in
          let growth =
            match !prev with
            | Some tp when tp > 0.0 -> U.f2 (log (t /. tp) /. log 2.0)
            | _ -> "-"
          in
          prev := Some t;
          let display =
            if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else Printf.sprintf "%.0f us" (t /. 1e3)
          in
          T.add_row table [ algo; string_of_int n; display; growth ])
        sizes)
    [ "splittable"; "preemptive"; "nonpreemptive" ];
  T.print table;
  U.footnote
    "claim: growth exponent stays at or below ~2 (the n^2 in the bound comes from\n\
     C log m iterations x O(n) work; here C = n/5 grows with n).";
  write_timing_json ()

(* Single observed runs per (variant, algorithm, n): wall-clock plus the
   solver counters (simplex pivots, B&B nodes, oracle guesses, ...) from the
   metrics registry, dumped as BENCH_timing.json at the repo root. The
   approx algorithms run at the bechamel sizes; the PTASs (which go through
   the configuration ILP) at small n so the file regenerates in seconds. *)
and write_timing_json () =
  let module J = Ccs_obs.Jsonx in
  let row ~variant ~algo ~n inst f =
    let _, wall, counters = U.time_observed f in
    J.Obj
      [ ("variant", J.Str variant);
        ("algo", J.Str algo);
        ("n", J.Int n);
        ("m", J.Int (Ccs.Instance.m inst));
        ("classes", J.Int (Ccs.Instance.num_classes inst));
        ("wall_s", J.Float (U.round9 wall));
        ("counters", J.Obj counters) ]
  in
  let approx_rows =
    List.concat_map
      (fun n ->
        let inst = make_instance n in
        [ row ~variant:"splittable" ~algo:"approx" ~n inst (fun () ->
              ignore (Ccs.Approx.Splittable.solve inst));
          row ~variant:"preemptive" ~algo:"approx" ~n inst (fun () ->
              ignore (Ccs.Approx.Preemptive.solve inst));
          row ~variant:"nonpreemptive" ~algo:"approx" ~n inst (fun () ->
              ignore (Ccs.Approx.Nonpreemptive.solve inst)) ])
      sizes
  in
  let param = Ccs.Ptas.Common.param 1 in
  let ptas_rows =
    List.concat_map
      (fun n ->
        let inst = make_instance n in
        [ row ~variant:"splittable" ~algo:"ptas" ~n inst (fun () ->
              ignore (Ccs.Ptas.Splittable_ptas.solve param inst));
          row ~variant:"nonpreemptive" ~algo:"ptas" ~n inst (fun () ->
              ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param inst)) ])
      [ 20; 40 ]
  in
  (* PTAS jobs sweep: the same batch of PTAS solves on a 1-domain and a
     4-domain pool (batch-level fan-out plus the in-solver probe loops).
     The results are discarded — identical by the determinism contract —
     and only the wall clocks are kept. *)
  let sweep_tasks =
    List.concat_map
      (fun n ->
        let inst = make_instance n in
        [ (fun () -> ignore (Ccs.Ptas.Splittable_ptas.solve param inst));
          (fun () -> ignore (Ccs.Ptas.Nonpreemptive_ptas.solve param inst)) ])
      [ 16; 20; 24; 28; 32; 36 ]
    |> Array.of_list
  in
  let run_at jobs =
    Ccs_par.set_jobs jobs;
    let (), wall = U.time (fun () -> ignore (Ccs_par.parallel_map (fun f -> f ()) sweep_tasks)) in
    wall
  in
  let saved_jobs = Ccs_par.jobs () in
  let wall_j1 = run_at 1 in
  let wall_j4 = run_at 4 in
  Ccs_par.set_jobs saved_jobs;
  let speedup = wall_j1 /. wall_j4 in
  let cores = max 1 (Domain.recommended_domain_count ()) in
  let sweep =
    J.Obj
      [ ("tasks", J.Int (Array.length sweep_tasks));
        ("cores", J.Int cores);
        ("wall_s_jobs1", J.Float (U.round9 wall_j1));
        ("wall_s_jobs4", J.Float (U.round9 wall_j4));
        ("speedup_jobs4", J.Float (U.round9 speedup)) ]
  in
  (* Resilience sweep: the degradation ladder on E5-style instances under a
     deadline far below the exact rung's runtime. Every run must come back
     Degraded with a validator-clean incumbent and a sound ratio bound; the
     JSON records the observed deadline overshoot (p99 and max), which the
     grace-window design keeps well under 50ms. *)
  let resil =
    let module D = Ccs_anytime.Driver in
    let module O = Ccs_resil.Outcome in
    let module Deadline = Ccs_resil.Deadline in
    let deadline_ms = 3 in
    let seeds = List.init 15 (fun i -> 1 + i) in
    let runs = ref 0 and degraded = ref 0 and invalid = ref 0 in
    let overshoots = ref [] in
    let one validate solve =
      incr runs;
      let tok = Deadline.of_budget_ms deadline_ms in
      let limit = Option.get (Deadline.limit_ns tok) in
      let outcome = solve tok in
      overshoots :=
        (float_of_int (max 0 (Ccs_util.Mono.now_ns () - limit)) /. 1e6) :: !overshoots;
      match outcome with
      | O.Complete _ -> ()
      | O.Degraded d ->
          incr degraded;
          let ok =
            match d.O.incumbent with
            | None -> false
            | Some (s : _ D.solved) -> (
                match validate s.D.schedule with
                | Ok mk ->
                    Rat.equal mk s.D.makespan
                    && Rat.(d.O.lower_bound <= mk)
                    && (match d.O.ratio_bound with
                       | Some r -> Rat.equal r Rat.(mk / d.O.lower_bound)
                       | None -> false)
                | Error _ -> false)
          in
          if not ok then incr invalid
    in
    List.iter
      (fun seed ->
        let inst =
          U.instance ~seed:(seed * 104729) ~family:Ccs.Generator.Uniform ~n:46 ~classes:9
            ~machines:7 ~slots:2 ~p_hi:1000
        in
        one (Ccs.Schedule.validate_splittable inst) (fun tok ->
            D.solve_splittable ~deadline:tok inst);
        one (Ccs.Schedule.validate_preemptive inst) (fun tok ->
            D.solve_preemptive ~deadline:tok inst);
        one
          (fun a -> Result.map Rat.of_int (Ccs.Schedule.validate_nonpreemptive inst a))
          (fun tok -> D.solve_nonpreemptive ~deadline:tok inst))
      seeds;
    let sorted = List.sort compare !overshoots |> Array.of_list in
    let pct p =
      if Array.length sorted = 0 then 0.0
      else sorted.(min (Array.length sorted - 1) (int_of_float (p *. float_of_int (Array.length sorted)))) in
    J.Obj
      [ ("deadline_ms", J.Int deadline_ms);
        ("runs", J.Int !runs);
        ("degraded", J.Int !degraded);
        ("invalid_outcomes", J.Int !invalid);
        ("overshoot_ms_p50", J.Float (U.round9 (pct 0.50)));
        ("overshoot_ms_p99", J.Float (U.round9 (pct 0.99)));
        ("overshoot_ms_max", J.Float (U.round9 (pct 1.0))) ]
  in
  let path = "BENCH_timing.json" in
  U.write_json path
    (J.Obj
       [ ("rows", J.List (approx_rows @ ptas_rows));
         ("ptas_sweep", sweep);
         ("resil_sweep", resil) ]);
  U.footnote
    (Printf.sprintf "wrote %s (%d rows; PTAS sweep at -j 4: %.2fx on %d core%s%s)" path
       (List.length approx_rows + List.length ptas_rows)
       speedup cores
       (if cores = 1 then "" else "s")
       (if cores = 1 then " — single-core host, no parallel speedup is possible here" else ""))
