(* Shared helpers for the experiment harness. Everything is deterministic
   from fixed seeds so that bench output is reproducible run to run. *)

module Q = Rat
module T = Ccs_util.Tables

let fam_name = function
  | Ccs.Generator.Uniform -> "uniform"
  | Zipf -> "zipf"
  | Heavy_classes -> "heavy"
  | Large_jobs -> "large"
  | Lp_stress -> "lp-stress"
  | Bnb_stress -> "bnb-stress"

let families = Ccs.Generator.[ Uniform; Zipf; Heavy_classes; Large_jobs; Lp_stress ]

(* A schedulable random instance: C is clamped under c*m and n. *)
let instance ~seed ~family ~n ~classes ~machines ~slots ~p_hi =
  let classes = min classes (max 1 (slots * machines)) in
  let classes = min classes n in
  Ccs.Generator.generate ~seed
    { Ccs.Generator.n; classes; machines; slots; p_lo = 1; p_hi; family }

(* Every measured float written to a JSON artifact goes through this: 9
   significant digits is far below clock resolution but drops the trailing
   binary noise that made regenerated BENCH_timing.json diffs unreadable. *)
let round9 = Ccs_obs.Jsonx.round_sig 9

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x

let time f =
  let t0 = Ccs_util.Mono.now_s () in
  let r = f () in
  (r, Ccs_util.Mono.now_s () -. t0)

(* Time [f] against a freshly reset metrics registry; returns the result,
   wall-clock seconds and the solver counters [f] accumulated (active
   metrics only, as JSON values keyed by metric name). *)
let time_observed f =
  Ccs_obs.Metrics.reset ();
  let r, dt = time f in
  (r, dt, Ccs_obs.Metrics.snapshot ())

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Ccs_obs.Jsonx.to_string json);
      Out_channel.output_char oc '\n')

let header title =
  Printf.printf "\n=== %s ===\n" title

let footnote text = Printf.printf "%s\n" text

(* max and mean of a float list *)
let summarize xs =
  let arr = Array.of_list xs in
  (Ccs_util.Stats.maximum arr, Ccs_util.Stats.mean arr)
