(* EX — exact-search capability sweep (conflict-driven B&B + portfolio).

   How large a near-perfect-partition instance can the exact layer close at
   a fixed node budget? The bnb-stress family is the adversarial shape for
   the search (all sizes in a narrow band around p_hi/2, round-robin
   classes: the area bound is weak and the tree is deep), so the largest n
   the search completes there is a conservative capability figure. Each
   size runs the conflict-driven B&B alone and the full portfolio race at
   the same budget; rows plus the resulting max_n_complete land in the
   "exact_sweep" section of BENCH_timing.json (merged non-clobbering, like
   xl_sweep). The per-size node counts are deterministic, so a search
   regression (weaker pruning, lost no-goods) moves this table even on a
   noisy machine. *)

module U = Bench_util
module J = Ccs_obs.Jsonx
module T = Ccs_util.Tables

let node_budget = 1_000_000
let sizes = [ 10; 12; 14; 16; 18; 20; 22; 24 ]

let spec n =
  { Ccs.Generator.n; classes = 4; machines = 4; slots = 2; p_lo = 1; p_hi = 100;
    family = Ccs.Generator.Bnb_stress }

let ex () =
  U.header "EX — exact capability sweep (bnb-stress, fixed node budget)";
  let table = T.create [ "n"; "bnb"; "nodes"; "wall"; "portfolio"; "winner" ] in
  (* capability frontier: largest n with every size up to it closed, so one
     hard middle size (the near-partition wall) caps the figure even if
     easier larger sizes happen to finish *)
  let frontier_open = ref true in
  let max_complete = ref 0 in
  let rows =
    List.map
      (fun n ->
        let inst = Ccs.Generator.generate ~seed:1234 (spec n) in
        let (bnb, bnb_wall), portfolio_of =
          ( U.time (fun () -> Ccs_exact.Bnb.solve_result ~node_limit:node_budget inst),
            fun () -> Ccs_exact.Portfolio.solve ~node_limit:node_budget inst )
        in
        let r = Option.get bnb in
        let complete = r.Ccs_exact.Bnb.status = Ccs_exact.Bnb.Complete in
        if complete && !frontier_open then max_complete := n
        else if not complete then frontier_open := false;
        let o, port_wall = U.time portfolio_of in
        let o = Option.get o in
        T.add_row table
          [ string_of_int n;
            (if complete then Printf.sprintf "opt %d" r.Ccs_exact.Bnb.makespan
             else Printf.sprintf "inc %d/lb %d" r.Ccs_exact.Bnb.makespan
                    r.Ccs_exact.Bnb.lower_bound);
            string_of_int r.Ccs_exact.Bnb.nodes;
            Printf.sprintf "%.3f s" bnb_wall;
            (if o.Ccs_exact.Portfolio.proved then
               Printf.sprintf "opt %d" o.Ccs_exact.Portfolio.makespan
             else "abstained");
            o.Ccs_exact.Portfolio.winner ]
          ;
        J.Obj
          [ ("n", J.Int n);
            ("bnb_complete", J.Bool complete);
            ("bnb_nodes", J.Int r.Ccs_exact.Bnb.nodes);
            ("bnb_makespan", J.Int r.Ccs_exact.Bnb.makespan);
            ("bnb_lower_bound", J.Int r.Ccs_exact.Bnb.lower_bound);
            ("bnb_wall_s", J.Float (U.round9 bnb_wall));
            ("portfolio_proved", J.Bool o.Ccs_exact.Portfolio.proved);
            ("portfolio_winner", J.Str o.Ccs_exact.Portfolio.winner);
            ("portfolio_wall_s", J.Float (U.round9 port_wall)) ])
      sizes
  in
  let sweep =
    J.Obj
      [ ("family", J.Str "bnb-stress");
        ("node_budget", J.Int node_budget);
        ("max_n_complete", J.Int !max_complete);
        ("rows", J.List rows) ]
  in
  let path = "BENCH_timing.json" in
  let existing =
    if Sys.file_exists path then
      match J.of_string (In_channel.with_open_text path In_channel.input_all) with
      | Ok (J.Obj kvs) -> List.filter (fun (k, _) -> k <> "exact_sweep") kvs
      | _ -> []
    else []
  in
  U.write_json path (J.Obj (existing @ [ ("exact_sweep", sweep) ]));
  T.print table;
  U.footnote
    (Printf.sprintf
       "wrote %s exact_sweep (budget %d nodes, largest bnb-stress size closed: n=%d)"
       path node_budget !max_complete)
