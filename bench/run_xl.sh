#!/bin/sh
# Local reproduction of the bench-xl CI job: the million-job CLI round
# trip, the XL sweep (writes the xl_sweep section of BENCH_timing.json),
# and the calibrated regression gate over the xl_* phases and counters.
#
#   bench/run_xl.sh                # full tier, gate at the CI tolerance
#   CCS_BENCH_TOLERANCE=0.25 bench/run_xl.sh   # tighter gate on a quiet box
#
# The tier needs roughly 10s of CPU and ~150 MB of RAM; everything it
# writes outside _build/ is BENCH_timing.json and a temp .ccsb file that
# is removed on exit.
set -eu
cd "$(dirname "$0")/.."

TOL="${CCS_BENCH_TOLERANCE:-1.5}"
GEN=_build/default/bin/ccs_gen.exe
SOLVE=_build/default/bin/ccs_solve.exe

dune build bench/main.exe bench/check_regression.exe bin/ccs_gen.exe bin/ccs_solve.exe

XL_BIN=$(mktemp -t ccs_xl_XXXXXX.ccsb)
trap 'rm -f "$XL_BIN"' EXIT INT TERM

echo "== million-job CLI round trip (--format flat, --compress) =="
"$GEN" -n 1000000 -C 150000 -m 100000 -c 3 --p-hi 1000 --seed 9 \
  --format flat -o "$XL_BIN"
"$SOLVE" "$XL_BIN" --variant splittable --algo approx \
  --format flat --compress | tail -n 4
"$SOLVE" "$XL_BIN" --variant nonpreemptive --algo approx \
  --format flat --compress | tail -n 4

echo "== XL sweep (xl_sweep section of BENCH_timing.json) =="
dune exec bench/main.exe -- XL

echo "== calibrated gate (tolerance $TOL) =="
CCS_BENCH_XL=1 CCS_BENCH_TOLERANCE="$TOL" dune exec bench/check_regression.exe
