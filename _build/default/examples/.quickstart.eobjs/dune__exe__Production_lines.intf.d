examples/production_lines.mli:
