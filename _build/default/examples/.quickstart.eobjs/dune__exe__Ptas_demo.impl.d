examples/ptas_demo.ml: Ccs Ccs_exact List Printf Rat Unix
