examples/data_placement.ml: Array Ccs Ccs_util List Printf Rat String
