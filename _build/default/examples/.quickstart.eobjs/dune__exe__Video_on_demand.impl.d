examples/video_on_demand.ml: Ccs Ccs_exact Ccs_util List Printf Rat Result String
