examples/quickstart.ml: Array Ccs Ccs_exact Format List Printf Rat String
