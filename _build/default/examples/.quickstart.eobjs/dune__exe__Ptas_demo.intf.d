examples/ptas_demo.mli:
