examples/quickstart.mli:
