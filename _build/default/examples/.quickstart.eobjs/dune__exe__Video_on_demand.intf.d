examples/video_on_demand.mli:
