examples/production_lines.ml: Array Ccs List Printf Rat
