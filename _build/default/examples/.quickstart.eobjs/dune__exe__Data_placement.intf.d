examples/data_placement.mli:
