(* Data placement — the paper's motivating scenario (Section 1).

   Operations (jobs) each need one database (class) stored locally on the
   server (machine) that executes them. Disk space allows only [c] databases
   per server, so a server can only run operations from at most c classes.
   We balance query load across servers while respecting storage.

   Non-preemptive: a query runs on one server start-to-finish.

   Run with: dune exec examples/data_placement.exe *)

module Q = Rat

let () =
  let seed = 2026 in
  let rng = Ccs_util.Prng.create seed in
  (* 10 databases with Zipf-like popularity, 60 queries, 6 servers that can
     each hold 3 databases. Query cost 5..50ms. *)
  let databases = 10 and servers = 6 and disk_slots = 3 in
  let weights = Array.init databases (fun i -> 1.0 /. float_of_int (i + 1)) in
  let queries =
    List.init 60 (fun _ ->
        let db = Ccs_util.Prng.weighted rng weights in
        let cost = Ccs_util.Prng.int_in rng 5 50 in
        (cost, db))
  in
  let inst = Ccs.Instance.make ~machines:servers ~slots:disk_slots queries in
  Printf.printf "data placement: %d queries over %d databases, %d servers x %d DB slots\n"
    (Ccs.Instance.n inst) (Ccs.Instance.num_classes inst) servers disk_slots;
  let loads = Ccs.Instance.class_load inst in
  Array.iteri (fun db load -> Printf.printf "  db%-2d total query load %d\n" db load) loads;

  (* 7/3-approximation *)
  let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
  let makespan =
    match Ccs.Schedule.validate_nonpreemptive inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  let lb = max (Ccs.Instance.pmax inst) ((Ccs.Instance.total_load inst + servers - 1) / servers) in
  Printf.printf "\n7/3-approx placement: makespan %d (lower bound %d, ratio <= %.3f)\n" makespan lb
    (float_of_int makespan /. float_of_int lb);
  Printf.printf "binary search probes: %d, accepted guess T = %d\n" stats.Ccs.Approx.Nonpreemptive.probes
    stats.Ccs.Approx.Nonpreemptive.t_guess;

  (* which databases end up on which server *)
  let server_dbs = Array.make servers [] in
  Array.iteri
    (fun q srv ->
      let db = (Ccs.Instance.job inst q).Ccs.Instance.cls in
      if not (List.mem db server_dbs.(srv)) then server_dbs.(srv) <- db :: server_dbs.(srv))
    sched;
  Array.iteri
    (fun srv dbs ->
      Printf.printf "  server %d stores: %s\n" srv
        (String.concat ", " (List.rev_map (Printf.sprintf "db%d") dbs)))
    server_dbs;

  (* PTAS refinement at delta = 1/2 *)
  let param = Ccs.Ptas.Common.param 2 in
  let sched', stats' = Ccs.Ptas.Nonpreemptive_ptas.solve param inst in
  let makespan' =
    match Ccs.Schedule.validate_nonpreemptive inst sched' with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  Printf.printf "\nPTAS (delta=1/2): makespan %d after %d oracle calls (accepted T = %s)\n" makespan'
    stats'.Ccs.Ptas.Nonpreemptive_ptas.oracle_calls
    (Q.to_string stats'.Ccs.Ptas.Nonpreemptive_ptas.t_accepted);
  Printf.printf "PTAS guarantee at this delta: %s; 7/3-approx bound: %d\n"
    (Q.to_string (Ccs.Ptas.Nonpreemptive_ptas.guarantee param stats'.Ccs.Ptas.Nonpreemptive_ptas.t_accepted))
    (7 * stats.Ccs.Approx.Nonpreemptive.t_guess / 3);
  (* An honest reproduction observation (EXPERIMENTS.md, E7): the PTAS beats
     the 7/3-approximation only once delta is small, but the configuration
     space is exponential in 1/delta — at implementable delta the simple
     algorithm usually wins on real instances. The value of the PTAS is the
     guarantee as epsilon -> 0, not its constant at delta = 1/2. *)
  Printf.printf "measured: PTAS %d vs 7/3-approx %d\n" makespan' makespan
