(* Video on demand — the scenario behind Class Constrained Bin Packing in
   the related work (Xavier & Miyazawa; Shachnai & Tamir).

   Disks (machines) hold at most c movies (classes); the stream load of a
   movie may be split across all disks that store a copy (splittable case),
   and we minimize the peak per-disk bandwidth. The splittable CCS
   2-approximation answers in O(n^2 log n) even for very large disk farms.

   Run with: dune exec examples/video_on_demand.exe *)

module Q = Rat

let () =
  let rng = Ccs_util.Prng.create 7 in
  (* 12 movies with strongly skewed demand, 8 disks holding 2 movies each. *)
  let movies = 12 and disks = 8 and copies_per_disk = 2 in
  let demand =
    List.init movies (fun i ->
        (* hot front of the catalogue *)
        let base = 400 / (i + 1) in
        max 10 (base + Ccs_util.Prng.int_in rng 0 20))
  in
  let requests = List.mapi (fun movie load -> (load, movie)) demand in
  let inst = Ccs.Instance.make ~machines:disks ~slots:copies_per_disk requests in
  Printf.printf "video on demand: %d movies on %d disks, %d copies per disk\n" movies disks
    copies_per_disk;
  List.iteri (fun movie load -> Printf.printf "  movie %-2d demand %d\n" movie load) demand;

  let sched, stats = Ccs.Approx.Splittable.solve inst in
  let makespan =
    match Ccs.Schedule.validate_splittable inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  let lb = Ccs.Bounds.lb_splittable inst in
  Printf.printf "\nsplittable 2-approx: peak bandwidth %s (area bound %s, ratio <= %.3f)\n"
    (Q.to_string makespan) (Q.to_string lb)
    (Q.to_float makespan /. Q.to_float lb);
  Printf.printf "guess T = %s found with %d border probes (Lemma 2)\n"
    (Q.to_string stats.Ccs.Approx.Splittable.t_guess) stats.Ccs.Approx.Splittable.probes;

  (* per-disk report *)
  List.iter
    (fun b ->
      Printf.printf "  disks %d..%d: movie %d streamed at %s each\n" b.Ccs.Schedule.m_start
        (b.Ccs.Schedule.m_start + b.Ccs.Schedule.m_count - 1)
        b.Ccs.Schedule.cls
        (Q.to_string b.Ccs.Schedule.per_machine))
    sched.Ccs.Schedule.blocks;
  List.iter
    (fun (disk, loads) ->
      Printf.printf "  disk %d: %s\n" disk
        (String.concat ", "
           (List.map (fun (movie, l) -> Printf.sprintf "movie %d at %s" movie (Q.to_string l)) loads)))
    sched.Ccs.Schedule.explicit_machines;

  (* Exact optimum comparison on a small sub-catalogue (the full 12x8 MILP
     is beyond the exact rational branch & bound — see DESIGN.md). *)
  let mini = Ccs.Instance.make ~machines:3 ~slots:2 (List.filteri (fun i _ -> i < 6) requests) in
  (match Ccs_exact.Splittable_opt.solve ~max_nodes:2_000 mini with
  | Some opt ->
      let msched, _ = Ccs.Approx.Splittable.solve mini in
      let mmk = Result.get_ok (Ccs.Schedule.validate_splittable mini msched) in
      Printf.printf "\n6-movie sub-catalogue on 3 disks: exact optimum %s, 2-approx %s (ratio %.4f)\n"
        (Q.to_string opt) (Q.to_string mmk) (Q.to_float mmk /. Q.to_float opt)
  | None -> ());

  (* the same catalogue on a planet-scale CDN: 10^12 disks. The algorithm
     stays polynomial (Theorem 4's final paragraph) and emits compressed
     machine blocks. *)
  let cdn = Ccs.Instance.make ~machines:1_000_000_000_000 ~slots:1 requests in
  let sched, stats = Ccs.Approx.Splittable.solve cdn in
  let makespan =
    match Ccs.Schedule.validate_splittable cdn sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  Printf.printf "\nsame catalogue on 10^12 disks: peak bandwidth %s, %d full-disk blocks, T=%s\n"
    (Q.to_string makespan) stats.Ccs.Approx.Splittable.full_slices
    (Q.to_string stats.Ccs.Approx.Splittable.t_guess)
