(* Product planning — the paper's other motivation.

   Each production order (job) needs the tooling of its product family
   (class) mounted on the line (machine); a line has c tooling slots. Orders
   may be interrupted and resumed but a single order cannot run on two lines
   at once: the preemptive case.

   Run with: dune exec examples/production_lines.exe *)

module Q = Rat

let () =
  let orders =
    (* (duration, product family) *)
    [ (14, 0); (11, 0); (9, 1); (8, 1); (8, 1); (7, 2); (6, 2); (5, 3); (5, 3);
      (4, 4); (4, 4); (3, 4); (3, 5); (2, 5); (2, 5); (1, 5) ]
  in
  let inst = Ccs.Instance.make ~machines:4 ~slots:2 orders in
  Printf.printf "production: %d orders, %d families, 4 lines x 2 tooling slots\n"
    (Ccs.Instance.n inst) (Ccs.Instance.num_classes inst);

  let sched, stats = Ccs.Approx.Preemptive.solve inst in
  let makespan =
    match Ccs.Schedule.validate_preemptive inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  let lb = Ccs.Bounds.lb_preemptive inst in
  Printf.printf "preemptive 2-approx: makespan %s (lower bound %s, ratio <= %.3f)%s\n"
    (Q.to_string makespan) (Q.to_string lb)
    (Q.to_float makespan /. Q.to_float lb)
    (if stats.Ccs.Approx.Preemptive.repacked then " [Algorithm 2 repacking applied]" else "");

  (* Gantt-ish view *)
  Array.iteri
    (fun line pieces ->
      if pieces <> [] then begin
        Printf.printf "  line %d:" line;
        List.iter
          (fun pc ->
            Printf.printf " o%d[%s->%s]" pc.Ccs.Schedule.pjob
              (Q.to_string pc.Ccs.Schedule.start)
              (Q.to_string (Q.add pc.Ccs.Schedule.start pc.Ccs.Schedule.len)))
          pieces;
        print_newline ()
      end)
    sched;

  (* check: no order ever runs on two lines at once — recompute explicitly *)
  let events = ref [] in
  Array.iteri
    (fun line pieces ->
      List.iter
        (fun pc -> events := (pc.Ccs.Schedule.pjob, line, pc.Ccs.Schedule.start, pc.Ccs.Schedule.len) :: !events)
        pieces)
    sched;
  let parallel =
    List.exists
      (fun (j1, l1, s1, d1) ->
        List.exists
          (fun (j2, l2, s2, d2) ->
            j1 = j2 && l1 <> l2
            && Q.(s1 < Q.add s2 d2)
            && Q.(s2 < Q.add s1 d1))
          !events)
      !events
  in
  Printf.printf "any order on two lines simultaneously? %b\n" parallel;

  (* the PTAS tightens the plan *)
  let param = Ccs.Ptas.Common.param 2 in
  let sched', _ = Ccs.Ptas.Preemptive_ptas.solve param inst in
  match Ccs.Schedule.validate_preemptive inst sched' with
  | Ok mk' ->
      Printf.printf "preemptive PTAS (delta=1/2): makespan %s (%.3f x lower bound)\n"
        (Q.to_string mk')
        (Q.to_float mk' /. Q.to_float lb)
  | Error e -> failwith e
