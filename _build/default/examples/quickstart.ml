(* Quickstart: build an instance, run all three constant-factor algorithms
   of Section 3, validate every schedule and print the results.

   Run with: dune exec examples/quickstart.exe *)

module Q = Rat

let () =
  (* 8 jobs in 4 classes, 3 machines, at most 2 classes per machine. *)
  let inst =
    Ccs.Instance.make ~machines:3 ~slots:2
      [ (10, 0); (7, 0); (9, 1); (4, 1); (6, 2); (3, 3); (2, 3); (5, 2) ]
  in
  Format.printf "%a@.@." Ccs.Instance.pp inst;

  (* --- splittable: jobs may be cut arbitrarily (Theorem 4) --- *)
  let sched, stats = Ccs.Approx.Splittable.solve inst in
  let makespan =
    match Ccs.Schedule.validate_splittable inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  Printf.printf "splittable  2-approx : makespan %-8s (guess T = %s, bound 2T = %s)\n"
    (Q.to_string makespan)
    (Q.to_string stats.Ccs.Approx.Splittable.t_guess)
    (Q.to_string (Q.mul (Q.of_int 2) stats.Ccs.Approx.Splittable.t_guess));

  (* the class-level schedule decodes into job-level pieces: *)
  let pieces = Ccs.Schedule.to_job_pieces inst sched in
  List.iter
    (fun (mi, pl) ->
      Printf.printf "  machine %d: %s\n" mi
        (String.concat " "
           (List.map (fun pc -> Printf.sprintf "j%d:%s" pc.Ccs.Schedule.job (Q.to_string pc.Ccs.Schedule.size)) pl)))
    pieces;

  (* --- preemptive: pieces of one job never run in parallel (Theorem 5) --- *)
  let sched, stats = Ccs.Approx.Preemptive.solve inst in
  let makespan =
    match Ccs.Schedule.validate_preemptive inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  Printf.printf "preemptive  2-approx : makespan %-8s (guess T = %s)\n" (Q.to_string makespan)
    (Q.to_string stats.Ccs.Approx.Preemptive.t_guess);

  (* --- non-preemptive: whole jobs only (Theorem 6) --- *)
  let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
  let makespan =
    match Ccs.Schedule.validate_nonpreemptive inst sched with
    | Ok mk -> mk
    | Error e -> failwith e
  in
  Printf.printf "non-preempt 7/3-apx  : makespan %-8d (guess T = %d)\n" makespan
    stats.Ccs.Approx.Nonpreemptive.t_guess;
  Array.iteri (fun j mi -> Printf.printf "  job %d -> machine %d\n" j mi) sched;

  (* exact optimum for reference (branch & bound, small n only) *)
  match Ccs_exact.Bnb.solve inst with
  | Some (opt, _) -> Printf.printf "non-preemptive exact optimum: %d\n" opt
  | None -> ()
