(** Constructive Lenstra-Shmoys-Tardos rounding.

    Lemmas 8, 12 and 15 of the paper all invoke "a classical rounding result
    by Lenstra et al.": a fractional assignment of parts to machines with
    machine loads at most [cap] can be rounded to an integral one with loads
    at most [cap + max part size]. This module makes the step executable:

    + the assignment LP ([sum_i x_ji = 1] per part, [sum_j s_j x_ji <= cap]
      per machine, [x_ji >= 0] only on allowed pairs) is solved by the exact
      rational simplex, whose basic optimal solution is a vertex;
    + at a vertex, the bipartite support graph of strictly fractional
      entries is a pseudo-forest, so the fractional parts admit a matching
      into distinct machines; the matching is found with the Dinic max-flow
      rather than by structural case analysis — simpler and verified by the
      flow value;
    + integral entries are kept, each fractional part goes to its matched
      machine: every machine gains at most one extra part.

    The LST guarantee (loads <= cap + max_j s_j) follows and is asserted by
    the test-suite over thousands of random feasible systems. *)

(** [round ~sizes ~machines ~allowed ~cap] returns an integral assignment
    (part index -> machine) with machine loads at most [cap + max size] and
    every part on an allowed machine, or [None] when the fractional LP
    itself is infeasible. [allowed.(j)] lists the machines part [j] may use.
    Raises [Failure] if the vertex solution defies the LST structure (which
    would be a solver bug, not an input property). *)
val round :
  sizes:Rat.t array ->
  machines:int ->
  allowed:int list array ->
  cap:Rat.t ->
  int array option
