(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is positive and
    gcd(num, den) = 1, so structural equality coincides with numeric
    equality. Used for fractional makespan guesses (the borders [P_u/k] of
    Lemma 2), splittable/preemptive piece sizes, and the exact simplex. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] normalizes; raises [Division_by_zero] on zero denominator. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints p q] is the rational p/q. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

(** Largest integer <= t. *)
val floor : t -> Bigint.t

(** Smallest integer >= t. *)
val ceil : t -> Bigint.t

val to_float : t -> float

(** ["p/q"], or just ["p"] when integral. *)
val to_string : t -> string

(** Parses ["p"], ["p/q"] and decimal literals like ["3.25"]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
