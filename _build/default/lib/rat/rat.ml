module B = Bigint

type t = { num : B.t; den : B.t }

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let minus_one = { num = B.minus_one; den = B.one }

let make num den =
  if B.is_zero den then raise Division_by_zero
  else if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { num; den } else { num = B.div num g; den = B.div den g }
  end

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints p q = make (B.of_int p) (B.of_int q)

let num t = t.num
let den t = t.den

let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.equal t.den B.one

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  (* Cross-multiplication; denominators are positive. *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

let inv t =
  if B.is_zero t.num then raise Division_by_zero
  else if B.sign t.num < 0 then { num = B.neg t.den; den = B.neg t.num }
  else { num = t.den; den = t.num }

let add a b =
  if B.equal a.den b.den then make (B.add a.num b.num) a.den
  else make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b =
  if B.equal a.den b.den then make (B.sub a.num b.num) a.den
  else make (B.sub (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t = B.fdiv t.num t.den
let ceil t = B.cdiv t.num t.den

let to_float t = B.to_float t.num /. B.to_float t.den

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let of_string s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | Some i ->
      let p = B.of_string (String.sub s 0 i) in
      let q = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make p q
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (B.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let whole = if int_part = "" || int_part = "-" then B.zero else B.of_string int_part in
          let scale = B.pow (B.of_int 10) (String.length frac) in
          let frac_v = if frac = "" then B.zero else B.of_string frac in
          let mag = B.add (B.mul (B.abs whole) scale) frac_v in
          make (if negative then B.neg mag else mag) scale)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
