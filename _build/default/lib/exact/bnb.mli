(** Exact branch & bound for non-preemptive CCS.

    Ground truth for measured approximation ratios (experiments E3, E7).
    Depth-first search assigning jobs in non-increasing size order with
    load/area pruning, class-slot pruning and empty-machine symmetry
    breaking. Exponential, intended for n up to ~16. *)

(** [solve ?node_limit inst] returns the optimal makespan and an optimal
    assignment, or [None] if the node limit was exhausted before the search
    completed (the incumbent may then not be optimal) or the instance is
    unschedulable. *)
val solve : ?node_limit:int -> Ccs.Instance.t -> (int * Ccs.Schedule.nonpreemptive) option

(** Exhaustive reference (every assignment, no pruning) for cross-checking
    the pruned search on tiny instances. *)
val brute_force : Ccs.Instance.t -> int option
