(** Exact optimum for splittable CCS on small instances, via an exact MILP:

    minimize T subject to, for every class u and machine i,
    - sum_i x_{u,i} = P_u          (class fully scheduled)
    - sum_u x_{u,i} <= T           (machine load)
    - x_{u,i} <= P_u * y_{u,i}     (a class occupies a slot where it runs)
    - sum_u y_{u,i} <= c           (class slots)
    with x, T continuous and y binary. The LP relaxation of the y's is what
    makes the problem NP-hard, and the branch & bound closes it exactly.

    The optimum is also a lower bound for the preemptive optimum, which is
    how experiment E2 measures preemptive ratios. Only for small C * m. *)

val solve : ?max_nodes:int -> Ccs.Instance.t -> Rat.t option

(** The optimum with the class-level schedule (class -> machine loads). *)
val solve_schedule : ?max_nodes:int -> Ccs.Instance.t -> (Rat.t * Ccs.Schedule.splittable) option
