lib/exact/preemptive_opt.mli: Ccs Rat
