lib/exact/preemptive_opt.ml: Array Ccs Flow Ilp List Lp Option Rat
