lib/exact/bnb.ml: Array Ccs Hashtbl
