lib/exact/splittable_opt.ml: Array Ccs Ilp List Lp Option Rat
