lib/exact/bnb.mli: Ccs
