lib/exact/splittable_opt.mli: Ccs Rat
