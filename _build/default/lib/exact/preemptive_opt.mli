(** Exact optimum for preemptive CCS on small instances.

    The paper does not need (or give) an exact preemptive solver; this one
    exists as ground truth for experiments E2/E8, replacing lower-bound
    proxies with true ratios on small instances. It goes beyond a bound by
    producing an actual optimal schedule.

    Method. By the classical preemptive open-shop theorem (Gonzalez-Sahni /
    Birkhoff-von Neumann), an amount matrix [a_{j,i}] (job j runs a_{j,i}
    time units on machine i) is realizable with no job parallel to itself
    and makespan T iff every row sum equals p_j <= T and every column sum is
    at most T. Preemptive CCS therefore reduces to the MILP

      min T  s.t.  sum_i a_{j,i} = p_j,  sum_j a_{j,i} <= T,
                   a_{j,i} <= p_j y_{c_j,i},  sum_u y_{u,i} <= c,  T >= pmax

    with continuous a, binary y — solved exactly by {!Ilp} — followed by a
    constructive Birkhoff decomposition: the matrix is padded to a doubly
    T-stochastic square matrix whose positive entries always admit a perfect
    matching (found with {!Flow}); each matching yields one time slice of
    the schedule. The result passes {!Ccs.Schedule.validate_preemptive}. *)

(** [None] if the instance is unschedulable, too large for the exact MILP,
    or the node budget is exhausted. *)
val solve : ?max_nodes:int -> Ccs.Instance.t -> (Rat.t * Ccs.Schedule.preemptive) option

(** Just the optimal makespan. *)
val opt : ?max_nodes:int -> Ccs.Instance.t -> Rat.t option
