(** N-fold integer linear programs (Section 2 of the paper).

    An N-fold ILP has the block-structured constraint matrix

    {v
        [ A_1  A_2 ... A_N ]     r  "globally uniform" rows
        [ B_1   0  ...  0  ]     s  "locally uniform" rows, block 1
        [  0   B_2 ...  0  ]     s  rows, block 2
        [  ...             ]
    v}

    and asks for [min w.x] subject to [Ax = rhs], [lower <= x <= upper],
    [x] integral. Variables come in [n] bricks of [t] entries each.

    Two solvers are provided:

    - {!solve_ilp}: flatten the program and hand it to the exact
      branch-and-bound MILP solver. Always exact; used as the default
      backend and as the reference the augmentation solver is tested
      against.
    - the augmentation solver ({!find_feasible} / {!optimize}): the
      Graver-walk algorithm behind Theorem 1 — repeatedly find the best
      improving step [lambda * g] where every brick of [g] lies in the
      kernel of its [B_i] with bounded infinity-norm, via a dynamic program
      over bricks whose state is the running sum of [A_i g_i]. Its cost is
      exponential in the block parameters — exactly the
      [(r s Delta)^{O(r^2 s)}] of Theorem 1 — so it is practical only for
      small blocks; [Too_large] is raised when the enumeration would
      explode, and callers fall back to {!solve_ilp}. With [max_norm] at
      least the Graver-basis norm bound of the instance the walk is exact;
      the test-suite cross-checks it against {!solve_ilp}. *)

type t = {
  r : int;  (** globally uniform rows *)
  s : int;  (** locally uniform rows per block *)
  t : int;  (** brick size (variables per block) *)
  n : int;  (** number of blocks *)
  a : int array array array;  (** [a.(i)] is the r x t matrix A_{i+1} *)
  b : int array array array;  (** [b.(i)] is the s x t matrix B_{i+1} *)
  rhs_top : int array;  (** length r *)
  rhs_block : int array array;  (** [rhs_block.(i)] has length s *)
  lower : int array array;  (** finite bounds, n x t *)
  upper : int array array;
  weight : int array array;  (** objective, n x t *)
}

exception Invalid of string
exception Too_large of string

(** Checks all dimensions and [lower <= upper]; raises {!Invalid}. *)
val validate : t -> unit

(** Uniform-block convenience constructor: the same [a]/[b]/bounds/weight
    for every block. *)
val make_uniform :
  n:int ->
  a:int array array ->
  b:int array array ->
  rhs_top:int array ->
  rhs_block:int array array ->
  lower:int array ->
  upper:int array ->
  weight:int array ->
  t

(** Largest absolute entry of the constraint matrix (the paper's Delta). *)
val delta : t -> int

val objective : t -> int array array -> int

(** Exact feasibility check of a candidate point. *)
val check : t -> int array array -> bool

(** Flattened exact solve. [`Solution (x, obj)] minimizes; with
    [~feasibility:true] returns the first integral point found. *)
val solve_ilp :
  ?max_nodes:int ->
  ?feasibility:bool ->
  t ->
  [ `Solution of int array array * int | `Infeasible | `Node_limit ]

(** Augmentation-based phase 1: construct the auxiliary N-fold with slack
    bricks, walk its objective to zero. [None] means no feasible point was
    found within [max_norm] (exact if [max_norm] covers the Graver bound). *)
val find_feasible : ?max_norm:int -> t -> int array array option

(** Augmentation-based phase 2: improve a feasible point until no bounded
    Graver step improves the objective. *)
val optimize : ?max_norm:int -> t -> int array array -> int array array

(** Convenience: phase 1 + phase 2 via augmentation. *)
val solve_augmentation :
  ?max_norm:int -> t -> [ `Solution of int array array * int | `Infeasible ]
