(* Dinic's algorithm with the standard paired-edge residual representation:
   edge 2k is the forward edge, edge 2k+1 its residual twin. *)

type t = {
  n : int;
  mutable edge_to : int array;      (* head of each half-edge *)
  mutable edge_cap : int array;     (* residual capacity *)
  mutable edge_count : int;
  adj : int list array;             (* half-edge ids out of each node, reversed order *)
  mutable adj_arr : int array array option;  (* frozen adjacency, built lazily *)
  original_cap : (int, int) Hashtbl.t;       (* forward half-edge id -> capacity *)
}

type edge_id = int

let create n =
  {
    n;
    edge_to = Array.make 16 0;
    edge_cap = Array.make 16 0;
    edge_count = 0;
    adj = Array.make (max n 1) [];
    adj_arr = None;
    original_cap = Hashtbl.create 16;
  }

let node_count t = t.n

let ensure_capacity t =
  if t.edge_count + 2 > Array.length t.edge_to then begin
    let len = 2 * Array.length t.edge_to in
    let grow a = Array.append a (Array.make (len - Array.length a) 0) in
    t.edge_to <- grow t.edge_to;
    t.edge_cap <- grow t.edge_cap
  end

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then invalid_arg "Flow.add_edge: bad node";
  ensure_capacity t;
  let id = t.edge_count in
  t.edge_to.(id) <- dst;
  t.edge_cap.(id) <- cap;
  t.edge_to.(id + 1) <- src;
  t.edge_cap.(id + 1) <- 0;
  t.adj.(src) <- id :: t.adj.(src);
  t.adj.(dst) <- (id + 1) :: t.adj.(dst);
  t.edge_count <- t.edge_count + 2;
  t.adj_arr <- None;
  Hashtbl.replace t.original_cap id cap;
  id

let adjacency t =
  match t.adj_arr with
  | Some a -> a
  | None ->
      let a = Array.map (fun l -> Array.of_list (List.rev l)) t.adj in
      t.adj_arr <- Some a;
      a

let bfs t adj source sink level =
  Array.fill level 0 t.n (-1);
  level.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun e ->
        let w = t.edge_to.(e) in
        if t.edge_cap.(e) > 0 && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w queue
        end)
      adj.(v)
  done;
  level.(sink) >= 0

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  let adj = adjacency t in
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n 0 in
  let total = ref 0 in
  (* Blocking-flow DFS; [pushed] is the bottleneck so far. *)
  let rec dfs v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && iter.(v) < Array.length adj.(v) do
        let e = adj.(v).(iter.(v)) in
        let w = t.edge_to.(e) in
        if t.edge_cap.(e) > 0 && level.(w) = level.(v) + 1 then begin
          let d = dfs w (min pushed t.edge_cap.(e)) in
          if d > 0 then begin
            t.edge_cap.(e) <- t.edge_cap.(e) - d;
            let twin = e lxor 1 in
            t.edge_cap.(twin) <- t.edge_cap.(twin) + d;
            result := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !result
    end
  in
  while bfs t adj source sink level do
    Array.fill iter 0 t.n 0;
    let rec drain () =
      let d = dfs source max_int in
      if d > 0 then begin
        total := !total + d;
        drain ()
      end
    in
    drain ()
  done;
  !total

let flow_on t id =
  match Hashtbl.find_opt t.original_cap id with
  | None -> invalid_arg "Flow.flow_on: not a forward edge id"
  | Some cap -> cap - t.edge_cap.(id)

let min_cut t ~source =
  let adj = adjacency t in
  let reachable = Array.make t.n false in
  let queue = Queue.create () in
  reachable.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun e ->
        let w = t.edge_to.(e) in
        if t.edge_cap.(e) > 0 && not reachable.(w) then begin
          reachable.(w) <- true;
          Queue.add w queue
        end)
      adj.(v)
  done;
  reachable

let out_capacity t v =
  Hashtbl.fold
    (fun id cap acc -> if t.edge_to.(id lxor 1) = v then acc + cap else acc)
    t.original_cap 0
