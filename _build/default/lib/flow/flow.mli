(** Maximum flow on integer-capacity directed graphs (Dinic's algorithm).

    Used to implement the flow network of Lemma 16 (existence of
    well-structured preemptive schedules) and to realize layer assignments in
    the preemptive PTAS. Integral capacities in, integral flow out — the
    integrality is exactly what Lemma 16's proof relies on. *)

type t

type edge_id = int

(** [create n] makes an empty graph on nodes [0 .. n-1]. *)
val create : int -> t

val node_count : t -> int

(** [add_edge t ~src ~dst ~cap] adds a directed edge and returns its id.
    Capacities must be non-negative. Parallel edges are allowed. *)
val add_edge : t -> src:int -> dst:int -> cap:int -> edge_id

(** Computes the maximum flow value from [source] to [sink] and stores the
    flow assignment (queryable via {!flow_on}). Can be called once per
    graph. *)
val max_flow : t -> source:int -> sink:int -> int

(** Flow routed through the given edge after {!max_flow}. *)
val flow_on : t -> edge_id -> int

(** Source side of a minimum cut after {!max_flow}: [reachable.(v)] iff [v]
    is reachable from the source in the residual graph. *)
val min_cut : t -> source:int -> bool array

(** Total capacity leaving [source]; handy upper bound in tests. *)
val out_capacity : t -> int -> int
