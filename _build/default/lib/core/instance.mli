(** Class Constrained Scheduling instances.

    An instance is [n] jobs, each with an integral processing time
    [p_j >= 1] and a class [c_j] in [0 .. classes-1]; [machines] identical
    machines; and a per-machine budget of [slots] class slots (a machine may
    run jobs from at most [slots] distinct classes). This is the input
    [I = [p_1..p_n, c_1..c_n, m, c]] of the paper, 0-indexed. *)

type job = { p : int; cls : int }

type t = private {
  jobs : job array;
  machines : int;  (** m; may be astronomically larger than n *)
  slots : int;  (** c *)
  classes : int;  (** C; every class in [0, C) has at least one job *)
}

(** [make ~machines ~slots jobs] builds and validates an instance. Classes
    are renumbered densely (empty classes are discarded, matching the paper's
    assumption C <= n). Slots are clamped to [min slots C] — a machine can
    never use more distinct classes than exist (the paper's observation that
    c <= C, c <= n is w.l.o.g.). Raises [Invalid_argument] on empty jobs,
    non-positive processing times or machine/slot counts. *)
val make : machines:int -> slots:int -> (int * int) list -> t

val n : t -> int
val m : t -> int
val c : t -> int
val num_classes : t -> int

val job : t -> int -> job

(** Sum of all processing times. *)
val total_load : t -> int

val pmax : t -> int

(** [class_load t] is the array of accumulated loads [P_u]. *)
val class_load : t -> int array

(** [class_jobs t].(u) lists job indices of class [u] in increasing order. *)
val class_jobs : t -> int list array

(** True iff any schedule exists at all: C <= c * m. *)
val schedulable : t -> bool

(** Encoding length |I| in bits, as defined in the paper's introduction. *)
val encoding_length : t -> int

val pp : Format.formatter -> t -> unit
