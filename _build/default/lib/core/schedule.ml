module Q = Rat

type block = { cls : int; m_start : int; m_count : int; per_machine : Q.t }

type splittable = {
  blocks : block list;
  explicit_machines : (int * (int * Q.t) list) list;
}

type piece = { job : int; size : Q.t }

let splittable_makespan s =
  let block_max =
    List.fold_left (fun acc b -> Q.max acc b.per_machine) Q.zero s.blocks
  in
  (* A machine can appear in a block and in the explicit list; combine. *)
  let in_block m =
    List.fold_left
      (fun acc b ->
        if m >= b.m_start && m < b.m_start + b.m_count then Q.add acc b.per_machine
        else acc)
      Q.zero s.blocks
  in
  List.fold_left
    (fun acc (m, loads) ->
      let total =
        List.fold_left (fun t (_, l) -> Q.add t l) (in_block m) loads
      in
      Q.max acc total)
    block_max s.explicit_machines

let validate_splittable inst s =
  let mcount = Instance.m inst in
  let fail msg = Error msg in
  let rec check_blocks = function
    | [] -> Ok ()
    | b :: rest ->
        if b.m_count <= 0 then fail "block with non-positive machine count"
        else if b.m_start < 0 || b.m_start + b.m_count > mcount then
          fail "block out of machine range"
        else if Q.sign b.per_machine <= 0 then fail "block with non-positive load"
        else if b.cls < 0 || b.cls >= Instance.num_classes inst then fail "block with bad class"
        else if
          List.exists
            (fun b' ->
              b'.m_start < b.m_start + b.m_count && b.m_start < b'.m_start + b'.m_count)
            rest
        then fail "overlapping blocks"
        else check_blocks rest
  in
  match check_blocks s.blocks with
  | Error _ as e -> e
  | Ok () -> (
      (* explicit machines: indices valid and unique *)
      let seen = Hashtbl.create 16 in
      let explicit_ok =
        List.for_all
          (fun (m, loads) ->
            let fresh = not (Hashtbl.mem seen m) in
            Hashtbl.replace seen m ();
            fresh && m >= 0 && m < mcount
            && List.for_all
                 (fun (cls, l) ->
                   Q.sign l > 0 && cls >= 0 && cls < Instance.num_classes inst)
                 loads)
          s.explicit_machines
      in
      if not explicit_ok then fail "bad explicit machine entry"
      else begin
        (* per-class totals *)
        let totals = Array.make (Instance.num_classes inst) Q.zero in
        List.iter
          (fun b ->
            totals.(b.cls) <-
              Q.add totals.(b.cls) (Q.mul b.per_machine (Q.of_int b.m_count)))
          s.blocks;
        List.iter
          (fun (_, loads) ->
            List.iter (fun (cls, l) -> totals.(cls) <- Q.add totals.(cls) l) loads)
          s.explicit_machines;
        let class_load = Instance.class_load inst in
        let mismatch = ref None in
        Array.iteri
          (fun u total ->
            if !mismatch = None && not (Q.equal total (Q.of_int class_load.(u))) then
              mismatch := Some u)
          totals;
        match !mismatch with
        | Some u ->
            fail (Printf.sprintf "class %d: scheduled %s but P_u = %d" u
                    (Q.to_string totals.(u)) class_load.(u))
        | None ->
            (* class-slot constraint per machine: every machine of a block has
               that block's class; explicit machines add their listed classes.
               Explicit machines falling inside blocks combine. *)
            let distinct_classes m loads =
              let module IS = Set.Make (Int) in
              let base =
                List.fold_left
                  (fun acc b ->
                    if m >= b.m_start && m < b.m_start + b.m_count then IS.add b.cls acc
                    else acc)
                  IS.empty s.blocks
              in
              let all = List.fold_left (fun acc (cls, _) -> IS.add cls acc) base loads in
              IS.cardinal all
            in
            let slot_violation =
              List.exists
                (fun (m, loads) -> distinct_classes m loads > Instance.c inst)
                s.explicit_machines
            in
            if slot_violation then fail "machine exceeds class slots"
            else Ok (splittable_makespan s)
      end)

let to_job_pieces ?(limit = 1_000_000) inst s =
  (* Gather per-class machine loads in increasing machine order, then cut the
     class's jobs (index order) canonically. *)
  let nclasses = Instance.num_classes inst in
  let per_class = Array.make nclasses [] in
  List.iter
    (fun b ->
      if b.m_count > limit then invalid_arg "Schedule.to_job_pieces: too many machines";
      for k = b.m_count - 1 downto 0 do
        per_class.(b.cls) <- (b.m_start + k, b.per_machine) :: per_class.(b.cls)
      done)
    s.blocks;
  List.iter
    (fun (m, loads) ->
      List.iter (fun (cls, l) -> per_class.(cls) <- (m, l) :: per_class.(cls)) loads)
    s.explicit_machines;
  let machines : (int, piece list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_piece m pc =
    match Hashtbl.find_opt machines m with
    | Some r -> r := pc :: !r
    | None ->
        if Hashtbl.length machines >= limit then
          invalid_arg "Schedule.to_job_pieces: too many machines";
        Hashtbl.replace machines m (ref [ pc ])
  in
  let class_jobs = Instance.class_jobs inst in
  for u = 0 to nclasses - 1 do
    let loads = List.sort (fun (a, _) (b, _) -> compare a b) per_class.(u) in
    (* jobs of class u as a queue of (job, remaining) *)
    let jobs = ref (List.map (fun j -> (j, Q.of_int (Instance.job inst j).Instance.p)) class_jobs.(u)) in
    List.iter
      (fun (m, load) ->
        let remaining = ref load in
        while Q.sign !remaining > 0 do
          match !jobs with
          | [] -> invalid_arg "Schedule.to_job_pieces: class over-scheduled"
          | (j, rem) :: rest ->
              let take = Q.min rem !remaining in
              add_piece m { job = j; size = take };
              remaining := Q.sub !remaining take;
              let rem' = Q.sub rem take in
              if Q.sign rem' = 0 then jobs := rest else jobs := (j, rem') :: rest
        done)
      loads
  done;
  Hashtbl.fold (fun m r acc -> (m, List.rev !r) :: acc) machines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)

type ppiece = { pjob : int; start : Q.t; len : Q.t }

type preemptive = ppiece list array

let preemptive_makespan sched =
  Array.fold_left
    (fun acc pieces ->
      List.fold_left (fun a pc -> Q.max a (Q.add pc.start pc.len)) acc pieces)
    Q.zero sched

let intervals_overlap (s1, e1) (s2, e2) = Q.(s1 < e2) && Q.(s2 < e1)

let validate_preemptive inst sched =
  let fail msg = Error msg in
  if Array.length sched > Instance.m inst then fail "more machines used than available"
  else begin
    let n = Instance.n inst in
    let job_pieces = Array.make n [] in
    let ok = ref (Ok ()) in
    Array.iteri
      (fun mi pieces ->
        (* per-machine checks *)
        let module IS = Set.Make (Int) in
        let classes = ref IS.empty in
        let sorted =
          List.sort (fun a b -> Q.compare a.start b.start) pieces
        in
        let rec disjoint = function
          | a :: (b :: _ as rest) ->
              if Q.(Q.add a.start a.len > b.start) then false else disjoint rest
          | _ -> true
        in
        if not (disjoint sorted) then
          ok := fail (Printf.sprintf "machine %d: overlapping pieces" mi);
        List.iter
          (fun pc ->
            if pc.pjob < 0 || pc.pjob >= n then ok := fail "bad job index";
            if Q.sign pc.len <= 0 then ok := fail "non-positive piece";
            if Q.sign pc.start < 0 then ok := fail "negative start";
            classes := IS.add (Instance.job inst pc.pjob).Instance.cls !classes;
            job_pieces.(pc.pjob) <- (pc.start, Q.add pc.start pc.len) :: job_pieces.(pc.pjob))
          pieces;
        if IS.cardinal !classes > Instance.c inst then
          ok := fail (Printf.sprintf "machine %d: too many classes" mi))
      sched;
    match !ok with
    | Error _ as e -> e
    | Ok () ->
        (* each job scheduled fully and never in parallel with itself *)
        let bad = ref None in
        for j = 0 to n - 1 do
          if !bad = None then begin
            let total =
              List.fold_left (fun acc (s, e) -> Q.add acc (Q.sub e s)) Q.zero job_pieces.(j)
            in
            if not (Q.equal total (Q.of_int (Instance.job inst j).Instance.p)) then
              bad := Some (Printf.sprintf "job %d: scheduled %s of %d" j (Q.to_string total)
                             (Instance.job inst j).Instance.p)
            else begin
              let sorted = List.sort (fun (a, _) (b, _) -> Q.compare a b) job_pieces.(j) in
              let rec check = function
                | x :: (y :: _ as rest) ->
                    if intervals_overlap x y then
                      bad := Some (Printf.sprintf "job %d runs in parallel with itself" j)
                    else check rest
                | _ -> ()
              in
              check sorted
            end
          end
        done;
        (match !bad with Some msg -> fail msg | None -> Ok (preemptive_makespan sched))
  end

(* ------------------------------------------------------------------ *)

type nonpreemptive = int array

let nonpreemptive_makespan inst assignment =
  let loads = Hashtbl.create 64 in
  Array.iteri
    (fun j mi ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt loads mi) in
      Hashtbl.replace loads mi (cur + (Instance.job inst j).Instance.p))
    assignment;
  Hashtbl.fold (fun _ l acc -> max l acc) loads 0

let validate_nonpreemptive inst assignment =
  if Array.length assignment <> Instance.n inst then Error "wrong assignment length"
  else begin
    let bad = ref None in
    let machine_classes : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun j mi ->
        if mi < 0 || mi >= Instance.m inst then bad := Some (Printf.sprintf "job %d: bad machine" j)
        else begin
          let tbl =
            match Hashtbl.find_opt machine_classes mi with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace machine_classes mi t;
                t
          in
          Hashtbl.replace tbl (Instance.job inst j).Instance.cls ()
        end)
      assignment;
    Hashtbl.iter
      (fun mi tbl ->
        if Hashtbl.length tbl > Instance.c inst then
          bad := Some (Printf.sprintf "machine %d: %d classes > c" mi (Hashtbl.length tbl)))
      machine_classes;
    match !bad with
    | Some msg -> Error msg
    | None -> Ok (nonpreemptive_makespan inst assignment)
  end

(* ------------------------------------------------------------------ *)

let render_loads ?(width = 8) machines =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun mi entries ->
      Buffer.add_string buf (Printf.sprintf "m%-3d |" mi);
      List.iter
        (fun (label, load) ->
          let cells =
            max 1 (int_of_float (Q.to_float load *. float_of_int width /. 4.0))
          in
          let text = label in
          let text =
            if String.length text >= cells then String.sub text 0 cells
            else text ^ String.make (cells - String.length text) ' '
          in
          Buffer.add_string buf (Printf.sprintf "%s|" text))
        entries;
      Buffer.add_char buf '\n')
    machines;
  Buffer.contents buf
