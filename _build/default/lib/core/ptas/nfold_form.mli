(** The paper's literal N-fold formulation of the splittable configuration
    ILP (Section 4.1).

    The aggregated MILP solved by {!Splittable_ptas} is equivalent to the
    paper's program, whose variables are duplicated per class u in [C] to
    expose the N-fold block structure: brick u holds (x^u_K, y^u_q,
    z^u_{h,b}, slack), the globally uniform rows are constraints (0)-(3)
    (machine count, module covering, and the per-(h,b) slot/space budgets,
    the latter carrying slack columns), and the locally uniform rows are
    constraints (4)-(5) (class u's own covering/assignment). The paper
    stresses that "the duplication has no meaning itself" — it exists so
    Theorem 1 applies.

    This module builds that exact structure on top of {!Nfold} so that (a)
    the block shape the paper claims (r = O(1/delta^2), s = 2) is checked by
    construction, and (b) the N-fold solver backends can be cross-validated
    against the aggregated oracle on small instances. *)

type built = {
  program : Nfold.t;
  (* brick variable offsets, for decoding *)
  n_configs : int;
  n_modules : int;
  n_hb : int;
}

(** Builds the N-fold for one guess T. Raises [Common.Too_many] if the
    configuration space explodes. *)
val build_splittable : Common.param -> Instance.t -> Rat.t -> built

(** Feasibility of the guess via the N-fold (flattened MILP backend):
    must agree with {!Splittable_ptas.oracle} on every instance. Raises
    {!Common.Budget_exceeded} when undecided within the node budget. *)
val feasible_splittable : ?max_nodes:int -> Common.param -> Instance.t -> Rat.t -> bool

(** The non-preemptive duplicated N-fold (Section 4.2): locally uniform rows
    are the per-processing-time covering constraints, so [s = |P| + 1];
    modules are the global multiset family over P, as the paper defines
    them. Cross-validated against {!Nonpreemptive_ptas.oracle}. *)
val build_nonpreemptive : Common.param -> Instance.t -> Rat.t -> built

(** Raises {!Common.Budget_exceeded} when undecided within the budget. *)
val feasible_nonpreemptive : ?max_nodes:int -> Common.param -> Instance.t -> Rat.t -> bool
