module Q = Rat
module Sp = Splittable_ptas

type built = { program : Nfold.t; n_configs : int; n_modules : int; n_hb : int }

(* Brick layout for class u:
   [0 .. nk-1]                 x^u_K
   [nk .. nk+nm-1]             y^u_q
   [nk+nm .. nk+nm+nhb-1]      z^u_{h,b}
   [.. +nhb-1]                 slack for the (2) slot rows
   [.. +nhb-1]                 slack for the (3) space rows *)
let build_splittable p inst t =
  let rounded = Sp.round_instance p inst t in
  let configs = Array.of_list (Sp.configurations p inst rounded) in
  let nk = Array.length configs in
  let module_sizes = Array.of_list rounded.Sp.module_sizes in
  let nm = Array.length module_sizes in
  let hb_tbl = Hashtbl.create 16 in
  let hb_list = ref [] in
  let hb_of_config =
    Array.map
      (fun k ->
        let h = List.fold_left ( + ) 0 k and b = List.length k in
        match Hashtbl.find_opt hb_tbl (h, b) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length hb_tbl in
            Hashtbl.replace hb_tbl (h, b) i;
            hb_list := (h, b) :: !hb_list;
            i)
      configs
  in
  let hb = Array.of_list (List.rev !hb_list) in
  let nhb = Array.length hb in
  let brick_t = nk + nm + nhb + nhb + nhb in
  let x_off = 0 and y_off = nk and z_off = nk + nm in
  let slack_slot_off = nk + nm + nhb and slack_space_off = nk + nm + (2 * nhb) in
  let c = Instance.c inst in
  let m = Instance.m inst in
  let tbar = rounded.Sp.tbar in
  (* classes: large ones carry (size, xi=0); small carry (size, xi=1) *)
  let class_info =
    List.map (fun (u, size) -> (u, size, 0)) rounded.Sp.large
    @ List.concat_map
        (fun (s, cls) -> List.map (fun u -> (u, s, 1)) cls)
        rounded.Sp.smalls_by_size
  in
  let class_info = Array.of_list class_info in
  let nclasses = Array.length class_info in
  let r = 1 + nm + (2 * nhb) in
  (* globally uniform block for class u *)
  let a_block (_, size, _xi) =
    let a = Array.make_matrix r brick_t 0 in
    (* row 0: machine count *)
    for ki = 0 to nk - 1 do
      a.(0).(x_off + ki) <- 1
    done;
    (* rows 1..nm: module covering *)
    Array.iteri
      (fun qi q ->
        Array.iteri
          (fun ki k ->
            let cnt = List.length (List.filter (( = ) q) k) in
            if cnt > 0 then a.(1 + qi).(x_off + ki) <- cnt)
          configs;
        a.(1 + qi).(y_off + qi) <- -1)
      module_sizes;
    (* rows for (2) and (3), with slack making them equalities *)
    Array.iteri
      (fun hbi (h, b) ->
        let row2 = 1 + nm + hbi and row3 = 1 + nm + nhb + hbi in
        a.(row2).(z_off + hbi) <- 1;
        a.(row3).(z_off + hbi) <- size;
        Array.iteri
          (fun ki _ ->
            if hb_of_config.(ki) = hbi then begin
              a.(row2).(x_off + ki) <- a.(row2).(x_off + ki) + (b - c);
              a.(row3).(x_off + ki) <- a.(row3).(x_off + ki) + (h - tbar)
            end)
          configs;
        a.(row2).(slack_slot_off + hbi) <- 1;
        a.(row3).(slack_space_off + hbi) <- 1)
      hb;
    a
  in
  (* locally uniform rows: (4) module sizes cover the class; (5) small
     classes choose one (h,b) *)
  let b_block _ =
    let bm = Array.make_matrix 2 brick_t 0 in
    Array.iteri (fun qi q -> bm.(0).(y_off + qi) <- q) module_sizes;
    for hbi = 0 to nhb - 1 do
      bm.(1).(z_off + hbi) <- 1
    done;
    bm
  in
  let big_slack = (c + tbar) * max 1 (min m max_int) in
  let big_slack = if big_slack <= 0 then max_int / 2 else big_slack in
  let lower = Array.init nclasses (fun _ -> Array.make brick_t 0) in
  let upper =
    Array.init nclasses (fun ci ->
        let _, size, xi = class_info.(ci) in
        Array.init brick_t (fun j ->
            if j < nk then m
            else if j < nk + nm then if xi = 1 then 0 else (size / (List.nth rounded.Sp.module_sizes (nm - 1))) + 1
            else if j < nk + nm + nhb then if xi = 1 then 1 else 0
            else big_slack))
  in
  let rhs_top = Array.make r 0 in
  rhs_top.(0) <- m;
  let rhs_block =
    Array.map (fun (_, size, xi) -> [| (if xi = 0 then size else 0); xi |]) class_info
  in
  let program =
    {
      Nfold.r;
      s = 2;
      t = brick_t;
      n = nclasses;
      a = Array.map a_block class_info;
      b = Array.map b_block class_info;
      rhs_top;
      rhs_block;
      lower;
      upper;
      weight = Array.init nclasses (fun _ -> Array.make brick_t 0);
    }
  in
  Nfold.validate program;
  { program; n_configs = nk; n_modules = nm; n_hb = nhb }

let feasible_splittable ?(max_nodes = 30_000) p inst t =
  let { program; _ } = build_splittable p inst t in
  match Nfold.solve_ilp ~max_nodes ~feasibility:true program with
  | `Solution _ -> true
  | `Infeasible -> false
  | `Node_limit -> raise Common.Budget_exceeded

(* ---------------------------------------------------------------- *)
(* The non-preemptive duplicated N-fold (Section 4.2): bricks hold
   (x^u_K, y^u_M, z^u_{h,b}, slacks); locally uniform rows are the paper's
   (4) — one per rounded processing time p in P — and (5), so s = |P| + 1.
   Globally uniform rows are (0), (1) per module size, and the slack-carrying
   (2)/(3) per (h,b) group. Modules are the full global set (multisets over
   P with sum <= Tbar), exactly as the paper defines them. *)

let build_nonpreemptive p inst t =
  let open Nonpreemptive_ptas in
  let a = abstract p inst t in
  let tbar = a.a_tbar and cstar = a.a_cstar in
  (* global rounded size set P *)
  let psizes =
    List.concat_map (List.map fst) a.a_large_hists
    |> List.sort_uniq (fun x y -> compare y x)
  in
  let modules =
    Common.multisets ~parts:psizes ~max_sum:tbar ~max_count:max_int ()
    |> List.filter (( <> ) [])
    |> Array.of_list
  in
  let nm = Array.length modules in
  let msize m = List.fold_left ( + ) 0 m in
  let sizes = Array.to_list modules |> List.map msize |> List.sort_uniq (fun x y -> compare y x) in
  let configs =
    Common.multisets ~parts:sizes ~max_sum:tbar ~max_count:cstar () |> Array.of_list
  in
  let nk = Array.length configs in
  let hb_tbl = Hashtbl.create 16 in
  let hb_list = ref [] in
  let hb_of_config =
    Array.map
      (fun k ->
        let h = List.fold_left ( + ) 0 k and b = List.length k in
        match Hashtbl.find_opt hb_tbl (h, b) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length hb_tbl in
            Hashtbl.replace hb_tbl (h, b) i;
            hb_list := (h, b) :: !hb_list;
            i)
      configs
  in
  let hb = Array.of_list (List.rev !hb_list) in
  let nhb = Array.length hb in
  let brick_t = nk + nm + (3 * nhb) in
  let x_off = 0 and y_off = nk and z_off = nk + nm in
  let slack_slot_off = nk + nm + nhb and slack_space_off = nk + nm + (2 * nhb) in
  let c = Instance.c inst in
  let m = Instance.m inst in
  (* classes: large with histogram; small with size *)
  let class_info =
    List.map (fun hist -> `Large hist) a.a_large_hists
    @ List.concat_map (fun (s, count) -> List.init count (fun _ -> `Small s)) a.a_smalls
  in
  let class_info = Array.of_list class_info in
  let nclasses = Array.length class_info in
  let nsizes = List.length psizes in
  let psizes_arr = Array.of_list psizes in
  let r = 1 + List.length sizes + (2 * nhb) in
  let sizes_arr = Array.of_list sizes in
  let a_block info =
    let a = Array.make_matrix r brick_t 0 in
    for ki = 0 to nk - 1 do
      a.(0).(x_off + ki) <- 1
    done;
    Array.iteri
      (fun qi q ->
        Array.iteri
          (fun ki k ->
            let cnt = List.length (List.filter (( = ) q) k) in
            if cnt > 0 then a.(1 + qi).(x_off + ki) <- cnt)
          configs;
        Array.iteri
          (fun mi mdl -> if msize mdl = q then a.(1 + qi).(y_off + mi) <- -1)
          modules)
      sizes_arr;
    let size_of_small = match info with `Small s -> s | `Large _ -> 0 in
    Array.iteri
      (fun hbi (h, b) ->
        let row2 = 1 + Array.length sizes_arr + hbi in
        let row3 = row2 + nhb in
        a.(row2).(z_off + hbi) <- 1;
        a.(row3).(z_off + hbi) <- size_of_small;
        Array.iteri
          (fun ki _ ->
            if hb_of_config.(ki) = hbi then begin
              a.(row2).(x_off + ki) <- a.(row2).(x_off + ki) + (b - c);
              a.(row3).(x_off + ki) <- a.(row3).(x_off + ki) + (h - tbar)
            end)
          configs;
        a.(row2).(slack_slot_off + hbi) <- 1;
        a.(row3).(slack_space_off + hbi) <- 1)
      hb;
    a
  in
  let b_block _ =
    let bm = Array.make_matrix (nsizes + 1) brick_t 0 in
    Array.iteri
      (fun pi psz ->
        Array.iteri
          (fun mi mdl ->
            let cnt = List.length (List.filter (( = ) psz) mdl) in
            if cnt > 0 then bm.(pi).(y_off + mi) <- cnt)
          modules)
      psizes_arr;
    for hbi = 0 to nhb - 1 do
      bm.(nsizes).(z_off + hbi) <- 1
    done;
    bm
  in
  let rhs_block =
    Array.map
      (fun info ->
        Array.init (nsizes + 1) (fun k ->
            if k = nsizes then match info with `Small _ -> 1 | `Large _ -> 0
            else
              match info with
              | `Small _ -> 0
              | `Large hist -> (
                  match List.assoc_opt psizes_arr.(k) hist with Some n -> n | None -> 0)))
      class_info
  in
  let big_slack =
    let v = (c + tbar) * max 1 m in
    if v <= 0 then max_int / 2 else v
  in
  let lower = Array.init nclasses (fun _ -> Array.make brick_t 0) in
  let upper =
    Array.init nclasses (fun ci ->
        Array.init brick_t (fun j ->
            match class_info.(ci) with
            | `Large hist ->
                let njobs = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
                if j < nk then m
                else if j < nk + nm then njobs
                else if j < nk + nm + nhb then 0
                else big_slack
            | `Small _ ->
                if j < nk then m
                else if j < nk + nm then 0
                else if j < nk + nm + nhb then 1
                else big_slack))
  in
  let rhs_top = Array.make r 0 in
  rhs_top.(0) <- m;
  let program =
    {
      Nfold.r;
      s = nsizes + 1;
      t = brick_t;
      n = nclasses;
      a = Array.map a_block class_info;
      b = Array.map b_block class_info;
      rhs_top;
      rhs_block;
      lower;
      upper;
      weight = Array.init nclasses (fun _ -> Array.make brick_t 0);
    }
  in
  Nfold.validate program;
  { program; n_configs = nk; n_modules = nm; n_hb = nhb }

let feasible_nonpreemptive ?(max_nodes = 30_000) p inst t =
  if Q.(Q.of_int (Instance.pmax inst) > t) then false
  else begin
    let { program; _ } = build_nonpreemptive p inst t in
    match Nfold.solve_ilp ~max_nodes ~feasibility:true program with
    | `Solution _ -> true
    | `Infeasible -> false
    | `Node_limit -> raise Common.Budget_exceeded
  end
