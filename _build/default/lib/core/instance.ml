type job = { p : int; cls : int }

type t = { jobs : job array; machines : int; slots : int; classes : int }

let make ~machines ~slots jobs =
  if jobs = [] then invalid_arg "Instance.make: no jobs";
  if machines <= 0 then invalid_arg "Instance.make: machines must be positive";
  if slots <= 0 then invalid_arg "Instance.make: slots must be positive";
  List.iter
    (fun (p, cls) ->
      if p <= 0 then invalid_arg "Instance.make: processing times must be positive";
      if cls < 0 then invalid_arg "Instance.make: classes must be non-negative")
    jobs;
  (* Dense renumbering of the classes that actually occur, preserving order
     of first appearance of the original ids (sorted). *)
  let module IS = Set.Make (Int) in
  let used = List.fold_left (fun acc (_, cls) -> IS.add cls acc) IS.empty jobs in
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  IS.iter
    (fun cls ->
      Hashtbl.replace mapping cls !next;
      incr next)
    used;
  let classes = !next in
  let jobs =
    Array.of_list
      (List.map (fun (p, cls) -> { p; cls = Hashtbl.find mapping cls }) jobs)
  in
  { jobs; machines; slots = min slots classes; classes }

let n t = Array.length t.jobs
let m t = t.machines
let c t = t.slots
let num_classes t = t.classes

let job t i = t.jobs.(i)

let total_load t = Array.fold_left (fun acc j -> acc + j.p) 0 t.jobs

let pmax t = Array.fold_left (fun acc j -> max acc j.p) 0 t.jobs

let class_load t =
  let loads = Array.make t.classes 0 in
  Array.iter (fun j -> loads.(j.cls) <- loads.(j.cls) + j.p) t.jobs;
  loads

let class_jobs t =
  let buckets = Array.make t.classes [] in
  for i = Array.length t.jobs - 1 downto 0 do
    let cls = t.jobs.(i).cls in
    buckets.(cls) <- i :: buckets.(cls)
  done;
  buckets

let schedulable t =
  (* C <= c * m, phrased divisionally so huge m cannot overflow. *)
  t.machines >= (t.classes + t.slots - 1) / t.slots

let encoding_length t =
  let bits x = max 1 (int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.0))) in
  Array.fold_left (fun acc j -> acc + bits j.p + bits (j.cls + 1)) 0 t.jobs
  + Array.length t.jobs + bits t.machines

let pp fmt t =
  Format.fprintf fmt "@[<v>CCS instance: n=%d, m=%d, c=%d, C=%d@,jobs:" (n t) t.machines
    t.slots t.classes;
  Array.iteri (fun i j -> Format.fprintf fmt "@, %3d: p=%d class=%d" i j.p j.cls) t.jobs;
  Format.fprintf fmt "@]"
