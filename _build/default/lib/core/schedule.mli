(** Schedules for the three CCS placement regimes, with independent
    validators. Every algorithm in this repository runs its output through
    these validators in the test-suite, so they are written directly from the
    problem definitions in Section 1 of the paper and share no code with the
    solvers.

    Machine counts can be astronomically larger than [n] in the splittable
    case (Theorems 4 and 11), so splittable schedules use a compressed
    class-level representation: a set of [blocks] — runs of consecutive
    machines all carrying the same per-machine load of one class — plus
    explicit per-machine class-load lists. Splittable placement is fully
    determined by the class->machine load matrix (pieces can be cut
    arbitrarily), so job-level output is recovered by the canonical
    {!to_job_pieces} decoding, which cuts each class's jobs in index order. *)

(** {1 Splittable} *)

type block = {
  cls : int;
  m_start : int;  (** first machine of the run *)
  m_count : int;  (** number of consecutive machines *)
  per_machine : Rat.t;  (** load of [cls] placed on each machine of the run *)
}

type splittable = {
  blocks : block list;
  explicit_machines : (int * (int * Rat.t) list) list;
      (** (machine, [(class, load); ...]); machines absent everywhere are
          empty. A machine may appear both in a block and here (the
          round-robin wrap of Theorem 4 stacks a remainder item on top of a
          full machine); its contents are the union. *)
}

(** Job-level piece: fraction of job [job] of the given size. *)
type piece = { job : int; size : Rat.t }

val splittable_makespan : splittable -> Rat.t

(** [validate_splittable inst s] checks: machine indices within [0, m);
    block ranges pairwise disjoint; every class's loads sum to exactly
    [P_u]; every load positive; every machine carries at most [c] distinct
    classes (blocks contribute their class to every machine of the run).
    Returns the makespan, or [Error] with a human-readable reason. *)
val validate_splittable : Instance.t -> splittable -> (Rat.t, string) result

(** Canonical job-level decoding: per class, jobs are concatenated in index
    order and cut to fill the machines in increasing machine order (blocks
    and explicit loads together). Materializes one entry per machine that
    carries work, so it requires the number of such machines to be
    manageable; raises [Invalid_argument] if more than [limit] (default
    [1_000_000]) machines carry load. *)
val to_job_pieces : ?limit:int -> Instance.t -> splittable -> (int * piece list) list

(** {1 Preemptive} *)

type ppiece = { pjob : int; start : Rat.t; len : Rat.t }

(** One piece list per machine (preemptive schedules are always materialized
    — w.l.o.g. m <= n in this regime, Theorem 5). *)
type preemptive = ppiece list array

val preemptive_makespan : preemptive -> Rat.t

(** Checks: every job fully scheduled; piece lengths positive; no two pieces
    overlap in time on the same machine; no two pieces of the same job
    overlap in time across machines (the defining constraint of the
    regime); at most [c] classes per machine. *)
val validate_preemptive : Instance.t -> preemptive -> (Rat.t, string) result

(** {1 Non-preemptive} *)

(** [assignment.(j)] is the machine of job [j]. *)
type nonpreemptive = int array

val nonpreemptive_makespan : Instance.t -> nonpreemptive -> int

val validate_nonpreemptive : Instance.t -> nonpreemptive -> (int, string) result

(** {1 Rendering} *)

(** ASCII Gantt-style rendering (used to regenerate the paper's Figures 1
    and 2). Machines as columns, time flowing upward, [scale] characters per
    [unit] of load. *)
val render_loads : ?width:int -> (string * Rat.t) list array -> string
