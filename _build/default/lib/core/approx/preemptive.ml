module Q = Rat

type stats = { t_guess : Q.t; probes : int; repacked : bool }

(* A sub-class item: fragments (job, length) stacked in order; [size] is
   their total. *)
type item = { size : Q.t; frags : (int * Q.t) list }

let solve inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Preemptive.solve: C > c*m, no schedule exists";
  let n = Instance.n inst in
  let m = Instance.m inst in
  if m >= n then begin
    (* One machine per job: makespan pmax = LB, an optimal schedule. *)
    let sched =
      Array.init n (fun j ->
          [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int (Instance.job inst j).Instance.p } ])
    in
    (sched, { t_guess = Q.of_int (Instance.pmax inst); probes = 0; repacked = false })
  end
  else begin
    let loads = Instance.class_load inst in
    let lb = Bounds.lb_preemptive inst in
    let { Border_search.t_star = t; probes } =
      Border_search.search ~loads ~machines:m ~slots:(Instance.c inst) ~lb
    in
    (* Cut each large class's job concatenation at multiples of T. Because
       T >= pmax, a job is cut at most once. *)
    let class_jobs = Instance.class_jobs inst in
    let items = ref [] in
    let any_split = ref false in
    Array.iteri
      (fun u pu ->
        let pu_q = Q.of_int pu in
        if Q.(pu_q > t) then begin
          any_split := true;
          let current = ref [] and current_size = ref Q.zero in
          let flush () =
            if Q.sign !current_size > 0 then begin
              items := { size = !current_size; frags = List.rev !current } :: !items;
              current := [];
              current_size := Q.zero
            end
          in
          List.iter
            (fun j ->
              let remaining = ref (Q.of_int (Instance.job inst j).Instance.p) in
              while Q.sign !remaining > 0 do
                let room = Q.sub t !current_size in
                let take = Q.min room !remaining in
                current := (j, take) :: !current;
                current_size := Q.add !current_size take;
                remaining := Q.sub !remaining take;
                if Q.(Q.sub t !current_size = Q.zero) then flush ()
              done)
            class_jobs.(u);
          flush ()
        end
        else begin
          let frags =
            List.map (fun j -> (j, Q.of_int (Instance.job inst j).Instance.p)) class_jobs.(u)
          in
          items := { size = pu_q; frags } :: !items
        end)
      loads;
    (* Stable sort on the build order keeps same-class slices consecutive
       and in slicing order among equal sizes, as in Figure 1. *)
    let sorted = List.stable_sort (fun a b -> Q.compare b.size a.size) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    (* Stack items bottom-up; if any class was split, shift everything above
       each machine's first item to start at time T (Algorithm 2). *)
    let repack = !any_split in
    let sched =
      Array.map
        (fun machine_items ->
          let pieces = ref [] in
          let top = ref Q.zero in
          List.iteri
            (fun idx item ->
              if repack && idx = 1 then top := Q.max !top t;
              List.iter
                (fun (j, len) ->
                  pieces := { Schedule.pjob = j; start = !top; len } :: !pieces;
                  top := Q.add !top len)
                item.frags)
            machine_items;
          List.rev !pieces)
        per_machine
    in
    (sched, { t_guess = t; probes; repacked = repack })
  end
