(** The advanced binary search of Lemma 2.

    The splittable/preemptive algorithms must find the smallest guess T for
    which splitting every class with [P_u > T] into [ceil (P_u / T)]
    sub-classes leaves at most [c * m] classes. The optimal T can be
    fractional, so a plain binary search cannot terminate exactly; but the
    class count only changes at the "borders" [P_u / k], so it suffices to
    binary-search along each class's borders (k <= m of them) and take the
    smallest feasible one — [O(C log m)] feasibility probes overall. *)

type result = {
  t_star : Rat.t;  (** smallest feasible guess, >= [lb] *)
  probes : int;  (** feasibility evaluations performed (Lemma 2 bound) *)
}

(** [c * m], saturating at [max_int] for astronomically many machines. *)
val slot_cap : machines:int -> slots:int -> int

(** Number of classes after splitting at guess [t]:
    [sum_{P_u > t} ceil (P_u / t) + #{u : P_u <= t}]. Saturates at [cap+1]
    to avoid overflow with astronomically many machines. *)
val count_classes : loads:int array -> cap:int -> Rat.t -> int

(** [search ~loads ~machines ~slots ~lb] returns the smallest
    [t >= lb] that is either [lb] itself or a border [P_u / k] and
    satisfies [count_classes t <= slots * machines]. Raises
    [Invalid_argument] if even the trivial guess [max_u P_u] is infeasible
    (i.e. C > c * m: no schedule exists at all). *)
val search : loads:int array -> machines:int -> slots:int -> lb:Rat.t -> result

(** Reference implementation for the A1 ablation and tests: naive scan over
    every border of every class (O(C^2 m) in the worst case, exact). Only
    usable when [machines] is small. *)
val search_naive : loads:int array -> machines:int -> slots:int -> lb:Rat.t -> result
