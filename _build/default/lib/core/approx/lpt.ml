(* Longest Processing Time list scheduling: jobs in non-increasing size
   order, each placed on the currently least-loaded bin. Used by the
   non-preemptive 7/3-approximation to split a class into C_u sub-classes
   (Theorem 6). A simple linear scan for the minimum keeps this O(n k); the
   instances here have small k = C_u, so no heap is needed. *)

(* [split ~bins jobs] takes (job, size) pairs, returns an array of bins,
   each a (reversed placement order) list of (job, size), plus bin loads.
   [~sorted:false] drops the "longest first" ordering (list scheduling in
   input order) — the A3 ablation knob; everything else is unchanged. *)
let split ?(sorted = true) ~bins jobs =
  if bins <= 0 then invalid_arg "Lpt.split";
  let content = Array.make bins [] in
  let load = Array.make bins 0 in
  let sorted =
    if sorted then List.stable_sort (fun (_, a) (_, b) -> compare b a) jobs else jobs
  in
  List.iter
    (fun (j, p) ->
      let best = ref 0 in
      for k = 1 to bins - 1 do
        if load.(k) < load.(!best) then best := k
      done;
      content.(!best) <- (j, p) :: content.(!best);
      load.(!best) <- load.(!best) + p)
    sorted;
  (content, load)
