(* Round robin (the cyclic placement of Section 3, Figure 1): items sorted
   non-ascending by size, item i on machine (i mod m). Lemma 3 then bounds
   the resulting makespan by (sum sizes)/m + max size. *)

(* [assign ~machines items] requires [items] sorted non-ascending by their
   caller-defined size and returns one list per machine, bottom-up placement
   order preserved. *)
let assign ~machines items =
  if machines <= 0 then invalid_arg "Round_robin.assign";
  let out = Array.make machines [] in
  List.iteri (fun i item -> out.(i mod machines) <- item :: out.(i mod machines)) items;
  Array.map List.rev out

(* The Lemma 3 guarantee, for tests: average plus maximum. *)
let lemma3_bound ~machines sizes =
  let total = List.fold_left Rat.add Rat.zero sizes in
  let maximum = List.fold_left Rat.max Rat.zero sizes in
  Rat.add (Rat.div total (Rat.of_int machines)) maximum
