(** Plain-text instance serialization, for the CLI tools and examples.

    Format (one token group per line, '#' comments allowed):
    {v
      ccs 1
      machines <m>
      slots <c>
      job <p> <class>
      ...
    v} *)

val to_string : Instance.t -> string
val of_string : string -> (Instance.t, string) result
val load : string -> (Instance.t, string) result
val save : string -> Instance.t -> unit
