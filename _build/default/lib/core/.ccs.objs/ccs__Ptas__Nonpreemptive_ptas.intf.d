lib/core/ptas/nonpreemptive_ptas.mli: Common Instance Rat Schedule
