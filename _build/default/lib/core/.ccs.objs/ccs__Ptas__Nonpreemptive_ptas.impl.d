lib/core/ptas/nonpreemptive_ptas.ml: Approx Array Bigint Common Hashtbl Instance List Option Printf Rat Schedule
