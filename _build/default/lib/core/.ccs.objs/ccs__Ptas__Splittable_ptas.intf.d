lib/core/ptas/splittable_ptas.mli: Common Instance Rat Schedule
