lib/core/generator.ml: Array Ccs_util Instance List
