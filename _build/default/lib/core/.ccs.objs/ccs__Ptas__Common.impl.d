lib/core/ptas/common.ml: Array Bigint Hashtbl Ilp List Lp Option Rat
