lib/core/approx/border_search.mli: Rat
