lib/core/approx/border_search.ml: Array Bigint Rat
