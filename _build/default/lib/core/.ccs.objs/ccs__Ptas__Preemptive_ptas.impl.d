lib/core/ptas/preemptive_ptas.ml: Approx Array Bigint Bounds Common Flow Fun Hashtbl Instance List Option Printf Rat Schedule
