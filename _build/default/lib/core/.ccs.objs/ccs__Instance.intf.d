lib/core/instance.mli: Format
