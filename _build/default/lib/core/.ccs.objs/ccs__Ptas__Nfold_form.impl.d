lib/core/ptas/nfold_form.ml: Array Common Hashtbl Instance List Nfold Nonpreemptive_ptas Rat Splittable_ptas
