lib/core/approx/splittable.mli: Instance Rat Schedule
