lib/core/schedule.mli: Instance Rat
