lib/core/approx/nonpreemptive.mli: Instance Schedule
