lib/core/generator.mli: Instance
