lib/core/approx/lpt.ml: Array List
