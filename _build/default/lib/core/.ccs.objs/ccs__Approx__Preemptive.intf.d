lib/core/approx/preemptive.mli: Instance Rat Schedule
