lib/core/ext/hetero.mli: Instance Schedule
