lib/core/ext/hetero.ml: Approx Array Hashtbl Instance List Option Printf
