lib/core/ptas/preemptive_ptas.mli: Common Instance Rat Schedule
