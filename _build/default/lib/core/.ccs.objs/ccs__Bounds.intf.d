lib/core/bounds.mli: Instance Rat
