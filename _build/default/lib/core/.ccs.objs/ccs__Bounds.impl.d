lib/core/bounds.ml: Array Bigint Instance Rat
