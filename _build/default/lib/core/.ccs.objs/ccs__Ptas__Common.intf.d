lib/core/ptas/common.mli: Lp Rat
