lib/core/approx/nonpreemptive.ml: Array Border_search Instance List Lpt Round_robin
