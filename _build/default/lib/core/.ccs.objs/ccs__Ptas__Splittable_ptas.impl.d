lib/core/ptas/splittable_ptas.ml: Array Bigint Bounds Common Hashtbl Instance List Option Printf Rat Schedule
