lib/core/approx/round_robin.ml: Array List Rat
