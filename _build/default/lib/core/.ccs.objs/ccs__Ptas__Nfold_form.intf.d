lib/core/ptas/nfold_form.mli: Common Instance Nfold Rat
