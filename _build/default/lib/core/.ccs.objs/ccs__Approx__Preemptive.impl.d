lib/core/approx/preemptive.ml: Array Border_search Bounds Instance List Rat Round_robin Schedule
