lib/core/io.mli: Instance
