lib/core/approx/splittable.ml: Array Bigint Border_search Bounds Hashtbl Instance List Rat Schedule
