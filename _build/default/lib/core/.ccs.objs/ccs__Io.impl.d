lib/core/io.ml: Buffer In_channel Instance List Out_channel Printf String
