lib/core/schedule.ml: Array Buffer Hashtbl Instance Int List Option Printf Rat Set String
