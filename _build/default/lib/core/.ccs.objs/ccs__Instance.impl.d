lib/core/instance.ml: Array Format Hashtbl Int List Set
