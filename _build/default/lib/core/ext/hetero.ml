type t = { base : Instance.t; slots : int array }

let make base slots =
  if Array.length slots <> Instance.m base then
    invalid_arg "Hetero.make: one slot budget per machine required";
  Array.iter (fun c -> if c <= 0 then invalid_arg "Hetero.make: non-positive budget") slots;
  { base; slots }

let schedulable t =
  Array.fold_left ( + ) 0 t.slots >= Instance.num_classes t.base

let validate t assignment =
  if Array.length assignment <> Instance.n t.base then Error "wrong assignment length"
  else begin
    let m = Instance.m t.base in
    let loads = Array.make m 0 in
    let classes = Array.init m (fun _ -> Hashtbl.create 4) in
    let bad = ref None in
    Array.iteri
      (fun j mi ->
        if mi < 0 || mi >= m then bad := Some (Printf.sprintf "job %d: bad machine" j)
        else begin
          let job = Instance.job t.base j in
          loads.(mi) <- loads.(mi) + job.Instance.p;
          Hashtbl.replace classes.(mi) job.Instance.cls ()
        end)
      assignment;
    Array.iteri
      (fun mi tbl ->
        if Hashtbl.length tbl > t.slots.(mi) then
          bad :=
            Some (Printf.sprintf "machine %d: %d classes > c_%d = %d" mi (Hashtbl.length tbl) mi t.slots.(mi)))
      classes;
    match !bad with Some e -> Error e | None -> Ok (Array.fold_left max 0 loads)
  end

(* Greedy: split classes by the Theorem 6 counter against a guess T found
   by binary search on the aggregate capacity, then assign sub-classes in
   non-ascending load order to the least-loaded machine that still offers a
   slot (machines already hosting the class are free). *)
let solve_greedy t =
  if not (schedulable t) then invalid_arg "Hetero.solve_greedy: unschedulable";
  let inst = t.base in
  let n = Instance.n inst in
  let m = Instance.m inst in
  let class_jobs = Instance.class_jobs inst in
  let class_sizes = Array.map (List.map (fun j -> (Instance.job inst j).Instance.p)) class_jobs in
  let cap = Array.fold_left ( + ) 0 t.slots in
  let total = Instance.total_load inst in
  let lb = max (Instance.pmax inst) ((total + m - 1) / m) in
  let ub = max lb (Array.fold_left max 0 (Instance.class_load inst)) in
  let feasible guess =
    let count = ref 0 in
    (try
       Array.iter
         (fun sizes ->
           count := !count + Approx.Nonpreemptive.cu ~t:guess sizes;
           if !count > cap then raise Exit)
         class_sizes;
       true
     with Exit -> false)
  in
  let lo = ref lb and hi = ref ub in
  if not (feasible ub) then invalid_arg "Hetero.solve_greedy: infeasible at upper bound";
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if feasible mid then hi := mid else lo := mid + 1
  done;
  let guess = !lo in
  (* sub-classes *)
  let items = ref [] in
  Array.iteri
    (fun u jobs ->
      let sized = List.map (fun j -> (j, (Instance.job inst j).Instance.p)) jobs in
      let bins = Approx.Nonpreemptive.cu ~t:guess (List.map snd sized) in
      let content, load = Approx.Lpt.split ~bins sized in
      Array.iteri
        (fun k part -> if part <> [] then items := (load.(k), u, List.map fst part) :: !items)
        content)
    class_jobs;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) !items in
  let loads = Array.make m 0 in
  let hosted = Array.init m (fun _ -> Hashtbl.create 4) in
  let assignment = Array.make n (-1) in
  List.iter
    (fun (load, u, jobs) ->
      (* candidate machines: already hosting u, or with a free slot *)
      let best = ref (-1) in
      for mi = 0 to m - 1 do
        let ok =
          Hashtbl.mem hosted.(mi) u || Hashtbl.length hosted.(mi) < t.slots.(mi)
        in
        if ok && (!best < 0 || loads.(mi) < loads.(!best)) then best := mi
      done;
      if !best < 0 then invalid_arg "Hetero.solve_greedy: ran out of slots";
      let mi = !best in
      loads.(mi) <- loads.(mi) + load;
      Hashtbl.replace hosted.(mi) u ();
      List.iter (fun j -> assignment.(j) <- mi) jobs)
    sorted;
  assignment

(* Can the greedy ever run out of slots? The count check guarantees the
   TOTAL number of sub-classes fits the aggregate capacity, but a greedy
   load-first placement might strand slots; placing on the least-loaded
   *feasible* machine keeps it safe in practice, and the [invalid_arg]
   surfaces any counterexample rather than mis-assigning. *)

let solve_exact ?(node_limit = 20_000_000) t =
  if not (schedulable t) then None
  else begin
    let inst = t.base in
    let n = Instance.n inst in
    let m = Instance.m inst in
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare (Instance.job inst b).Instance.p (Instance.job inst a).Instance.p)
      order;
    let p = Array.map (fun i -> (Instance.job inst i).Instance.p) order in
    let cls = Array.map (fun i -> (Instance.job inst i).Instance.cls) order in
    (* warm start: if the greedy is already optimal the search will not
       improve on it, so it must seed the incumbent, not just the bound *)
    let best, best_assignment =
      match solve_greedy t with
      | greedy -> (
          match validate t greedy with
          | Ok mk -> (ref mk, ref (Some greedy))
          | Error _ -> (ref (Instance.total_load inst + 1), ref None))
      | exception Invalid_argument _ -> (ref (Instance.total_load inst + 1), ref None)
    in
    let loads = Array.make m 0 in
    let class_count = Array.make m 0 in
    let class_used = Array.init m (fun _ -> Hashtbl.create 4) in
    let assignment = Array.make n (-1) in
    let nodes = ref 0 in
    let exception Limit in
    let rec go idx current_max =
      incr nodes;
      if !nodes > node_limit then raise Limit;
      if current_max < !best then begin
        if idx = n then begin
          best := current_max;
          let out = Array.make n 0 in
          for k = 0 to n - 1 do
            out.(order.(k)) <- assignment.(k)
          done;
          best_assignment := Some out
        end
        else
          for k = 0 to m - 1 do
            let known = Hashtbl.mem class_used.(k) cls.(idx) in
            if (known || class_count.(k) < t.slots.(k)) && loads.(k) + p.(idx) < !best then begin
              loads.(k) <- loads.(k) + p.(idx);
              if not known then begin
                Hashtbl.replace class_used.(k) cls.(idx) ();
                class_count.(k) <- class_count.(k) + 1
              end;
              assignment.(idx) <- k;
              go (idx + 1) (max current_max loads.(k));
              loads.(k) <- loads.(k) - p.(idx);
              if not known then begin
                Hashtbl.remove class_used.(k) cls.(idx);
                class_count.(k) <- class_count.(k) - 1
              end;
              assignment.(idx) <- -1
            end
          done
      end
    in
    match go 0 0 with
    | () -> Option.map (fun a -> (!best, a)) !best_assignment
    | exception Limit -> None
  end
