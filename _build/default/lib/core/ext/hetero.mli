(** Machine-dependent class slots — the variant the paper closes with.

    Section 5 points to the generalization where each machine [i] has its
    own slot budget [c_i] (known to admit an EPTAS when every class has one
    job, Chen et al. 2016). The paper leaves general CCS with heterogeneous
    slots open; this module supplies the practical toolkit for it:

    - an independent validator for the non-preemptive regime,
    - a slot-aware list-scheduling heuristic (greedy over sub-classes, in
      the spirit of Theorem 6's framework: classes are split by the same
      [C_u] rule against the aggregate slot capacity, then placed on the
      least-loaded machine still offering a slot),
    - an exact branch & bound for ground truth on small instances.

    The heuristic carries no proven ratio (that is precisely the open
    problem); the bench harness measures it against the exact optimum. *)

type t = private {
  base : Instance.t;  (** machine count of [base] equals the array length *)
  slots : int array;  (** c_i for each machine *)
}

(** Raises [Invalid_argument] if lengths mismatch or any budget is
    non-positive. The base instance's uniform [c] is ignored. *)
val make : Instance.t -> int array -> t

(** Any schedule at all exists iff sum_i c_i >= C. *)
val schedulable : t -> bool

val validate : t -> Schedule.nonpreemptive -> (int, string) result

(** Greedy heuristic; raises [Invalid_argument] when unschedulable. *)
val solve_greedy : t -> Schedule.nonpreemptive

(** Exact optimum by branch & bound; [None] if the node budget is exhausted
    or the instance is unschedulable. *)
val solve_exact : ?node_limit:int -> t -> (int * Schedule.nonpreemptive) option
