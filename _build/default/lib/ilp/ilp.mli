(** Exact mixed integer linear programming by branch & bound over the exact
    rational simplex ({!Lp}).

    This is the workhorse that decides the configuration ILPs of Section 4
    exactly (feasibility mode) and computes exact optima for the baseline
    solvers. There are no numeric tolerances anywhere: a variable is integral
    iff its rational value has denominator 1. *)

type problem = {
  lp : Lp.problem;
  integer : bool array;  (** [integer.(j)] forces variable [j] integral *)
}

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded
  | Node_limit  (** search aborted after [max_nodes] B&B nodes *)

(** [solve ?max_nodes ?feasibility p] minimizes. With [~feasibility:true] the
    search stops at the first integral feasible point (use a zero objective
    for pure feasibility questions, as the PTAS oracles do). *)
val solve : ?max_nodes:int -> ?feasibility:bool -> problem -> result

(** Statistics of the last [solve] call (B&B nodes, LP solves). *)
val last_node_count : unit -> int

(** All-integer convenience wrapper. *)
val all_integer : Lp.problem -> problem
