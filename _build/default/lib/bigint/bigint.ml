(* Arbitrary-precision integers: sign + little-endian magnitude, base 2^30.

   Base 2^30 keeps every intermediate quantity (limb products, carries,
   Knuth-D trial digits) strictly below 2^62, inside OCaml's native int.
   Canonical form: [mag] has no leading zero limb and is empty iff
   [sign = 0]; this makes structural equality meaningful and hashing cheap.

   Division is Knuth's Algorithm D (TAOCP vol. 2, 4.3.1) with a single-limb
   fast path; decimal conversion goes through base 10^9, which fits a limb. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers (arrays of limbs, little-endian, may have leading
   zeros on input; outputs are stripped) ---- *)

let mag_strip a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let x = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- x land mask;
    carry := x lsr base_bits
  done;
  r.(l) <- !carry;
  mag_strip r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if x < 0 then begin
      r.(i) <- x + base;
      borrow := 1
    end
    else begin
      r.(i) <- x;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_strip r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let x = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- x land mask;
          carry := x lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    mag_strip r
  end

(* Karatsuba above this many limbs (~960 bits); below it, the cache-friendly
   schoolbook loop wins. *)
let karatsuba_threshold = 32

(* a * B^(30*k): shift left by whole limbs. *)
let mag_shift_limbs a k =
  if Array.length a = 0 then [||] else Array.append (Array.make k 0) a

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mag_mul_school a b
  else begin
    (* split both at half the longer operand:
       a = a1 B^h + a0, b = b1 B^h + b0
       ab = z2 B^2h + (z1 - z2 - z0) B^h + z0
       with z0 = a0 b0, z2 = a1 b1, z1 = (a0+a1)(b0+b1). *)
    let h = max la lb / 2 in
    let lo x = if Array.length x <= h then Array.copy x else Array.sub x 0 h in
    let hi x = if Array.length x <= h then [||] else Array.sub x h (Array.length x - h) in
    let a0 = mag_strip (lo a) and a1 = mag_strip (hi a) in
    let b0 = mag_strip (lo b) and b1 = mag_strip (hi b) in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 = mag_mul (mag_add a0 a1) (mag_add b0 b1) in
    let mid = mag_sub (mag_sub z1 z2) z0 in
    mag_add (mag_shift_limbs z2 (2 * h)) (mag_add (mag_shift_limbs mid h) z0)
  end

(* Shift a magnitude left by s in [0, 30) bits, writing into a fresh array
   one limb longer than needed so normalization never overflows. *)
let mag_shift_left a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let x = (a.(i) lsl s) lor !carry in
      r.(i) <- x land mask;
      carry := x lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

let mag_shift_right a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr s in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - s)) land mask else 0 in
      r.(i) <- lo lor hi
    done;
    r
  end

(* Single-limb division: returns (quotient magnitude, remainder int). *)
let mag_div_limb a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_strip q, !r)

(* Knuth Algorithm D. Requires |b| >= 2 limbs and |a| >= |b|. *)
let mag_div_full a b =
  let n = Array.length b in
  let s =
    (* Normalize so the divisor's top limb has its high bit set. *)
    let rec go k v = if v >= base / 2 then k else go (k + 1) (v lsl 1) in
    go 0 b.(n - 1)
  in
  let v = Array.sub (mag_shift_left b s) 0 n in
  let u0 = mag_shift_left a s in
  let m = Array.length a - n in
  (* u gets one extra high limb for the algorithm. *)
  let u = Array.make (Array.length a + 1) 0 in
  Array.blit u0 0 u 0 (Stdlib.min (Array.length u0) (Array.length u));
  let q = Array.make (m + 1) 0 in
  let vh = v.(n - 1) and vl = v.(n - 2) in
  for j = m downto 0 do
    let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vh) in
    let rhat = ref (num mod vh) in
    (* Canonical trial-digit correction (Knuth D3 / Hacker's Delight): after
       it, qhat < base and over-estimates the true digit by at most one. *)
    let continue = ref true in
    while
      !continue
      && (!qhat >= base || (!qhat * vl) > ((!rhat lsl base_bits) lor u.(j + n - 2)))
    do
      decr qhat;
      rhat := !rhat + vh;
      if !rhat >= base then continue := false
    done;
    (* Multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let t = u.(j + i) - (p land mask) - !borrow in
      if t < 0 then begin
        u.(j + i) <- t + base;
        borrow := 1
      end
      else begin
        u.(j + i) <- t;
        borrow := 0
      end
    done;
    let t = u.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* Rare over-estimate: add the divisor back. *)
      u.(j + n) <- t + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let x = u.(j + i) + v.(i) + !carry in
        u.(j + i) <- x land mask;
        carry := x lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land mask
    end
    else u.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (mag_strip (Array.sub u 0 n)) s in
  (mag_strip q, mag_strip r)

let mag_div_rem a b =
  if mag_cmp a b < 0 then ([||], Array.copy a)
  else if Array.length b = 1 then
    let q, r = mag_div_limb a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  else mag_div_full a b

(* ---- signed layer ---- *)

let make sign mag =
  let mag = mag_strip mag in
  if Array.length mag = 0 then zero else { sign; mag }

let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

(* Limbs are peeled from the (possibly negative) value itself, so min_int —
   which has no positive counterpart — is handled without overflow. *)
let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    let l = ref [] and v = ref n in
    while !v <> 0 do
      let r = !v mod base in
      let digit = if r < 0 then -r else r in
      l := digit :: !l;
      v := (!v - r) / base
    done;
    { sign; mag = mag_strip (Array.of_list (List.rev !l)) }
  end

let bit_length t =
  let len = Array.length t.mag in
  if len = 0 then 0
  else begin
    let top = t.mag.(len - 1) in
    let rec bits k v = if v = 0 then k else bits (k + 1) (v lsr 1) in
    ((len - 1) * base_bits) + bits 0 top
  end

let to_int_opt t =
  let bl = bit_length t in
  if bl <= 62 then begin
    (* |v| <= 2^62 - 1 = max_int, so plain accumulation cannot overflow. *)
    let v = Array.fold_right (fun limb acc -> (acc * base) + limb) t.mag 0 in
    Some (if t.sign < 0 then -v else v)
  end
  else if bl = 63 && t.sign < 0 && t.mag.(0) = 0 && t.mag.(1) = 0 && t.mag.(2) = 4 then
    (* 2^62 = min_int's magnitude is the single 63-bit value that fits. *)
    Some min_int
  else None

let to_int_exn t =
  match to_int_opt t with Some v -> v | None -> failwith "Bigint.to_int_exn: overflow"

let sign t = t.sign
let is_zero t = t.sign = 0

let equal a b = a.sign = b.sign && mag_cmp a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let hash t =
  Array.fold_left (fun acc limb -> (acc * 1000003) + limb) (t.sign + 17) t.mag
  land max_int

let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else
    match mag_cmp a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> make a.sign (mag_sub a.mag b.mag)
    | _ -> make b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let succ t = add t one
let pred t = sub t one

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_div_rem a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (div_rem a b)
let rem a b = snd (div_rem a b)

let fdiv a b =
  let q, r = div_rem a b in
  if r.sign <> 0 && r.sign <> b.sign then pred q else q

let cdiv a b =
  let q, r = div_rem a b in
  if r.sign <> 0 && r.sign = b.sign then succ q else q

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let pow base_v e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one base_v e

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ten_pow9 = 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = mag_div_limb mag ten_pow9 in
        chunks q (r :: acc)
    in
    (match chunks t.mag [] with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        if t.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if String.length s = start then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  let len = String.length s in
  let chunk_mult = of_int ten_pow9 in
  while !i < len do
    let stop = Stdlib.min len (!i + 9) in
    let width = stop - !i in
    let part = String.sub s !i width in
    String.iter (fun ch -> if ch < '0' || ch > '9' then invalid_arg "Bigint.of_string: bad digit") part;
    let v = int_of_string part in
    let mult = if width = 9 then chunk_mult else of_int (int_of_float (10.0 ** float_of_int width)) in
    acc := add (mul !acc mult) (of_int v);
    i := stop
  done;
  if negative then neg !acc else !acc

let to_float t =
  let f = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) t.mag 0.0 in
  if t.sign < 0 then -.f else f

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
