(** Arbitrary-precision signed integers.

    Built from scratch because the sealed build environment ships no bignum
    library. Representation: sign plus little-endian magnitude in base 2^30,
    chosen so that limb products and carries stay inside OCaml's 63-bit
    native [int]. All values are structurally canonical, so the polymorphic
    [compare]/[Hashtbl.hash] would be consistent — but use the functions
    below, which are faster and total. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

(** [to_int_opt x] is [Some n] iff [x] fits a native [int]. *)
val to_int_opt : t -> int option

(** Raises [Failure] when the value does not fit. *)
val to_int_exn : t -> int

val of_string : string -> t
val to_string : t -> string

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** Truncated division, as for OCaml's native [/] and [mod]:
    [div_rem a b = (q, r)] with [a = q*b + r], [|r| < |b|] and [r] carrying
    the sign of [a]. Raises [Division_by_zero]. *)
val div_rem : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Floor division: rounds towards negative infinity. *)
val fdiv : t -> t -> t

(** Ceiling division: rounds towards positive infinity. *)
val cdiv : t -> t -> t

(** Greatest common divisor; always non-negative, [gcd zero zero = zero]. *)
val gcd : t -> t -> t

(** [pow base e] for [e >= 0]. *)
val pow : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val to_float : t -> float

(** Number of bits in the magnitude (0 for zero). *)
val bit_length : t -> int

val pp : Format.formatter -> t -> unit
