(* Small descriptive-statistics helpers for the experiment harness. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left (+.) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let mu = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. mu) *. (x -. mu))) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))

let minimum a =
  if Array.length a = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left min a.(0) a

let maximum a =
  if Array.length a = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left max a.(0) a

(* Nearest-rank percentile on a copy; [p] in [0, 100]. *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let median a = percentile a 50.0
