(* Plain-text table rendering for the benchmark harness.

   Columns are sized to their widest cell; numbers are expected to arrive
   pre-formatted. Kept dependency-free so benches and examples share it. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Tables.add_row: arity mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|-"
    ^ String.concat "-|-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    ^ "-|"
  in
  String.concat "\n" (line t.header :: sep :: List.map line rows)

let print t = print_endline (render t)
