(** Minimal plain-text table rendering for benches and examples. *)

type t

val create : string list -> t

(** Raises [Invalid_argument] if the row arity differs from the header. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
