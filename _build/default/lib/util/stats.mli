(** Descriptive statistics used by the experiment harness. All functions
    raise [Invalid_argument] on empty input. *)

val mean : float array -> float

(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)
val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

(** Nearest-rank percentile, [p] in [0, 100]. *)
val percentile : float array -> float -> float

val median : float array -> float
