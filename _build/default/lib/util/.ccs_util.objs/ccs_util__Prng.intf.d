lib/util/prng.mli:
