lib/util/tables.ml: Array List String
