lib/util/tables.mli:
