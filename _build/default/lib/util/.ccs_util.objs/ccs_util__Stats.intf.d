lib/util/stats.mli:
