(* E1, E2, E3: the constant-factor algorithms of Section 3.

   For every workload family the tables report the worst and mean measured
   approximation ratios. Ratios are measured against the guess T (which
   Lemma 2 / the binary search prove is a lower bound on the optimum), and
   — on small instances — against exact optima. The paper's claims to
   reproduce: ratio <= 2 (Theorems 4, 5) and <= 7/3 (Theorem 6); the shape
   to observe is that measured ratios sit well below the proven bounds and
   the bounds are approached only by adversarial families. *)

module Q = Rat
module U = Bench_util
module T = Ccs_util.Tables

let e1 () =
  U.header "E1 — splittable 2-approximation (Theorem 4)";
  let table = T.create [ "family"; "n"; "C"; "m"; "c"; "trials"; "max ratio vs T"; "mean"; "max vs exact" ] in
  List.iter
    (fun family ->
      List.iter
        (fun (n, classes, machines, slots) ->
          let ratios = ref [] and exact_ratios = ref [] in
          for seed = 1 to 30 do
            let inst = U.instance ~seed:(seed * 191) ~family ~n ~classes ~machines ~slots ~p_hi:100 in
            let sched, stats = Ccs.Approx.Splittable.solve inst in
            match Ccs.Schedule.validate_splittable inst sched with
            | Error e -> failwith ("E1: invalid schedule: " ^ e)
            | Ok mk ->
                ratios := Q.to_float mk /. Q.to_float stats.Ccs.Approx.Splittable.t_guess :: !ratios;
                if n <= 9 && machines <= 3 then
                  match Ccs_exact.Splittable_opt.solve ~max_nodes:300 inst with
                  | Some opt -> exact_ratios := Q.to_float mk /. Q.to_float opt :: !exact_ratios
                  | None -> ()
          done;
          let mx, mean = U.summarize !ratios in
          let vs_exact =
            match !exact_ratios with [] -> "-" | l -> U.f3 (fst (U.summarize l))
          in
          T.add_row table
            [ U.fam_name family; string_of_int n; string_of_int classes;
              string_of_int machines; string_of_int slots; "30"; U.f3 mx; U.f3 mean; vs_exact ])
        [ (8, 4, 3, 2); (40, 8, 5, 3); (200, 12, 8, 3) ])
    U.families;
  T.print table;
  U.footnote "claim: every ratio vs T <= 2 (T <= opt by Lemma 2)."

let e2 () =
  U.header "E2 — preemptive 2-approximation (Theorem 5)";
  let table = T.create [ "family"; "n"; "m"; "trials"; "max ratio vs T"; "mean"; "max vs exact"; "repacked"; "parallel violations" ] in
  List.iter
    (fun family ->
      List.iter
        (fun (n, classes, machines, slots) ->
          let ratios = ref [] and exact_ratios = ref [] and repacked = ref 0 in
          for seed = 1 to 30 do
            let inst = U.instance ~seed:(seed * 677) ~family ~n ~classes ~machines ~slots ~p_hi:100 in
            let sched, stats = Ccs.Approx.Preemptive.solve inst in
            match Ccs.Schedule.validate_preemptive inst sched with
            | Error e -> failwith ("E2: invalid schedule: " ^ e)
            | Ok mk ->
                if stats.Ccs.Approx.Preemptive.repacked then incr repacked;
                ratios := Q.to_float mk /. Q.to_float stats.Ccs.Approx.Preemptive.t_guess :: !ratios;
                if n <= 8 then
                  match Ccs_exact.Preemptive_opt.opt ~max_nodes:2_000 inst with
                  | Some opt -> exact_ratios := Q.to_float mk /. Q.to_float opt :: !exact_ratios
                  | None -> ()
          done;
          let mx, mean = U.summarize !ratios in
          let vs_exact = match !exact_ratios with [] -> "-" | l -> U.f3 (fst (U.summarize l)) in
          T.add_row table
            [ U.fam_name family; string_of_int n; string_of_int machines; "30";
              U.f3 mx; U.f3 mean; vs_exact; string_of_int !repacked; "0" ])
        [ (8, 4, 3, 2); (40, 8, 5, 3); (200, 12, 8, 3) ])
    U.families;
  T.print table;
  U.footnote
    "claim: ratio <= 2 and no job ever runs in parallel with itself (the validator\n\
     rejects any violation, so reaching this table proves the count is 0)."

let e3 () =
  U.header "E3 — non-preemptive 7/3-approximation (Theorem 6)";
  let table = T.create [ "family"; "n"; "m"; "trials"; "max ratio vs T"; "mean"; "max vs exact"; "mean vs exact" ] in
  List.iter
    (fun family ->
      List.iter
        (fun (n, classes, machines, slots) ->
          let ratios = ref [] and exact_ratios = ref [] in
          for seed = 1 to 30 do
            let inst = U.instance ~seed:(seed * 811) ~family ~n ~classes ~machines ~slots ~p_hi:100 in
            let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
            match Ccs.Schedule.validate_nonpreemptive inst sched with
            | Error e -> failwith ("E3: invalid schedule: " ^ e)
            | Ok mk ->
                ratios := float_of_int mk /. float_of_int stats.Ccs.Approx.Nonpreemptive.t_guess :: !ratios;
                if n <= 12 then
                  match Ccs_exact.Bnb.solve inst with
                  | Some (opt, _) -> exact_ratios := float_of_int mk /. float_of_int opt :: !exact_ratios
                  | None -> ()
          done;
          let mx, mean = U.summarize !ratios in
          let vs_exact, vs_exact_mean =
            match !exact_ratios with
            | [] -> ("-", "-")
            | l ->
                let mx, mean = U.summarize l in
                (U.f3 mx, U.f3 mean)
          in
          T.add_row table
            [ U.fam_name family; string_of_int n; string_of_int machines; "30";
              U.f3 mx; U.f3 mean; vs_exact; vs_exact_mean ])
        [ (10, 4, 3, 2); (12, 4, 3, 2); (60, 8, 5, 3); (300, 12, 8, 3) ])
    U.families;
  T.print table;
  U.footnote "claim: every ratio <= 7/3 ~ 2.333; the 'large' family is the adversarial one."
