(* F1-F5 — the paper's five illustrative figures, regenerated as ASCII
   renderings by the actual algorithms (the paper has no measurement plots;
   its figures illustrate mechanisms). *)

module Q = Rat
module U = Bench_util

(* --- F1: round robin layout (Figure 1) --- *)
let f1 () =
  U.header "F1 — Figure 1: round robin over sorted classes";
  let inst = Ccs.Generator.figure1_example () in
  let sched, stats = Ccs.Approx.Splittable.solve inst in
  Printf.printf "10 classes, 4 machines, guess T = %s\n"
    (Q.to_string stats.Ccs.Approx.Splittable.t_guess);
  let pieces = Ccs.Schedule.to_job_pieces inst sched in
  let m = Ccs.Instance.m inst in
  let cells =
    Array.init m (fun mi ->
        match List.assoc_opt mi pieces with
        | None -> []
        | Some pl ->
            List.map
              (fun pc ->
                ((Printf.sprintf "%d" (1 + (Ccs.Instance.job inst pc.Ccs.Schedule.job).Ccs.Instance.cls)), pc.Ccs.Schedule.size))
              pl)
  in
  print_string (Ccs.Schedule.render_loads cells);
  U.footnote
    "classes numbered by non-ascending total load; class i lands on machine\n\
     ((i-1) mod m), wrapping like Figure 1."

(* --- F2: the Algorithm 2 repacking (Figure 2) --- *)
let f2 () =
  U.header "F2 — Figure 2: preemptive repacking (shift above the first class to T)";
  (* one heavy class that gets sliced at T, plus fillers, exactly the
     figure's situation *)
  let inst =
    Ccs.Instance.make ~machines:4 ~slots:3
      [ (20, 0); (18, 0); (14, 1); (12, 2); (10, 3); (8, 4); (6, 5); (4, 6); (2, 7) ]
  in
  let sched, stats = Ccs.Approx.Preemptive.solve inst in
  Printf.printf "guess T = %s, repacked = %b\n" (Q.to_string stats.Ccs.Approx.Preemptive.t_guess)
    stats.Ccs.Approx.Preemptive.repacked;
  Array.iteri
    (fun mi piece_list ->
      if piece_list <> [] then begin
        Printf.printf "machine %d: " mi;
        List.iter
          (fun pc ->
            Printf.printf "[%s,%s) j%d(c%d)  " (Q.to_string pc.Ccs.Schedule.start)
              (Q.to_string (Q.add pc.Ccs.Schedule.start pc.Ccs.Schedule.len))
              pc.Ccs.Schedule.pjob
              (Ccs.Instance.job inst pc.Ccs.Schedule.pjob).Ccs.Instance.cls)
          piece_list;
        print_newline ()
      end)
    sched;
  (match Ccs.Schedule.validate_preemptive inst sched with
  | Ok mk -> Printf.printf "makespan %s <= 2T = %s; no job parallel to itself\n" (Q.to_string mk)
               (Q.to_string (Q.mul (Q.of_int 2) stats.Ccs.Approx.Preemptive.t_guess))
  | Error e -> failwith e);
  U.footnote "pieces above each machine's first item start exactly at T, as in Figure 2."

(* --- F3: the class-pair swap behind Theorem 11 (Figure 3) --- *)
let f3 () =
  U.header "F3 — Figure 3: making class pairs unique by swapping";
  (* two machines sharing the pair (A, B): move all of A from machine 1 to
     machine 2 and the same volume of B back *)
  let m1 = [ ("A", Q.of_int 3); ("B", Q.of_int 5) ] in
  let m2 = [ ("B", Q.of_int 2); ("A", Q.of_int 6) ] in
  let show label ms =
    Printf.printf "%s\n" label;
    List.iteri
      (fun i loads ->
        Printf.printf "  machine %d: %s\n" (i + 1)
          (String.concat " + " (List.map (fun (c, l) -> Printf.sprintf "%s:%s" c (Q.to_string l)) loads)))
      ms
  in
  show "before (pair {A,B} on both machines):" [ m1; m2 ];
  (* p(1, A) = 3 is minimal: move it to machine 2; move 3 units of B back *)
  let m1' = [ ("B", Q.of_int 8) ] in
  let m2' = [ ("B", Q.of_int 2); ("A", Q.of_int 9) ] |> List.map (fun (c, l) -> if c = "B" then (c, Q.sub l (Q.of_int 3)) else (c, l)) in
  let m2' = List.filter (fun (_, l) -> Q.sign l > 0) m2' in
  show "after the swap (loads preserved, class slots not increased):" [ m1'; m2' ];
  U.footnote
    "this exchange argument bounds the number of non-trivial machine\n\
     configurations by (C choose 2) + C, which is how Theorem 11 removes the\n\
     polynomial dependence on m.";
  (* and the real thing: the Theorem 11 code path on 10^12 machines *)
  let inst = Ccs.Instance.make ~machines:1_000_000_000_000 ~slots:1 [ (300, 0); (200, 1); (7, 2) ] in
  let sched, _ = Ccs.Ptas.Splittable_ptas.solve (Ccs.Ptas.Common.param 2) inst in
  Printf.printf "Theorem 11 output on m=10^12: %d machine blocks + %d explicit machines\n"
    (List.length sched.Ccs.Schedule.blocks)
    (List.length sched.Ccs.Schedule.explicit_machines)

(* --- F4: dissolving a configuration (Figure 4) --- *)
let f4 () =
  U.header "F4 — Figure 4: configuration -> module slots -> jobs";
  let inst =
    Ccs.Instance.make ~machines:2 ~slots:2 [ (9, 0); (7, 0); (8, 1); (6, 1); (4, 2); (3, 3) ]
  in
  let p = Ccs.Ptas.Common.param 2 in
  let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve p inst in
  Printf.printf "accepted T* = %s\n" (Q.to_string stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted);
  (* reconstruct the dissolution view per machine: class -> its jobs there *)
  let per_machine = Hashtbl.create 4 in
  Array.iteri
    (fun j mi ->
      let job = Ccs.Instance.job inst j in
      let prev = Option.value ~default:[] (Hashtbl.find_opt per_machine mi) in
      Hashtbl.replace per_machine mi ((j, job.Ccs.Instance.cls, job.Ccs.Instance.p) :: prev))
    sched;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_machine []
  |> List.sort compare
  |> List.iter (fun (mi, jobs) ->
         let by_class = Hashtbl.create 4 in
         List.iter
           (fun (j, cls, pj) ->
             let prev = Option.value ~default:[] (Hashtbl.find_opt by_class cls) in
             Hashtbl.replace by_class cls ((j, pj) :: prev))
           jobs;
         let modules =
           Hashtbl.fold
             (fun cls js acc ->
               let sizes = List.map snd js in
               (Printf.sprintf "module(class %d){%s}" cls
                  (String.concat "," (List.map string_of_int sizes)),
                List.fold_left ( + ) 0 sizes)
               :: acc)
             by_class []
         in
         Printf.printf "machine %d: configuration K = <%s>\n" mi
           (String.concat ", " (List.map (fun (_, s) -> string_of_int s) modules));
         List.iter (fun (desc, _) -> Printf.printf "   %s\n" desc) modules);
  U.footnote "each machine's configuration holds module sizes; each module\ndissolves into the concrete jobs of a single class, as in Figure 4."

(* --- F5: the flow network of Lemma 16 (Figure 5) --- *)
let f5 () =
  U.header "F5 — Figure 5: Lemma 16 flow network (integral preemptive structure)";
  (* jobs of one large class with layer demands; machine slot supply per
     layer; the max-flow witnesses a well-structured schedule *)
  let jobs = [| ("j1", 3); ("j2", 2); ("j3", 2) |] in
  let layer_supply = [| 2; 2; 2; 1 |] in
  let njobs = Array.length jobs and nlayers = Array.length layer_supply in
  let source = njobs + nlayers and sink = njobs + nlayers + 1 in
  let g = Flow.create (njobs + nlayers + 2) in
  Array.iteri (fun ji (_, k) -> ignore (Flow.add_edge g ~src:source ~dst:ji ~cap:k)) jobs;
  let edges = Array.make_matrix njobs nlayers (-1) in
  for ji = 0 to njobs - 1 do
    for l = 0 to nlayers - 1 do
      edges.(ji).(l) <- Flow.add_edge g ~src:ji ~dst:(njobs + l) ~cap:1
    done
  done;
  Array.iteri
    (fun l cap -> ignore (Flow.add_edge g ~src:(njobs + l) ~dst:sink ~cap))
    layer_supply;
  let v = Flow.max_flow g ~source ~sink in
  let demand = Array.fold_left (fun acc (_, k) -> acc + k) 0 jobs in
  Printf.printf "jobs -> layers -> machine slots; demand %d, max flow %d (integral)\n" demand v;
  Printf.printf "        %s\n"
    (String.concat "  " (List.init nlayers (fun l -> Printf.sprintf "L%d" (l + 1))));
  Array.iteri
    (fun ji (name, k) ->
      Printf.printf "%s (%d):  %s\n" name k
        (String.concat "   "
           (List.init nlayers (fun l ->
                if Flow.flow_on g edges.(ji).(l) = 1 then "x" else "."))))
    jobs;
  U.footnote
    "every 'x' is one delta^2*T piece; no job has two pieces in a layer, so\n\
     nothing runs in parallel with itself — the integrality argument of Lemma 16\n\
     and the placement rule of Theorem 18."
