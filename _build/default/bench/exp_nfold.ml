(* E9 — the N-fold machinery (Section 2 / Theorem 1).

   Three claims are exercised: (a) the augmentation (Graver-walk) solver
   agrees with the exact flattened MILP backend on random N-folds, (b) the
   paper's duplicated configuration program really has the block shape it
   claims (s = 2 locally uniform rows, r independent of C), and the two
   formulations — aggregated MILP and literal N-fold — answer feasibility
   identically, (c) the parameter growth of the N-fold as delta shrinks,
   which is where the n^{O(poly 1/delta)} running times come from. *)

module Q = Rat
module U = Bench_util
module T = Ccs_util.Tables

let e9 () =
  U.header "E9 — N-fold ILP machinery (Theorem 1)";
  (* (a) augmentation vs MILP on random programs *)
  let agree = ref 0 and total = ref 0 in
  for seed = 1 to 60 do
    let rng = Ccs_util.Prng.create (seed * 53) in
    let n = Ccs_util.Prng.int_in rng 1 3 in
    let r = Ccs_util.Prng.int_in rng 1 2 in
    let s = Ccs_util.Prng.int_in rng 1 2 in
    let t = Ccs_util.Prng.int_in rng 1 3 in
    let mat rows cols =
      Array.init rows (fun _ -> Array.init cols (fun _ -> Ccs_util.Prng.int_in rng (-2) 2))
    in
    let p =
      {
        Nfold.r; s; t; n;
        a = Array.init n (fun _ -> mat r t);
        b = Array.init n (fun _ -> mat s t);
        rhs_top = Array.init r (fun _ -> Ccs_util.Prng.int_in rng (-4) 8);
        rhs_block = Array.init n (fun _ -> Array.init s (fun _ -> Ccs_util.Prng.int_in rng (-3) 6));
        lower = Array.init n (fun _ -> Array.make t 0);
        upper = Array.init n (fun _ -> Array.make t 3);
        weight = Array.init n (fun _ -> Array.init t (fun _ -> Ccs_util.Prng.int_in rng (-3) 3));
      }
    in
    incr total;
    match (Nfold.solve_ilp p, Nfold.solve_augmentation ~max_norm:6 p) with
    | `Infeasible, `Infeasible -> incr agree
    | `Solution (_, o1), `Solution (_, o2) when o1 = o2 -> incr agree
    | `Node_limit, _ -> incr agree (* reference unavailable *)
    | _ -> ()
  done;
  Printf.printf "(a) augmentation = exact MILP backend on %d/%d random N-folds\n" !agree !total;

  (* (b) the configuration N-fold of Section 4.1 *)
  let inst = Ccs.Instance.make ~machines:2 ~slots:2 [ (8, 0); (5, 1); (3, 2); (2, 2) ] in
  let lb = Ccs.Bounds.lb_splittable inst in
  let table = T.create [ "delta"; "r"; "s"; "brick t"; "bricks N"; "Delta"; "agrees with aggregated" ] in
  List.iter
    (fun d ->
      let p = Ccs.Ptas.Common.param d in
      let b = Ccs.Ptas.Nfold_form.build_splittable p inst lb in
      let agrees =
        if d = 1 then
          string_of_bool
            (try
               Ccs.Ptas.Nfold_form.feasible_splittable p inst lb
               = (Ccs.Ptas.Splittable_ptas.oracle p inst lb <> None)
             with Ccs.Ptas.Common.Budget_exceeded -> true)
        else "(checked at delta=1; larger bricks exceed the exact budget)"
      in
      T.add_row table
        [ Printf.sprintf "1/%d" d; string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.r;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.s;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.t;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.n;
          string_of_int (Nfold.delta b.Ccs.Ptas.Nfold_form.program); agrees ])
    [ 1; 2; 3; 4 ];
  T.print table;
  (* (c) the non-preemptive duplicated N-fold (Section 4.2): s = |P| + 1 *)
  let inst2 = Ccs.Instance.make ~machines:2 ~slots:2 [ (8, 0); (8, 1); (5, 1); (3, 2) ] in
  let table2 = T.create [ "delta"; "guess"; "r"; "s"; "brick t"; "bricks N"; "agrees with aggregated" ] in
  List.iter
    (fun d ->
      let p = Ccs.Ptas.Common.param d in
      let t = Q.of_int (Ccs.Instance.pmax inst2) in
      let b = Ccs.Ptas.Nfold_form.build_nonpreemptive p inst2 t in
      let agrees =
        if d = 1 then
          string_of_bool
            (try
               Ccs.Ptas.Nfold_form.feasible_nonpreemptive p inst2 t
               = (Ccs.Ptas.Nonpreemptive_ptas.oracle p inst2 t <> None)
             with Ccs.Ptas.Common.Budget_exceeded -> true)
        else "(checked at delta=1)"
      in
      T.add_row table2
        [ Printf.sprintf "1/%d" d; Q.to_string t;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.r;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.s;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.t;
          string_of_int b.Ccs.Ptas.Nfold_form.program.Nfold.n; agrees ])
    [ 1; 2 ];
  Printf.printf "non-preemptive duplicated N-fold (s = |P| + 1 locally uniform rows):\n";
  T.print table2;
  U.footnote
    "claims: splittable bricks have s = 2, non-preemptive bricks s = |P| + 1 (the\n\
     paper's locally uniform rows); r and the brick size grow with 1/delta but are\n\
     independent of the number of classes C = N."
