(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E1 F5   # selected experiments

   Experiment ids: E1-E9 (theorem reproductions), A1-A2 (ablations; A2 also
   covers A3), X1 (the Section 5 extension), F1-F5 (the paper's
   illustrative figures). See DESIGN.md section 3 for the index and
   EXPERIMENTS.md for recorded results. *)

let experiments =
  [ ("E1", Exp_approx.e1); ("E2", Exp_approx.e2); ("E3", Exp_approx.e3);
    ("E4", Exp_search.e4); ("E5", Exp_timing.e5); ("E6", Exp_ptas.e6);
    ("E7", Exp_ptas.e7); ("E8", Exp_ptas.e8); ("E9", Exp_nfold.e9);
    ("A1", Exp_search.a1); ("A2", Exp_ablation.a2_a3); ("X1", Exp_ext.x1);
    ("F1", Exp_figures.f1);
    ("F2", Exp_figures.f2); ("F3", Exp_figures.f3); ("F4", Exp_figures.f4);
    ("F5", Exp_figures.f5) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> List.map String.uppercase_ascii ids
    | _ -> List.map fst experiments
  in
  let unknown = List.filter (fun id -> not (List.mem_assoc id experiments)) requested in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  Printf.printf "CCS reproduction benchmarks — %d experiment(s)\n" (List.length requested);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      let f = List.assoc id experiments in
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t))
    requested;
  Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. t0)
