(* E4 + A1: the advanced border binary search of Lemma 2.

   E4 reproduces the lemma's two claims: the search finds the exact optimal
   guess (validated against an exhaustive border scan where feasible) and
   uses O(C log m) feasibility probes even for m = 10^12. A1 contrasts it
   with the naive fixed-precision bisection a non-expert would write, which
   needs a tolerance and cannot return the exact border. *)

module Q = Rat
module U = Bench_util
module T = Ccs_util.Tables

let random_loads rng nclasses = Array.init nclasses (fun _ -> Ccs_util.Prng.int_in rng 1 10_000)

let e4 () =
  U.header "E4 — Lemma 2 advanced binary search";
  let table = T.create [ "C"; "m"; "trials"; "max probes"; "bound C(log2 m + 2) + 1"; "exact vs scan" ] in
  List.iter
    (fun (nclasses, machines, check_exact) ->
      let max_probes = ref 0 and all_exact = ref true and checked = ref false in
      for seed = 1 to 25 do
        let rng = Ccs_util.Prng.create (seed * 37) in
        let loads = random_loads rng nclasses in
        let total = Array.fold_left ( + ) 0 loads in
        let lb = Q.make (Bigint.of_int total) (Bigint.of_int machines) in
        let r = Ccs.Approx.Border_search.search ~loads ~machines ~slots:1 ~lb in
        max_probes := max !max_probes r.Ccs.Approx.Border_search.probes;
        if check_exact then begin
          checked := true;
          let naive = Ccs.Approx.Border_search.search_naive ~loads ~machines ~slots:1 ~lb in
          if not (Q.equal r.Ccs.Approx.Border_search.t_star naive.Ccs.Approx.Border_search.t_star)
          then all_exact := false
        end
      done;
      let bound =
        1 + (nclasses * (int_of_float (ceil (log (float_of_int machines) /. log 2.0)) + 3))
      in
      T.add_row table
        [ string_of_int nclasses; string_of_int machines; "25"; string_of_int !max_probes;
          string_of_int bound;
          (if !checked then string_of_bool !all_exact else "(m too large to scan)") ])
    [ (4, 10, true); (8, 50, true); (16, 1_000, true); (16, 1_000_000, false);
      (32, 1_000_000_000_000, false) ];
  T.print table;
  U.footnote "claim: probes grow as C log m, and the found guess equals the exhaustive scan's."

let a1 () =
  U.header "A1 — ablation: advanced border search vs fixed-precision bisection";
  (* naive bisection to precision eps needs log2((ub-lb)/eps) probes and is
     still only approximate; the border search is exact. *)
  let table = T.create [ "C"; "m"; "border probes"; "bisection probes (eps=1e-6)"; "bisection exact?" ] in
  List.iter
    (fun (nclasses, machines) ->
      let rng = Ccs_util.Prng.create 99 in
      let loads = random_loads rng nclasses in
      let total = Array.fold_left ( + ) 0 loads in
      let lb = Q.make (Bigint.of_int total) (Bigint.of_int machines) in
      let r = Ccs.Approx.Border_search.search ~loads ~machines ~slots:1 ~lb in
      (* naive bisection on floats *)
      let cap = Ccs.Approx.Border_search.slot_cap ~machines ~slots:1 in
      let feasible t = Ccs.Approx.Border_search.count_classes ~loads ~cap (Q.of_string (Printf.sprintf "%.9f" t)) <= cap in
      let probes = ref 0 in
      let lo = ref (Q.to_float lb) and hi = ref (float_of_int (Array.fold_left max 1 loads)) in
      while !hi -. !lo > 1e-6 do
        incr probes;
        let mid = (!lo +. !hi) /. 2.0 in
        if feasible mid then hi := mid else lo := mid
      done;
      let exact = abs_float (!hi -. Q.to_float r.Ccs.Approx.Border_search.t_star) < 1e-5 in
      T.add_row table
        [ string_of_int nclasses; string_of_int machines;
          string_of_int r.Ccs.Approx.Border_search.probes; string_of_int !probes;
          Printf.sprintf "%b (within 1e-5 only)" exact ])
    [ (4, 10); (8, 50); (16, 1_000) ];
  T.print table;
  U.footnote
    "the bisection spends ~33 probes per 1e-6 of precision and still only\n\
     approximates the answer; the border search spends O(C log m) probes and\n\
     returns the exact (possibly fractional) optimal guess, which is why Lemma 2\n\
     searches along the borders instead of bisecting blindly."
