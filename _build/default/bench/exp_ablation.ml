(* A2, A3 — ablations of the design choices inside the 7/3-approximation
   (Theorem 6). DESIGN.md calls out two of them:

   A2: the sub-class count C_u = max(C1_u, C2_u). Dropping the large-job
       bound C2_u (keeping only the area bound C1_u) under-provisions
       classes whose jobs sit just above T/2 — half as many sub-classes as
       machines needed, so sub-class loads approach 2T instead of 4T/3.

   A3: LPT inside each class split. Arbitrary-order list scheduling loses
       the "overfill by at most one job <= T/3" property: a big job arriving
       last lands on top of an already half-full sub-class.

   Random workloads rarely trigger either (their area bound dominates),
   which is itself worth recording; the crafted families below are the
   regimes the analysis of Theorem 6 exists for. *)

module U = Bench_util
module T = Ccs_util.Tables

let run_variant ~counter ~use_lpt inst =
  let sched, stats = Ccs.Approx.Nonpreemptive.solve_with_counter ~use_lpt ~counter inst in
  match Ccs.Schedule.validate_nonpreemptive inst sched with
  | Ok mk -> (mk, stats.Ccs.Approx.Nonpreemptive.t_guess)
  | Error e -> failwith ("ablation produced invalid schedule: " ^ e)

(* A2 adversarial family: one class holds [k] jobs of size T/2 + 1 (its
   area bound is only ~k/2), plus singleton classes filling the area so the
   accepted guess stays at T = 100. *)
let a2_instance k =
  let t = 100 in
  let machines = k in
  let heavy = List.init k (fun _ -> ((t / 2) + 1, 0)) in
  let heavy_load = k * ((t / 2) + 1) in
  let filler_total = (machines * t) - heavy_load in
  let filler_count = machines - 2 in
  let filler =
    List.init filler_count (fun i ->
        let base = filler_total / filler_count in
        let extra = if i < filler_total mod filler_count then 1 else 0 in
        (base + extra, 1 + i))
  in
  Ccs.Instance.make ~machines ~slots:2 (heavy @ filler)

(* A3 adversarial family: one class that must split into two sub-classes,
   listing its small jobs first and one big job last. Input-order list
   scheduling spreads the smalls evenly and then drops the big job on top of
   a half-full sub-class; LPT places it first. *)
let a3_instance k =
  let small = 120 / k in
  let jobs = List.init k (fun _ -> (small, 0)) @ [ (80, 0); (60, 1) ] in
  Ccs.Instance.make ~machines:2 ~slots:2 jobs

let a2_a3 () =
  U.header "A2/A3 — ablations of the 7/3-approximation";
  Printf.printf "adversarial families (the regimes Theorem 6's analysis targets):\n";
  let table = T.create [ "family"; "param"; "full ratio"; "no C2_u (A2)"; "no LPT (A3)"; "neither" ] in
  let add family param inst =
    let cell ~counter ~use_lpt =
      let mk, t = run_variant ~counter ~use_lpt inst in
      U.f3 (float_of_int mk /. float_of_int t)
    in
    T.add_row table
      [ family; param;
        cell ~counter:Ccs.Approx.Nonpreemptive.cu ~use_lpt:true;
        cell ~counter:Ccs.Approx.Nonpreemptive.cu_area_only ~use_lpt:true;
        cell ~counter:Ccs.Approx.Nonpreemptive.cu ~use_lpt:false;
        cell ~counter:Ccs.Approx.Nonpreemptive.cu_area_only ~use_lpt:false ]
  in
  List.iter (fun k -> add "half-T jobs" (Printf.sprintf "k=%d" k) (a2_instance k)) [ 6; 8; 12 ];
  List.iter (fun k -> add "big-job-last" (Printf.sprintf "k=%d" k) (a3_instance k)) [ 6; 12 ];
  T.print table;
  Printf.printf "\nrandom 'large' workloads for contrast (area bound usually dominates):\n";
  let table2 = T.create [ "n"; "m"; "trials"; "full max"; "no C2_u"; "no LPT"; "neither" ] in
  List.iter
    (fun (n, classes, machines, slots) ->
      let acc = Array.make 4 [] in
      for seed = 1 to 40 do
        let inst =
          U.instance ~seed:(seed * 449) ~family:Ccs.Generator.Large_jobs ~n ~classes ~machines
            ~slots ~p_hi:120
        in
        List.iteri
          (fun i (counter, use_lpt) ->
            let mk, t = run_variant ~counter ~use_lpt inst in
            acc.(i) <- (float_of_int mk /. float_of_int t) :: acc.(i))
          [ (Ccs.Approx.Nonpreemptive.cu, true); (Ccs.Approx.Nonpreemptive.cu_area_only, true);
            (Ccs.Approx.Nonpreemptive.cu, false); (Ccs.Approx.Nonpreemptive.cu_area_only, false) ]
      done;
      let mx i = U.f3 (fst (U.summarize acc.(i))) in
      T.add_row table2
        [ string_of_int n; string_of_int machines; "40"; mx 0; mx 1; mx 2; mx 3 ])
    [ (12, 4, 3, 2); (40, 6, 4, 2) ];
  T.print table2;
  U.footnote
    "ratios are makespan / the variant's own accepted guess T. claim: only the\n\
     full variant is certified <= 7/3 everywhere; each ablation is beaten on the\n\
     family its mechanism exists for, while random inputs hide the difference."
