bench/bench_util.ml: Array Ccs Ccs_util Printf Rat Unix
