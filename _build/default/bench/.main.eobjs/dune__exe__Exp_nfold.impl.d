bench/exp_nfold.ml: Array Bench_util Ccs Ccs_util List Nfold Printf Rat
