bench/exp_figures.ml: Array Bench_util Ccs Flow Hashtbl List Option Printf Rat String
