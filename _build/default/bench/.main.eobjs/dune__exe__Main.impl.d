bench/main.ml: Array Exp_ablation Exp_approx Exp_ext Exp_figures Exp_nfold Exp_ptas Exp_search Exp_timing List Printf String Sys Unix
