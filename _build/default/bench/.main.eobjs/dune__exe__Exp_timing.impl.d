bench/exp_timing.ml: Analyze Bechamel Bench_util Benchmark Ccs Ccs_util Hashtbl List Measure Printf Staged Test Time Toolkit
