bench/exp_ptas.ml: Bench_util Ccs Ccs_exact Ccs_util List Printf Rat
