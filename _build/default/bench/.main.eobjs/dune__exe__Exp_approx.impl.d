bench/exp_approx.ml: Bench_util Ccs Ccs_exact Ccs_util List Rat
