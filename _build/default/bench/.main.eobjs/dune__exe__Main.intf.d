bench/main.mli:
