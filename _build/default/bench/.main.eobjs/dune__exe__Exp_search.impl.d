bench/exp_search.ml: Array Bench_util Bigint Ccs Ccs_util List Printf Rat
