bench/exp_ablation.ml: Array Bench_util Ccs Ccs_util List Printf
