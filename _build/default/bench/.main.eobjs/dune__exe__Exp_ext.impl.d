bench/exp_ext.ml: Array Bench_util Ccs Ccs_util List
