(* X1 — the Section 5 open variant: machine-dependent class slots.

   No approximation guarantee exists (that is the open problem the paper
   closes with); the table measures the slot-aware greedy of
   Ccs.Ext.Hetero against exact optima on small instances, under
   increasingly skewed slot distributions. *)

module U = Bench_util
module T = Ccs_util.Tables

let x1 () =
  U.header "X1 — extension: machine-dependent class slots (Section 5)";
  let table =
    T.create [ "slot profile"; "n"; "m"; "trials"; "greedy max ratio"; "mean"; "greedy failures" ]
  in
  let profiles =
    [ ("uniform c_i = 2", fun m _ -> Array.make m 2);
      ("skewed 1..m", fun m _ -> Array.init m (fun i -> i + 1));
      ("one big host", fun m classes -> Array.init m (fun i -> if i = 0 then classes else 1)) ]
  in
  List.iter
    (fun (label, profile) ->
      List.iter
        (fun (n, classes, machines) ->
          let ratios = ref [] and failures = ref 0 in
          for seed = 1 to 30 do
            let rng = Ccs_util.Prng.create (seed * 907) in
            let jobs =
              List.init n (fun i ->
                  ( Ccs_util.Prng.int_in rng 1 30,
                    if i < classes then i else Ccs_util.Prng.int rng classes ))
            in
            let base = Ccs.Instance.make ~machines ~slots:classes jobs in
            let t = Ccs.Ext.Hetero.make base (profile machines classes) in
            if Ccs.Ext.Hetero.schedulable t then begin
              match Ccs.Ext.Hetero.solve_exact ~node_limit:2_000_000 t with
              | None -> ()
              | Some (opt, _) -> (
                  match Ccs.Ext.Hetero.solve_greedy t with
                  | sched -> (
                      match Ccs.Ext.Hetero.validate t sched with
                      | Ok mk -> ratios := (float_of_int mk /. float_of_int opt) :: !ratios
                      | Error _ -> incr failures)
                  | exception Invalid_argument _ -> incr failures)
            end
          done;
          match !ratios with
          | [] -> ()
          | l ->
              let mx, mean = U.summarize l in
              T.add_row table
                [ label; string_of_int n; string_of_int machines; "30"; U.f3 mx; U.f3 mean;
                  string_of_int !failures ])
        [ (8, 4, 3); (10, 5, 4) ])
    profiles;
  T.print table;
  U.footnote
    "greedy failures = instances where the load-first greedy stranded slots (it\n\
     reports rather than mis-assigns). A constant-factor algorithm for this\n\
     variant is exactly the open problem the paper ends on."
