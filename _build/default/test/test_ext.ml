(* Machine-dependent class slots (Section 5's open variant). *)

module I = Ccs.Instance
module H = Ccs.Ext.Hetero

let test_validator () =
  let base = I.make ~machines:2 ~slots:3 [ (4, 0); (3, 1); (2, 2) ] in
  let t = H.make base [| 2; 1 |] in
  (* machine 0 gets classes 0,1; machine 1 gets class 2 *)
  (match H.validate t [| 0; 0; 1 |] with
  | Ok mk -> Alcotest.(check int) "makespan" 7 mk
  | Error e -> Alcotest.fail e);
  (* machine 1 with budget 1 cannot take two classes *)
  match H.validate t [| 1; 1; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "per-machine budget not enforced"

let test_make_errors () =
  let base = I.make ~machines:2 ~slots:3 [ (4, 0) ] in
  Alcotest.check_raises "length" (Invalid_argument "Hetero.make: one slot budget per machine required")
    (fun () -> ignore (H.make base [| 1 |]));
  Alcotest.check_raises "positive" (Invalid_argument "Hetero.make: non-positive budget")
    (fun () -> ignore (H.make base [| 1; 0 |]))

let test_greedy_respects_budgets () =
  let base =
    I.make ~machines:3 ~slots:3 [ (9, 0); (8, 1); (7, 2); (6, 3); (5, 0); (4, 1); (3, 2) ]
  in
  let t = H.make base [| 1; 2; 3 |] in
  let sched = H.solve_greedy t in
  match H.validate t sched with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_exact_small () =
  (* two machines: budget 1 and 2; classes force the heavy class alone *)
  let base = I.make ~machines:2 ~slots:2 [ (10, 0); (2, 1); (2, 2) ] in
  let t = H.make base [| 1; 2 |] in
  match H.solve_exact t with
  | Some (opt, sched) ->
      Alcotest.(check int) "optimum" 10 opt;
      (match H.validate t sched with
      | Ok mk -> Alcotest.(check int) "assignment matches" opt mk
      | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "exact failed"

let prop_greedy_vs_exact =
  QCheck.Test.make ~name:"greedy valid and >= exact optimum" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let machines = Ccs_util.Prng.int_in rng 2 3 in
      let n = Ccs_util.Prng.int_in rng 3 9 in
      let classes = Ccs_util.Prng.int_in rng 1 4 in
      let jobs =
        List.init n (fun _ -> (Ccs_util.Prng.int_in rng 1 20, Ccs_util.Prng.int rng classes))
      in
      let base = I.make ~machines ~slots:classes jobs in
      let slots = Array.init machines (fun _ -> Ccs_util.Prng.int_in rng 1 3) in
      let t = H.make base slots in
      if not (H.schedulable t) then QCheck.assume_fail ()
      else
        match H.solve_exact t with
        | None -> QCheck.assume_fail ()
        | Some (opt, opt_sched) -> (
            (match H.validate t opt_sched with Ok mk -> mk = opt | Error _ -> false)
            &&
            match H.solve_greedy t with
            | sched -> (
                match H.validate t sched with
                | Ok mk -> mk >= opt
                | Error _ -> false)
            | exception Invalid_argument _ ->
                (* the greedy may strand slots on tight instances; that is a
                   reported limitation, not a soundness bug *)
                true))

let prop_uniform_agrees_with_bnb =
  (* with equal budgets the variant reduces to plain CCS: exact = exact *)
  QCheck.Test.make ~name:"uniform budgets reduce to plain CCS" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let machines = Ccs_util.Prng.int_in rng 2 3 in
      let slots = Ccs_util.Prng.int_in rng 1 3 in
      let classes = min (Ccs_util.Prng.int_in rng 1 4) (slots * machines) in
      let n = Ccs_util.Prng.int_in rng classes 8 in
      let jobs =
        List.init n (fun i -> (Ccs_util.Prng.int_in rng 1 20, if i < classes then i else Ccs_util.Prng.int rng classes))
      in
      let base = I.make ~machines ~slots jobs in
      let t = H.make base (Array.make machines (I.c base)) in
      match (H.solve_exact t, Ccs_exact.Bnb.solve base) with
      | Some (a, _), Some (b, _) -> a = b
      | None, _ | _, None -> QCheck.assume_fail ())

let () =
  Alcotest.run "ext"
    [ ( "hetero",
        [ Alcotest.test_case "validator" `Quick test_validator;
          Alcotest.test_case "constructor errors" `Quick test_make_errors;
          Alcotest.test_case "greedy respects budgets" `Quick test_greedy_respects_budgets;
          Alcotest.test_case "exact small" `Quick test_exact_small ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_greedy_vs_exact; prop_uniform_agrees_with_bnb ] ) ]
