  $ ccs_gen -n 10 -C 3 -m 3 -c 2 --seed 5 -o inst.ccs
  $ head -3 inst.ccs
  $ ccs_solve inst.ccs --variant nonpreemptive --algo approx -q
  $ ccs_solve inst.ccs --variant nonpreemptive --algo exact -q
  $ ccs_solve inst.ccs --variant splittable --algo approx -q
  $ ccs_solve inst.ccs --variant preemptive --algo approx -q
  $ ccs_solve inst.ccs --variant nonpreemptive --algo ptas --epsilon 1 -q
  $ printf 'ccs 1\nslots 2\njob 1 0\n' > bad.ccs
  $ ccs_solve bad.ccs 2>&1
  $ printf 'ccs 1\nmachines 1\nslots 1\njob 1 0\njob 1 1\n' > tight.ccs
  $ ccs_solve tight.ccs --variant splittable --algo approx 2>&1
