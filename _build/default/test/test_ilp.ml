(* Branch & bound tests: knapsacks vs brute force, integrality of answers,
   feasibility mode, mixed problems, and status detection. *)

module Q = Rat

let q = Alcotest.testable Q.pp Q.equal
let qi = Q.of_int

let test_small_knapsack () =
  (* max 10x1 + 6x2 + 4x3 st x1+x2+x3 <= 2, 0 <= xi <= 1 integral => 16. *)
  let p =
    Lp.problem ~upper:(Array.make 3 (Some Q.one)) ~nvars:3
      ~objective:[| qi (-10); qi (-6); qi (-4) |]
      [ Lp.constr [ (0, Q.one); (1, Q.one); (2, Q.one) ] Lp.Le (qi 2) ]
  in
  match Ilp.solve (Ilp.all_integer p) with
  | Ilp.Optimal { objective; solution } ->
      Alcotest.check q "objective" (qi (-16)) objective;
      Array.iter (fun v -> Alcotest.(check bool) "integral" true (Q.is_integer v)) solution
  | _ -> Alcotest.fail "expected optimal"

let brute_knapsack values weights cap =
  let n = Array.length values in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0 and w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v + values.(i);
        w := !w + weights.(i)
      end
    done;
    if !w <= cap && !v > !best then best := !v
  done;
  !best

let prop_knapsack_vs_brute =
  QCheck.Test.make ~name:"0/1 knapsack matches brute force" ~count:100
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let n = Ccs_util.Prng.int_in rng 2 8 in
      let values = Array.init n (fun _ -> Ccs_util.Prng.int_in rng 1 30) in
      let weights = Array.init n (fun _ -> Ccs_util.Prng.int_in rng 1 20) in
      let cap = Ccs_util.Prng.int_in rng 5 60 in
      let p =
        Lp.problem ~upper:(Array.make n (Some Q.one)) ~nvars:n
          ~objective:(Array.map (fun v -> qi (-v)) values)
          [ Lp.constr (List.init n (fun i -> (i, qi weights.(i)))) Lp.Le (qi cap) ]
      in
      match Ilp.solve (Ilp.all_integer p) with
      | Ilp.Optimal { objective; _ } ->
          Q.equal objective (qi (-brute_knapsack values weights cap))
      | _ -> false)

let test_infeasible_parity () =
  (* 2x = 3 with x integral: LP feasible, ILP not. *)
  let p =
    Lp.problem ~nvars:1 ~objective:[| Q.zero |]
      [ Lp.constr [ (0, qi 2) ] Lp.Eq (qi 3) ]
  in
  match Ilp.solve (Ilp.all_integer p) with
  | Ilp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_feasibility_mode () =
  (* Find any integral point of x + y = 7, x,y in [0,5]. *)
  let p =
    Lp.problem ~upper:(Array.make 2 (Some (qi 5))) ~nvars:2
      ~objective:[| Q.zero; Q.zero |]
      [ Lp.constr [ (0, Q.one); (1, Q.one) ] Lp.Eq (qi 7) ]
  in
  match Ilp.solve ~feasibility:true (Ilp.all_integer p) with
  | Ilp.Optimal { solution; _ } ->
      Alcotest.(check bool) "sums to 7" true
        (Q.equal (Q.add solution.(0) solution.(1)) (qi 7));
      Array.iter (fun v -> Alcotest.(check bool) "integral" true (Q.is_integer v)) solution
  | _ -> Alcotest.fail "expected a feasible point"

let test_mixed () =
  (* min y st y >= x - 1/2, y >= 1/2 - x, x integral in [0,1], y continuous.
     Any integral x gives y = 1/2. *)
  let p =
    Lp.problem ~upper:[| Some Q.one; None |] ~nvars:2 ~objective:[| Q.zero; Q.one |]
      [ Lp.constr [ (0, qi (-1)); (1, Q.one) ] Lp.Ge (Q.of_ints (-1) 2);
        Lp.constr [ (0, Q.one); (1, Q.one) ] Lp.Ge (Q.of_ints 1 2) ]
  in
  match Ilp.solve { lp = p; integer = [| true; false |] } with
  | Ilp.Optimal { objective; solution } ->
      Alcotest.check q "objective" (Q.of_ints 1 2) objective;
      Alcotest.(check bool) "x integral" true (Q.is_integer solution.(0))
  | _ -> Alcotest.fail "expected optimal"

let test_node_limit () =
  (* A deliberately awkward equality forces branching; node limit 1 triggers. *)
  let n = 6 in
  let p =
    Lp.problem ~upper:(Array.make n (Some (qi 10))) ~nvars:n
      ~objective:(Array.make n Q.one)
      [ Lp.constr (List.init n (fun i -> (i, Q.of_ints 2 3))) Lp.Eq (Q.of_ints 7 3) ]
  in
  match Ilp.solve ~max_nodes:1 (Ilp.all_integer p) with
  | Ilp.Node_limit | Ilp.Optimal _ | Ilp.Infeasible -> ()
  | Ilp.Unbounded -> Alcotest.fail "unexpected unbounded"

let prop_assignment_problem =
  (* n x n assignment: ILP optimum equals brute-force over permutations. *)
  QCheck.Test.make ~name:"assignment problem matches brute force" ~count:40
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let n = Ccs_util.Prng.int_in rng 2 4 in
      let cost = Array.init n (fun _ -> Array.init n (fun _ -> Ccs_util.Prng.int_in rng 0 9)) in
      let var i j = (i * n) + j in
      let rows =
        List.init n (fun i ->
            Lp.constr (List.init n (fun j -> (var i j, Q.one))) Lp.Eq Q.one)
        @ List.init n (fun j ->
              Lp.constr (List.init n (fun i -> (var i j, Q.one))) Lp.Eq Q.one)
      in
      let objective = Array.init (n * n) (fun k -> qi cost.(k / n).(k mod n)) in
      let p = Lp.problem ~upper:(Array.make (n * n) (Some Q.one)) ~nvars:(n * n) ~objective rows in
      let brute =
        let rec perms acc rest =
          match rest with
          | [] -> [ List.rev acc ]
          | _ -> List.concat_map (fun x -> perms (x :: acc) (List.filter (( <> ) x) rest)) rest
        in
        perms [] (List.init n Fun.id)
        |> List.map (fun perm -> List.fold_left (fun s (i, j) -> s + cost.(i).(j)) 0 (List.mapi (fun i j -> (i, j)) perm))
        |> List.fold_left min max_int
      in
      match Ilp.solve (Ilp.all_integer p) with
      | Ilp.Optimal { objective; _ } -> Q.equal objective (qi brute)
      | _ -> false)

let () =
  Alcotest.run "ilp"
    [ ( "unit",
        [ Alcotest.test_case "small knapsack" `Quick test_small_knapsack;
          Alcotest.test_case "integrality gap infeasible" `Quick test_infeasible_parity;
          Alcotest.test_case "feasibility mode" `Quick test_feasibility_mode;
          Alcotest.test_case "mixed integer/continuous" `Quick test_mixed;
          Alcotest.test_case "node limit" `Quick test_node_limit ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_knapsack_vs_brute; prop_assignment_problem ] ) ]
