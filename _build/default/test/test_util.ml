module P = Ccs_util.Prng
module S = Ccs_util.Stats
module T = Ccs_util.Tables

let test_prng_deterministic () =
  let a = P.create 42 and b = P.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (P.next_int a) (P.next_int b)
  done;
  let c = P.create 43 in
  Alcotest.(check bool) "different seed, different stream" true
    (P.next_int (P.create 42) <> P.next_int c)

let test_prng_bounds () =
  let rng = P.create 7 in
  for _ = 1 to 1000 do
    let v = P.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = P.int_in rng 5 8 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 8);
    let f = P.float rng in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (P.int rng 0))

let test_prng_uniformity () =
  (* chi-square-ish sanity: 10 buckets, 10000 draws, each within 3x sigma *)
  let rng = P.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = P.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun count -> Alcotest.(check bool) "bucket near 1000" true (count > 850 && count < 1150))
    buckets

let test_prng_weighted () =
  let rng = P.create 13 in
  let counts = Array.make 2 0 in
  for _ = 1 to 2000 do
    let i = P.weighted rng [| 3.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "roughly 3:1" true
    (counts.(0) > 1350 && counts.(0) < 1650)

let test_prng_shuffle () =
  let rng = P.create 17 in
  let a = Array.init 20 Fun.id in
  P.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (S.mean a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (S.minimum a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (S.maximum a);
  Alcotest.(check (float 1e-9)) "median" 2.0 (S.median a);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (S.stddev a);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (S.percentile a 100.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (S.mean [||]))

let test_tables () =
  let t = T.create [ "a"; "bb" ] in
  T.add_row t [ "1"; "2" ];
  T.add_row t [ "333"; "4" ];
  let rendered = T.render t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.length = 4);
  Alcotest.check_raises "arity" (Invalid_argument "Tables.add_row: arity mismatch")
    (fun () -> T.add_row t [ "only-one" ])

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle ] );
      ("stats", [ Alcotest.test_case "basics" `Quick test_stats ]);
      ("tables", [ Alcotest.test_case "render" `Quick test_tables ]) ]
