test/test_ilp.ml: Alcotest Array Ccs_util Fun Ilp List Lp QCheck QCheck_alcotest Rat
