test/test_ext.ml: Alcotest Array Ccs Ccs_exact Ccs_util List QCheck QCheck_alcotest
