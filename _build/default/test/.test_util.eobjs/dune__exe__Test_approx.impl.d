test/test_approx.ml: Alcotest Array Bigint Ccs Ccs_exact Ccs_util List QCheck QCheck_alcotest Rat
