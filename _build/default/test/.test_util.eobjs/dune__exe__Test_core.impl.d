test/test_core.ml: Alcotest Array Ccs Ccs_util List QCheck QCheck_alcotest Rat String
