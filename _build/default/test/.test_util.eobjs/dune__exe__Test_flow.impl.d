test/test_flow.ml: Alcotest Array Ccs_util Flow List QCheck QCheck_alcotest Queue
