test/test_nfold.mli:
