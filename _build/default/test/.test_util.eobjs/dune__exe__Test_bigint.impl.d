test/test_bigint.ml: Alcotest Bigint Ccs_util List Printf QCheck QCheck_alcotest
