test/test_util.ml: Alcotest Array Ccs_util Fun List String
