test/test_rat.ml: Alcotest Bigint List QCheck QCheck_alcotest Rat
