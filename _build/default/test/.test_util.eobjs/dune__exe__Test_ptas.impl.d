test/test_ptas.ml: Alcotest Ccs Ccs_exact Ccs_util List Nfold Printf QCheck QCheck_alcotest Rat
