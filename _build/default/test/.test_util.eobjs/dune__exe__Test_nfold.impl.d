test/test_nfold.ml: Alcotest Array Ccs_util Nfold QCheck QCheck_alcotest
