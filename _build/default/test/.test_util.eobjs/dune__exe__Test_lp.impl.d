test/test_lp.ml: Alcotest Array Ccs_util Fun List Lp Lst_rounding QCheck QCheck_alcotest Rat
