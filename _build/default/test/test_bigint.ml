(* Bigint is the foundation of all exact arithmetic in this repository, so it
   gets the most aggressive cross-checking: every operation is compared
   against native-int arithmetic on ranges where that is exact, and the
   division/gcd identities are checked on values far beyond 63 bits. *)

module B = Bigint

let b = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check b

(* -- deterministic unit tests -- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int_exn (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 30; (1 lsl 30) - 1 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999999";
      "1000000000000000000000000000000000000000000000000000001" ]

let test_string_of_int_agree () =
  List.iter
    (fun n -> Alcotest.(check string) "repr" (string_of_int n) (B.to_string (B.of_int n)))
    [ 0; 7; -7; 1000000000; -1000000000; max_int; min_int ]

let test_pow () =
  check_b "2^100" (B.of_string "1267650600228229401496703205376") (B.pow (B.of_int 2) 100);
  check_b "10^30" (B.of_string "1000000000000000000000000000000") (B.pow (B.of_int 10) 30);
  check_b "x^0" B.one (B.pow (B.of_int 12345) 0)

let test_division_cases () =
  let q, r = B.div_rem (B.of_int 7) (B.of_int 2) in
  check_b "7/2" (B.of_int 3) q;
  check_b "7%2" (B.of_int 1) r;
  let q, r = B.div_rem (B.of_int (-7)) (B.of_int 2) in
  check_b "-7/2" (B.of_int (-3)) q;
  check_b "-7%2" (B.of_int (-1)) r;
  let q, r = B.div_rem (B.of_int 7) (B.of_int (-2)) in
  check_b "7/-2" (B.of_int (-3)) q;
  check_b "7%-2" (B.of_int 1) r;
  check_b "fdiv -7 2" (B.of_int (-4)) (B.fdiv (B.of_int (-7)) (B.of_int 2));
  check_b "cdiv 7 2" (B.of_int 4) (B.cdiv (B.of_int 7) (B.of_int 2));
  check_b "cdiv -7 2" (B.of_int (-3)) (B.cdiv (B.of_int (-7)) (B.of_int 2));
  check_b "fdiv 7 2" (B.of_int 3) (B.fdiv (B.of_int 7) (B.of_int 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.div_rem B.one B.zero))

let test_big_division () =
  (* (10^40 + 7) / (10^20 - 3): exercises the multi-limb Knuth-D path. *)
  let a = B.add (B.pow (B.of_int 10) 40) (B.of_int 7) in
  let d = B.sub (B.pow (B.of_int 10) 20) (B.of_int 3) in
  let q, r = B.div_rem a d in
  check_b "reconstruct" a (B.add (B.mul q d) r);
  Alcotest.(check bool) "0 <= r" true (B.compare r B.zero >= 0);
  Alcotest.(check bool) "r < d" true (B.compare r d < 0)

let test_gcd () =
  check_b "gcd 12 18" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  check_b "gcd 0 0" B.zero (B.gcd B.zero B.zero);
  check_b "gcd -12 18" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  check_b "gcd big" (B.pow (B.of_int 10) 25)
    (B.gcd (B.pow (B.of_int 10) 25) (B.mul (B.pow (B.of_int 10) 25) (B.of_int 7)))

let test_compare_order () =
  let vals =
    List.map B.of_string
      [ "-100000000000000000000"; "-5"; "0"; "3"; "100000000000000000000" ]
  in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (compare i j) (B.compare x y))
        vals)
    vals

let test_bit_length () =
  Alcotest.(check int) "0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "1" 1 (B.bit_length B.one);
  Alcotest.(check int) "2" 2 (B.bit_length (B.of_int 2));
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow (B.of_int 2) 100))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "small" 12345.0 (B.to_float (B.of_int 12345));
  Alcotest.(check (float 1e9)) "2^70" (2.0 ** 70.0) (B.to_float (B.pow (B.of_int 2) 70))

(* -- property-based tests -- *)

let mid_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

(* Arbitrary bigints built as products/sums of random ints so they exceed
   63 bits routinely. *)
let big_gen =
  QCheck.Gen.(
    map3
      (fun a b c -> B.add (B.mul (B.of_int a) (B.of_int b)) (B.of_int c))
      (int_range (-max_int) max_int) (int_range (-max_int) max_int)
      (int_range (-max_int) max_int))

let arb_big = QCheck.make ~print:B.to_string big_gen

let prop_add_matches_native =
  QCheck.Test.make ~name:"add matches native" ~count:1000
    QCheck.(pair mid_int mid_int)
    (fun (a, b) -> B.to_int_exn (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul_matches_native =
  QCheck.Test.make ~name:"mul matches native" ~count:1000
    QCheck.(pair mid_int mid_int)
    (fun (a, b) -> B.to_int_exn (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_div_matches_native =
  QCheck.Test.make ~name:"div_rem matches native" ~count:1000
    QCheck.(pair mid_int mid_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.div_rem (B.of_int a) (B.of_int b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let prop_div_reconstruct =
  QCheck.Test.make ~name:"a = q*b + r, |r|<|b|, sign r = sign a" ~count:2000
    QCheck.(pair arb_big arb_big)
    (fun (a, d) ->
      QCheck.assume (not (B.is_zero d));
      let q, r = B.div_rem a d in
      B.equal a (B.add (B.mul q d) r)
      && B.compare (B.abs r) (B.abs d) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string ∘ to_string = id" ~count:1000 arb_big (fun a ->
      B.equal a (B.of_string (B.to_string a)))

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutative + assoc with sub" ~count:1000
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      B.equal (B.add a b) (B.add b a) && B.equal (B.sub (B.add a b) b) a)

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:1000
    QCheck.(triple arb_big arb_big arb_big)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both and is maximal-ish" ~count:500
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
      let g = B.gcd a b in
      B.sign g > 0 && B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric, consistent with sub" ~count:1000
    QCheck.(pair arb_big arb_big)
    (fun (a, b) ->
      let c = B.compare a b in
      c = -B.compare b a && c = B.sign (B.sub a b))

let prop_fdiv_cdiv =
  QCheck.Test.make ~name:"fdiv <= div_rem q <= cdiv" ~count:1000
    QCheck.(pair arb_big arb_big)
    (fun (a, d) ->
      QCheck.assume (not (B.is_zero d));
      let f = B.fdiv a d and c = B.cdiv a d in
      (* f*d <= a <= c*d when d > 0; reversed otherwise. *)
      let lo, hi = if B.sign d > 0 then (B.mul f d, B.mul c d) else (B.mul c d, B.mul f d) in
      B.compare lo a <= 0 && B.compare a hi <= 0
      && B.compare (B.sub c f) B.one <= 0)

let prop_shift_scale =
  QCheck.Test.make ~name:"pow 2 k = repeated doubling" ~count:200
    (QCheck.int_range 0 200)
    (fun k ->
      let rec dbl acc i = if i = 0 then acc else dbl (B.add acc acc) (i - 1) in
      B.equal (B.pow (B.of_int 2) k) (dbl B.one k))

(* numbers big enough to cross the Karatsuba threshold (32 limbs ~ 960
   bits): products of ~2000-bit values *)
let huge_gen =
  QCheck.Gen.(
    map2
      (fun seed bits ->
        let rng = Ccs_util.Prng.create seed in
        let rec build acc remaining =
          if remaining <= 0 then acc
          else
            build
              (B.add (B.mul acc (B.of_int (1 lsl 30)))
                 (B.of_int (Ccs_util.Prng.int rng (1 lsl 30))))
              (remaining - 30)
        in
        build B.one bits)
      (int_range 0 1_000_000) (int_range 1200 2400))

let arb_huge = QCheck.make ~print:(fun b -> string_of_int (B.bit_length b)) huge_gen

let prop_karatsuba_consistent =
  (* algebraic cross-checks exercising the Karatsuba path: (a*b) / b = a,
     (a*b) mod b = 0, and distributivity at ~2000-bit scale *)
  QCheck.Test.make ~name:"huge multiplication: division and distributivity laws" ~count:60
    QCheck.(pair arb_huge arb_huge)
    (fun (a, b) ->
      let p = B.mul a b in
      let q, r = B.div_rem p b in
      B.equal q a && B.is_zero r
      && B.equal (B.mul (B.add a b) b) (B.add p (B.mul b b)))

let prop_karatsuba_string_roundtrip =
  QCheck.Test.make ~name:"huge values: string roundtrip" ~count:20 arb_huge (fun a ->
      B.equal a (B.of_string (B.to_string a)))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches_native; prop_mul_matches_native; prop_div_matches_native;
      prop_div_reconstruct; prop_string_roundtrip; prop_add_commutes;
      prop_mul_distributes; prop_gcd_divides; prop_compare_total_order;
      prop_fdiv_cdiv; prop_shift_scale; prop_karatsuba_consistent;
      prop_karatsuba_string_roundtrip ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "to_string agrees with string_of_int" `Quick test_string_of_int_agree;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "division sign conventions" `Quick test_division_cases;
          Alcotest.test_case "multi-limb division" `Quick test_big_division;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "total order" `Quick test_compare_order;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "to_float" `Quick test_to_float ] );
      ("properties", qsuite) ]
