(* Max-flow correctness: hand-checked networks, flow conservation, and
   agreement with a brute-force Ford-Fulkerson reference on random graphs. *)

let test_single_edge () =
  let g = Flow.create 2 in
  let e = Flow.add_edge g ~src:0 ~dst:1 ~cap:7 in
  Alcotest.(check int) "value" 7 (Flow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "edge flow" 7 (Flow.flow_on g e)

let test_classic_network () =
  (* CLRS figure: max flow 23. *)
  let g = Flow.create 6 in
  let add (s, d, c) = ignore (Flow.add_edge g ~src:s ~dst:d ~cap:c) in
  List.iter add
    [ (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4) ];
  Alcotest.(check int) "value" 23 (Flow.max_flow g ~source:0 ~sink:5)

let test_disconnected () =
  let g = Flow.create 4 in
  ignore (Flow.add_edge g ~src:0 ~dst:1 ~cap:5);
  ignore (Flow.add_edge g ~src:2 ~dst:3 ~cap:5);
  Alcotest.(check int) "no path" 0 (Flow.max_flow g ~source:0 ~sink:3)

let test_parallel_edges () =
  let g = Flow.create 2 in
  ignore (Flow.add_edge g ~src:0 ~dst:1 ~cap:3);
  ignore (Flow.add_edge g ~src:0 ~dst:1 ~cap:4);
  Alcotest.(check int) "sums" 7 (Flow.max_flow g ~source:0 ~sink:1)

let test_bipartite_matching () =
  (* 3x3 bipartite, perfect matching exists. *)
  let g = Flow.create 8 in
  let src = 6 and sink = 7 in
  for i = 0 to 2 do
    ignore (Flow.add_edge g ~src ~dst:i ~cap:1);
    ignore (Flow.add_edge g ~src:(3 + i) ~dst:sink ~cap:1)
  done;
  List.iter
    (fun (a, b) -> ignore (Flow.add_edge g ~src:a ~dst:(3 + b) ~cap:1))
    [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 0); (2, 2) ];
  Alcotest.(check int) "matching size" 3 (Flow.max_flow g ~source:src ~sink)

let test_min_cut () =
  let g = Flow.create 4 in
  ignore (Flow.add_edge g ~src:0 ~dst:1 ~cap:1);
  ignore (Flow.add_edge g ~src:1 ~dst:2 ~cap:100);
  ignore (Flow.add_edge g ~src:2 ~dst:3 ~cap:100);
  let v = Flow.max_flow g ~source:0 ~sink:3 in
  Alcotest.(check int) "bottleneck" 1 v;
  let cut = Flow.min_cut g ~source:0 in
  Alcotest.(check bool) "source side" true cut.(0);
  Alcotest.(check bool) "sink side" false cut.(3)

(* Reference: naive Ford-Fulkerson on an adjacency-matrix residual graph. *)
let reference_max_flow n edges source sink =
  let cap = Array.make_matrix n n 0 in
  List.iter (fun (s, d, c) -> cap.(s).(d) <- cap.(s).(d) + c) edges;
  let total = ref 0 in
  let rec augment () =
    let parent = Array.make n (-1) in
    parent.(source) <- source;
    let queue = Queue.create () in
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      for w = 0 to n - 1 do
        if parent.(w) < 0 && cap.(v).(w) > 0 then begin
          parent.(w) <- v;
          Queue.add w queue
        end
      done
    done;
    if parent.(sink) >= 0 then begin
      let rec bottleneck v acc = if v = source then acc else bottleneck parent.(v) (min acc cap.(parent.(v)).(v)) in
      let b = bottleneck sink max_int in
      let rec apply v =
        if v <> source then begin
          cap.(parent.(v)).(v) <- cap.(parent.(v)).(v) - b;
          cap.(v).(parent.(v)) <- cap.(v).(parent.(v)) + b;
          apply parent.(v)
        end
      in
      apply sink;
      total := !total + b;
      augment ()
    end
  in
  augment ();
  !total

let prop_matches_reference =
  QCheck.Test.make ~name:"dinic = ford-fulkerson on random graphs" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 2 9))
    (fun (seed, n) ->
      let rng = Ccs_util.Prng.create seed in
      let edges = ref [] in
      let count = Ccs_util.Prng.int_in rng 1 (n * (n - 1)) in
      for _ = 1 to count do
        let s = Ccs_util.Prng.int rng n and d = Ccs_util.Prng.int rng n in
        if s <> d then edges := (s, d, Ccs_util.Prng.int_in rng 0 20) :: !edges
      done;
      let g = Flow.create n in
      List.iter (fun (s, d, c) -> ignore (Flow.add_edge g ~src:s ~dst:d ~cap:c)) !edges;
      Flow.max_flow g ~source:0 ~sink:(n - 1)
      = reference_max_flow n !edges 0 (n - 1))

let prop_conservation =
  QCheck.Test.make ~name:"flow conservation at internal nodes" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 3 8))
    (fun (seed, n) ->
      let rng = Ccs_util.Prng.create seed in
      let edges = ref [] in
      for _ = 1 to 3 * n do
        let s = Ccs_util.Prng.int rng n and d = Ccs_util.Prng.int rng n in
        if s <> d then edges := (s, d, Ccs_util.Prng.int_in rng 1 10) :: !edges
      done;
      let g = Flow.create n in
      let ids = List.map (fun (s, d, c) -> (s, d, Flow.add_edge g ~src:s ~dst:d ~cap:c)) !edges in
      ignore (Flow.max_flow g ~source:0 ~sink:(n - 1));
      let net = Array.make n 0 in
      List.iter
        (fun (s, d, id) ->
          let f = Flow.flow_on g id in
          if f < 0 then failwith "negative flow";
          net.(s) <- net.(s) - f;
          net.(d) <- net.(d) + f)
        ids;
      let ok = ref true in
      for v = 1 to n - 2 do
        if net.(v) <> 0 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "flow"
    [ ( "unit",
        [ Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "classic CLRS network" `Quick test_classic_network;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "bipartite matching" `Quick test_bipartite_matching;
          Alcotest.test_case "min cut" `Quick test_min_cut ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_reference; prop_conservation ] ) ]
