(* N-fold machinery: structural validation, the flattened MILP backend on
   hand-built programs, and cross-checking the augmentation (Graver-walk)
   solver against the MILP backend on random small N-folds. *)

let simple_program () =
  (* Two blocks with vars (x_i, y_i); global row x1+y1+x2+y2 = 6, per-block
     row x_i - y_i = 0, bounds [0,5], minimize x1 + x2. Since x_i = y_i the
     global row forces x1 + x2 = 3, so the optimum objective is 3. *)
  Nfold.make_uniform ~n:2
    ~a:[| [| 1; 1 |] |]
    ~b:[| [| 1; -1 |] |]
    ~rhs_top:[| 6 |]
    ~rhs_block:[| [| 0 |]; [| 0 |] |]
    ~lower:[| 0; 0 |] ~upper:[| 5; 5 |]
    ~weight:[| 1; 0 |]

let test_validate_ok () = Nfold.validate (simple_program ())

let test_validate_catches () =
  let p = simple_program () in
  Alcotest.check_raises "bad rhs length" (Nfold.Invalid "rhs_top: wrong length")
    (fun () -> Nfold.validate { p with Nfold.rhs_top = [| 1; 2 |] })

let test_ilp_backend () =
  match Nfold.solve_ilp (simple_program ()) with
  | `Solution (x, obj) ->
      Alcotest.(check int) "objective" 3 obj;
      Alcotest.(check bool) "feasible" true (Nfold.check (simple_program ()) x);
      Alcotest.(check int) "x1 = y1" x.(0).(1) x.(0).(0)
  | _ -> Alcotest.fail "expected solution"

let test_infeasible () =
  let p =
    Nfold.make_uniform ~n:1
      ~a:[| [| 1 |] |]
      ~b:[| [| 1 |] |]
      ~rhs_top:[| 3 |]
      ~rhs_block:[| [| 4 |] |]
      ~lower:[| 0 |] ~upper:[| 10 |] ~weight:[| 0 |]
  in
  (match Nfold.solve_ilp p with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible (conflicting rows)");
  match Nfold.solve_augmentation ~max_norm:3 p with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "augmentation should agree"

let test_augmentation_simple () =
  let p = simple_program () in
  match Nfold.solve_augmentation ~max_norm:2 p with
  | `Solution (x, obj) ->
      Alcotest.(check bool) "feasible" true (Nfold.check p x);
      Alcotest.(check int) "objective matches ilp" 3 obj
  | `Infeasible -> Alcotest.fail "expected solution"

let test_phase1_only () =
  (* Pure feasibility program: one block, x + y = 7, x - y = 1 -> (4,3). *)
  let p =
    Nfold.make_uniform ~n:1
      ~a:[| [| 1; 1 |] |]
      ~b:[| [| 1; -1 |] |]
      ~rhs_top:[| 7 |]
      ~rhs_block:[| [| 1 |] |]
      ~lower:[| 0; 0 |] ~upper:[| 10; 10 |] ~weight:[| 0; 0 |]
  in
  match Nfold.find_feasible ~max_norm:2 p with
  | Some x ->
      Alcotest.(check bool) "feasible" true (Nfold.check p x);
      Alcotest.(check int) "x" 4 x.(0).(0);
      Alcotest.(check int) "y" 3 x.(0).(1)
  | None -> Alcotest.fail "expected feasible point"

(* Random small N-folds: n in [1,3], r,s in [1,2], t in [1,3], entries in
   [-2,2], bounds [0,3]. The augmentation solver (generous norm) must agree
   with the MILP backend on feasibility, and when both find solutions, on
   the objective value. *)
let prop_aug_matches_ilp =
  QCheck.Test.make ~name:"augmentation agrees with MILP backend" ~count:120
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let n = Ccs_util.Prng.int_in rng 1 3 in
      let r = Ccs_util.Prng.int_in rng 1 2 in
      let s = Ccs_util.Prng.int_in rng 1 2 in
      let t = Ccs_util.Prng.int_in rng 1 3 in
      let mat rows cols = Array.init rows (fun _ -> Array.init cols (fun _ -> Ccs_util.Prng.int_in rng (-2) 2)) in
      let p =
        {
          Nfold.r; s; t; n;
          a = Array.init n (fun _ -> mat r t);
          b = Array.init n (fun _ -> mat s t);
          rhs_top = Array.init r (fun _ -> Ccs_util.Prng.int_in rng (-4) 8);
          rhs_block = Array.init n (fun _ -> Array.init s (fun _ -> Ccs_util.Prng.int_in rng (-3) 6));
          lower = Array.init n (fun _ -> Array.make t 0);
          upper = Array.init n (fun _ -> Array.make t 3);
          weight = Array.init n (fun _ -> Array.init t (fun _ -> Ccs_util.Prng.int_in rng (-3) 3));
        }
      in
      match (Nfold.solve_ilp p, Nfold.solve_augmentation ~max_norm:6 p) with
      | `Infeasible, `Infeasible -> true
      | `Solution (_, o1), `Solution (x2, o2) -> Nfold.check p x2 && o1 = o2
      | `Node_limit, _ -> true (* no reference answer *)
      | `Solution _, `Infeasible -> false
      | `Infeasible, `Solution _ -> false)

let test_delta () =
  Alcotest.(check int) "delta" 1 (Nfold.delta (simple_program ()))

let () =
  Alcotest.run "nfold"
    [ ( "unit",
        [ Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate catches errors" `Quick test_validate_catches;
          Alcotest.test_case "MILP backend" `Quick test_ilp_backend;
          Alcotest.test_case "infeasible program" `Quick test_infeasible;
          Alcotest.test_case "augmentation on simple program" `Quick test_augmentation_simple;
          Alcotest.test_case "phase-1 feasibility" `Quick test_phase1_only;
          Alcotest.test_case "delta" `Quick test_delta ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_aug_matches_ilp ]) ]
