(* Shared observability flags for the CLIs: --log-level, --log-json,
   --trace-out, --metrics, --metrics-out, --record and --progress, plus
   the end-of-run reporting they imply. *)

open Cmdliner

type t = {
  trace_out : string option;
  metrics : bool;
  metrics_out : string option;
  record_out : string option;
  progress : bool;
}

let log_level =
  Arg.(
    value
    & opt string "warn"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log verbosity: off, error, warn, info, debug or trace.")

let log_json =
  Arg.(
    value & flag & info [ "log-json" ] ~doc:"Emit log lines as JSONL instead of text.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record solver-phase spans and write a Chrome trace-event JSON file.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the metrics registry as a table after the run.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry in OpenMetrics (Prometheus) text format \
           after the run.")

let record_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Enable the solver flight recorder and write its event stream \
           (convergence updates, phase GC/work attribution, checkpoint \
           samples) to FILE as JSONL.")

let progress =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a progress ticker to stderr during long solves: current \
           phase, relative gap, and elapsed time against the deadline.")

let setup level_s json trace metrics metrics_out record progress =
  (match Ccs_obs.Log.level_of_string level_s with
  | Ok lvl -> Ccs_obs.Log.set_level lvl
  | Error e ->
      Printf.eprintf "error: --log-level: %s\n" e;
      exit 2);
  if json then Ccs_obs.Log.set_format Ccs_obs.Log.Jsonl;
  if trace <> None then Ccs_obs.Span.set_enabled true;
  (* the ticker rides on the recorder's event stream, so --progress alone
     still starts one (it just never gets written out) *)
  if record <> None || progress then Ccs_obs.Recorder.start ();
  if progress then Ccs_obs.Recorder.set_progress true;
  { trace_out = trace; metrics; metrics_out; record_out = record; progress }

let term =
  Term.(
    const setup $ log_level $ log_json $ trace_out $ metrics $ metrics_out
    $ record_out $ progress)

(* Runs even when the solver raised: partial metrics, traces and recordings
   are exactly what one wants when diagnosing a failure. *)
let report t =
  (match t.trace_out with
  | Some path ->
      Ccs_obs.Span.write_chrome_trace path;
      Printf.eprintf "wrote trace (%d spans) to %s\n" (Ccs_obs.Span.count ()) path
  | None -> ());
  (match t.record_out with
  | Some path ->
      Ccs_obs.Recorder.write_jsonl path;
      Printf.eprintf "wrote recording (%d events, %d dropped) to %s\n"
        (List.length (Ccs_obs.Recorder.events ()))
        (Ccs_obs.Recorder.dropped ())
        path
  | None -> ());
  if t.metrics || t.metrics_out <> None then
    (* the cancellation layer batches its check count locally; fold the
       tail into the registry so no report under-reports it *)
    Ccs_resil.Deadline.flush_stats ();
  (match t.metrics_out with
  | Some path -> Ccs_obs.Metrics.write_openmetrics path
  | None -> ());
  if t.metrics then print_endline (Ccs_obs.Metrics.dump_table ())

let with_reporting t f =
  match f () with
  | code ->
      report t;
      code
  | exception e ->
      report t;
      raise e
