(* Shared observability flags for the two CLIs: --log-level, --log-json,
   --trace-out and --metrics, plus the end-of-run reporting they imply. *)

open Cmdliner

type t = { trace_out : string option; metrics : bool }

let log_level =
  Arg.(
    value
    & opt string "warn"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log verbosity: off, error, warn, info, debug or trace.")

let log_json =
  Arg.(
    value & flag & info [ "log-json" ] ~doc:"Emit log lines as JSONL instead of text.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record solver-phase spans and write a Chrome trace-event JSON file.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the metrics registry as a table after the run.")

let setup level_s json trace metrics =
  (match Ccs_obs.Log.level_of_string level_s with
  | Ok lvl -> Ccs_obs.Log.set_level lvl
  | Error e ->
      Printf.eprintf "error: --log-level: %s\n" e;
      exit 2);
  if json then Ccs_obs.Log.set_format Ccs_obs.Log.Jsonl;
  if trace <> None then Ccs_obs.Span.set_enabled true;
  { trace_out = trace; metrics }

let term = Term.(const setup $ log_level $ log_json $ trace_out $ metrics)

(* Runs even when the solver raised: partial metrics and traces are exactly
   what one wants when diagnosing a failure. *)
let report t =
  (match t.trace_out with
  | Some path ->
      Ccs_obs.Span.write_chrome_trace path;
      Printf.eprintf "wrote trace (%d spans) to %s\n" (Ccs_obs.Span.count ()) path
  | None -> ());
  if t.metrics then begin
    (* the cancellation layer batches its check count locally; fold the
       tail into the registry so the table never under-reports it *)
    Ccs_resil.Deadline.flush_stats ();
    print_endline (Ccs_obs.Metrics.dump_table ())
  end

let with_reporting t f =
  match f () with
  | code ->
      report t;
      code
  | exception e ->
      report t;
      raise e
