(* Solver CLI: read one or more instances, run a chosen algorithm, print and
   validate the schedules. Every algorithm of the paper is reachable from
   here. With --jobs N the instances are solved as a parallel batch on a
   Ccs_par pool (which the in-solver probe loops share); each instance's
   output is buffered and flushed in input order, so the bytes printed are
   identical at any job count. *)

open Cmdliner
module Q = Rat

type variant = Splittable | Preemptive | Nonpreemptive
type algo = Approx | Ptas | Exact | Nfold

let variant_conv =
  let parse = function
    | "splittable" | "split" -> Ok Splittable
    | "preemptive" | "pre" -> Ok Preemptive
    | "nonpreemptive" | "np" -> Ok Nonpreemptive
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with Splittable -> "splittable" | Preemptive -> "preemptive" | Nonpreemptive -> "nonpreemptive")
  in
  Arg.conv (parse, print)

let algo_conv =
  let parse = function
    | "approx" -> Ok Approx
    | "ptas" -> Ok Ptas
    | "exact" -> Ok Exact
    | "nfold" -> Ok Nfold
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a =
    Format.pp_print_string fmt
      (match a with Approx -> "approx" | Ptas -> "ptas" | Exact -> "exact" | Nfold -> "nfold")
  in
  Arg.conv (parse, print)

let print_nonpreemptive buf inst assignment =
  let machines = Hashtbl.create 16 in
  Array.iteri
    (fun j mi ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt machines mi) in
      Hashtbl.replace machines mi (j :: prev))
    assignment;
  Hashtbl.fold (fun mi jobs acc -> (mi, jobs) :: acc) machines []
  |> List.sort compare
  |> List.iter (fun (mi, jobs) ->
         let load = List.fold_left (fun acc j -> acc + (Ccs.Instance.job inst j).Ccs.Instance.p) 0 jobs in
         Printf.bprintf buf "machine %d (load %d): %s\n" mi load
           (String.concat " " (List.rev_map (fun j -> Printf.sprintf "j%d" j) jobs)))

let print_splittable buf sched =
  List.iter
    (fun b ->
      Printf.bprintf buf "machines %d..%d: class %d, %s each\n" b.Ccs.Schedule.m_start
        (b.Ccs.Schedule.m_start + b.Ccs.Schedule.m_count - 1)
        b.Ccs.Schedule.cls
        (Q.to_string b.Ccs.Schedule.per_machine))
    sched.Ccs.Schedule.blocks;
  List.iter
    (fun (mi, loads) ->
      Printf.bprintf buf "machine %d: %s\n" mi
        (String.concat ", "
           (List.map (fun (u, l) -> Printf.sprintf "class %d: %s" u (Q.to_string l)) loads)))
    sched.Ccs.Schedule.explicit_machines

let print_preemptive buf sched =
  Array.iteri
    (fun mi pieces ->
      if pieces <> [] then begin
        Printf.bprintf buf "machine %d:" mi;
        List.iter
          (fun pc ->
            Printf.bprintf buf " j%d@[%s,%s)" pc.Ccs.Schedule.pjob
              (Q.to_string pc.Ccs.Schedule.start)
              (Q.to_string (Q.add pc.Ccs.Schedule.start pc.Ccs.Schedule.len)))
          pieces;
        Buffer.add_char buf '\n'
      end)
    sched

(* Run-length-compressed printers (--compress): schedules are summarized
   per machine by class totals instead of per job, and consecutive machines
   with identical summaries collapse into one "machines a..b" line — the
   same idea as the splittable printer's blocks (Theorem 11's compressed
   output), extended to the integral variants so that printing a
   million-job schedule costs O(machines) lines, not O(jobs). *)

let print_nonpreemptive_compressed buf inst assignment =
  let machines = Hashtbl.create 16 in
  Array.iteri
    (fun j mi ->
      let per_cls =
        match Hashtbl.find_opt machines mi with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 4 in
            Hashtbl.replace machines mi h;
            h
      in
      let job = Ccs.Instance.job inst j in
      let cnt, load =
        Option.value ~default:(0, 0) (Hashtbl.find_opt per_cls job.Ccs.Instance.cls)
      in
      Hashtbl.replace per_cls job.Ccs.Instance.cls (cnt + 1, load + job.Ccs.Instance.p))
    assignment;
  let rows =
    Hashtbl.fold
      (fun mi h acc ->
        let classes =
          Hashtbl.fold (fun u v acc -> (u, v) :: acc) h [] |> List.sort compare
        in
        let load = List.fold_left (fun acc (_, (_, l)) -> acc + l) 0 classes in
        let desc =
          String.concat ", "
            (List.map
               (fun (u, (cnt, l)) -> Printf.sprintf "class %d: %d jobs, load %d" u cnt l)
               classes)
        in
        (mi, load, desc) :: acc)
      machines []
    |> List.sort compare
  in
  let rec emit = function
    | [] -> ()
    | (mi, load, desc) :: rest ->
        let rec run last = function
          | (mj, lj, dj) :: tl when mj = last + 1 && lj = load && dj = desc -> run mj tl
          | tl -> (last, tl)
        in
        let last, rest = run mi rest in
        if last = mi then Printf.bprintf buf "machine %d (load %d): %s\n" mi load desc
        else Printf.bprintf buf "machines %d..%d (load %d each): %s\n" mi last load desc;
        emit rest
  in
  emit rows

let print_preemptive_compressed buf inst sched =
  Array.iteri
    (fun mi pieces ->
      if pieces <> [] then begin
        let per_cls = Hashtbl.create 4 in
        let finish = ref Q.zero in
        List.iter
          (fun pc ->
            let cls = (Ccs.Instance.job inst pc.Ccs.Schedule.pjob).Ccs.Instance.cls in
            let cnt, tot =
              Option.value ~default:(0, Q.zero) (Hashtbl.find_opt per_cls cls)
            in
            Hashtbl.replace per_cls cls (cnt + 1, Q.add tot pc.Ccs.Schedule.len);
            finish := Q.max !finish (Q.add pc.Ccs.Schedule.start pc.Ccs.Schedule.len))
          pieces;
        let classes =
          Hashtbl.fold (fun u v acc -> (u, v) :: acc) per_cls [] |> List.sort compare
        in
        Printf.bprintf buf "machine %d (finish %s): %s\n" mi (Q.to_string !finish)
          (String.concat ", "
             (List.map
                (fun (u, (cnt, tot)) ->
                  Printf.sprintf "class %d: %d pieces, time %s" u cnt (Q.to_string tot))
                classes))
      end)
    sched

(* Anytime mode (--deadline-ms / --anytime): run the degradation ladder
   starting at the requested algorithm's rung. A deadline never fails the
   run — it degrades it, and the degraded incumbent is validated and
   printed with its certified lower bound and ratio. *)
let solve_anytime_one ~out inst variant algo param deadline_ms quiet ~compress ~portfolio
    ~node_limit =
  let module D = Ccs_anytime.Driver in
  let module O = Ccs_resil.Outcome in
  let start =
    match algo with
    | Exact -> D.Exact
    | Ptas | Nfold -> D.Ptas (* the ladder has one accuracy rung; nfold shares it *)
    | Approx -> D.Approx
  in
  let deadline = Option.map Ccs_resil.Deadline.of_budget_ms deadline_ms in
  let finish : 'a. string -> ('a -> (Q.t, string) result) -> ('a -> unit) -> 'a D.solved O.t -> unit =
   fun name validate print o ->
    match o with
    | O.Complete s ->
        let mk = Result.get_ok (validate s.D.schedule) in
        Printf.bprintf out "%s anytime: makespan %s (complete, %s rung)\n" name (Q.to_string mk)
          (D.rung_name s.D.rung);
        if not quiet then print s.D.schedule
    | O.Degraded dg ->
        (* The fallback rung cannot fail, so a degraded outcome always
           carries an incumbent. *)
        let s = Option.get dg.O.incumbent in
        let mk = Result.get_ok (validate s.D.schedule) in
        Printf.bprintf out
          "%s anytime: degraded at %s rung: incumbent makespan %s (%s rung), lower bound %s%s\n"
          name dg.O.phase_reached (Q.to_string mk) (D.rung_name s.D.rung)
          (Q.to_string dg.O.lower_bound)
          (match dg.O.ratio_bound with
          | Some r -> Printf.sprintf ", ratio <= %.4g" (Q.to_float r)
          | None -> "");
        if not quiet then print s.D.schedule
  in
  match variant with
  | Splittable ->
      finish "splittable"
        (Ccs.Schedule.validate_splittable inst)
        (print_splittable out)
        (D.solve_splittable ?deadline ~start ~param inst)
  | Preemptive ->
      finish "preemptive"
        (Ccs.Schedule.validate_preemptive inst)
        (if compress then print_preemptive_compressed out inst else print_preemptive out)
        (D.solve_preemptive ?deadline ~start ~param inst)
  | Nonpreemptive ->
      finish "non-preemptive"
        (fun a -> Result.map Q.of_int (Ccs.Schedule.validate_nonpreemptive inst a))
        ((if compress then print_nonpreemptive_compressed else print_nonpreemptive) out inst)
        (D.solve_nonpreemptive ?deadline ~start ~param ?node_limit ~portfolio inst)

(* Solve one instance, accumulating stdout/stderr text into the buffers.
   Returns the exit code. *)
let solve_one ~out ~err file variant algo epsilon quiet ~deadline_ms ~anytime ~format
    ~compress ~portfolio ~node_limit =
  (* Loading always streams into the flat form (text or binary is
     auto-detected); the record view is rebuilt for the solvers and
     validators that want it. --format flat routes the 2-approximations
     through their flat fast paths instead — same bits out either way. *)
  match Ccs.Io.load_flat file with
  | Error e ->
      Printf.bprintf err "error: %s\n" e;
      1
  | Ok fl -> (
      let inst = Ccs.Instance.of_flat fl in
      let print_np = if compress then print_nonpreemptive_compressed else print_nonpreemptive in
      let print_pre buf s =
        if compress then print_preemptive_compressed buf inst s else print_preemptive buf s
      in
      Printf.bprintf out "instance: n=%d m=%d c=%d C=%d\n" (Ccs.Instance.n inst)
        (Ccs.Instance.m inst) (Ccs.Instance.c inst) (Ccs.Instance.num_classes inst);
      let d = max 1 (int_of_float (ceil (1.0 /. epsilon))) in
      let param = Ccs.Ptas.Common.param d in
      try
        if anytime || deadline_ms <> None then begin
          solve_anytime_one ~out inst variant algo param deadline_ms quiet ~compress
            ~portfolio ~node_limit;
          0
        end
        else begin
        (match (variant, algo) with
        | Splittable, Approx ->
            let sched, stats =
              if format = `Flat then Ccs.Approx.Splittable.solve_flat fl
              else Ccs.Approx.Splittable.solve inst
            in
            let mk = Result.get_ok (Ccs.Schedule.validate_splittable inst sched) in
            Printf.bprintf out "splittable 2-approx: makespan %s (guess T=%s, <= 2T)\n"
              (Q.to_string mk) (Q.to_string stats.Ccs.Approx.Splittable.t_guess);
            if not quiet then print_splittable out sched
        | Splittable, Ptas ->
            let sched, stats = Ccs.Ptas.Splittable_ptas.solve param inst in
            let mk = Result.get_ok (Ccs.Schedule.validate_splittable inst sched) in
            Printf.bprintf out "splittable PTAS (delta=1/%d): makespan %s (accepted T=%s)\n" d
              (Q.to_string mk) (Q.to_string stats.Ccs.Ptas.Splittable_ptas.t_accepted);
            if not quiet then print_splittable out sched
        | Splittable, Nfold ->
            (* Dual-approximation search driven by the paper's literal
               N-fold formulation (Section 4.1): each guess is decided on
               the duplicated N-fold program, and the witness schedule for
               the accepted guess is recovered from the aggregated oracle —
               the two decide the same rounded program by construction. *)
            let delta = Ccs.Ptas.Common.delta param in
            let lb = Ccs.Bounds.lb_splittable inst in
            let ub = Q.max lb (Ccs.Bounds.ub_splittable inst) in
            let oracle t =
              if Ccs.Ptas.Nfold_form.feasible_splittable param inst t then
                match Ccs.Ptas.Splittable_ptas.oracle param inst t with
                | Some sched -> Some sched
                | None ->
                    failwith
                      "nfold backend accepted a guess the aggregated oracle rejects"
              else None
            in
            let sched, t_acc =
              Ccs.Ptas.Common.geometric_search ~lb ~ub ~delta ~oracle ()
            in
            let mk = Result.get_ok (Ccs.Schedule.validate_splittable inst sched) in
            Printf.bprintf out
              "splittable N-fold (delta=1/%d): makespan %s (accepted T=%s)\n" d
              (Q.to_string mk) (Q.to_string t_acc);
            if not quiet then print_splittable out sched
        | (Preemptive | Nonpreemptive), Nfold ->
            Printf.bprintf out
              "no N-fold backend for this variant (splittable only; see DESIGN.md)\n"
        | Splittable, Exact -> (
            match Ccs_exact.Splittable_opt.solve_schedule inst with
            | Some (opt, sched) ->
                Printf.bprintf out "splittable exact optimum: %s\n" (Q.to_string opt);
                if not quiet then print_splittable out sched
            | None -> Printf.bprintf out "exact solver out of budget or instance too large\n")
        | Preemptive, Approx ->
            let sched, stats =
              if format = `Flat then Ccs.Approx.Preemptive.solve_flat fl
              else Ccs.Approx.Preemptive.solve inst
            in
            let mk = Result.get_ok (Ccs.Schedule.validate_preemptive inst sched) in
            Printf.bprintf out "preemptive 2-approx: makespan %s (guess T=%s, <= 2T)\n"
              (Q.to_string mk) (Q.to_string stats.Ccs.Approx.Preemptive.t_guess);
            if not quiet then print_pre out sched
        | Preemptive, Ptas ->
            let sched, stats = Ccs.Ptas.Preemptive_ptas.solve param inst in
            let mk = Result.get_ok (Ccs.Schedule.validate_preemptive inst sched) in
            Printf.bprintf out "preemptive PTAS (delta=1/%d): makespan %s (accepted T=%s)\n" d
              (Q.to_string mk) (Q.to_string stats.Ccs.Ptas.Preemptive_ptas.t_accepted);
            if not quiet then print_pre out sched
        | Preemptive, Exact ->
            Printf.bprintf out "no exact preemptive solver (see DESIGN.md); lower bound: %s\n"
              (Q.to_string (Ccs.Bounds.lb_preemptive inst))
        | Nonpreemptive, Approx ->
            let sched, stats =
              if format = `Flat then Ccs.Approx.Nonpreemptive.solve_flat fl
              else Ccs.Approx.Nonpreemptive.solve inst
            in
            let mk = Result.get_ok (Ccs.Schedule.validate_nonpreemptive inst sched) in
            Printf.bprintf out "non-preemptive 7/3-approx: makespan %d (guess T=%d, <= 7/3 T)\n" mk
              stats.Ccs.Approx.Nonpreemptive.t_guess;
            if not quiet then print_np out inst sched
        | Nonpreemptive, Ptas ->
            let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve param inst in
            let mk = Result.get_ok (Ccs.Schedule.validate_nonpreemptive inst sched) in
            Printf.bprintf out "non-preemptive PTAS (delta=1/%d): makespan %d (accepted T=%s)\n" d mk
              (Q.to_string stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted);
            if not quiet then print_np out inst sched
        | Nonpreemptive, Exact when portfolio -> (
            match Ccs_exact.Portfolio.solve ?node_limit inst with
            | Some o when o.Ccs_exact.Portfolio.proved ->
                Printf.bprintf out "non-preemptive exact optimum: %d (portfolio winner: %s)\n"
                  o.Ccs_exact.Portfolio.makespan o.Ccs_exact.Portfolio.winner;
                if not quiet then print_np out inst o.Ccs_exact.Portfolio.assignment
            | Some o ->
                (* Every member abstained: mirror the anytime Degraded
                   contract — surface the incumbent plus the proven bound
                   instead of dropping them. *)
                Printf.bprintf out
                  "exact search out of budget: incumbent %d, proven lower bound %d\n"
                  o.Ccs_exact.Portfolio.makespan o.Ccs_exact.Portfolio.lower_bound;
                if not quiet then print_np out inst o.Ccs_exact.Portfolio.assignment
            | None -> Printf.bprintf out "instance is not schedulable\n")
        | Nonpreemptive, Exact -> (
            match Ccs_exact.Bnb.solve_result ?node_limit inst with
            | Some { Ccs_exact.Bnb.status = Complete; makespan; assignment; _ } ->
                Printf.bprintf out "non-preemptive exact optimum: %d\n" makespan;
                if not quiet then print_np out inst assignment
            | Some r ->
                Printf.bprintf out
                  "exact search out of budget: incumbent %d, proven lower bound %d\n"
                  r.Ccs_exact.Bnb.makespan r.Ccs_exact.Bnb.lower_bound;
                if not quiet then print_np out inst r.Ccs_exact.Bnb.assignment
            | None -> Printf.bprintf out "instance is not schedulable\n"));
        0
        end
      with
      | Invalid_argument msg ->
          Printf.bprintf err "error: %s\n" msg;
          1
      | Ccs.Ptas.Common.Too_many ->
          Printf.bprintf err "error: configuration space too large for this epsilon\n";
          1
      | Ccs.Ptas.Common.Budget_exceeded ->
          Printf.bprintf err "error: N-fold node budget exhausted\n";
          1)

let run files variant algo epsilon quiet jobs deadline_ms anytime format compress portfolio
    node_limit obs =
  Obs_cli.with_reporting obs @@ fun () ->
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be >= 1\n";
    2
  end
  else begin
    Ccs_par.set_jobs jobs;
    let many = List.length files > 1 in
    let results =
      Ccs_par.parallel_map
        (fun file ->
          let out = Buffer.create 256 and err = Buffer.create 64 in
          if many then Printf.bprintf out "=== %s ===\n" file;
          let code =
            solve_one ~out ~err file variant algo epsilon quiet ~deadline_ms ~anytime
              ~format ~compress ~portfolio ~node_limit
          in
          (out, err, code))
        (Array.of_list files)
    in
    Array.fold_left
      (fun acc (out, err, code) ->
        print_string (Buffer.contents out);
        prerr_string (Buffer.contents err);
        max acc code)
      0 results
  end

let cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"INSTANCE"
           ~doc:"Instance file(s) (ccs_gen format); several files form a batch.")
  in
  let variant = Arg.(value & opt variant_conv Nonpreemptive & info [ "variant" ] ~doc:"splittable, preemptive or nonpreemptive.") in
  let algo =
    Arg.(value & opt algo_conv Approx
           & info [ "algo" ]
               ~doc:"approx, ptas, exact, or nfold (the paper's literal N-fold \
                     formulation; splittable variant only).")
  in
  let epsilon = Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"PTAS accuracy (delta = 1/ceil(1/epsilon)).") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print the schedule.") in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the batch and the in-solver probe loops. \
                 Output is deterministic: seeded runs are bit-identical at any $(docv).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
           & info [ "deadline-ms" ] ~docv:"MS"
               ~doc:"Solve anytime under a $(docv) budget: walk the degradation ladder \
                     (exact, PTAS, 2-approx, greedy) and report the best incumbent with a \
                     certified ratio if the deadline lands mid-solve.")
  in
  let anytime =
    Arg.(value & flag
           & info [ "anytime" ]
               ~doc:"Use the degradation ladder even without a deadline ($(b,--algo) picks \
                     the starting rung).")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("flat", `Flat) ]) `Text
           & info [ "format" ] ~docv:"FMT"
               ~doc:"Solver pipeline: $(b,text) runs on the boxed record form, \
                     $(b,flat) runs the 2-approximations directly on the flat \
                     int-array form (same output bit-for-bit, built for \
                     million-job instances). Input files are auto-detected \
                     (text or ccsb1 binary) regardless of $(docv).")
  in
  let compress =
    Arg.(value & flag
           & info [ "compress" ]
               ~doc:"Run-length-compressed schedule output: per-machine class \
                     totals with identical consecutive machines collapsed, so \
                     printing costs O(machines) lines instead of O(jobs).")
  in
  let portfolio =
    Arg.(value & flag
           & info [ "portfolio" ]
               ~doc:"With $(b,--algo exact) (non-preemptive, plain or anytime): race \
                     the conflict-driven branch & bound against an exact \
                     configuration-ILP and an exact N-fold program on the $(b,--jobs) \
                     pool. The first proof in fixed member order wins, so the answer \
                     is bit-identical at any job count.")
  in
  let node_limit =
    Arg.(value & opt (some int) None
           & info [ "node-limit" ] ~docv:"N"
               ~doc:"Node budget for the exact search (and the anytime exact rung). \
                     When the budget runs out the incumbent and its proven lower \
                     bound are reported instead of being discarded.")
  in
  let info = Cmd.info "ccs_solve" ~doc:"Solve Class Constrained Scheduling instances" in
  Cmd.v info
    Term.(const run $ files $ variant $ algo $ epsilon $ quiet $ jobs $ deadline_ms $ anytime
          $ format $ compress $ portfolio $ node_limit $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
