(* Trend-report renderer: turns the bench artifacts (BENCH_timing.json,
   BENCH_baseline.json) and flight-recorder JSONL files into one markdown
   report — per-algo walls and counters, gap-convergence summaries per
   recording, per-phase GC/work attribution, and (with --check) the bench
   regression gate re-run against the baseline with its calibrated
   thresholds (shared with bench/check_regression via the Gate module).
   Exit code 1 when --check finds a regression, so CI can gate on it. *)

open Cmdliner
module J = Ccs_obs.Jsonx

let buf = Buffer.create 4096
let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt

let pct = function
  | Some d when Float.is_finite d -> Printf.sprintf "%+.1f%%" (100.0 *. d)
  | Some _ -> "+inf"
  | None -> "-"

let ms w = Printf.sprintf "%.3f ms" (1e3 *. w)

(* ---------------- BENCH_timing.json ---------------- *)

let render_timing path =
  match J.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Error e ->
      out "## Bench timing";
      out "";
      out "could not parse `%s`: %s" path e
  | Ok json ->
      out "## Bench timing (`%s`)" path;
      out "";
      (match J.member "rows" json with
      | Some (J.List rows) ->
          out "| variant | algo | n | wall | lp pivots | ilp nodes | ptas guesses |";
          out "|---|---|---:|---:|---:|---:|---:|";
          List.iter
            (fun row ->
              let str k = match J.member k row with Some (J.Str s) -> s | _ -> "?" in
              let int k = match J.member k row with Some (J.Int i) -> string_of_int i | _ -> "-" in
              let counter k =
                match Option.bind (J.member "counters" row) (J.member k) with
                | Some (J.Int i) -> string_of_int i
                | _ -> "-"
              in
              let wall =
                match J.member "wall_s" row with
                | Some (J.Float w) -> ms w
                | Some (J.Int w) -> ms (float_of_int w)
                | _ -> "-"
              in
              out "| %s | %s | %s | %s | %s | %s | %s |" (str "variant") (str "algo")
                (int "n") wall (counter "lp.pivots") (counter "ilp.nodes")
                (counter "ptas.guesses"))
            rows
      | _ -> out "no `rows` array found.");
      (match J.member "ptas_sweep" json with
      | Some sweep ->
          let f k = match J.member k sweep with Some (J.Float x) -> x | Some (J.Int i) -> float_of_int i | _ -> nan in
          out "";
          out "PTAS batch sweep: %.0f tasks, %.2fx speedup at `-j 4` (%.3fs → %.3fs)."
            (f "tasks") (f "speedup_jobs4") (f "wall_s_jobs1") (f "wall_s_jobs4")
      | None -> ());
      (match J.member "resil_sweep" json with
      | Some r ->
          let f k = match J.member k r with Some (J.Float x) -> x | Some (J.Int i) -> float_of_int i | _ -> nan in
          out "";
          out
            "Resilience sweep: %.0f runs at a %.0f ms deadline, %.0f degraded, %.0f \
             invalid outcomes; overshoot p50/p99/max = %.2f/%.2f/%.2f ms."
            (f "runs") (f "deadline_ms") (f "degraded") (f "invalid_outcomes")
            (f "overshoot_ms_p50") (f "overshoot_ms_p99") (f "overshoot_ms_max")
      | None -> ());
      (match J.member "xl_sweep" json with
      | Some xl ->
          let f j k =
            match J.member k j with
            | Some (J.Float x) -> x
            | Some (J.Int i) -> float_of_int i
            | _ -> nan
          in
          out "";
          out
            "### XL tier (n=%.0f, m=%.0f, C=%.0f)" (f xl "n") (f xl "machines")
            (f xl "classes");
          out "";
          out
            "Flat form: %.0f MB off-heap; peak heap %.0f Mwords. Generate %.2fM \
             jobs/s; parse %.2fM jobs/s (streaming text), %.2fM jobs/s (ccsb1 \
             binary)."
            (f xl "flat_mem_bytes" /. 1e6)
            (f xl "peak_heap_words" /. 1e6)
            (f xl "gen_jobs_per_s" /. 1e6)
            (f xl "parse_text_jobs_per_s" /. 1e6)
            (f xl "parse_bin_jobs_per_s" /. 1e6);
          (match J.member "solves" xl with
          | Some (J.List solves) ->
              out "";
              out "| variant (flat 2-approx) | wall | jobs/s | valid |";
              out "|---|---:|---:|---|";
              List.iter
                (fun s ->
                  let name =
                    match J.member "variant" s with Some (J.Str v) -> v | _ -> "?"
                  in
                  let valid =
                    match J.member "valid" s with
                    | Some (J.Bool true) -> "yes"
                    | Some (J.Bool false) -> "**NO**"
                    | _ -> "-"
                  in
                  out "| %s | %s | %.2fM | %s |" name (ms (f s "wall_s"))
                    (f s "jobs_per_s" /. 1e6) valid)
                solves
          | _ -> ())
      | None -> ());
      out ""

(* ---------------- recorder JSONL ---------------- *)

type phase_acc = {
  mutable n : int;
  mutable dur : float;
  mutable minor_w : float;
  mutable promoted_w : float;
  mutable major_w : float;
  mutable minor_c : int;
  mutable major_c : int;
  counters : (string, int) Hashtbl.t;
}

let gc_keys =
  [ "gc_minor_words"; "gc_promoted_words"; "gc_major_words";
    "gc_minor_collections"; "gc_major_collections" ]

let meta_keys = [ "t_s"; "ev"; "phase"; "id"; "dom"; "dur_s"; "raised" ] @ gc_keys

let render_recording path =
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  out "## Recording (`%s`)" path;
  out "";
  let parsed = List.filter_map (fun l -> Result.to_option (J.of_string l)) lines in
  if List.length parsed <> List.length lines then
    out "warning: %d of %d lines failed to parse."
      (List.length lines - List.length parsed)
      (List.length lines);
  (match parsed with
  | meta :: _ when J.member "format" meta = Some (J.Str "ccs-recorder") ->
      let i k = match J.member k meta with Some (J.Int n) -> n | _ -> 0 in
      out "%d events buffered, %d dropped by the ring." (i "events") (i "dropped")
  | _ -> out "warning: missing `ccs-recorder` meta header.");
  let events = List.filter (fun j -> J.member "format" j = None) parsed in
  let fnum j = match j with J.Float f -> Some f | J.Int n -> Some (float_of_int n) | _ -> None in
  (* gap convergence, grouped by event source *)
  let srcs = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      match (J.member "ev" ev, J.member "src" ev) with
      | Some (J.Str kind), Some (J.Str src)
        when kind = "incumbent" || kind = "lower_bound" -> (
          let v = Option.bind (J.member "value" ev) fnum in
          match v with
          | None -> ()
          | Some v ->
              let ub0, ub1, lb1, cnt =
                Option.value ~default:(None, None, None, 0) (Hashtbl.find_opt srcs src)
              in
              let upd =
                if kind = "incumbent" then
                  ((if ub0 = None then Some v else ub0), Some v, lb1, cnt + 1)
                else (ub0, ub1, Some v, cnt + 1)
              in
              Hashtbl.replace srcs src upd)
      | _ -> ())
    events;
  if Hashtbl.length srcs > 0 then begin
    out "";
    out "### Gap convergence";
    out "";
    out "| src | events | first incumbent | final incumbent | final lower bound | final gap |";
    out "|---|---:|---:|---:|---:|---:|";
    Hashtbl.fold (fun src acc l -> (src, acc) :: l) srcs []
    |> List.sort compare
    |> List.iter (fun (src, (ub0, ub1, lb1, cnt)) ->
           let f = function Some v -> Printf.sprintf "%g" v | None -> "-" in
           let gap =
             match (ub1, lb1) with
             | Some u, Some l when l > 0.0 -> Printf.sprintf "%.4f" ((u -. l) /. l)
             | _ -> "-"
           in
           out "| %s | %d | %s | %s | %s | %s |" src cnt (f ub0) (f ub1) (f lb1) gap)
  end;
  (* per-phase attribution from phase_end events *)
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match (J.member "ev" ev, J.member "phase" ev) with
      | Some (J.Str "phase_end"), Some (J.Str name) ->
          let acc =
            match Hashtbl.find_opt phases name with
            | Some a -> a
            | None ->
                let a =
                  { n = 0; dur = 0.0; minor_w = 0.0; promoted_w = 0.0;
                    major_w = 0.0; minor_c = 0; major_c = 0;
                    counters = Hashtbl.create 8 }
                in
                Hashtbl.replace phases name a;
                a
          in
          acc.n <- acc.n + 1;
          (match Option.bind (J.member "dur_s" ev) fnum with
          | Some d -> acc.dur <- acc.dur +. d
          | None -> ());
          let gf k = Option.value ~default:0.0 (Option.bind (J.member k ev) fnum) in
          let gi k = match J.member k ev with Some (J.Int n) -> n | _ -> 0 in
          acc.minor_w <- acc.minor_w +. gf "gc_minor_words";
          acc.promoted_w <- acc.promoted_w +. gf "gc_promoted_words";
          acc.major_w <- acc.major_w +. gf "gc_major_words";
          acc.minor_c <- acc.minor_c + gi "gc_minor_collections";
          acc.major_c <- acc.major_c + gi "gc_major_collections";
          (match ev with
          | J.Obj kvs ->
              List.iter
                (fun (k, v) ->
                  match v with
                  | J.Int n when not (List.mem k meta_keys) ->
                      Hashtbl.replace acc.counters k
                        (n + Option.value ~default:0 (Hashtbl.find_opt acc.counters k))
                  | _ -> ())
                kvs
          | _ -> ())
      | _ -> ())
    events;
  if Hashtbl.length phases > 0 then begin
    out "";
    out "### Phase attribution (inclusive of nested phases)";
    out "";
    out "| phase | spans | total wall | GC minor words | promoted | major words | minor/major GCs | work counters |";
    out "|---|---:|---:|---:|---:|---:|---:|---|";
    Hashtbl.fold (fun name acc l -> (name, acc) :: l) phases []
    |> List.sort compare
    |> List.iter (fun (name, a) ->
           let work =
             Hashtbl.fold (fun k v l -> (k, v) :: l) a.counters []
             |> List.sort compare
             |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
             |> String.concat ", "
           in
           out "| %s | %d | %s | %.0f | %.0f | %.0f | %d/%d | %s |" name a.n
             (ms a.dur) a.minor_w a.promoted_w a.major_w a.minor_c a.major_c
             (if work = "" then "-" else work))
  end;
  out ""

(* ---------------- regression gate (--check) ---------------- *)

let render_check baseline =
  out "## Regression gate vs `%s`" baseline;
  out "";
  match Gate.compare_to_baseline ~path:baseline () with
  | Error e ->
      out "gate skipped: %s" e;
      out "";
      0
  | Ok cmp ->
      out "Machine speed vs baseline: %.2fx (calibration %.4fs vs %.4fs); tolerance %.0f%%."
        cmp.Gate.scale cmp.Gate.calibration_s cmp.Gate.base_calibration_s
        (100.0 *. cmp.Gate.tol);
      out "";
      out "| phase | expected | current | delta | |";
      out "|---|---:|---:|---:|---|";
      List.iter
        (fun (r : Gate.wall_row) ->
          out "| %s | %s | %s | %s | %s |" r.name
            (match r.expected_s with Some e -> ms e | None -> "(new)")
            (ms r.current_s) (pct r.delta)
            (if r.regressed then "**REGRESSED**" else ""))
        cmp.Gate.wall_rows;
      List.iter
        (fun (r : Gate.counter_row) ->
          out "| %s | %s | %d | %s | %s |" r.cname
            (match r.expected with Some e -> string_of_int e | None -> "(new)")
            r.current (pct r.cdelta)
            (if r.cregressed then "**REGRESSED**" else ""))
        cmp.Gate.counter_rows;
      List.iter (fun n -> out "| %s | | | | (no longer measured) |" n) cmp.Gate.dropped_phases;
      out "";
      let regressed = Gate.regressions cmp in
      if regressed = [] then begin
        out "No phase regressed beyond tolerance.";
        out "";
        0
      end
      else begin
        out "**FAIL**: regressed: %s." (String.concat ", " regressed);
        out "";
        1
      end

(* ---------------- driver ---------------- *)

let run timing baseline records output check =
  out "# ccs trend report";
  out "";
  (match timing with
  | Some path when Sys.file_exists path -> render_timing path
  | Some path -> out "`%s` not found; timing section skipped.\n" path
  | None -> ());
  List.iter
    (fun path ->
      if Sys.file_exists path then render_recording path
      else out "`%s` not found; recording section skipped.\n" path)
    records;
  let code = if check then render_check baseline else 0 in
  (match output with
  | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
      Printf.printf "wrote %s\n" path
  | None -> print_string (Buffer.contents buf));
  code

let cmd =
  let timing =
    Arg.(value & opt (some string) (Some "BENCH_timing.json")
           & info [ "timing" ] ~docv:"FILE" ~doc:"Bench timing JSON to summarize.")
  in
  let baseline =
    Arg.(value & opt string "BENCH_baseline.json"
           & info [ "baseline" ] ~docv:"FILE"
               ~doc:"Regression-gate baseline (used by $(b,--check)).")
  in
  let records =
    Arg.(value & opt_all string []
           & info [ "record" ] ~docv:"FILE"
               ~doc:"Flight-recorder JSONL file(s) to summarize; repeatable.")
  in
  let output =
    Arg.(value & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE"
               ~doc:"Write the markdown report to $(docv) instead of stdout.")
  in
  let check =
    Arg.(value & flag
           & info [ "check" ]
               ~doc:"Re-run the bench regression gate against $(b,--baseline) (same \
                     calibrated thresholds as bench/check_regression) and exit 1 on \
                     regression.")
  in
  let info =
    Cmd.info "ccs_report" ~doc:"Render markdown trend reports from bench and recorder artifacts"
  in
  Cmd.v info Term.(const run $ timing $ baseline $ records $ output $ check)

let () = exit (Cmd.eval' cmd)
