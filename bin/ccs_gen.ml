(* Workload generator CLI: emits instances in the Ccs.Io text format. *)

open Cmdliner

let family_conv =
  let parse = function
    | "uniform" -> Ok Ccs.Generator.Uniform
    | "zipf" -> Ok Ccs.Generator.Zipf
    | "heavy" -> Ok Ccs.Generator.Heavy_classes
    | "large" -> Ok Ccs.Generator.Large_jobs
    | "lp-stress" -> Ok Ccs.Generator.Lp_stress
    | "bnb-stress" -> Ok Ccs.Generator.Bnb_stress
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown family %S (uniform|zipf|heavy|large|lp-stress|bnb-stress)" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | Ccs.Generator.Uniform -> "uniform"
      | Zipf -> "zipf"
      | Heavy_classes -> "heavy"
      | Large_jobs -> "large"
      | Lp_stress -> "lp-stress"
      | Bnb_stress -> "bnb-stress")
  in
  Arg.conv (parse, print)

let run n classes machines slots p_lo p_hi family seed output format obs =
  Obs_cli.with_reporting obs @@ fun () ->
  let spec = { Ccs.Generator.n; classes; machines; slots; p_lo; p_hi; family } in
  (* Both formats draw the same PRNG stream: a flat file holds exactly the
     instance the text file would, byte-exactly after renumbering. *)
  let fl =
    Ccs_obs.Span.with_ "gen.generate"
      ~fields:[ Ccs_obs.Log.int "n" n; Ccs_obs.Log.int "seed" seed ]
      (fun () -> Ccs.Generator.generate_flat ~seed spec)
  in
  Ccs_obs.Log.info (fun log ->
      log
        ~fields:
          [ Ccs_obs.Log.int "n" (Ccs.Instance.Flat.n fl);
            Ccs_obs.Log.int "classes" (Ccs.Instance.Flat.num_classes fl);
            Ccs_obs.Log.int "machines" (Ccs.Instance.Flat.m fl) ]
        "gen.generate: done");
  match format with
  | `Flat -> (
      match output with
      | None ->
          Printf.eprintf "error: --format flat is binary; -o FILE is required\n";
          2
      | Some path ->
          Ccs.Io.save_flat path fl;
          Printf.eprintf "wrote %s (n=%d, C=%d, flat binary)\n" path
            (Ccs.Instance.Flat.n fl)
            (Ccs.Instance.Flat.num_classes fl);
          0)
  | `Text ->
      let text = Ccs.Io.to_string_flat fl in
      (match output with
      | None -> print_string text
      | Some path ->
          Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
          Printf.eprintf "wrote %s (n=%d, C=%d)\n" path (Ccs.Instance.Flat.n fl)
            (Ccs.Instance.Flat.num_classes fl));
      0

let cmd =
  let n = Arg.(value & opt int 40 & info [ "n"; "jobs" ] ~doc:"Number of jobs.") in
  let classes = Arg.(value & opt int 8 & info [ "C"; "classes" ] ~doc:"Number of classes.") in
  let machines = Arg.(value & opt int 5 & info [ "m"; "machines" ] ~doc:"Number of machines.") in
  let slots = Arg.(value & opt int 3 & info [ "c"; "slots" ] ~doc:"Class slots per machine.") in
  let p_lo = Arg.(value & opt int 1 & info [ "p-lo" ] ~doc:"Minimum processing time.") in
  let p_hi = Arg.(value & opt int 100 & info [ "p-hi" ] ~doc:"Maximum processing time.") in
  let family =
    Arg.(value & opt family_conv Ccs.Generator.Uniform & info [ "family" ] ~doc:"Workload family: uniform, zipf, heavy or large.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file (stdout if absent).") in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("flat", `Flat) ]) `Text
           & info [ "format" ] ~docv:"FMT"
               ~doc:"Output format: $(b,text) (the ccs 1 line format) or $(b,flat) \
                     (binary ccsb1: int64 arrays, loads a million jobs in two bulk \
                     reads; requires $(b,-o)). Same seed, same instance, either way.")
  in
  let info = Cmd.info "ccs_gen" ~doc:"Generate Class Constrained Scheduling instances" in
  Cmd.v info Term.(const run $ n $ classes $ machines $ slots $ p_lo $ p_hi $ family $ seed $ output $ format $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
