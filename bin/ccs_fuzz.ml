(* Differential fuzzing CLI: seeded random instances through the Ccs_check
   oracle. Every applicable solver runs on every instance; schedules are
   validated, certificates are cross-checked within and across regimes, and
   metamorphic variants (scaled, permuted, one extra machine) must agree.
   Violations are shrunk to a self-contained repro. Exit code 1 iff any
   violation was found.

   The instance at index i depends only on (seed, i), so a report line
   replays exactly with --seed S (and --count > i) at any --jobs count. *)

open Cmdliner

let family_conv =
  let parse = function
    | "uniform" -> Ok Ccs.Generator.Uniform
    | "zipf" -> Ok Ccs.Generator.Zipf
    | "heavy" -> Ok Ccs.Generator.Heavy_classes
    | "large" -> Ok Ccs.Generator.Large_jobs
    | "lp-stress" -> Ok Ccs.Generator.Lp_stress
    | "bnb-stress" -> Ok Ccs.Generator.Bnb_stress
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown family %S (uniform|zipf|heavy|large|lp-stress|bnb-stress)" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | Ccs.Generator.Uniform -> "uniform"
      | Zipf -> "zipf"
      | Heavy_classes -> "heavy"
      | Large_jobs -> "large"
      | Lp_stress -> "lp-stress"
      | Bnb_stress -> "bnb-stress")
  in
  Arg.conv (parse, print)

(* Chaos mode (--faults and/or --deadline-ms): instead of the differential
   oracle, run the Ccs_anytime degradation ladder on every instance under
   deadlines and seeded fault injection and demand a valid schedule or a
   clean Degraded value from every run. Sequential by design — see
   Ccs_check.Chaos. *)
let run_chaos seed count epsilon max_n family deadline_ms faults cancel_ppm raise_ppm delay_ppm
    portfolio verbose =
  let d = max 1 (int_of_float (ceil (1.0 /. epsilon))) in
  let config =
    {
      Ccs_check.Chaos.default_config with
      seed;
      count;
      param = Ccs.Ptas.Common.param d;
      max_n;
      deadline_ms;
      faults;
      cancel_ppm;
      raise_ppm;
      delay_ppm;
      family;
      portfolio;
    }
  in
  let report = Ccs_check.Chaos.run config in
  List.iter
    (fun f -> print_string (Ccs_check.Chaos.render_failure config f))
    report.Ccs_check.Chaos.failures;
  if verbose then
    List.iter
      (fun (phase, n) -> Printf.printf "%-24s %8d degraded\n" phase n)
      report.Ccs_check.Chaos.phases;
  let nfail = List.length report.Ccs_check.Chaos.failures in
  Printf.printf
    "chaos: %d runs (seed %d%s%s): %d complete, %d degraded, max overshoot %.1fms: %s\n"
    report.Ccs_check.Chaos.runs seed
    (match deadline_ms with Some ms -> Printf.sprintf ", deadline %dms" ms | None -> "")
    (if faults then ", faults armed" else "")
    report.Ccs_check.Chaos.complete report.Ccs_check.Chaos.degraded
    report.Ccs_check.Chaos.max_overshoot_ms
    (if nfail = 0 then "no failures" else Printf.sprintf "%d failures" nfail);
  if nfail = 0 then 0 else 1

let run seed count epsilon jobs max_n family no_metamorphic no_shrink verbose deadline_ms faults
    cancel_ppm raise_ppm delay_ppm portfolio obs =
  Obs_cli.with_reporting obs @@ fun () ->
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be >= 1\n";
    2
  end
  else if count < 1 then begin
    Printf.eprintf "error: --count must be >= 1\n";
    2
  end
  else if faults || deadline_ms <> None then
    run_chaos seed count epsilon max_n family deadline_ms faults cancel_ppm raise_ppm delay_ppm
      portfolio verbose
  else begin
    Ccs_par.set_jobs jobs;
    let d = max 1 (int_of_float (ceil (1.0 /. epsilon))) in
    let param = Ccs.Ptas.Common.param d in
    let config =
      {
        Ccs_check.Runner.default_config with
        seed;
        count;
        param;
        metamorphic = not no_metamorphic;
        shrink = not no_shrink;
        max_n;
        family;
      }
    in
    let report = Ccs_check.Runner.run config in
    if verbose then begin
      Printf.printf "%-24s %8s %8s\n" "solver" "solved" "skipped";
      List.iter
        (fun t ->
          Printf.printf "%-24s %8d %8d\n" t.Ccs_check.Oracle.name
            t.Ccs_check.Oracle.solved t.Ccs_check.Oracle.skipped)
        report.Ccs_check.Runner.tallies
    end;
    List.iter
      (fun case -> print_string (Ccs_check.Runner.render_case config case))
      report.Ccs_check.Runner.cases;
    let nviol = List.length report.Ccs_check.Runner.cases in
    Printf.printf "checked %d instances (seed %d, delta 1/%d): %s\n"
      report.Ccs_check.Runner.checked seed d
      (if nviol = 0 then "no violations"
       else Printf.sprintf "%d violation%s" nviol (if nviol = 1 then "" else "s"));
    if nviol = 0 then 0 else 1
  end

let cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
           ~doc:"PRNG seed; instance $(i,i) depends only on ($(docv), i).")
  in
  let count = Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of instances to check.") in
  let epsilon = Arg.(value & opt float 0.5 & info [ "epsilon" ] ~doc:"PTAS accuracy (delta = 1/ceil(1/epsilon)).") in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains. Reports are bit-identical at any $(docv).")
  in
  let max_n =
    Arg.(value & opt int Ccs_check.Runner.default_config.Ccs_check.Runner.max_n
           & info [ "max-n" ] ~doc:"Cap on generated instance size.")
  in
  let family =
    Arg.(value & opt (some family_conv) None
           & info [ "family" ]
               ~doc:"Pin every instance to one workload family (uniform, zipf, heavy, \
                     large, lp-stress or bnb-stress) instead of drawing it per index. \
                     Applies to the differential oracle and to chaos mode.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
           & info [ "deadline-ms" ] ~docv:"MS"
               ~doc:"Chaos mode: run the anytime degradation ladder with a $(docv) budget per \
                     run instead of the differential oracle; every run must return a valid \
                     schedule or a clean degraded value.")
  in
  let faults =
    Arg.(value & flag
           & info [ "faults" ]
               ~doc:"Chaos mode: arm a seeded fault plan (cancellations, synthetic crashes, \
                     latency) at the solvers' cancellation checkpoints.")
  in
  let cancel_ppm = Arg.(value & opt int 1000 & info [ "cancel-ppm" ] ~doc:"Per-million cancel probability per checkpoint (with --faults).") in
  let raise_ppm = Arg.(value & opt int 500 & info [ "raise-ppm" ] ~doc:"Per-million synthetic-crash probability per checkpoint (with --faults).") in
  let delay_ppm = Arg.(value & opt int 500 & info [ "delay-ppm" ] ~doc:"Per-million latency-injection probability per checkpoint (with --faults).") in
  let portfolio =
    Arg.(value & flag
           & info [ "portfolio" ]
               ~doc:"Chaos mode: the non-preemptive ladder's exact rung races the solver \
                     portfolio (B&B, config-ILP, N-fold) instead of the lone branch & bound.")
  in
  let no_metamorphic = Arg.(value & flag & info [ "no-metamorphic" ] ~doc:"Skip the metamorphic (scale/permute/add-machine) probes.") in
  let no_shrink = Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report original instances instead of shrunk repros.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-solver solved/skipped tally.") in
  let info =
    Cmd.info "ccs_fuzz"
      ~doc:"Differential fuzzing oracle for the CCS solvers"
      ~man:
        [
          `S Manpage.s_description;
          `P "Generates seeded random instances, runs every applicable solver \
              (2-approx, PTAS and exact, in all three regimes), validates each \
              schedule and cross-checks the solvers' certified bounds against \
              each other and under metamorphic transforms. Violations are \
              shrunk and printed as self-contained repros.";
        ]
  in
  Cmd.v info
    Term.(const run $ seed $ count $ epsilon $ jobs $ max_n $ family $ no_metamorphic $ no_shrink
          $ verbose $ deadline_ms $ faults $ cancel_ppm $ raise_ppm $ delay_ppm $ portfolio
          $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
