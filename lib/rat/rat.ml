module B = Bigint

(* Invariants, both arms: den > 0 and gcd(num, den) = 1.
   [S (n, d)]: the canonical arm whenever both components fit a native
   [int]; neither component is [min_int] (so [abs]/[neg] cannot overflow).
   [Big (n, d)]: at least one component does not fit (or is [min_int]).
   Keeping the small arm canonical makes structural equality numeric. *)
type t = S of int * int | Big of B.t * B.t

(* ---- fast-path effectiveness counters (exact under domains) ---- *)

type stats = { small_hits : int; promotions : int }

type cell = { mutable hits : int; mutable promos : int }

let cells : cell list ref = ref []
let cells_mu = Mutex.create ()

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { hits = 0; promos = 0 } in
      Mutex.lock cells_mu;
      cells := c :: !cells;
      Mutex.unlock cells_mu;
      c)

let hit () =
  let c = Domain.DLS.get cell_key in
  c.hits <- Stdlib.( + ) c.hits 1

let promoted () =
  let c = Domain.DLS.get cell_key in
  c.promos <- Stdlib.( + ) c.promos 1

let stats () =
  Mutex.lock cells_mu;
  let cs = !cells in
  Mutex.unlock cells_mu;
  List.fold_left
    (fun acc c ->
      { small_hits = acc.small_hits + c.hits; promotions = acc.promotions + c.promos })
    { small_hits = 0; promotions = 0 }
    cs

(* ---- checked native-int helpers ---- *)

(* All int components are normalized away from [min_int], so [abs], [neg]
   and the division-based overflow probe below are safe. *)

let[@inline] add_ovf a b =
  let s = a + b in
  (* overflow iff operands share a sign and the sum flipped it; a sum of
     exactly [min_int] is representable but banned from the small arm *)
  if (a >= 0 = (b >= 0) && s >= 0 <> (a >= 0)) || s = min_int then None else Some s

let[@inline] mul_ovf a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / b = a && p <> min_int then Some p else None

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)
let gcd_int a b = gcd_int (Stdlib.abs a) (Stdlib.abs b)

(* ---- constructors ---- *)

let zero = S (0, 1)
let one = S (1, 1)
let minus_one = S (-1, 1)

(* (n, d) arbitrary ints, d <> 0: reduce, fix signs, build small. *)
let small_of_raw n d =
  if n = 0 then zero
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = gcd_int n d in
    if g = 1 then S (n, d) else S (n / g, d / g)
  end

(* Demote a normalized big pair when both components fit native ints. *)
let of_normalized_big n d =
  match (B.to_int_opt n, B.to_int_opt d) with
  | Some sn, Some sd when sn <> min_int && sd <> min_int -> S (sn, sd)
  | _ -> Big (n, d)

let make num den =
  if B.is_zero den then raise Division_by_zero
  else if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    let num, den = if B.equal g B.one then (num, den) else (B.div num g, B.div den g) in
    of_normalized_big num den
  end

let of_bigint n = of_normalized_big n B.one
let of_int n = if n = min_int then Big (B.of_int n, B.one) else S (n, 1)

let of_ints p q =
  if q = 0 then raise Division_by_zero
  else if p = min_int || q = min_int then make (B.of_int p) (B.of_int q)
  else small_of_raw p q

let num = function S (n, _) -> B.of_int n | Big (n, _) -> n
let den = function S (_, d) -> B.of_int d | Big (_, d) -> d
let is_small = function S _ -> true | Big _ -> false

(* The big path for a binary op: lift both operands, compute with Bigint,
   demote if the normalized result fits. *)
let big_parts = function
  | S (n, d) -> (B.of_int n, B.of_int d)
  | Big (n, d) -> (n, d)

let sign = function S (n, _) -> Stdlib.compare n 0 | Big (n, _) -> B.sign n
let is_zero = function S (n, _) -> n = 0 | Big _ -> false
let is_integer = function S (_, d) -> d = 1 | Big (_, d) -> B.equal d B.one

(* Canonical representation: structural comparison per arm, arms disjoint. *)
let equal a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> an = bn && ad = bd
  | Big (an, ad), Big (bn, bd) -> B.equal an bn && B.equal ad bd
  | S _, Big _ | Big _, S _ -> false

let compare_big a b =
  let an, ad = big_parts a and bn, bd = big_parts b in
  B.compare (B.mul an bd) (B.mul bn ad)

let compare a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> (
      if ad = bd then begin
        hit ();
        Stdlib.compare an bn
      end
      else
        (* cross-multiplication; denominators positive *)
        match (mul_ovf an bd, mul_ovf bn ad) with
        | Some x, Some y ->
            hit ();
            Stdlib.compare x y
        | _ ->
            promoted ();
            compare_big a b)
  | _ -> compare_big a b

let neg = function
  | S (n, d) -> S (-n, d)
  | Big (n, d) -> of_normalized_big (B.neg n) d

let abs = function
  | S (n, d) -> S (Stdlib.abs n, d)
  | Big (n, d) -> of_normalized_big (B.abs n) d

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n < 0 then S (-d, -n) else S (d, n)
  | Big (n, d) ->
      if B.sign n < 0 then of_normalized_big (B.neg d) (B.neg n)
      else of_normalized_big d n

let add_big a b =
  let an, ad = big_parts a and bn, bd = big_parts b in
  if B.equal ad bd then make (B.add an bn) ad
  else make (B.add (B.mul an bd) (B.mul bn ad)) (B.mul ad bd)

(* a/b + c/d with g = gcd(b, d): num = a*(d/g) + c*(b/g) over lcm = b*(d/g);
   gcd(num, lcm) divides g, so one extra reduction by gcd(num, g) suffices. *)
let add a b =
  match (a, b) with
  | S (0, _), x | x, S (0, _) -> x
  | S (an, ad), S (bn, bd) -> (
      let g = gcd_int ad bd in
      let ad' = ad / g and bd' = bd / g in
      match (mul_ovf an bd', mul_ovf bn ad', mul_ovf ad bd') with
      | Some x, Some y, Some den -> (
          match add_ovf x y with
          | Some n ->
              hit ();
              if n = 0 then zero
              else
                let g2 = gcd_int n g in
                if g2 = 1 then S (n, den) else S (n / g2, den / g2)
          | None ->
              promoted ();
              add_big a b)
      | _ ->
          promoted ();
          add_big a b)
  | _ -> add_big a b

let sub a b = add a (neg b)

let mul_big a b =
  let an, ad = big_parts a and bn, bd = big_parts b in
  make (B.mul an bn) (B.mul ad bd)

(* (a/b)*(c/d) with cross-reduction g1 = gcd(a,d), g2 = gcd(c,b): the
   result (a/g1)(c/g2) / ((b/g2)(d/g1)) is already in lowest terms. *)
let mul a b =
  match (a, b) with
  | S (0, _), _ | _, S (0, _) -> zero
  | S (1, 1), x | x, S (1, 1) -> x
  | S (an, ad), S (bn, bd) -> (
      let g1 = gcd_int an bd and g2 = gcd_int bn ad in
      match (mul_ovf (an / g1) (bn / g2), mul_ovf (ad / g2) (bd / g1)) with
      | Some n, Some d ->
          hit ();
          S (n, d)
      | _ ->
          promoted ();
          mul_big a b)
  | _ -> mul_big a b

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor = function
  | S (n, d) ->
      (* floor division on ints; d > 0 *)
      let q = if n >= 0 || n mod d = 0 then n / d else (n / d) - 1 in
      B.of_int q
  | Big (n, d) -> B.fdiv n d

let ceil = function
  | S (n, d) ->
      let q = if n <= 0 || n mod d = 0 then n / d else (n / d) + 1 in
      B.of_int q
  | Big (n, d) -> B.cdiv n d

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | Big (n, d) -> B.to_float n /. B.to_float d

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | Big (n, d) ->
      if B.equal d B.one then B.to_string n else B.to_string n ^ "/" ^ B.to_string d

let of_string s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | Some i ->
      let p = B.of_string (String.sub s 0 i) in
      let q = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make p q
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (B.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let whole = if int_part = "" || int_part = "-" then B.zero else B.of_string int_part in
          let scale = B.pow (B.of_int 10) (String.length frac) in
          let frac_v = if frac = "" then B.zero else B.of_string frac in
          let mag = B.add (B.mul (B.abs whole) scale) frac_v in
          make (if negative then B.neg mag else mag) scale)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
