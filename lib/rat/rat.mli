(** Exact rational numbers with a small-int fast path over {!Bigint}.

    Values are kept normalized: the denominator is positive and
    gcd(num, den) = 1, so structural equality coincides with numeric
    equality. Used for fractional makespan guesses (the borders [P_u/k] of
    Lemma 2), splittable/preemptive piece sizes, and the exact simplex.

    Representation: a rational whose numerator and denominator both fit a
    native [int] is stored unpacked as two immediates and operated on with
    overflow-checked native arithmetic; only when a checked operation would
    overflow does the value promote to the {!Bigint}-backed form. The
    canonical form is the small one — any big-form result that fits native
    ints demotes on construction — so the representation of a value is a
    function of the value alone and structural equality stays numeric.
    {!stats} reports how often the fast path was taken and how often an
    operation had to promote. *)

type t

val zero : t
val one : t
val minus_one : t

(** [make num den] normalizes; raises [Division_by_zero] on zero denominator. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints p q] is the rational p/q. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

(** True when the value is held in the unpacked native-int form. Exposed
    for the promotion-boundary tests and {!stats} consumers; algorithmic
    code should never branch on it. *)
val is_small : t -> bool

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

(** Largest integer <= t. *)
val floor : t -> Bigint.t

(** Smallest integer >= t. *)
val ceil : t -> Bigint.t

val to_float : t -> float

(** ["p/q"], or just ["p"] when integral. *)
val to_string : t -> string

(** Parses ["p"], ["p/q"] and decimal literals like ["3.25"]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** Fast-path effectiveness counters, exact under any number of domains
    (each domain accumulates locally; [stats] sums). [small_hits] counts
    arithmetic/comparison operations completed entirely on native ints;
    [promotions] counts operations that started small but overflowed to the
    {!Bigint} path. Construction-time demotions are not counted. *)
type stats = { small_hits : int; promotions : int }

val stats : unit -> stats

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
