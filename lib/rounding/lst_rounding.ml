module Q = Rat

let round ~sizes ~machines ~allowed ~cap =
  let nparts = Array.length sizes in
  if Array.length allowed <> nparts then invalid_arg "Lst_rounding.round";
  Ccs_obs.Recorder.phase "rounding"
  @@ fun () ->
  (* variable per allowed (part, machine) pair *)
  let var_of = Hashtbl.create 64 in
  let pairs = ref [] in
  let nv = ref 0 in
  Array.iteri
    (fun j ms ->
      List.iter
        (fun i ->
          if i < 0 || i >= machines then invalid_arg "Lst_rounding.round: bad machine";
          Hashtbl.replace var_of (j, i) !nv;
          pairs := (j, i) :: !pairs;
          incr nv)
        ms)
    allowed;
  let pairs = Array.of_list (List.rev !pairs) in
  let rows = ref [] in
  for j = 0 to nparts - 1 do
    let coeffs = List.map (fun i -> (Hashtbl.find var_of (j, i), Q.one)) allowed.(j) in
    rows := Lp.constr coeffs Lp.Eq Q.one :: !rows
  done;
  for i = 0 to machines - 1 do
    let coeffs = ref [] in
    Array.iteri
      (fun v (j, i') -> if i' = i then coeffs := (v, sizes.(j)) :: !coeffs)
      pairs;
    if !coeffs <> [] then rows := Lp.constr !coeffs Lp.Le cap :: !rows
  done;
  let lp =
    Lp.problem ~upper:(Array.make !nv (Some Q.one)) ~nvars:!nv
      ~objective:(Array.make !nv Q.zero) (List.rev !rows)
  in
  match Lp.solve lp with
  | Lp.Infeasible _ -> None
  | Lp.Unbounded _ -> assert false
  | Lp.Optimal { solution; _ } ->
      let assignment = Array.make nparts (-1) in
      let fractional = ref [] in
      Array.iteri
        (fun v (j, i) ->
          let x = solution.(v) in
          if Q.equal x Q.one then assignment.(j) <- i
          else if Q.sign x > 0 then fractional := (j, i) :: !fractional)
        pairs;
      let frac_parts =
        List.map fst !fractional |> List.sort_uniq compare
        |> List.filter (fun j -> assignment.(j) < 0)
      in
      if frac_parts <> [] then begin
        (* matching fractional parts into distinct machines via max-flow *)
        let part_ids = Array.of_list frac_parts in
        let nf = Array.length part_ids in
        let index_of = Hashtbl.create 16 in
        Array.iteri (fun k j -> Hashtbl.replace index_of j k) part_ids;
        let source = nf + machines and sink = nf + machines + 1 in
        let g = Flow.create (nf + machines + 2) in
        Array.iteri (fun k _ -> ignore (Flow.add_edge g ~src:source ~dst:k ~cap:1)) part_ids;
        let edge_list = ref [] in
        List.iter
          (fun (j, i) ->
            match Hashtbl.find_opt index_of j with
            | Some k -> edge_list := (k, i, Flow.add_edge g ~src:k ~dst:(nf + i) ~cap:1) :: !edge_list
            | None -> ())
          !fractional;
        for i = 0 to machines - 1 do
          ignore (Flow.add_edge g ~src:(nf + i) ~dst:sink ~cap:1)
        done;
        let v = Flow.max_flow g ~source ~sink in
        if v <> nf then
          failwith "Lst_rounding.round: no matching on the fractional support (solver bug)";
        List.iter
          (fun (k, i, e) -> if Flow.flow_on g e = 1 then assignment.(part_ids.(k)) <- i)
          !edge_list
      end;
      Array.iteri
        (fun j i -> if i < 0 then failwith (Printf.sprintf "Lst_rounding.round: part %d unassigned" j))
        assignment;
      Some assignment
