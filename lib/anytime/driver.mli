(** The graceful-degradation ladder: deadline-aware anytime solving.

    [solve_* ?deadline inst] walks a ladder of solvers from strongest to
    cheapest — exact, PTAS, 2-approximation (7/3 for non-preemptive),
    greedy fallback — under the cooperative cancellation tokens of
    {!Ccs_resil.Deadline}. Each rung inherits the remaining budget (a fresh
    child of the caller's token, so one rung tripping does not poison the
    next) and contributes to a shared incumbent / certified-lower-bound
    pair:

    - the exact solvers certify the optimum itself (and the non-preemptive
      branch & bound carries a valid incumbent from its very first node, so
      even an interrupted exact rung leaves a schedule behind);
    - a cancelled PTAS yields its best accepted witness plus the highest
      oracle-refuted guess, which the dual-approximation argument turns
      into a lower bound (the same [T_acc/(1+delta)] certificate
      {!Ccs_check.Solvers} reports for completed runs);
    - the approximation algorithms certify their accepted guess [T <= OPT]
      (Lemma 2 / Theorem 6).

    The 2-approximation rung runs under a small grace extension past the
    deadline ([grace_ms], default 25ms) and the final greedy rung is
    uninstrumented and allocation-light, so the ladder always terminates
    with a validator-clean schedule and the deadline overshoot stays
    bounded by the grace window plus one checkpoint latency. Overshoot is
    recorded in the [resil.deadline_overshoot_ms] histogram; every degraded
    return bumps [resil.degradations].

    This module lives outside {!Ccs_resil} (the ISSUE's working name was
    [Ccs_resil.Driver]) because the solvers it drives themselves depend on
    [ccs_resil] for their checkpoints — see DESIGN.md, "Cancellation
    contract". *)

type rung = Exact | Ptas | Approx | Fallback

val rung_name : rung -> string

(** A schedule with its validated makespan and the rung that produced it. *)
type 'a solved = { schedule : 'a; makespan : Rat.t; rung : rung }

(** [Complete s]: no rung was interrupted; [s] is the answer the ladder's
    strongest applicable rung produces (the exact optimum when the exact
    rung completed). [Degraded d]: a deadline, kill, or injected fault
    landed mid-ladder; [d.incumbent] is the best schedule recovered (always
    [Some] — the fallback rung cannot fail), [d.lower_bound] the best
    certificate, and [d.ratio_bound = makespan / lower_bound] a sound bound
    on how far the incumbent can be from this regime's optimum. *)
type 'a outcome = 'a solved Ccs_resil.Outcome.t

(** All [solve_*] functions: [deadline] defaults to the ambient token
    (wrapped in a child, so a pre-tripped ambient token degrades instead of
    raising); [start] picks the top rung (default [Exact]); [param] is the
    PTAS accuracy (default [delta = 1/3]); [node_limit] bounds each exact
    rung's branch & bound (default 200_000 nodes) so a deadline-free ladder
    still terminates; [grace_ms] is the post-deadline budget of the
    approximation rung. Raise [Invalid_argument] on unschedulable
    instances ([C > c*m]) like every solver in the repository. *)

val solve_splittable :
  ?deadline:Ccs_resil.Deadline.t ->
  ?start:rung ->
  ?param:Ccs.Ptas.Common.param ->
  ?node_limit:int ->
  ?grace_ms:int ->
  Ccs.Instance.t ->
  Ccs.Schedule.splittable outcome

val solve_preemptive :
  ?deadline:Ccs_resil.Deadline.t ->
  ?start:rung ->
  ?param:Ccs.Ptas.Common.param ->
  ?node_limit:int ->
  ?grace_ms:int ->
  Ccs.Instance.t ->
  Ccs.Schedule.preemptive outcome

(** [portfolio] (default false) replaces the exact rung's lone branch &
    bound with the {!Ccs_exact.Portfolio} race (B&B vs. config-ILP vs.
    N-fold on the ambient pool) — same deterministic answer at any
    [--jobs], but palette-style instances that stall the B&B get proven by
    an ILP member instead of degrading to the PTAS rung. *)
val solve_nonpreemptive :
  ?deadline:Ccs_resil.Deadline.t ->
  ?start:rung ->
  ?param:Ccs.Ptas.Common.param ->
  ?node_limit:int ->
  ?portfolio:bool ->
  ?grace_ms:int ->
  Ccs.Instance.t ->
  Ccs.Schedule.nonpreemptive outcome

(** The greedy last rungs, exposed for tests: job [j] on machine [j] when
    [m >= n], else everything of class [u] on machine [u mod m] — at most
    [ceil (C/m) <= c] classes per machine whenever the instance is
    schedulable, so the output always validates. No checkpoints, no
    search: these cannot be interrupted or fail. *)
val fallback_splittable : Ccs.Instance.t -> Ccs.Schedule.splittable
val fallback_preemptive : Ccs.Instance.t -> Ccs.Schedule.preemptive
val fallback_nonpreemptive : Ccs.Instance.t -> Ccs.Schedule.nonpreemptive
