(* The degradation ladder. Rung order is strongest-first; every rung runs
   under a fresh child of the caller's deadline token so that a rung
   tripped by the deadline (or by an injected fault) leaves the next rung
   with an un-tripped token carrying the exact remaining budget. The
   ladder's own state is a single incumbent / lower-bound pair; rungs only
   ever improve it, so an interruption at any point leaves a consistent
   value behind. *)

module Q = Rat
module Deadline = Ccs_resil.Deadline
module Outcome = Ccs_resil.Outcome
module Faults = Ccs_resil.Faults
module Metrics = Ccs_obs.Metrics
module Instance = Ccs.Instance
module Schedule = Ccs.Schedule
module Bounds = Ccs.Bounds
module Common = Ccs.Ptas.Common

type rung = Exact | Ptas | Approx | Fallback

let rung_name = function
  | Exact -> "exact"
  | Ptas -> "ptas"
  | Approx -> "approx"
  | Fallback -> "fallback"

type 'a solved = { schedule : 'a; makespan : Q.t; rung : rung }
type 'a outcome = 'a solved Outcome.t

let m_degraded = Metrics.counter "resil.degradations"
let h_overshoot = Metrics.histogram "resil.deadline_overshoot_ms"

let h_rung =
  Metrics.log_histogram
    ~help:"Wall time spent in one degradation-ladder rung" "anytime.rung_s"

(* ---------------- ladder state ---------------- *)

type 'a state = {
  mutable inc : 'a solved option;
  mutable lb : Q.t;
  mutable interrupted : bool;
  mutable phase : rung;
  ord : int;  (* this driver invocation's solve ordinal, for the recorder *)
}

let driver_solves = Atomic.make 0

let init lb =
  { inc = None; lb; interrupted = false; phase = Fallback;
    ord = Atomic.fetch_and_add driver_solves 1 }

(* Strongest rung wins ties: an equal-makespan incumbent from a later rung
   never displaces the earlier (stronger) one — which is also what keeps
   the recorder's driver gap trace non-increasing. *)
let accept st rung schedule makespan =
  match st.inc with
  | Some s when Q.(s.makespan <= makespan) -> ()
  | _ ->
      st.inc <- Some { schedule; makespan; rung };
      Ccs_obs.Recorder.incumbent ~src:"driver" ~solve:st.ord (Q.to_float makespan)

let raise_lb st v =
  if Q.(v > st.lb) then begin
    st.lb <- v;
    Ccs_obs.Recorder.lower_bound ~src:"driver" ~solve:st.ord (Q.to_float v)
  end

(* A rung body either finishes, is interrupted (deadline kill or injected
   fault — the ladder degrades), or reports the accuracy out of practical
   reach (PTAS configuration blow-up / ILP node budget — the ladder moves
   on without counting it as a degradation). *)
let guard st f =
  match f () with
  | v -> Some v
  | exception Deadline.Cancelled _ ->
      st.interrupted <- true;
      None
  | exception Faults.Injected _ ->
      st.interrupted <- true;
      None
  | exception Common.Too_many -> None
  | exception Common.Budget_exceeded -> None

(* Exact and PTAS rungs inherit the remaining budget exactly (fresh child,
   same expiry instant). The approximation rung gets a small grace window
   past the deadline — it is the cheapest rung with a certified guarantee,
   and the grace is what bounds the quality of a degraded answer; the
   greedy fallback carries no checkpoints at all, so [never] is honest. *)
let rung_token base ~grace_ms = function
  | Fallback -> Deadline.never
  | Approx -> (
      match Deadline.limit_ns base with
      | None -> if base == Deadline.never then base else Deadline.child base
      | Some l ->
          Deadline.of_limit_ns (max l (Ccs_util.Mono.now_ns () + Ccs_util.Mono.ns_of_ms grace_ms)))
  | Exact | Ptas -> if base == Deadline.never then base else Deadline.child base

let ladder = function
  | Exact -> [ Exact; Ptas; Approx; Fallback ]
  | Ptas -> [ Ptas; Approx; Fallback ]
  | Approx -> [ Approx; Fallback ]
  | Fallback -> [ Fallback ]

let climb st ~base ~grace_ms ~start step =
  (match Deadline.limit_ns base with
  | Some l when Ccs_obs.Recorder.active () -> Ccs_obs.Recorder.set_deadline_ns l
  | _ -> ());
  let rec go = function
    | [] -> ()
    | r :: rest ->
        st.phase <- r;
        let t0 = Ccs_util.Mono.now_ns () in
        let ok =
          Ccs_obs.Recorder.phase ("rung." ^ rung_name r) (fun () ->
              step r (rung_token base ~grace_ms r))
        in
        Metrics.observe_log h_rung (Ccs_util.Mono.elapsed_s ~since:t0);
        if not ok then go rest
  in
  go (ladder start)

let finish st ~base =
  (match Deadline.limit_ns base with
  | Some limit ->
      let over = Ccs_util.Mono.now_ns () - limit in
      Metrics.observe h_overshoot (float_of_int (max 0 over) /. 1e6)
  | None -> ());
  Deadline.flush_stats ();
  if st.interrupted then begin
    Metrics.incr m_degraded;
    Outcome.Degraded
      {
        incumbent = st.inc;
        lower_bound = st.lb;
        ratio_bound =
          (match st.inc with
          | Some s when Q.sign st.lb > 0 -> Some Q.(s.makespan / st.lb)
          | _ -> None);
        phase_reached = rung_name st.phase;
      }
  end
  else
    match st.inc with
    | Some s -> Outcome.Complete s
    | None -> assert false (* the fallback rung always produces *)

let check_schedulable who inst =
  if not (Instance.schedulable inst) then
    invalid_arg (Printf.sprintf "Ccs_anytime.Driver.%s: unschedulable instance (C > c*m)" who)

(* ---------------- greedy fallbacks ---------------- *)

(* Job [j] on machine [j] when machines abound; otherwise class [u] whole
   on machine [u mod m] — at most [ceil (C/m) <= c] classes per machine
   because the instance is schedulable (C <= c*m). O(n), no checkpoints. *)

let fallback_splittable inst =
  let n = Instance.n inst and m = Instance.m inst in
  if m >= n then
    {
      Schedule.blocks = [];
      explicit_machines =
        List.init n (fun j ->
            let job = Instance.job inst j in
            (j, [ (job.Instance.cls, Q.of_int job.Instance.p) ]));
    }
  else begin
    let loads = Instance.class_load inst in
    let per_machine = Array.make m [] in
    Array.iteri
      (fun u pu -> if pu > 0 then per_machine.(u mod m) <- (u, Q.of_int pu) :: per_machine.(u mod m))
      loads;
    let explicit = ref [] in
    for i = m - 1 downto 0 do
      if per_machine.(i) <> [] then explicit := (i, List.rev per_machine.(i)) :: !explicit
    done;
    { Schedule.blocks = []; explicit_machines = !explicit }
  end

let fallback_preemptive inst =
  let n = Instance.n inst and m = Instance.m inst in
  if m >= n then
    Array.init n (fun j ->
        let job = Instance.job inst j in
        [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int job.Instance.p } ])
  else begin
    let sched = Array.make m [] in
    let tops = Array.make m Q.zero in
    let jobs_of = Instance.class_jobs inst in
    Array.iteri
      (fun u js ->
        let i = u mod m in
        List.iter
          (fun j ->
            let len = Q.of_int (Instance.job inst j).Instance.p in
            sched.(i) <- { Schedule.pjob = j; start = tops.(i); len } :: sched.(i);
            tops.(i) <- Q.add tops.(i) len)
          js)
      jobs_of;
    Array.map List.rev sched
  end

let fallback_nonpreemptive inst =
  let n = Instance.n inst and m = Instance.m inst in
  if m >= n then Array.init n (fun j -> j)
  else Array.init n (fun j -> (Instance.job inst j).Instance.cls mod m)

(* ---------------- the three ladders ---------------- *)

let solve_splittable ?deadline ?(start = Exact) ?(param = Common.param 3) ?(node_limit = 200_000)
    ?(grace_ms = 25) inst =
  check_schedulable "solve_splittable" inst;
  let st = init (Bounds.lb_splittable inst) in
  let base = match deadline with Some d -> d | None -> Deadline.ambient () in
  let step r tok =
    match r with
    | Exact -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () ->
                  Ccs_exact.Splittable_opt.solve_schedule ~max_nodes:node_limit inst))
        with
        | Some (Some (opt, sched)) ->
            accept st Exact sched opt;
            raise_lb st opt;
            true
        | Some None | None -> false)
    | Ptas -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () -> Ccs.Ptas.Splittable_ptas.solve_anytime param inst))
        with
        | Some a ->
            Option.iter (raise_lb st) a.Common.refuted;
            (match a.Common.result with
            | Some (sched, _) -> accept st Ptas sched (Schedule.splittable_makespan sched)
            | None -> ());
            if not a.Common.complete then st.interrupted <- true;
            a.Common.complete
        | None -> false)
    | Approx -> (
        match
          guard st (fun () -> Deadline.with_token tok (fun () -> Ccs.Approx.Splittable.solve inst))
        with
        | Some (sched, stats) ->
            raise_lb st stats.Ccs.Approx.Splittable.t_guess;
            accept st Approx sched (Schedule.splittable_makespan sched);
            true
        | None -> false)
    | Fallback ->
        let sched = fallback_splittable inst in
        accept st Fallback sched (Schedule.splittable_makespan sched);
        true
  in
  climb st ~base ~grace_ms ~start step;
  finish st ~base

let solve_preemptive ?deadline ?(start = Exact) ?(param = Common.param 3) ?(node_limit = 200_000)
    ?(grace_ms = 25) inst =
  check_schedulable "solve_preemptive" inst;
  let st = init (Bounds.lb_preemptive inst) in
  let base = match deadline with Some d -> d | None -> Deadline.ambient () in
  let step r tok =
    match r with
    | Exact -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () ->
                  Ccs_exact.Preemptive_opt.solve ~max_nodes:node_limit inst))
        with
        | Some (Some (opt, sched)) ->
            accept st Exact sched opt;
            raise_lb st opt;
            true
        | Some None | None -> false)
    | Ptas -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () -> Ccs.Ptas.Preemptive_ptas.solve_anytime param inst))
        with
        | Some a ->
            Option.iter (raise_lb st) a.Common.refuted;
            (match a.Common.result with
            | Some (sched, _) -> accept st Ptas sched (Schedule.preemptive_makespan sched)
            | None -> ());
            if not a.Common.complete then st.interrupted <- true;
            a.Common.complete
        | None -> false)
    | Approx -> (
        match
          guard st (fun () -> Deadline.with_token tok (fun () -> Ccs.Approx.Preemptive.solve inst))
        with
        | Some (sched, stats) ->
            raise_lb st stats.Ccs.Approx.Preemptive.t_guess;
            accept st Approx sched (Schedule.preemptive_makespan sched);
            true
        | None -> false)
    | Fallback ->
        let sched = fallback_preemptive inst in
        accept st Fallback sched (Schedule.preemptive_makespan sched);
        true
  in
  climb st ~base ~grace_ms ~start step;
  finish st ~base

let solve_nonpreemptive ?deadline ?(start = Exact) ?(param = Common.param 3)
    ?(node_limit = 200_000) ?(portfolio = false) ?(grace_ms = 25) inst =
  check_schedulable "solve_nonpreemptive" inst;
  (* The optimum is integral, so the fractional load bound rounds up. *)
  let st = init (Q.of_bigint (Q.ceil (Bounds.lb_preemptive inst))) in
  let base = match deadline with Some d -> d | None -> Deadline.ambient () in
  let mk asg = Q.of_int (Schedule.nonpreemptive_makespan inst asg) in
  let step r tok =
    match r with
    | Exact when portfolio -> (
        (* The race returns the lowest-index member's proof (deterministic
           at any pool size); an unproved outcome still carries the
           warm-start incumbent plus the root bound. *)
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () ->
                  Ccs_exact.Portfolio.solve ~node_limit inst))
        with
        | Some (Some o) ->
            accept st Exact o.Ccs_exact.Portfolio.assignment
              (Q.of_int o.Ccs_exact.Portfolio.makespan);
            raise_lb st (Q.of_int o.Ccs_exact.Portfolio.lower_bound);
            o.Ccs_exact.Portfolio.proved
        | Some None | None -> false)
    | Exact -> (
        (* [solve_result] never raises on cancellation: the search
           warm-starts from the 7/3 approximation, so even an interrupted
           exact rung contributes a real incumbent — and always a proven
           root lower bound. *)
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () ->
                  Ccs_exact.Bnb.solve_result ~node_limit inst))
        with
        | Some (Some r) -> (
            accept st Exact r.Ccs_exact.Bnb.assignment (Q.of_int r.Ccs_exact.Bnb.makespan);
            raise_lb st (Q.of_int r.Ccs_exact.Bnb.lower_bound);
            match r.Ccs_exact.Bnb.status with
            | Ccs_exact.Bnb.Complete -> true
            | Ccs_exact.Bnb.Node_limit -> false
            | Ccs_exact.Bnb.Interrupted _ ->
                st.interrupted <- true;
                false)
        | Some None | None -> false)
    | Ptas -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () ->
                  Ccs.Ptas.Nonpreemptive_ptas.solve_anytime param inst))
        with
        | Some a ->
            Option.iter (raise_lb st) a.Common.refuted;
            (match a.Common.result with
            | Some (asg, _) -> accept st Ptas asg (mk asg)
            | None -> ());
            if not a.Common.complete then st.interrupted <- true;
            a.Common.complete
        | None -> false)
    | Approx -> (
        match
          guard st (fun () ->
              Deadline.with_token tok (fun () -> Ccs.Approx.Nonpreemptive.solve inst))
        with
        | Some (asg, stats) ->
            raise_lb st (Q.of_int stats.Ccs.Approx.Nonpreemptive.t_guess);
            accept st Approx asg (mk asg);
            true
        | None -> false)
    | Fallback ->
        let asg = fallback_nonpreemptive inst in
        accept st Fallback asg (mk asg);
        true
  in
  climb st ~base ~grace_ms ~start step;
  finish st ~base
