type job = { p : int; cls : int }

type t = { jobs : job array; machines : int; slots : int; classes : int }

let make ~machines ~slots jobs =
  if jobs = [] then invalid_arg "Instance.make: no jobs";
  if machines <= 0 then invalid_arg "Instance.make: machines must be positive";
  if slots <= 0 then invalid_arg "Instance.make: slots must be positive";
  List.iter
    (fun (p, cls) ->
      if p <= 0 then invalid_arg "Instance.make: processing times must be positive";
      if cls < 0 then invalid_arg "Instance.make: classes must be non-negative")
    jobs;
  (* Dense renumbering of the classes that actually occur, preserving order
     of first appearance of the original ids (sorted). *)
  let module IS = Set.Make (Int) in
  let used = List.fold_left (fun acc (_, cls) -> IS.add cls acc) IS.empty jobs in
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  IS.iter
    (fun cls ->
      Hashtbl.replace mapping cls !next;
      incr next)
    used;
  let classes = !next in
  let jobs =
    Array.of_list
      (List.map (fun (p, cls) -> { p; cls = Hashtbl.find mapping cls }) jobs)
  in
  { jobs; machines; slots = min slots classes; classes }

module Flat = struct
  module A1 = Bigarray.Array1

  type arr = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

  type t = { p : arr; cls : arr; machines : int; slots : int; classes : int }

  let n t = A1.dim t.p
  let m t = t.machines
  let c t = t.slots
  let num_classes t = t.classes
  let job_p t i = A1.unsafe_get t.p i
  let job_cls t i = A1.unsafe_get t.cls i

  (* Dense renumbering in place, with the same mapping as [make]: distinct
     original ids sorted ascending map to 0, 1, ... Returns the class
     count. O(n + C log C), no per-job boxing. *)
  let renumber (cls : arr) =
    let n = A1.dim cls in
    let seen = Hashtbl.create 1024 in
    for i = 0 to n - 1 do
      let u = A1.unsafe_get cls i in
      if not (Hashtbl.mem seen u) then Hashtbl.add seen u ()
    done;
    let ids = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
    let ids = List.sort compare ids in
    let mapping = Hashtbl.create (Hashtbl.length seen) in
    List.iteri (fun dense orig -> Hashtbl.replace mapping orig dense) ids;
    for i = 0 to n - 1 do
      A1.unsafe_set cls i (Hashtbl.find mapping (A1.unsafe_get cls i))
    done;
    List.length ids

  (* Takes ownership of the arrays (classes are renumbered in place). *)
  let of_bigarrays ~machines ~slots ~(p : arr) ~(cls : arr) =
    let n = A1.dim p in
    if n = 0 then invalid_arg "Instance.Flat: no jobs";
    if A1.dim cls <> n then invalid_arg "Instance.Flat: p/cls length mismatch";
    if machines <= 0 then invalid_arg "Instance.Flat: machines must be positive";
    if slots <= 0 then invalid_arg "Instance.Flat: slots must be positive";
    for i = 0 to n - 1 do
      if A1.unsafe_get p i <= 0 then
        invalid_arg "Instance.Flat: processing times must be positive";
      if A1.unsafe_get cls i < 0 then
        invalid_arg "Instance.Flat: classes must be non-negative"
    done;
    let classes = renumber cls in
    { p; cls; machines; slots = min slots classes; classes }

  let of_arrays ~machines ~slots ~p ~cls =
    let n = Array.length p in
    if Array.length cls <> n then invalid_arg "Instance.Flat: p/cls length mismatch";
    let pa = A1.create Bigarray.int Bigarray.c_layout n in
    let ca = A1.create Bigarray.int Bigarray.c_layout n in
    for i = 0 to n - 1 do
      A1.unsafe_set pa i (Array.unsafe_get p i);
      A1.unsafe_set ca i (Array.unsafe_get cls i)
    done;
    of_bigarrays ~machines ~slots ~p:pa ~cls:ca

  let total_load t =
    let acc = ref 0 in
    for i = 0 to n t - 1 do
      acc := !acc + A1.unsafe_get t.p i
    done;
    !acc

  let pmax t =
    let acc = ref 0 in
    for i = 0 to n t - 1 do
      let p = A1.unsafe_get t.p i in
      if p > !acc then acc := p
    done;
    !acc

  let class_load t =
    let loads = Array.make t.classes 0 in
    for i = 0 to n t - 1 do
      let u = A1.unsafe_get t.cls i in
      Array.unsafe_set loads u (Array.unsafe_get loads u + A1.unsafe_get t.p i)
    done;
    loads

  (* CSR view: [offsets] has [classes + 1] entries; the job indices of class
     [u], in increasing index order, are [ids.(offsets.(u)) ..
     ids.(offsets.(u+1) - 1)]. One O(n) counting pass, no per-class lists. *)
  let class_jobs_csr t =
    let nn = n t in
    let offsets = Array.make (t.classes + 1) 0 in
    for i = 0 to nn - 1 do
      let u = A1.unsafe_get t.cls i in
      offsets.(u + 1) <- offsets.(u + 1) + 1
    done;
    for u = 1 to t.classes do
      offsets.(u) <- offsets.(u) + offsets.(u - 1)
    done;
    let ids = Array.make nn 0 in
    let cursor = Array.sub offsets 0 t.classes in
    for i = 0 to nn - 1 do
      let u = A1.unsafe_get t.cls i in
      ids.(cursor.(u)) <- i;
      cursor.(u) <- cursor.(u) + 1
    done;
    (offsets, ids)

  let schedulable t = t.machines >= (t.classes + t.slots - 1) / t.slots

  (* Heap-external footprint of the two Bigarrays, for the XL memory gate. *)
  let mem_bytes t = 8 * (A1.dim t.p + A1.dim t.cls)
end

let to_flat t =
  let n = Array.length t.jobs in
  let p = Flat.A1.create Bigarray.int Bigarray.c_layout n in
  let cls = Flat.A1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    let j = Array.unsafe_get t.jobs i in
    Flat.A1.unsafe_set p i j.p;
    Flat.A1.unsafe_set cls i j.cls
  done;
  { Flat.p; cls; machines = t.machines; slots = t.slots; classes = t.classes }

(* The flat invariants (dense classes, clamped slots, positive sizes) mirror
   [make]'s, so the record can be rebuilt directly — no revalidation pass. *)
let of_flat (f : Flat.t) =
  let n = Flat.n f in
  let jobs =
    Array.init n (fun i -> { p = Flat.job_p f i; cls = Flat.job_cls f i })
  in
  { jobs; machines = f.Flat.machines; slots = f.Flat.slots; classes = f.Flat.classes }

let n t = Array.length t.jobs
let m t = t.machines
let c t = t.slots
let num_classes t = t.classes

let job t i = t.jobs.(i)

let total_load t = Array.fold_left (fun acc j -> acc + j.p) 0 t.jobs

let pmax t = Array.fold_left (fun acc j -> max acc j.p) 0 t.jobs

let class_load t =
  let loads = Array.make t.classes 0 in
  Array.iter (fun j -> loads.(j.cls) <- loads.(j.cls) + j.p) t.jobs;
  loads

let class_jobs t =
  let buckets = Array.make t.classes [] in
  for i = Array.length t.jobs - 1 downto 0 do
    let cls = t.jobs.(i).cls in
    buckets.(cls) <- i :: buckets.(cls)
  done;
  buckets

let schedulable t =
  (* C <= c * m, phrased divisionally so huge m cannot overflow. *)
  t.machines >= (t.classes + t.slots - 1) / t.slots

let encoding_length t =
  let bits x = max 1 (int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.0))) in
  Array.fold_left (fun acc j -> acc + bits j.p + bits (j.cls + 1)) 0 t.jobs
  + Array.length t.jobs + bits t.machines

let pp fmt t =
  Format.fprintf fmt "@[<v>CCS instance: n=%d, m=%d, c=%d, C=%d@,jobs:" (n t) t.machines
    t.slots t.classes;
  Array.iteri (fun i j -> Format.fprintf fmt "@, %3d: p=%d class=%d" i j.p j.cls) t.jobs;
  Format.fprintf fmt "@]"
