(** Lower and upper bounds on the optimal makespan, as used throughout
    Section 3 of the paper. All bounds are exact rationals. *)

(** Splittable lower bound: the average load [sum p_j / m] (the paper's LB
    for Algorithm 1). *)
val lb_splittable : Instance.t -> Rat.t

(** Representation-free form of {!lb_splittable}, shared by the record and
    flat solver paths. *)
val lb_splittable_of : total_load:int -> machines:int -> Rat.t

(** Preemptive / non-preemptive lower bound:
    [max (pmax, sum p_j / m)] (Theorems 5 and 6). *)
val lb_preemptive : Instance.t -> Rat.t

(** Representation-free form of {!lb_preemptive}. *)
val lb_preemptive_of : total_load:int -> machines:int -> pmax:int -> Rat.t

(** A valid class-slot-aware splittable lower bound: the smallest T such
    that splitting every class into [ceil (P_u / T)] sub-classes fits in
    [c * m] slots — i.e. exactly the value the advanced binary search of
    Lemma 2 computes. Combined with {!lb_splittable} this equals the T used
    by Algorithm 1 and is itself a lower bound on the splittable optimum. *)

(** Upper bound [c * max_u P_u] (Algorithm 1). Computed as a rational to
    survive huge values. *)
val ub_splittable : Instance.t -> Rat.t

(** Upper bound [n * pmax] for the integral cases. Returned as an exact
    rational: the product overflows native ints when [pmax] is near
    [max_int], which seeded fuzz instances do exercise. *)
val ub_integral : Instance.t -> Rat.t
