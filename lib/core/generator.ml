module Prng = Ccs_util.Prng

type family = Uniform | Zipf | Heavy_classes | Large_jobs | Lp_stress | Bnb_stress

type spec = {
  n : int;
  classes : int;
  machines : int;
  slots : int;
  p_lo : int;
  p_hi : int;
  family : family;
}

let default =
  { n = 40; classes = 8; machines = 5; slots = 3; p_lo = 1; p_hi = 100; family = Uniform }

let generate_draws ~seed spec =
  if spec.n <= 0 || spec.classes <= 0 then invalid_arg "Generator.generate";
  let rng = Prng.create seed in
  let pick_class =
    match spec.family with
    | Uniform | Large_jobs -> fun () -> Prng.int rng spec.classes
    | Lp_stress | Bnb_stress ->
        (* Round-robin: every class receives the same job-size multiset (up
           to one job), so classes are interchangeable and the induced
           configuration LPs carry duplicated columns. *)
        let next = ref (-1) in
        fun () ->
          incr next;
          !next mod spec.classes
    | Zipf ->
        let weights =
          Array.init spec.classes (fun i -> 1.0 /. float_of_int (i + 1))
        in
        fun () -> Prng.weighted rng weights
    | Heavy_classes ->
        (* 80% of jobs land in the first max(1, classes/4) classes. *)
        let heavy = max 1 (spec.classes / 4) in
        if heavy >= spec.classes then fun () -> Prng.int rng spec.classes
        else
          fun () ->
            if Prng.float rng < 0.8 then Prng.int rng heavy
            else heavy + Prng.int rng (spec.classes - heavy)
  in
  let pick_p =
    match spec.family with
    | Uniform | Zipf | Heavy_classes -> fun () -> Prng.int_in rng spec.p_lo spec.p_hi
    | Lp_stress ->
        (* Only two or three distinct sizes in the whole instance: massive
           ties make every simplex vertex degenerate (many minimum-ratio
           rows) and the config-LP columns near-singular. *)
        let palette =
          [| max spec.p_lo (spec.p_hi / 2); max spec.p_lo (spec.p_hi / 3); spec.p_hi |]
        in
        let k = 2 + Prng.int rng 2 in
        fun () -> palette.(Prng.int rng k)
    | Bnb_stress ->
        (* Near-perfect-partition pressure for the exact search: every job
           sits in a narrow band around p_hi/2, so machine loads tie within
           a hair of each other everywhere in the tree — the area bound is
           weak, incumbents improve by 1, and the DFS goes deep. Combined
           with the round-robin classes above, slot constraints bite too. *)
        let lo = max spec.p_lo (spec.p_hi * 7 / 16) in
        let hi = max lo (spec.p_hi * 9 / 16) in
        fun () -> Prng.int_in rng lo hi
    | Large_jobs ->
        (* Jobs clustered just above p_hi/2 and just above p_hi/3: the
           regimes distinguished by the non-preemptive C_u^2 computation. *)
        fun () ->
          let r = Prng.float rng in
          if r < 0.4 then Prng.int_in rng ((spec.p_hi / 2) + 1) spec.p_hi
          else if r < 0.8 then Prng.int_in rng ((spec.p_hi / 3) + 1) (spec.p_hi / 2)
          else Prng.int_in rng (max 1 spec.p_lo) (max 1 (spec.p_hi / 3))
  in
  (* One explicit draw loop shared by both representations: class first,
     then size — the same stream order the historical
     [List.init n (fun _ -> (pick_p (), pick_class ()))] consumed (tuples
     evaluate right to left), so seeds reproduce the same instances. *)
  let p = Array.make spec.n 0 and cls = Array.make spec.n 0 in
  for i = 0 to spec.n - 1 do
    cls.(i) <- pick_class ();
    p.(i) <- pick_p ()
  done;
  Instance.Flat.of_arrays ~machines:spec.machines ~slots:spec.slots ~p ~cls

let generate_flat ~seed spec = generate_draws ~seed spec

let generate ~seed spec = Instance.of_flat (generate_draws ~seed spec)

let figure1_example () =
  (* Ten classes with strictly decreasing loads, four machines, two slots:
     round robin wraps exactly as in Figure 1. *)
  let sizes = [ 20; 18; 16; 14; 12; 10; 8; 6; 4; 2 ] in
  let jobs = List.concat (List.mapi (fun u s -> [ (s, u) ]) sizes) in
  Instance.make ~machines:4 ~slots:3 jobs
