module Q = Rat

let lb_splittable_of ~total_load ~machines =
  Q.make (Bigint.of_int total_load) (Bigint.of_int machines)

let lb_splittable inst =
  lb_splittable_of ~total_load:(Instance.total_load inst) ~machines:(Instance.m inst)

let lb_preemptive_of ~total_load ~machines ~pmax =
  Q.max (Q.of_int pmax) (lb_splittable_of ~total_load ~machines)

let lb_preemptive inst =
  lb_preemptive_of ~total_load:(Instance.total_load inst) ~machines:(Instance.m inst)
    ~pmax:(Instance.pmax inst)

let ub_splittable inst =
  let max_load = Array.fold_left max 0 (Instance.class_load inst) in
  Q.mul (Q.of_int (Instance.c inst)) (Q.of_int max_load)

let ub_integral inst =
  (* n * pmax overflows native ints for the huge processing times random
     instances can carry; compute over Bigint-backed rationals instead. *)
  Q.mul (Q.of_int (Instance.n inst)) (Q.of_int (Instance.pmax inst))
