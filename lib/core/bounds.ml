module Q = Rat

let lb_splittable inst =
  Q.make (Bigint.of_int (Instance.total_load inst)) (Bigint.of_int (Instance.m inst))

let lb_preemptive inst = Q.max (Q.of_int (Instance.pmax inst)) (lb_splittable inst)

let ub_splittable inst =
  let max_load = Array.fold_left max 0 (Instance.class_load inst) in
  Q.mul (Q.of_int (Instance.c inst)) (Q.of_int max_load)

let ub_integral inst =
  (* n * pmax overflows native ints for the huge processing times random
     instances can carry; compute over Bigint-backed rationals instead. *)
  Q.mul (Q.of_int (Instance.n inst)) (Q.of_int (Instance.pmax inst))
