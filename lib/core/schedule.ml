module Q = Rat

type block = { cls : int; m_start : int; m_count : int; per_machine : Q.t }

type splittable = {
  blocks : block list;
  explicit_machines : (int * (int * Q.t) list) list;
}

type piece = { job : int; size : Q.t }

module IS = Set.Make (Int)

(* [explicit_block_fold ~init ~add blocks explicit] accumulates, for each
   entry of [explicit] (by position), [add] over the blocks whose machine
   range contains that entry's machine. The explicit ids are sorted once and
   each block touches only the ids inside its range, so the whole pass is
   O((B + E) log E) instead of the O(B * E) of rescanning all blocks per
   explicit machine — validation stays linear on fuzz-sized instances. *)
let explicit_block_fold ~init ~add blocks explicit =
  let ids = Array.of_list (List.map fst explicit) in
  let k = Array.length ids in
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> compare ids.(a) ids.(b)) order;
  let sorted = Array.map (fun i -> ids.(i)) order in
  let acc = Array.make (max 1 k) init in
  (* first position with sorted.(i) >= x *)
  let lower_bound x =
    let lo = ref 0 and hi = ref k in
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      if sorted.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  List.iter
    (fun b ->
      let i = ref (lower_bound b.m_start) in
      while !i < k && sorted.(!i) < b.m_start + b.m_count do
        let slot = order.(!i) in
        acc.(slot) <- add acc.(slot) b;
        incr i
      done)
    blocks;
  acc

let splittable_makespan s =
  let block_max =
    List.fold_left (fun acc b -> Q.max acc b.per_machine) Q.zero s.blocks
  in
  (* A machine can appear in a block and in the explicit list; combine. *)
  let block_load =
    explicit_block_fold ~init:Q.zero
      ~add:(fun acc b -> Q.add acc b.per_machine)
      s.blocks s.explicit_machines
  in
  let pos = ref (-1) in
  List.fold_left
    (fun acc (_, loads) ->
      incr pos;
      let total =
        List.fold_left (fun t (_, l) -> Q.add t l) block_load.(!pos) loads
      in
      Q.max acc total)
    block_max s.explicit_machines

let validate_splittable inst s =
  let mcount = Instance.m inst in
  let fail msg = Error msg in
  let rec check_blocks = function
    | [] -> Ok ()
    | b :: rest ->
        if b.m_count <= 0 then fail "block with non-positive machine count"
        else if b.m_start < 0 || b.m_start + b.m_count > mcount then
          fail "block out of machine range"
        else if Q.sign b.per_machine <= 0 then fail "block with non-positive load"
        else if b.cls < 0 || b.cls >= Instance.num_classes inst then fail "block with bad class"
        else if
          List.exists
            (fun b' ->
              b'.m_start < b.m_start + b.m_count && b.m_start < b'.m_start + b'.m_count)
            rest
        then fail "overlapping blocks"
        else check_blocks rest
  in
  match check_blocks s.blocks with
  | Error _ as e -> e
  | Ok () -> (
      (* explicit machines: indices valid and unique *)
      let seen = Hashtbl.create 16 in
      let explicit_ok =
        List.for_all
          (fun (m, loads) ->
            let fresh = not (Hashtbl.mem seen m) in
            Hashtbl.replace seen m ();
            fresh && m >= 0 && m < mcount
            && List.for_all
                 (fun (cls, l) ->
                   Q.sign l > 0 && cls >= 0 && cls < Instance.num_classes inst)
                 loads)
          s.explicit_machines
      in
      if not explicit_ok then fail "bad explicit machine entry"
      else begin
        (* per-class totals *)
        let totals = Array.make (Instance.num_classes inst) Q.zero in
        List.iter
          (fun b ->
            totals.(b.cls) <-
              Q.add totals.(b.cls) (Q.mul b.per_machine (Q.of_int b.m_count)))
          s.blocks;
        List.iter
          (fun (_, loads) ->
            List.iter (fun (cls, l) -> totals.(cls) <- Q.add totals.(cls) l) loads)
          s.explicit_machines;
        let class_load = Instance.class_load inst in
        let mismatch = ref None in
        Array.iteri
          (fun u total ->
            if !mismatch = None && not (Q.equal total (Q.of_int class_load.(u))) then
              mismatch := Some u)
          totals;
        match !mismatch with
        | Some u ->
            fail (Printf.sprintf "class %d: scheduled %s but P_u = %d" u
                    (Q.to_string totals.(u)) class_load.(u))
        | None ->
            (* class-slot constraint per machine: every machine of a block has
               that block's class; explicit machines add their listed classes.
               Explicit machines falling inside blocks combine. *)
            let block_classes =
              explicit_block_fold ~init:IS.empty
                ~add:(fun acc b -> IS.add b.cls acc)
                s.blocks s.explicit_machines
            in
            let pos = ref (-1) in
            let slot_violation =
              List.exists
                (fun (_, loads) ->
                  incr pos;
                  let all =
                    List.fold_left
                      (fun acc (cls, _) -> IS.add cls acc)
                      block_classes.(!pos) loads
                  in
                  IS.cardinal all > Instance.c inst)
                s.explicit_machines
            in
            if slot_violation then fail "machine exceeds class slots"
            else Ok (splittable_makespan s)
      end)

let to_job_pieces ?(limit = 1_000_000) inst s =
  (* Gather per-class machine loads in increasing machine order, then cut the
     class's jobs (index order) canonically. *)
  let nclasses = Instance.num_classes inst in
  let per_class = Array.make nclasses [] in
  List.iter
    (fun b ->
      if b.m_count > limit then invalid_arg "Schedule.to_job_pieces: too many machines";
      for k = b.m_count - 1 downto 0 do
        per_class.(b.cls) <- (b.m_start + k, b.per_machine) :: per_class.(b.cls)
      done)
    s.blocks;
  List.iter
    (fun (m, loads) ->
      List.iter (fun (cls, l) -> per_class.(cls) <- (m, l) :: per_class.(cls)) loads)
    s.explicit_machines;
  let machines : (int, piece list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_piece m pc =
    match Hashtbl.find_opt machines m with
    | Some r -> r := pc :: !r
    | None ->
        if Hashtbl.length machines >= limit then
          invalid_arg "Schedule.to_job_pieces: too many machines";
        Hashtbl.replace machines m (ref [ pc ])
  in
  let class_jobs = Instance.class_jobs inst in
  for u = 0 to nclasses - 1 do
    let loads = List.sort (fun (a, _) (b, _) -> compare a b) per_class.(u) in
    (* jobs of class u as a queue of (job, remaining) *)
    let jobs = ref (List.map (fun j -> (j, Q.of_int (Instance.job inst j).Instance.p)) class_jobs.(u)) in
    List.iter
      (fun (m, load) ->
        let remaining = ref load in
        while Q.sign !remaining > 0 do
          match !jobs with
          | [] -> invalid_arg "Schedule.to_job_pieces: class over-scheduled"
          | (j, rem) :: rest ->
              let take = Q.min rem !remaining in
              add_piece m { job = j; size = take };
              remaining := Q.sub !remaining take;
              let rem' = Q.sub rem take in
              if Q.sign rem' = 0 then jobs := rest else jobs := (j, rem') :: rest
        done)
      loads
  done;
  Hashtbl.fold (fun m r acc -> (m, List.rev !r) :: acc) machines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)

type ppiece = { pjob : int; start : Q.t; len : Q.t }

type preemptive = ppiece list array

let preemptive_makespan sched =
  Array.fold_left
    (fun acc pieces ->
      List.fold_left (fun a pc -> Q.max a (Q.add pc.start pc.len)) acc pieces)
    Q.zero sched

let intervals_overlap (s1, e1) (s2, e2) = Q.(s1 < e2) && Q.(s2 < e1)

let validate_preemptive inst sched =
  let fail msg = Error msg in
  if Array.length sched > Instance.m inst then fail "more machines used than available"
  else begin
    let n = Instance.n inst in
    let job_pieces = Array.make n [] in
    let ok = ref (Ok ()) in
    (* The first failure in machine order wins; later machines are not even
       scanned, so the reported machine/piece is the first offender. *)
    let set msg = if !ok = Ok () then ok := Error msg in
    Array.iteri
      (fun mi pieces ->
        if !ok = Ok () then begin
          (* per-machine checks *)
          let classes = ref IS.empty in
          let sorted =
            List.sort (fun a b -> Q.compare a.start b.start) pieces
          in
          let rec disjoint = function
            | a :: (b :: _ as rest) ->
                if Q.(Q.add a.start a.len > b.start) then false else disjoint rest
            | _ -> true
          in
          List.iter
            (fun pc ->
              if pc.pjob < 0 || pc.pjob >= n then
                set (Printf.sprintf "machine %d: bad job index" mi)
              else begin
                if Q.sign pc.len <= 0 then
                  set (Printf.sprintf "machine %d: non-positive piece" mi);
                if Q.sign pc.start < 0 then
                  set (Printf.sprintf "machine %d: negative start" mi);
                classes := IS.add (Instance.job inst pc.pjob).Instance.cls !classes;
                job_pieces.(pc.pjob) <-
                  (pc.start, Q.add pc.start pc.len) :: job_pieces.(pc.pjob)
              end)
            pieces;
          if not (disjoint sorted) then
            set (Printf.sprintf "machine %d: overlapping pieces" mi);
          if IS.cardinal !classes > Instance.c inst then
            set (Printf.sprintf "machine %d: too many classes" mi)
        end)
      sched;
    match !ok with
    | Error _ as e -> e
    | Ok () ->
        (* each job scheduled fully and never in parallel with itself *)
        let bad = ref None in
        for j = 0 to n - 1 do
          if !bad = None then begin
            let total =
              List.fold_left (fun acc (s, e) -> Q.add acc (Q.sub e s)) Q.zero job_pieces.(j)
            in
            if not (Q.equal total (Q.of_int (Instance.job inst j).Instance.p)) then
              bad := Some (Printf.sprintf "job %d: scheduled %s of %d" j (Q.to_string total)
                             (Instance.job inst j).Instance.p)
            else begin
              let sorted = List.sort (fun (a, _) (b, _) -> Q.compare a b) job_pieces.(j) in
              let rec check = function
                | x :: (y :: _ as rest) ->
                    if intervals_overlap x y then
                      bad := Some (Printf.sprintf "job %d runs in parallel with itself" j)
                    else check rest
                | _ -> ()
              in
              check sorted
            end
          end
        done;
        (match !bad with Some msg -> fail msg | None -> Ok (preemptive_makespan sched))
  end

(* ------------------------------------------------------------------ *)

type nonpreemptive = int array

let nonpreemptive_makespan inst assignment =
  let loads = Hashtbl.create 64 in
  Array.iteri
    (fun j mi ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt loads mi) in
      Hashtbl.replace loads mi (cur + (Instance.job inst j).Instance.p))
    assignment;
  Hashtbl.fold (fun _ l acc -> max l acc) loads 0

let validate_nonpreemptive inst assignment =
  if Array.length assignment <> Instance.n inst then Error "wrong assignment length"
  else begin
    let bad = ref None in
    (* keep the first offender (lowest job, then lowest machine) *)
    let set msg = if !bad = None then bad := Some msg in
    let machine_classes : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun j mi ->
        if mi < 0 || mi >= Instance.m inst then set (Printf.sprintf "job %d: bad machine" j)
        else begin
          let tbl =
            match Hashtbl.find_opt machine_classes mi with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace machine_classes mi t;
                t
          in
          Hashtbl.replace tbl (Instance.job inst j).Instance.cls ()
        end)
      assignment;
    let overfull =
      Hashtbl.fold
        (fun mi tbl acc ->
          if Hashtbl.length tbl > Instance.c inst then (mi, Hashtbl.length tbl) :: acc
          else acc)
        machine_classes []
    in
    (match List.sort compare overfull with
    | (mi, k) :: _ -> set (Printf.sprintf "machine %d: %d classes > c" mi k)
    | [] -> ());
    match !bad with
    | Some msg -> Error msg
    | None -> Ok (nonpreemptive_makespan inst assignment)
  end

(* ------------------------------------------------------------------ *)

let render_loads ?(width = 8) machines =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun mi entries ->
      Buffer.add_string buf (Printf.sprintf "m%-3d |" mi);
      List.iter
        (fun (label, load) ->
          let cells =
            max 1 (int_of_float (Q.to_float load *. float_of_int width /. 4.0))
          in
          let text = label in
          let text =
            if String.length text >= cells then String.sub text 0 cells
            else text ^ String.make (cells - String.length text) ' '
          in
          Buffer.add_string buf (Printf.sprintf "%s|" text))
        entries;
      Buffer.add_char buf '\n')
    machines;
  Buffer.contents buf
