(** Reproducible workload generators for experiments.

    The paper evaluates nothing empirically (it is a theory paper), so these
    families are designed to stress the algorithms where their analyses are
    tight: many small classes (round-robin pressure), few heavy classes
    (splitting pressure), Zipf-distributed class sizes (the data-placement
    motivation: few hot databases, many cold ones), and adversarial large-job
    mixes for the non-preemptive 7/3 bound (jobs straddling T/2 and T/3). *)

type family =
  | Uniform  (** uniform p in [p_lo, p_hi], uniform class choice *)
  | Zipf  (** class popularity ~ 1/rank (data-placement / VoD shape) *)
  | Heavy_classes  (** a few classes hold most of the load *)
  | Large_jobs  (** p concentrated in (T/3, T] for the 7/3 analysis *)
  | Lp_stress
      (** interchangeable classes (identical size multisets) and only 2–3
          distinct job sizes: the induced configuration LPs are degenerate
          and near-singular, which is exactly what the simplex's
          anti-cycling and warm-start repair paths have to survive *)
  | Bnb_stress
      (** near-perfect-partition instances: all sizes in a narrow band
          around p_hi/2 with round-robin classes, so the exact search's
          area bound is weak and the tree is deep — the adversarial family
          for the conflict-driven B&B and the solver portfolio *)

type spec = {
  n : int;
  classes : int;
  machines : int;
  slots : int;
  p_lo : int;
  p_hi : int;
  family : family;
}

val default : spec

(** Deterministic from the seed. Guarantees: exactly [n] jobs, every class
    non-empty is NOT guaranteed (Instance.make renumbers densely). *)
val generate : seed:int -> spec -> Instance.t

(** Same draw stream straight into the flat representation — for any seed,
    [generate_flat ~seed spec = Instance.to_flat (generate ~seed spec)]
    without ever building the boxed records. This is how the XL tier
    materializes million-job instances. *)
val generate_flat : seed:int -> spec -> Instance.Flat.t

(** The 10-class example of the paper's Figure 1 (sizes chosen to reproduce
    the illustrated layout: four classes of decreasing size above T/2, six
    more below). *)
val figure1_example : unit -> Instance.t
