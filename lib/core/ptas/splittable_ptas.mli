(** PTAS for splittable CCS (Section 4.1, Theorems 10 and 11).

    For a guess T, the instance is simplified (Lemma 7): each class becomes
    one splittable job of size P_u; classes with P_u > delta*T are large and
    rounded up to multiples of delta^2*T, the rest are small and rounded to
    multiples of delta^2*T/c. A well-structured schedule (Lemma 8) cuts
    large classes into pieces ("modules") of size l*delta^2*T with
    l in [1/delta, Tbar/(delta^2 T)], at most c* = min(1/delta+4, c) per
    machine; machine types are "configurations" — multisets of module
    sizes. Feasibility of the configuration ILP (Lemma 9) is decided
    exactly; its solution is turned back into a schedule with makespan at
    most Tbar + delta*T = (1+5*delta)*T, small classes placed by round robin
    within (size, slot-count) machine groups.

    The implementation solves the ILP in the aggregated form (the paper's
    per-class duplication exists only to expose N-fold structure and "has no
    meaning itself"); small classes of equal rounded size are interchangeable
    and therefore counted rather than enumerated. The duplicated N-fold form
    is available from {!Nfold_forms} for cross-validation.

    When [m] exceeds [explicit_limit] the Theorem 11 machinery kicks in
    automatically: only the two trivial configurations (empty, and one
    full-size module) may be used more than (C choose 2) + C times — an
    extra globally-uniform constraint — and the output uses compressed
    {!Schedule.block}s, keeping the whole run polynomial in n with only a
    logarithmic dependence on m. *)

type stats = {
  t_accepted : Rat.t;  (** accepted guess; makespan <= (1+5 delta) t_accepted *)
  oracle_calls : int;
  compressed : bool;  (** Theorem 11 path taken *)
  ilp_vars : int;  (** variables in the last accepted configuration ILP *)
}

(** [solve param inst] runs the full PTAS (binary search + oracle). The
    returned schedule is already validated against the original instance.
    Raises [Invalid_argument] on unschedulable instances and
    [Common.Too_many] if the configuration space for this delta explodes. *)
val solve :
  ?explicit_limit:int ->
  ?progress:Schedule.splittable Common.progress ->
  Common.param ->
  Instance.t ->
  Schedule.splittable * stats

(** Deadline-tolerant variant: never raises
    {!Ccs_resil.Deadline.Cancelled}; on cancellation the best accepted
    witness so far (if any) and the highest refuted guess are returned with
    [complete = false]. *)
val solve_anytime :
  ?explicit_limit:int -> Common.param -> Instance.t -> Schedule.splittable Common.anytime

(** The feasibility oracle for one guess (exposed for tests): [None] means
    provably no schedule with makespan T exists. *)
val oracle :
  ?explicit_limit:int ->
  ?warm:Lp.basis ->
  ?basis_out:Lp.basis option ref ->
  Common.param ->
  Instance.t ->
  Rat.t ->
  Schedule.splittable option

(** {2 Internals exposed for the N-fold form ({!Nfold_form}) and tests} *)

type rounded = {
  unit_q : Rat.t;  (** delta^2*T/c *)
  tbar : int;  (** Tbar in base units *)
  module_sizes : int list;  (** descending, base units *)
  large : (int * int) list;  (** (class, rounded size in base units) *)
  smalls_by_size : (int * int list) list;  (** (rounded size, class ids) *)
}

val round_instance : Common.param -> Instance.t -> Rat.t -> rounded
val configurations : Common.param -> Instance.t -> rounded -> int list list
