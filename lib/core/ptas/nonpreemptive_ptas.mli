(** PTAS for non-preemptive CCS (Section 4.2, Theorem 14).

    For a guess T the jobs of every class are grouped (Lemma 12): jobs
    smaller than delta*T are repeatedly bundled into packets of total size
    in [delta*T, 2*delta*T); a leftover bundle of size < delta*T is merged
    into some other job of the class, or forms a single-job small class.
    Grouped sizes are rounded up to multiples of delta^2*T (small classes to
    multiples of delta^2*T/c). Modules are multisets of rounded job sizes
    summing to at most Tbar = (1+3delta)(1+2delta)T — the jobs of one class
    on one machine — and configurations are multisets of module sizes
    (Figure 4). Feasibility of the configuration ILP (Lemma 13) is decided
    exactly; a solution dissolves into machines -> module slots -> concrete
    jobs, small classes are placed by round robin within (size, slots)
    groups, and grouped jobs are expanded back to the original jobs (all on
    the same machine — nothing was ever actually split).

    Implementation notes: modules are enumerated per class as sub-multisets
    of that class's rounded size histogram (the only modules a class can
    fill), which keeps the variable count far below the paper's generic
    bound without losing any solution; small classes of equal rounded size
    are counted, not enumerated. When m >= n the instance is answered
    directly with the optimal one-job-per-machine schedule. *)

type stats = {
  t_accepted : Rat.t;
  oracle_calls : int;
  ilp_vars : int;
}

(** Makespan guarantee for a schedule accepted at guess T:
    (1+3delta)(1+2delta)T + delta*T. *)
val guarantee : Common.param -> Rat.t -> Rat.t

val solve :
  ?progress:Schedule.nonpreemptive Common.progress ->
  Common.param ->
  Instance.t ->
  Schedule.nonpreemptive * stats

(** Deadline-tolerant variant; see {!Splittable_ptas.solve_anytime}. *)
val solve_anytime : Common.param -> Instance.t -> Schedule.nonpreemptive Common.anytime

(** Feasibility oracle for one guess (exposed for tests). *)
val oracle :
  ?warm:Lp.basis ->
  ?basis_out:Lp.basis option ref ->
  Common.param ->
  Instance.t ->
  Rat.t ->
  Schedule.nonpreemptive option

(** {2 Internals exposed for the N-fold form ({!Nfold_form}) and tests} *)

(** Distilled view of the grouped + rounded instance at a guess: everything
    the duplicated N-fold needs, in base units of delta^2*T/c. *)
type abstract = {
  a_tbar : int;
  a_cstar : int;
  a_large_hists : (int * int) list list;  (** per large class: (size, count) *)
  a_smalls : (int * int) list;  (** (rounded size, number of such classes) *)
}

val abstract : Common.param -> Instance.t -> Rat.t -> abstract
