module Q = Rat

type stats = {
  t_accepted : Q.t;
  oracle_calls : int;
  compressed : bool;
  ilp_vars : int;
}

(* All sizes below live in "base units" of delta^2*T/c, so every quantity in
   the ILP is an integer: modules have size l*c for l in [d, d(d+4)], the
   makespan bound Tbar is c*d*(d+4), small classes have sizes in [1, c*d]. *)

type rounded = {
  unit_q : Q.t;  (* delta^2*T/c as a rational *)
  tbar : int;  (* Tbar in base units *)
  module_sizes : int list;  (* descending, base units *)
  large : (int * int) list;  (* (class, rounded size in base units) *)
  smalls_by_size : (int * int list) list;  (* (rounded size, class ids) *)
}

let round_instance (p : Common.param) inst t =
  let d = p.Common.d in
  let c = Instance.c inst in
  let unit_q = Q.div t (Q.of_int (c * d * d)) in
  let tbar = c * d * (d + 4) in
  let delta_t = Q.div t (Q.of_int d) in
  let loads = Instance.class_load inst in
  let large = ref [] and smalls = Hashtbl.create 8 in
  Array.iteri
    (fun u pu ->
      let pu_q = Q.of_int pu in
      if Q.(pu_q > delta_t) then begin
        (* multiples of delta^2*T = c base units *)
        let k = Bigint.to_int_exn (Q.ceil (Q.div pu_q (Q.mul unit_q (Q.of_int c)))) in
        large := (u, k * c) :: !large
      end
      else begin
        let s = Bigint.to_int_exn (Q.ceil (Q.div pu_q unit_q)) in
        let s = max 1 s in
        let prev = Option.value ~default:[] (Hashtbl.find_opt smalls s) in
        Hashtbl.replace smalls s (u :: prev)
      end)
    loads;
  let module_sizes = List.init (((d * (d + 4)) - d) + 1) (fun i -> (d + i) * c) |> List.rev in
  {
    unit_q;
    tbar;
    module_sizes;
    large = List.rev !large;
    smalls_by_size = Hashtbl.fold (fun s cls acc -> (s, cls) :: acc) smalls [];
  }

(* Configurations: multisets of module sizes, total <= tbar, count <= c*. *)
let configurations (p : Common.param) inst rounded =
  let cstar = min (p.Common.d + 4) (Instance.c inst) in
  Common.multisets ~parts:rounded.module_sizes ~max_sum:rounded.tbar ~max_count:cstar ()

type ilp_layout = {
  nvars : int;
  x : int array;  (* config index -> var *)
  y : (int * int, int) Hashtbl.t;  (* (large idx, module size) -> var *)
  w : (int * int, int) Hashtbl.t;  (* (small size, hb index) -> var *)
  configs : int list array;
  hb_of_config : int array;  (* config -> hb group index *)
  hb_groups : (int * int) array;  (* hb index -> (h, b) *)
}

let build_layout rounded configs =
  let configs = Array.of_list configs in
  let nconfigs = Array.length configs in
  let hb_tbl = Hashtbl.create 16 in
  let hb_list = ref [] in
  let hb_of_config =
    Array.map
      (fun k ->
        let h = List.fold_left ( + ) 0 k and b = List.length k in
        match Hashtbl.find_opt hb_tbl (h, b) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length hb_tbl in
            Hashtbl.replace hb_tbl (h, b) i;
            hb_list := (h, b) :: !hb_list;
            i)
      configs
  in
  let hb_groups = Array.of_list (List.rev !hb_list) in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let x = Array.init nconfigs (fun _ -> fresh ()) in
  let y = Hashtbl.create 64 in
  List.iteri
    (fun li _ -> List.iter (fun q -> Hashtbl.replace y (li, q) (fresh ())) rounded.module_sizes)
    rounded.large;
  let w = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      Array.iteri (fun hbi _ -> Hashtbl.replace w (s, hbi) (fresh ())) hb_groups)
    rounded.smalls_by_size;
  { nvars = !next; x; y; w; configs; hb_of_config; hb_groups }

let build_rows inst rounded layout ~cardinality_cap =
  let c = Instance.c inst in
  let m = Instance.m inst in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  (* (0) sum x_K = m *)
  push (Common.row_eq (Array.to_list (Array.map (fun v -> (v, 1)) layout.x)) m);
  (* (1) per module size: slots provided = modules chosen *)
  List.iter
    (fun q ->
      let lhs = ref [] in
      Array.iteri
        (fun ki k ->
          let cnt = List.length (List.filter (( = ) q) k) in
          if cnt > 0 then lhs := (layout.x.(ki), cnt) :: !lhs)
        layout.configs;
      List.iteri
        (fun li _ -> lhs := (Hashtbl.find layout.y (li, q), -1) :: !lhs)
        rounded.large;
      push (Common.row_eq !lhs 0))
    rounded.module_sizes;
  (* (2,3) per (h,b) group: slots and space for the small classes *)
  Array.iteri
    (fun hbi (h, b) ->
      let xs =
        Array.to_list
          (Array.mapi (fun ki v -> (ki, v)) layout.x)
        |> List.filter (fun (ki, _) -> layout.hb_of_config.(ki) = hbi)
        |> List.map snd
      in
      let slot_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), 1)) rounded.smalls_by_size
        @ List.map (fun v -> (v, b - c)) xs
      in
      push (Common.row_le slot_row 0);
      let space_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), s)) rounded.smalls_by_size
        @ List.map (fun v -> (v, h - rounded.tbar)) xs
      in
      push (Common.row_le space_row 0))
    layout.hb_groups;
  (* (4) each large class exactly covered by its modules *)
  List.iteri
    (fun li (_, size) ->
      let lhs = List.map (fun q -> (Hashtbl.find layout.y (li, q), q)) rounded.module_sizes in
      push (Common.row_eq lhs size))
    rounded.large;
  (* (5) every small class assigned exactly once (grouped by size) *)
  List.iter
    (fun (s, cls) ->
      let lhs =
        Array.to_list (Array.mapi (fun hbi _ -> (Hashtbl.find layout.w (s, hbi), 1)) layout.hb_groups)
      in
      push (Common.row_eq lhs (List.length cls)))
    rounded.smalls_by_size;
  (* Theorem 11: bound the non-trivial configurations *)
  (match cardinality_cap with
  | None -> ()
  | Some cap ->
      let qmax = List.hd rounded.module_sizes in
      let lhs = ref [] in
      Array.iteri
        (fun ki k -> if k <> [] && k <> [ qmax ] then lhs := (layout.x.(ki), 1) :: !lhs)
        layout.configs;
      if !lhs <> [] then push (Common.row_le !lhs cap));
  List.rev !rows

(* ---------------------------------------------------------------- *)
(* Schedule construction from an ILP witness. *)

(* Assignment of large-class modules to the module slots of the materialized
   machines: any class with remaining modules of the right size will do. *)
let pop_module supply q =
  match Hashtbl.find_opt supply q with
  | Some ((li, cnt) :: rest) ->
      if cnt = 1 then Hashtbl.replace supply q rest
      else Hashtbl.replace supply q ((li, cnt - 1) :: rest);
      li
  | _ -> failwith "Splittable_ptas: module supply exhausted (ILP inconsistency)"

let construct inst rounded layout sol ~explicit_limit =
  let m = Instance.m inst in
  let large = Array.of_list rounded.large in
  let qmax = List.hd rounded.module_sizes in
  (* module supply per size from the y variables *)
  let supply = Hashtbl.create 16 in
  List.iter
    (fun q ->
      let entries = ref [] in
      Array.iteri
        (fun li _ ->
          let v = sol.(Hashtbl.find layout.y (li, q)) in
          if v > 0 then entries := (li, v) :: !entries)
        large;
      Hashtbl.replace supply q !entries)
    rounded.module_sizes;
  (* Split configurations into the materialized ones and (for the compressed
     path) the trivial full configuration handled as blocks. *)
  let full_config_count = ref 0 in
  let explicit_cfgs = ref [] in
  Array.iteri
    (fun ki k ->
      let count = sol.(layout.x.(ki)) in
      if count > 0 && k <> [] then
        if k = [ qmax ] && count > explicit_limit then full_config_count := count
        else
          for _ = 1 to count do
            explicit_cfgs := (ki, k) :: !explicit_cfgs
          done)
    layout.configs;
  let explicit_cfgs = Array.of_list !explicit_cfgs in
  if Array.length explicit_cfgs > explicit_limit then
    failwith "Splittable_ptas: explicit machine bound exceeded";
  (* machine numbering: explicit machines first, then the full blocks, then
     empty machines *)
  let n_explicit = Array.length explicit_cfgs in
  (* rounded class loads per explicit machine *)
  let machine_loads = Array.make n_explicit [] in
  Array.iteri
    (fun mi (_, k) ->
      List.iter (fun q -> machine_loads.(mi) <- (pop_module supply q, q) :: machine_loads.(mi)) k)
    explicit_cfgs;
  (* leftover full modules become per-class blocks *)
  let block_specs = ref [] in
  (* (large idx, machine count) *)
  let cursor = ref n_explicit in
  (match Hashtbl.find_opt supply qmax with
  | Some entries ->
      List.iter
        (fun (li, cnt) ->
          block_specs := (li, !cursor, cnt) :: !block_specs;
          cursor := !cursor + cnt)
        entries;
      Hashtbl.replace supply qmax []
  | None -> ());
  let used_full = List.fold_left (fun acc (_, _, cnt) -> acc + cnt) 0 !block_specs in
  if used_full <> !full_config_count then
    failwith "Splittable_ptas: full-block accounting mismatch";
  (* any other leftover supply is an ILP inconsistency *)
  Hashtbl.iter
    (fun _ entries -> if entries <> [] then failwith "Splittable_ptas: unplaced modules")
    supply;
  (* ---- small classes: round robin inside each (h,b) machine group ---- *)
  (* group -> machines (explicit ids; the full-block range forms one group) *)
  let group_machines = Array.make (Array.length layout.hb_groups) [] in
  Array.iteri
    (fun mi (ki, _) ->
      let g = layout.hb_of_config.(ki) in
      group_machines.(g) <- mi :: group_machines.(g))
    explicit_cfgs;
  let full_group =
    if !full_config_count > 0 then begin
      (* locate the (qmax, 1) group *)
      let g = ref (-1) in
      Array.iteri (fun i (h, b) -> if h = qmax && b = 1 then g := i) layout.hb_groups;
      !g
    end
    else -1
  in
  (* empty machines form the (0,0) group *)
  let empty_group =
    let g = ref (-1) in
    Array.iteri (fun i (h, b) -> if h = 0 && b = 0 then g := i) layout.hb_groups;
    !g
  in
  let empty_start = !cursor in
  let small_extra : (int, (int * Q.t) list) Hashtbl.t = Hashtbl.create 16 in
  let add_small machine cls load =
    let prev = Option.value ~default:[] (Hashtbl.find_opt small_extra machine) in
    Hashtbl.replace small_extra machine ((cls, load) :: prev)
  in
  let smalls_remaining =
    List.map (fun (s, cls) -> (s, ref cls)) rounded.smalls_by_size
  in
  Array.iteri
    (fun hbi _ ->
      (* collect the small classes routed to this group, largest first *)
      let classes = ref [] in
      List.iter
        (fun (s, remaining) ->
          let v = sol.(Hashtbl.find layout.w (s, hbi)) in
          for _ = 1 to v do
            match !remaining with
            | cls :: rest ->
                remaining := rest;
                classes := (s, cls) :: !classes
            | [] -> failwith "Splittable_ptas: small class accounting mismatch"
          done)
        smalls_remaining;
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !classes in
      if sorted <> [] then begin
        let machines =
          if hbi = full_group && !full_config_count > 0 then
            `Range (n_explicit, !full_config_count)
          else if hbi = empty_group then `Range (empty_start, m - empty_start)
          else `List (Array.of_list (List.rev group_machines.(hbi)))
        in
        List.iteri
          (fun i (_, cls) ->
            let load = Q.of_int (Instance.class_load inst).(cls) in
            match machines with
            | `Range (start, count) ->
                if count = 0 then failwith "Splittable_ptas: empty group with small classes";
                add_small (start + (i mod count)) cls load
            | `List arr ->
                let count = Array.length arr in
                if count = 0 then failwith "Splittable_ptas: empty group with small classes";
                add_small arr.(i mod count) cls load)
          sorted
      end)
    layout.hb_groups;
  (* ---- shrink rounded large loads back to the original sizes ---- *)
  let class_load = Instance.class_load inst in
  let remaining = Array.map (fun (u, _) -> Q.of_int class_load.(u)) large in
  let explicit_loads = Array.make n_explicit [] in
  Array.iteri
    (fun mi modules ->
      List.iter
        (fun (li, q) ->
          let cap = Q.mul (Q.of_int q) rounded.unit_q in
          let take = Q.min cap remaining.(li) in
          if Q.sign take > 0 then begin
            remaining.(li) <- Q.sub remaining.(li) take;
            let u = fst large.(li) in
            explicit_loads.(mi) <- (u, take) :: explicit_loads.(mi)
          end)
        (List.rev modules))
      machine_loads;
  (* blocks: uniform per-machine loads of one class; the final partial
     machine becomes an explicit entry *)
  let blocks = ref [] in
  List.iter
    (fun (li, start, cnt) ->
      let u = fst large.(li) in
      let cap = Q.mul (Q.of_int qmax) rounded.unit_q in
      let rem = remaining.(li) in
      let full = Bigint.to_int_exn (Q.floor (Q.div rem cap)) in
      let full = min full cnt in
      if full > 0 then
        blocks := { Schedule.cls = u; m_start = start; m_count = full; per_machine = cap } :: !blocks;
      let leftover = Q.sub rem (Q.mul (Q.of_int full) cap) in
      remaining.(li) <- Q.zero;
      if Q.sign leftover > 0 then begin
        if full >= cnt then failwith "Splittable_ptas: block overflow";
        add_small (start + full) u leftover
      end)
    !block_specs;
  Array.iteri
    (fun li r ->
      if Q.sign r > 0 then failwith (Printf.sprintf "Splittable_ptas: class %d under-placed" (fst large.(li))))
    remaining;
  (* ---- assemble ---- *)
  let explicit_tbl : (int, (int * Q.t) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun mi loads -> if loads <> [] then Hashtbl.replace explicit_tbl mi loads)
    explicit_loads;
  Hashtbl.iter
    (fun machine loads ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt explicit_tbl machine) in
      Hashtbl.replace explicit_tbl machine (loads @ prev))
    small_extra;
  (* merge duplicate classes per machine *)
  let explicit_machines =
    Hashtbl.fold
      (fun machine loads acc ->
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (u, l) ->
            Hashtbl.replace tbl u (Q.add l (Option.value ~default:Q.zero (Hashtbl.find_opt tbl u))))
          loads;
        let merged = Hashtbl.fold (fun u l acc -> if Q.sign l > 0 then (u, l) :: acc else acc) tbl [] in
        if merged = [] then acc else (machine, merged) :: acc)
      explicit_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { Schedule.blocks = List.rev !blocks; explicit_machines }

(* ---------------------------------------------------------------- *)

let oracle ?(explicit_limit = 4096) ?warm ?basis_out (p : Common.param) inst t =
  Ccs_obs.Span.with_ "splittable.oracle"
    ~fields:[ Ccs_obs.Log.str "t" (Q.to_string t) ]
  @@ fun () ->
  let rounded, configs =
    Ccs_obs.Span.with_ "ptas.round" (fun () ->
        let rounded = round_instance p inst t in
        (rounded, configurations p inst rounded))
  in
  let layout = Ccs_obs.Span.with_ "ptas.layout" (fun () -> build_layout rounded configs) in
  Common.observe_rounding
    ~large:(List.length rounded.large)
    ~small_groups:(List.length rounded.smalls_by_size)
    ~configs:(List.length configs);
  let nclasses = Instance.num_classes inst in
  let cardinality_cap =
    if Instance.m inst > explicit_limit then Some ((nclasses * (nclasses - 1) / 2) + nclasses)
    else None
  in
  let rows = build_rows inst rounded layout ~cardinality_cap in
  let upper = Array.make layout.nvars None in
  match Common.solve_int_feasibility ?warm ?basis_out ~nvars:layout.nvars ~upper rows with
  | None -> None
  | Some sol ->
      let sched =
        Ccs_obs.Span.with_ "ptas.construct" (fun () ->
            construct inst rounded layout sol ~explicit_limit)
      in
      (match Schedule.validate_splittable inst sched with
      | Ok _ -> Some sched
      | Error e -> failwith ("Splittable_ptas: constructed invalid schedule: " ^ e))

let solve ?(explicit_limit = 4096) ?progress p inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Splittable_ptas.solve: C > c*m, no schedule exists";
  Ccs_obs.Recorder.phase "ptas"
  @@ fun () ->
  Ccs_obs.Span.with_ "splittable.solve"
    ~fields:
      [ Ccs_obs.Log.int "n" (Instance.n inst);
        Ccs_obs.Log.int "m" (Instance.m inst);
        Ccs_obs.Log.int "c" (Instance.c inst);
        Ccs_obs.Log.int "d" p.Common.d ]
  @@ fun () ->
  (* probes run on pool domains, so the call counter must be atomic *)
  let calls = Atomic.make 0 in
  let last_vars = ref 0 in
  (* Warm-start reference basis, set exactly once by the sequential upper
     bound probe that [geometric_search] makes before fanning out: every
     later probe (at any --jobs) then reads the same basis, so the oracle
     stays a pure function of the guess and runs stay bit-identical. *)
  let warm_ref = Atomic.make None in
  let orc t =
    Atomic.incr calls;
    let bout = ref None in
    let r = oracle ~explicit_limit ?warm:(Atomic.get warm_ref) ~basis_out:bout p inst t in
    (match (Atomic.get warm_ref, !bout) with
    | None, Some b -> ignore (Atomic.compare_and_set warm_ref None (Some b))
    | _ -> ());
    r
  in
  let lb = Bounds.lb_splittable inst in
  let ub = Q.max lb (Bounds.ub_splittable inst) in
  let sched, t_accepted =
    Common.geometric_search ?progress ~lb ~ub ~delta:(Common.delta p) ~oracle:orc ()
  in
  (let rounded = round_instance p inst t_accepted in
   let layout = build_layout rounded (configurations p inst rounded) in
   last_vars := layout.nvars);
  Ccs_obs.Log.info (fun log ->
      log
        ~fields:
          [ Ccs_obs.Log.str "t_accepted" (Q.to_string t_accepted);
            Ccs_obs.Log.int "oracle_calls" (Atomic.get calls);
            Ccs_obs.Log.int "ilp_vars" !last_vars ]
        "splittable.solve: accepted");
  ( sched,
    {
      t_accepted;
      oracle_calls = (Atomic.get calls);
      compressed = Instance.m inst > explicit_limit;
      ilp_vars = !last_vars;
    } )

(* Anytime entry: run the full PTAS, but on cancellation salvage the best
   accepted witness (already a validated schedule) and the highest refuted
   guess from the search's progress record instead of losing the run. *)
let solve_anytime ?explicit_limit p inst =
  let prog = Common.progress () in
  match solve ?explicit_limit ~progress:prog p inst with
  | sched, stats ->
      { Common.result = Some (sched, stats.t_accepted);
        refuted = prog.Common.rejected;
        complete = true }
  | exception Ccs_resil.Deadline.Cancelled _ ->
      { Common.result = prog.Common.accepted;
        refuted = prog.Common.rejected;
        complete = false }
