module Q = Rat

type param = { d : int }

let param d =
  if d < 1 then invalid_arg "Ptas.Common.param: need 1/delta >= 1";
  { d }

let delta p = Q.of_ints 1 p.d

exception Too_many

let multisets ?(limit = 200_000) ~parts ~max_sum ~max_count () =
  let parts = List.sort_uniq (fun a b -> compare b a) parts in
  let out = ref [] in
  let count = ref 0 in
  (* DFS over parts in descending order; [current] is built descending. *)
  let rec go parts current sum cnt =
    incr count;
    if !count > limit then raise Too_many;
    out := List.rev current :: !out;
    match parts with
    | [] -> ()
    | v :: rest ->
        if cnt < max_count && sum + v <= max_sum then go parts (v :: current) (sum + v) (cnt + 1);
        go rest current sum cnt
  in
  ignore (go parts [] 0 0);
  (* dedupe: the DFS above emits each prefix once per branch; collect unique *)
  List.sort_uniq compare !out

let bounded_multisets ?(limit = 200_000) ~parts ~max_sum ~max_count () =
  let parts = List.sort (fun (a, _) (b, _) -> compare b a) parts in
  let out = ref [] in
  let count = ref 0 in
  let rec go parts current sum cnt =
    incr count;
    if !count > limit then raise Too_many;
    out := List.rev current :: !out;
    match parts with
    | [] -> ()
    | (v, mult) :: rest ->
        if mult > 0 && cnt < max_count && sum + v <= max_sum then
          go ((v, mult - 1) :: rest) (v :: current) (sum + v) (cnt + 1);
        go rest current sum cnt
  in
  ignore (go parts [] 0 0);
  List.sort_uniq compare !out

exception Budget_exceeded

let m_guesses = Ccs_obs.Metrics.counter "ptas.guesses"
let m_ilp_calls = Ccs_obs.Metrics.counter "ptas.ilp_calls"
let h_ilp_vars = Ccs_obs.Metrics.histogram "ptas.ilp_vars"
let h_large = Ccs_obs.Metrics.histogram "ptas.large_classes"
let h_small_groups = Ccs_obs.Metrics.histogram "ptas.small_size_groups"
let h_configs = Ccs_obs.Metrics.histogram "ptas.configs"

let observe_rounding ~large ~small_groups ~configs =
  Ccs_obs.Metrics.observe h_large (float_of_int large);
  Ccs_obs.Metrics.observe h_small_groups (float_of_int small_groups);
  Ccs_obs.Metrics.observe h_configs (float_of_int configs)

type row = { coeffs : (int * int) list; cmp : Lp.cmp; rhs : int }

let row_eq coeffs rhs = { coeffs; cmp = Lp.Eq; rhs }
let row_le coeffs rhs = { coeffs; cmp = Lp.Le; rhs }
let row_ge coeffs rhs = { coeffs; cmp = Lp.Ge; rhs }

let solve_int_feasibility ?(max_nodes = 50_000) ~nvars ~upper rows =
  let to_q = Q.of_int in
  let constraints =
    List.map
      (fun r ->
        let coeffs =
          (* merge duplicate variable indices *)
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (j, v) ->
              Hashtbl.replace tbl j (v + Option.value ~default:0 (Hashtbl.find_opt tbl j)))
            r.coeffs;
          Hashtbl.fold (fun j v acc -> if v = 0 then acc else (j, to_q v) :: acc) tbl []
        in
        Lp.constr coeffs r.cmp (to_q r.rhs))
      rows
  in
  let upper_q = Array.map (Option.map to_q) upper in
  let lp =
    Lp.problem ~upper:upper_q ~nvars ~objective:(Array.make nvars Q.zero) constraints
  in
  Ccs_obs.Metrics.incr m_ilp_calls;
  Ccs_obs.Metrics.observe h_ilp_vars (float_of_int nvars);
  Ccs_obs.Span.with_ "ptas.ilp"
    ~fields:
      [ Ccs_obs.Log.int "nvars" nvars;
        Ccs_obs.Log.int "rows" (List.length constraints) ]
  @@ fun () ->
  match Ilp.solve ~max_nodes ~feasibility:true (Ilp.all_integer lp) with
  | Ilp.Optimal { solution; _ } ->
      Some (Array.map (fun v -> Bigint.to_int_exn (Q.num v)) solution)
  | Ilp.Infeasible -> None
  | Ilp.Node_limit -> raise Budget_exceeded
  | Ilp.Unbounded -> None

let geometric_search ~lb ~ub ~delta ~oracle =
  if Q.(ub < lb) then invalid_arg "geometric_search: ub < lb";
  Ccs_obs.Span.with_ "ptas.binary_search"
    ~fields:
      [ Ccs_obs.Log.str "lb" (Q.to_string lb); Ccs_obs.Log.str "ub" (Q.to_string ub) ]
  @@ fun () ->
  let oracle t =
    Ccs_obs.Metrics.incr m_guesses;
    let answer = oracle t in
    Ccs_obs.Log.debug (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t" (Q.to_string t);
              Ccs_obs.Log.bool "accepted" (answer <> None) ]
          "ptas.guess");
    answer
  in
  let step = Q.add Q.one delta in
  (* grid index of the first point >= ub *)
  let rec grid_size i t = if Q.(t >= ub) then i else grid_size (i + 1) (Q.mul t step) in
  let imax = grid_size 0 lb in
  let point i =
    let rec go acc k = if k = 0 then acc else go (Q.mul acc step) (k - 1) in
    Q.min ub (go lb i)
  in
  (* binary search the smallest accepted index *)
  match oracle (point imax) with
  | None -> failwith "geometric_search: oracle rejected the upper bound"
  | Some witness_ub ->
      let best = ref (witness_ub, point imax) in
      let lo = ref 0 and hi = ref imax in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match oracle (point mid) with
        | Some w ->
            best := (w, point mid);
            hi := mid
        | None -> lo := mid + 1
      done;
      !best
