module Q = Rat

type param = { d : int }

let param d =
  if d < 1 then invalid_arg "Ptas.Common.param: need 1/delta >= 1";
  { d }

let delta p = Q.of_ints 1 p.d

(* Cancellation checkpoints: configuration enumeration is the hot DFS,
   one guess probe of the dual-approximation search is the coarse site. *)
let chk_enum = Ccs_resil.Deadline.site ~hot:true "ptas.enum"
let chk_guess = Ccs_resil.Deadline.site "ptas.guess"

exception Too_many

let multisets ?(limit = 200_000) ~parts ~max_sum ~max_count () =
  let parts = List.sort_uniq (fun a b -> compare b a) parts in
  (* The node budget is shared across parallel branches through one atomic
     counter: the DFS visits exactly the same node set at any pool size, so
     Too_many fires under exactly the same inputs. *)
  let count = Atomic.make 0 in
  (* DFS over parts in descending order; [current] is built descending. *)
  let explore parts0 current0 sum0 cnt0 =
    let out = ref [] in
    let rec go parts current sum cnt =
      Ccs_resil.Deadline.check chk_enum;
      if Atomic.fetch_and_add count 1 >= limit then raise Too_many;
      out := List.rev current :: !out;
      match parts with
      | [] -> ()
      | v :: rest ->
          if cnt < max_count && sum + v <= max_sum then
            go parts (v :: current) (sum + v) (cnt + 1);
          go rest current sum cnt
    in
    go parts0 current0 sum0 cnt0;
    !out
  in
  (* Per-guess enumeration is the widest flat fan-out the PTASs have: split
     on the multiplicity of the largest part (branch j fixes j copies, then
     enumerates over the remaining part values), which reproduces the
     sequential spine of the DFS one branch per node. *)
  let pieces =
    match parts with
    (* Only fan out on part lists wide enough that each branch subtree
       amortizes the batch overhead (narrow spaces, i.e. coarse delta, run
       the plain DFS), and only when cores are present to absorb the
       duplicated spine emissions the decomposition costs. Both gates
       depend on the input and the machine, never on timing, and either
       path yields the same sorted deduplicated list — so the enumeration
       stays deterministic. *)
    | v0 :: rest when Ccs_par.effective_jobs () > 1 && v0 > 0 && List.length rest >= 6 ->
        let jmax = min max_count (max_sum / v0) in
        (* The sequential DFS also counts the jmax+1 spine nodes the branch
           decomposition skips; charge them up front so the total node count
           — and hence whether Too_many fires — is identical at any pool
           size (their emissions are duplicates of the branch roots). *)
        if Atomic.fetch_and_add count (jmax + 1) + jmax + 1 > limit then raise Too_many;
        Ccs_par.parallel_map
          (fun j -> explore rest (List.init j (fun _ -> v0)) (j * v0) j)
          (Array.init (jmax + 1) (fun j -> j))
        |> Array.to_list |> List.concat
    | _ -> explore parts [] 0 0
  in
  (* dedupe: the DFS above emits each prefix once per branch; collect unique *)
  List.sort_uniq compare pieces

let bounded_multisets ?(limit = 200_000) ~parts ~max_sum ~max_count () =
  let parts = List.sort (fun (a, _) (b, _) -> compare b a) parts in
  let out = ref [] in
  let count = ref 0 in
  let rec go parts current sum cnt =
    Ccs_resil.Deadline.check chk_enum;
    incr count;
    if !count > limit then raise Too_many;
    out := List.rev current :: !out;
    match parts with
    | [] -> ()
    | (v, mult) :: rest ->
        if mult > 0 && cnt < max_count && sum + v <= max_sum then
          go ((v, mult - 1) :: rest) (v :: current) (sum + v) (cnt + 1);
        go rest current sum cnt
  in
  ignore (go parts [] 0 0);
  List.sort_uniq compare !out

exception Budget_exceeded

let m_guesses = Ccs_obs.Metrics.counter "ptas.guesses"
let m_ilp_calls = Ccs_obs.Metrics.counter "ptas.ilp_calls"
let h_ilp_vars = Ccs_obs.Metrics.histogram "ptas.ilp_vars"
let h_large = Ccs_obs.Metrics.histogram "ptas.large_classes"
let h_small_groups = Ccs_obs.Metrics.histogram "ptas.small_size_groups"
let h_configs = Ccs_obs.Metrics.histogram "ptas.configs"

let observe_rounding ~large ~small_groups ~configs =
  Ccs_obs.Metrics.observe h_large (float_of_int large);
  Ccs_obs.Metrics.observe h_small_groups (float_of_int small_groups);
  Ccs_obs.Metrics.observe h_configs (float_of_int configs)

type row = { coeffs : (int * int) list; cmp : Lp.cmp; rhs : int }

let row_eq coeffs rhs = { coeffs; cmp = Lp.Eq; rhs }
let row_le coeffs rhs = { coeffs; cmp = Lp.Le; rhs }
let row_ge coeffs rhs = { coeffs; cmp = Lp.Ge; rhs }

let solve_int_feasibility ?(max_nodes = 50_000) ?warm ?basis_out ~nvars ~upper rows =
  let to_q = Q.of_int in
  (* Row conversion (duplicate merging, int -> rational lifting) is flat and
     independent per row; wide configuration IPs ride the pool, small ones
     stay sequential — per-row work is microseconds, so a narrow batch
     costs more in wakeups than it saves. *)
  let convert r =
    let coeffs =
      (* merge duplicate variable indices *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (j, v) ->
          Hashtbl.replace tbl j (v + Option.value ~default:0 (Hashtbl.find_opt tbl j)))
        r.coeffs;
      Hashtbl.fold (fun j v acc -> if v = 0 then acc else (j, to_q v) :: acc) tbl []
    in
    Lp.constr coeffs r.cmp (to_q r.rhs)
  in
  let rows_arr = Array.of_list rows in
  let constraints =
    if Array.length rows_arr >= 64 then
      Array.to_list (Ccs_par.parallel_map convert rows_arr)
    else Array.to_list (Array.map convert rows_arr)
  in
  let upper_q = Array.map (Option.map to_q) upper in
  let lp =
    Lp.problem ~upper:upper_q ~nvars ~objective:(Array.make nvars Q.zero) constraints
  in
  Ccs_obs.Metrics.incr m_ilp_calls;
  Ccs_obs.Metrics.observe h_ilp_vars (float_of_int nvars);
  Ccs_obs.Span.with_ "ptas.ilp"
    ~fields:
      [ Ccs_obs.Log.int "nvars" nvars;
        Ccs_obs.Log.int "rows" (List.length constraints) ]
  @@ fun () ->
  match Ilp.solve ~max_nodes ~feasibility:true ?warm ?basis_out (Ilp.all_integer lp) with
  | Ilp.Optimal { solution; _ } ->
      Some (Array.map (fun v -> Bigint.to_int_exn (Q.num v)) solution)
  | Ilp.Infeasible -> None
  | Ilp.Node_limit -> raise Budget_exceeded
  | Ilp.Unbounded -> None

type 'a progress = {
  mutable accepted : ('a * Q.t) option;
  mutable rejected : Q.t option;
}

let progress () = { accepted = None; rejected = None }

type 'a anytime = {
  result : ('a * Q.t) option;
  refuted : Q.t option;
  complete : bool;
}

let geometric_search ?progress:prog ~lb ~ub ~delta ~oracle () =
  if Q.(ub < lb) then invalid_arg "geometric_search: ub < lb";
  Ccs_obs.Span.with_ "ptas.binary_search"
    ~fields:
      [ Ccs_obs.Log.str "lb" (Q.to_string lb); Ccs_obs.Log.str "ub" (Q.to_string ub) ]
  @@ fun () ->
  let oracle t =
    Ccs_resil.Deadline.check chk_guess;
    Ccs_obs.Metrics.incr m_guesses;
    let answer = oracle t in
    Ccs_obs.Log.debug (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t" (Q.to_string t);
              Ccs_obs.Log.bool "accepted" (answer <> None) ]
          "ptas.guess");
    answer
  in
  let step = Q.add Q.one delta in
  (* grid index of the first point >= ub *)
  let rec grid_size i t = if Q.(t >= ub) then i else grid_size (i + 1) (Q.mul t step) in
  let imax = grid_size 0 lb in
  let point i =
    let rec go acc k = if k = 0 then acc else go (Q.mul acc step) (k - 1) in
    Q.min ub (go lb i)
  in
  (* Search the smallest accepted index by k-section: each round probes the
     current interval at [min jobs width] interior points concurrently, then
     narrows exactly as the sequential scan of those answers would. With one
     job the probe point is [(lo + hi) / 2] — classic bisection, unchanged
     from the sequential implementation — and because the oracle is monotone
     (see the interface), every pool size converges to the same smallest
     accepted grid index, making seeded runs bit-identical at any --jobs. *)
  let record_accept w t =
    match prog with None -> () | Some p -> p.accepted <- Some (w, t)
  in
  let record_reject t =
    match prog with
    | None -> ()
    | Some p -> (
        match p.rejected with
        | Some r when Q.(r >= t) -> ()
        | _ -> p.rejected <- Some t)
  in
  match oracle (point imax) with
  | None -> failwith "geometric_search: oracle rejected the upper bound"
  | Some witness_ub ->
      record_accept witness_ub (point imax);
      let best = ref (witness_ub, point imax) in
      let lo = ref 0 and hi = ref imax in
      while !lo < !hi do
        let width = !hi - !lo in
        (* k-section does ~k/log2(k+1) times the probe work of bisection, so
           cap the fan-out by the cores actually present: on a single-core
           host a 4-domain pool degenerates to plain bisection instead of
           burning 1.7x the oracle calls. Any k lands on the same smallest
           accepted index (the oracle is monotone and deterministic), so
           this cap never changes the result, only the wall clock. *)
        let k = min width (Ccs_par.effective_jobs ()) in
        let probes =
          Array.init k (fun i -> !lo + (width * (i + 1) / (k + 1)))
          |> Array.to_list |> List.sort_uniq compare |> Array.of_list
        in
        let answers = Ccs_par.parallel_map (fun i -> oracle (point i)) probes in
        (* lowest accepted probe bounds from above; by monotonicity every
           rejected probe below it bounds from below *)
        let accepted = ref None in
        Array.iteri
          (fun j a ->
            match (a, !accepted) with
            | Some w, None -> accepted := Some (probes.(j), w)
            | _ -> ())
          answers;
        match !accepted with
        | Some (i, w) ->
            best := (w, point i);
            record_accept w (point i);
            hi := i;
            Array.iteri
              (fun j a ->
                if a = None && probes.(j) < i then begin
                  record_reject (point probes.(j));
                  lo := max !lo (probes.(j) + 1)
                end)
              answers
        | None ->
            let last = probes.(Array.length probes - 1) in
            record_reject (point last);
            lo := last + 1
      done;
      !best
