module Q = Rat

type stats = { t_accepted : Q.t; oracle_calls : int; ilp_vars : int }

let guarantee (p : Common.param) t =
  let delta = Common.delta p in
  Q.add
    (Q.mul
       (Q.mul (Q.add Q.one (Q.mul (Q.of_int 3) delta)) (Q.add Q.one (Q.mul (Q.of_int 2) delta)))
       t)
    (Q.mul delta t)

(* A grouped job: total (original, un-rounded) size and the original job ids
   it carries. In the non-preemptive case all of them go to one machine. *)
type gjob = { gsize : int; members : int list }

type gclass = {
  large_jobs : gjob list;  (* every size >= delta*T; empty for small classes *)
  small_job : gjob option;  (* single grouped job of size < delta*T *)
}

(* Lemma 12 grouping for one class at guess T. [delta_t] is delta*T. *)
let group_class ~delta_t jobs =
  (* jobs: (id, size); delta_t rational *)
  let is_small (_, p) = Q.(Q.of_int p < delta_t) in
  let smalls, bigs = List.partition is_small jobs in
  (* bundle smalls into packets of size in [delta*T, 2 delta*T) *)
  let packets = ref [] in
  let cur_ids = ref [] and cur_sz = ref 0 in
  List.iter
    (fun (id, p) ->
      cur_ids := id :: !cur_ids;
      cur_sz := !cur_sz + p;
      if Q.(Q.of_int !cur_sz >= delta_t) then begin
        packets := { gsize = !cur_sz; members = !cur_ids } :: !packets;
        cur_ids := [];
        cur_sz := 0
      end)
    smalls;
  let leftover =
    if !cur_sz > 0 then Some { gsize = !cur_sz; members = !cur_ids } else None
  in
  let big_gjobs = List.map (fun (id, p) -> { gsize = p; members = [ id ] }) bigs in
  let all_large = big_gjobs @ !packets in
  match (leftover, all_large) with
  | None, [] -> assert false (* classes are non-empty *)
  | None, large -> { large_jobs = large; small_job = None }
  | Some y, [] -> { large_jobs = []; small_job = Some y }
  | Some y, j :: rest ->
      (* merge the leftover into an arbitrary other job of the class *)
      let merged = { gsize = j.gsize + y.gsize; members = j.members @ y.members } in
      { large_jobs = merged :: rest; small_job = None }

type rounded = {
  tbar : int;  (* in base units delta^2*T/c *)
  cstar : int;
  gclasses : gclass array;
  (* large classes: (gclass index, histogram of rounded sizes in base units,
     jobs bucketed per rounded size) *)
  large : (int * (int * int) list * (int, gjob list ref) Hashtbl.t) list;
  smalls_by_size : (int * int list) list;  (* rounded size -> gclass indices *)
}

let round_instance (p : Common.param) inst t =
  let d = p.Common.d in
  let c = Instance.c inst in
  let unit_q = Q.div t (Q.of_int (c * d * d)) in
  let tbar = c * (d + 3) * (d + 2) in
  let delta_t = Q.div t (Q.of_int d) in
  let class_jobs = Instance.class_jobs inst in
  let gclasses =
    Array.mapi
      (fun _u ids ->
        let jobs = List.map (fun j -> (j, (Instance.job inst j).Instance.p)) ids in
        group_class ~delta_t jobs)
      class_jobs
  in
  let large = ref [] and smalls = Hashtbl.create 8 in
  Array.iteri
    (fun gi gc ->
      match gc.small_job with
      | Some y ->
          let s = max 1 (Bigint.to_int_exn (Q.ceil (Q.div (Q.of_int y.gsize) unit_q))) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt smalls s) in
          Hashtbl.replace smalls s (gi :: prev)
      | None ->
          let buckets : (int, gjob list ref) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun gj ->
              (* multiples of delta^2*T = c base units *)
              let k =
                Bigint.to_int_exn
                  (Q.ceil (Q.div (Q.of_int gj.gsize) (Q.mul unit_q (Q.of_int c))))
              in
              let size = k * c in
              match Hashtbl.find_opt buckets size with
              | Some r -> r := gj :: !r
              | None -> Hashtbl.replace buckets size (ref [ gj ]))
            gc.large_jobs;
          let hist =
            Hashtbl.fold (fun size r acc -> (size, List.length !r) :: acc) buckets []
            |> List.sort compare
          in
          large := (gi, hist, buckets) :: !large)
    gclasses;
  {
    tbar;
    cstar = min (tbar / (d * c)) (Instance.c inst);
    gclasses;
    large = List.rev !large;
    smalls_by_size = Hashtbl.fold (fun s cls acc -> (s, cls) :: acc) smalls [];
  }

(* Candidate modules of one class: non-empty sub-multisets of its histogram
   with sum <= tbar. Returned as sorted-descending size lists. *)
let class_modules rounded (_, hist, _) =
  Common.bounded_multisets ~parts:hist ~max_sum:rounded.tbar ~max_count:max_int ()
  |> List.filter (( <> ) [])

type layout = {
  nvars : int;
  x : int array;
  (* y variables: (large index, module) -> var *)
  y : (int * int list, int) Hashtbl.t;
  modules : (int * int list) list;  (* (large index, module) in y order *)
  w : (int * int, int) Hashtbl.t;
  configs : int list array;
  hb_of_config : int array;
  hb_groups : (int * int) array;
  module_sizes : int list;  (* distinct Lambda(M) values, descending *)
}

let build_layout rounded =
  (* candidate modules per large class and the global size set *)
  let per_class_modules =
    List.mapi (fun li lc -> (li, class_modules rounded lc)) rounded.large
  in
  let sizes =
    List.concat_map (fun (_, ms) -> List.map (fun m -> List.fold_left ( + ) 0 m) ms)
      per_class_modules
    |> List.sort_uniq (fun a b -> compare b a)
  in
  let configs =
    Common.multisets ~parts:sizes ~max_sum:rounded.tbar ~max_count:rounded.cstar ()
  in
  let configs = Array.of_list configs in
  let hb_tbl = Hashtbl.create 16 in
  let hb_list = ref [] in
  let hb_of_config =
    Array.map
      (fun k ->
        let h = List.fold_left ( + ) 0 k and b = List.length k in
        match Hashtbl.find_opt hb_tbl (h, b) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length hb_tbl in
            Hashtbl.replace hb_tbl (h, b) i;
            hb_list := (h, b) :: !hb_list;
            i)
      configs
  in
  let hb_groups = Array.of_list (List.rev !hb_list) in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let x = Array.init (Array.length configs) (fun _ -> fresh ()) in
  let y = Hashtbl.create 64 in
  let modules = ref [] in
  List.iter
    (fun (li, ms) ->
      List.iter
        (fun m ->
          Hashtbl.replace y (li, m) (fresh ());
          modules := (li, m) :: !modules)
        ms)
    per_class_modules;
  let w = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      Array.iteri (fun hbi _ -> Hashtbl.replace w (s, hbi) (fresh ())) hb_groups)
    rounded.smalls_by_size;
  {
    nvars = !next;
    x;
    y;
    modules = List.rev !modules;
    w;
    configs;
    hb_of_config;
    hb_groups;
    module_sizes = sizes;
  }

let build_rows inst rounded layout =
  let c = Instance.c inst in
  let m = Instance.m inst in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  push (Common.row_eq (Array.to_list (Array.map (fun v -> (v, 1)) layout.x)) m);
  (* (1) per module size q: config slots = chosen modules of that size *)
  List.iter
    (fun q ->
      let lhs = ref [] in
      Array.iteri
        (fun ki k ->
          let cnt = List.length (List.filter (( = ) q) k) in
          if cnt > 0 then lhs := (layout.x.(ki), cnt) :: !lhs)
        layout.configs;
      List.iter
        (fun (li, mdl) ->
          if List.fold_left ( + ) 0 mdl = q then
            lhs := (Hashtbl.find layout.y (li, mdl), -1) :: !lhs)
        layout.modules;
      push (Common.row_eq !lhs 0))
    layout.module_sizes;
  (* (2,3) small-class capacity per (h,b) *)
  Array.iteri
    (fun hbi (h, b) ->
      let xs = ref [] in
      Array.iteri
        (fun ki v -> if layout.hb_of_config.(ki) = hbi then xs := v :: !xs)
        layout.x;
      let slot_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), 1)) rounded.smalls_by_size
        @ List.map (fun v -> (v, b - c)) !xs
      in
      push (Common.row_le slot_row 0);
      let space_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), s)) rounded.smalls_by_size
        @ List.map (fun v -> (v, h - rounded.tbar)) !xs
      in
      push (Common.row_le space_row 0))
    layout.hb_groups;
  (* (4) per large class and size: exact cover of the job histogram *)
  List.iteri
    (fun li (_, hist, _) ->
      List.iter
        (fun (size, count) ->
          let lhs = ref [] in
          List.iter
            (fun (li', mdl) ->
              if li' = li then begin
                let cnt = List.length (List.filter (( = ) size) mdl) in
                if cnt > 0 then lhs := (Hashtbl.find layout.y (li, mdl), cnt) :: !lhs
              end)
            layout.modules;
          push (Common.row_eq !lhs count))
        hist)
    rounded.large;
  (* (5) per small size *)
  List.iter
    (fun (s, cls) ->
      let lhs =
        Array.to_list
          (Array.mapi (fun hbi _ -> (Hashtbl.find layout.w (s, hbi), 1)) layout.hb_groups)
      in
      push (Common.row_eq lhs (List.length cls)))
    rounded.smalls_by_size;
  List.rev !rows

let construct inst rounded layout sol =
  let n = Instance.n inst in
  (* module supply: per size, (large index, module, count) *)
  let supply = Hashtbl.create 16 in
  List.iter
    (fun (li, mdl) ->
      let v = sol.(Hashtbl.find layout.y (li, mdl)) in
      if v > 0 then begin
        let q = List.fold_left ( + ) 0 mdl in
        let prev = Option.value ~default:[] (Hashtbl.find_opt supply q) in
        Hashtbl.replace supply q ((li, mdl, ref v) :: prev)
      end)
    layout.modules;
  let pop_module q =
    match Hashtbl.find_opt supply q with
    | Some entries -> (
        match List.find_opt (fun (_, _, r) -> !r > 0) entries with
        | Some (li, mdl, r) ->
            decr r;
            (li, mdl)
        | None -> failwith "Nonpreemptive_ptas: module supply exhausted")
    | None -> failwith "Nonpreemptive_ptas: no module of requested size"
  in
  (* materialize machines *)
  let machines = ref [] in
  Array.iteri
    (fun ki k ->
      for _ = 1 to sol.(layout.x.(ki)) do
        machines := (ki, k) :: !machines
      done)
    layout.configs;
  let machines = Array.of_list !machines in
  let assignment = Array.make n (-1) in
  let large = Array.of_list rounded.large in
  (* job queues per (large class, rounded size) are the buckets *)
  let place_gjob machine gj = List.iter (fun id -> assignment.(id) <- machine) gj.members in
  Array.iteri
    (fun mi (_, k) ->
      List.iter
        (fun q ->
          let li, mdl = pop_module q in
          let _, _, buckets = large.(li) in
          List.iter
            (fun size ->
              match Hashtbl.find_opt buckets size with
              | Some ({ contents = gj :: rest } as r) ->
                  r := rest;
                  place_gjob mi gj
              | _ -> failwith "Nonpreemptive_ptas: job bucket exhausted")
            mdl)
        k)
    machines;
  (* all large jobs must be placed *)
  Array.iter
    (fun (_, _, buckets) ->
      Hashtbl.iter
        (fun _ r -> if !r <> [] then failwith "Nonpreemptive_ptas: unplaced large jobs")
        buckets)
    large;
  (* small classes by round robin within (h,b) groups *)
  let group_machines = Array.make (Array.length layout.hb_groups) [] in
  Array.iteri
    (fun mi (ki, _) ->
      let g = layout.hb_of_config.(ki) in
      group_machines.(g) <- mi :: group_machines.(g))
    machines;
  let smalls_remaining = List.map (fun (s, cls) -> (s, ref cls)) rounded.smalls_by_size in
  Array.iteri
    (fun hbi _ ->
      let chosen = ref [] in
      List.iter
        (fun (s, remaining) ->
          let v = sol.(Hashtbl.find layout.w (s, hbi)) in
          for _ = 1 to v do
            match !remaining with
            | gi :: rest ->
                remaining := rest;
                chosen := (s, gi) :: !chosen
            | [] -> failwith "Nonpreemptive_ptas: small class accounting mismatch"
          done)
        smalls_remaining;
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !chosen in
      if sorted <> [] then begin
        let arr = Array.of_list (List.rev group_machines.(hbi)) in
        let count = Array.length arr in
        if count = 0 then failwith "Nonpreemptive_ptas: empty group with small classes";
        List.iteri
          (fun i (_, gi) ->
            match rounded.gclasses.(gi).small_job with
            | Some gj -> place_gjob arr.(i mod count) gj
            | None -> assert false)
          sorted
      end)
    layout.hb_groups;
  Array.iteri
    (fun j mi -> if mi < 0 then failwith (Printf.sprintf "Nonpreemptive_ptas: job %d unplaced" j))
    assignment;
  assignment

let oracle ?warm ?basis_out (p : Common.param) inst t =
  if Q.(Q.of_int (Instance.pmax inst) > t) then None
  else
    Ccs_obs.Span.with_ "nonpreemptive.oracle"
      ~fields:[ Ccs_obs.Log.str "t" (Q.to_string t) ]
    @@ fun () ->
    let rounded = Ccs_obs.Span.with_ "ptas.round" (fun () -> round_instance p inst t) in
    let layout = Ccs_obs.Span.with_ "ptas.layout" (fun () -> build_layout rounded) in
    Common.observe_rounding
      ~large:(List.length rounded.large)
      ~small_groups:(List.length rounded.smalls_by_size)
      ~configs:(Array.length layout.configs);
    let rows = build_rows inst rounded layout in
    let upper = Array.make layout.nvars None in
    match Common.solve_int_feasibility ?warm ?basis_out ~nvars:layout.nvars ~upper rows with
    | None -> None
    | Some sol ->
        let assignment =
          Ccs_obs.Span.with_ "ptas.construct" (fun () -> construct inst rounded layout sol)
        in
        (match Schedule.validate_nonpreemptive inst assignment with
        | Ok _ -> Some assignment
        | Error e -> failwith ("Nonpreemptive_ptas: constructed invalid schedule: " ^ e))

let solve ?progress p inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Nonpreemptive_ptas.solve: C > c*m, no schedule exists";
  let n = Instance.n inst in
  if Instance.m inst >= n then
    (* one job per machine: optimal with makespan pmax *)
    ( Array.init n (fun j -> j),
      { t_accepted = Q.of_int (Instance.pmax inst); oracle_calls = 0; ilp_vars = 0 } )
  else
    Ccs_obs.Recorder.phase "ptas"
    @@ fun () ->
    Ccs_obs.Span.with_ "nonpreemptive.solve"
      ~fields:
        [ Ccs_obs.Log.int "n" n;
          Ccs_obs.Log.int "m" (Instance.m inst);
          Ccs_obs.Log.int "c" (Instance.c inst);
          Ccs_obs.Log.int "d" p.Common.d ]
    @@ fun () ->
    (* probes run on pool domains, so the call counter must be atomic *)
    let calls = Atomic.make 0 in
    (* set-once warm reference basis; see Splittable_ptas.solve *)
    let warm_ref = Atomic.make None in
    let orc t =
      Atomic.incr calls;
      let bout = ref None in
      let r = oracle ?warm:(Atomic.get warm_ref) ~basis_out:bout p inst t in
      (match (Atomic.get warm_ref, !bout) with
      | None, Some b -> ignore (Atomic.compare_and_set warm_ref None (Some b))
      | _ -> ());
      r
    in
    let total = Instance.total_load inst in
    let m = Instance.m inst in
    let lb = Q.of_int (max (Instance.pmax inst) ((total + m - 1) / m)) in
    (* the 7/3 schedule's makespan is achievable, hence an accepted guess *)
    let approx_sched, _ = Approx.Nonpreemptive.solve inst in
    let ub = Q.max lb (Q.of_int (Schedule.nonpreemptive_makespan inst approx_sched)) in
    let sched, t_accepted =
      Common.geometric_search ?progress ~lb ~ub ~delta:(Common.delta p) ~oracle:orc ()
    in
    let rounded = round_instance p inst t_accepted in
    let layout = build_layout rounded in
    Ccs_obs.Log.info (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t_accepted" (Q.to_string t_accepted);
              Ccs_obs.Log.int "oracle_calls" (Atomic.get calls);
              Ccs_obs.Log.int "ilp_vars" layout.nvars ]
          "nonpreemptive.solve: accepted");
    (sched, { t_accepted; oracle_calls = (Atomic.get calls); ilp_vars = layout.nvars })

type abstract = {
  a_tbar : int;
  a_cstar : int;
  a_large_hists : (int * int) list list;
  a_smalls : (int * int) list;
}

let abstract p inst t =
  let rounded = round_instance p inst t in
  {
    a_tbar = rounded.tbar;
    a_cstar = rounded.cstar;
    a_large_hists = List.map (fun (_, hist, _) -> hist) rounded.large;
    a_smalls = List.map (fun (s, cls) -> (s, List.length cls)) rounded.smalls_by_size;
  }

(* Anytime entry; see Splittable_ptas.solve_anytime. *)
let solve_anytime p inst =
  let prog = Common.progress () in
  match solve ~progress:prog p inst with
  | sched, stats ->
      { Common.result = Some (sched, stats.t_accepted);
        refuted = prog.Common.rejected;
        complete = true }
  | exception Ccs_resil.Deadline.Cancelled _ ->
      { Common.result = prog.Common.accepted;
        refuted = prog.Common.rejected;
        complete = false }
