(** PTAS for preemptive CCS (Section 4.3, Theorem 19).

    For a guess T, the instance is grouped exactly as in the non-preemptive
    case (Lemma 15) and rounded; time up to Tbar = (1+3delta)(1+delta^2)T is
    divided into layers of height delta^2*T. In a well-structured schedule
    (Lemma 16 — proved there via an integral flow, which {!Flow} implements)
    every piece of a job from a large class fills exactly one machine-layer
    slot, and a machine's class slots partition a subset of its layers into
    "modules": the layer set one class occupies on that machine.

    The paper's modules are 0-1 vectors over layers, so |M| = 2^|L| - 1,
    which is astronomically large even at delta = 1/2 (13 layers). All
    layers are interchangeable in the ILP — every constraint is either
    indexed by a single layer uniformly or aggregates over layers — so this
    implementation canonicalizes modules by their cardinality and
    configurations by the multiset of module cardinalities. A solution of
    the symmetrized ILP is then realized back into actual layer sets:
    module layer sets are chosen greedily to balance each class's per-layer
    slot supply, and each class's (grouped, rounded) jobs are matched to
    layer slots by a Dinic max-flow with per-layer capacity 1 per job —
    precisely the no-two-pieces-in-parallel constraint (Theorem 18). The
    realization is verified; a failure is a loud error, never a wrong
    schedule. Small classes go whole into the time gaps of their round-robin
    machine (Lemma 15 allows this), possibly continuing above Tbar by at
    most delta*T.

    DESIGN.md discusses why the symmetrization preserves the algorithm's
    guarantees. *)

type stats = {
  t_accepted : Rat.t;
  oracle_calls : int;
  ilp_vars : int;
  layers : int;  (** |L| at the accepted guess *)
}

(** Makespan guarantee at accepted guess T:
    (1+3delta)(1+delta^2)T + delta^2*T + delta*T. *)
val guarantee : Common.param -> Rat.t -> Rat.t

val solve :
  ?progress:Schedule.preemptive Common.progress ->
  Common.param ->
  Instance.t ->
  Schedule.preemptive * stats

(** Deadline-tolerant variant; see {!Splittable_ptas.solve_anytime}. *)
val solve_anytime : Common.param -> Instance.t -> Schedule.preemptive Common.anytime

(** Feasibility oracle for one guess (exposed for tests). *)
val oracle :
  ?warm:Lp.basis ->
  ?basis_out:Lp.basis option ref ->
  Common.param ->
  Instance.t ->
  Rat.t ->
  Schedule.preemptive option
