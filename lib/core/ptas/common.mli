(** Shared machinery for the three PTASs of Section 4.

    All three follow the same dual-approximation skeleton (Hochbaum-Shmoys):
    a guess T on the makespan, an oracle that either produces a schedule of
    makespan (1+O(delta))T or correctly reports that no schedule of makespan
    T exists, and a geometric binary search driving the guess down. The
    accuracy parameter is delta = 1/d with integral d, as the paper
    assumes. *)

type param = { d : int  (** 1/delta; d >= 1 *) }

val param : int -> param
val delta : param -> Rat.t

(** All multisets (as sorted-descending lists) over the given distinct part
    values, with sum <= [max_sum] and at most [max_count] parts. Includes
    the empty multiset. Raises [Too_many] beyond [limit] (default 200000) —
    the configuration spaces of Section 4 are exponential in 1/delta, and
    exceeding the cap means the requested accuracy is out of practical
    reach. *)
exception Too_many

val multisets :
  ?limit:int -> parts:int list -> max_sum:int -> max_count:int -> unit -> int list list

(** Like {!multisets} but each part value [v] has a limited multiplicity
    [mult v] (used to enumerate the sub-multisets of one class's job-size
    histogram in the non-preemptive PTAS). *)
val bounded_multisets :
  ?limit:int -> parts:(int * int) list -> max_sum:int -> max_count:int -> unit -> int list list

(** Raised when the branch & bound exhausts its node budget: the answer is
    unknown, and silently reporting "infeasible" would break the PTAS
    completeness guarantee, so the failure is loud. *)
exception Budget_exceeded

(** Integer-feasibility wrapper around {!Ilp}: rows over int coefficients,
    all variables integral in [0, upper_j] ([None] = unbounded above).
    Returns a witness assignment or [None] iff provably infeasible; raises
    {!Budget_exceeded} after [max_nodes] B&B nodes. *)
type row = { coeffs : (int * int) list; cmp : Lp.cmp; rhs : int }

val row_eq : (int * int) list -> int -> row
val row_le : (int * int) list -> int -> row
val row_ge : (int * int) list -> int -> row

val solve_int_feasibility :
  ?max_nodes:int ->
  ?warm:Lp.basis ->
  ?basis_out:Lp.basis option ref ->
  nvars:int ->
  upper:int option array ->
  row list ->
  int array option

(** Record the shape of one oracle call's rounded instance into the metrics
    registry (histograms [ptas.large_classes], [ptas.small_size_groups] and
    [ptas.configs]); every PTAS variant calls this once per guess. *)
val observe_rounding : large:int -> small_groups:int -> configs:int -> unit

(** Live progress of a {!geometric_search}, for recovering a certified
    partial answer when the search is cancelled mid-flight: [accepted] is
    the best (lowest-guess) witness produced so far, [rejected] the highest
    guess the oracle has refuted — by the dual-approximation argument a
    certificate that no schedule of makespan [rejected] exists for the
    rounded relaxation, hence a lower-bound witness for the search. Updated
    by the coordinating domain only (between probe rounds). *)
type 'a progress = {
  mutable accepted : ('a * Rat.t) option;
  mutable rejected : Rat.t option;
}

val progress : unit -> 'a progress

(** Outcome of an interruptible PTAS run (see [solve_anytime] in the three
    variant modules): the best accepted witness with its guess, the highest
    refuted guess, and whether the search actually finished (in which case
    [result] is the same answer [solve] returns). *)
type 'a anytime = {
  result : ('a * Rat.t) option;
  refuted : Rat.t option;
  complete : bool;
}

(** [geometric_search ~lb ~ub ~delta ~oracle] finds the smallest grid point
    [T = lb * (1+delta)^i] (clamped to [ub]) accepted by the oracle and
    returns the oracle's witness together with the accepted guess. The
    oracle must be monotone (accepting T implies accepting any larger grid
    point); this is the standard dual-approximation argument. Raises
    [Failure] if even [ub] is rejected. [progress] (when supplied) is kept
    current while the search runs. *)
val geometric_search :
  ?progress:'a progress ->
  lb:Rat.t ->
  ub:Rat.t ->
  delta:Rat.t ->
  oracle:(Rat.t -> 'a option) ->
  unit ->
  'a * Rat.t
