module Q = Rat

type stats = { t_accepted : Q.t; oracle_calls : int; ilp_vars : int; layers : int }

let guarantee (p : Common.param) t =
  let delta = Common.delta p in
  let tbar =
    Q.mul
      (Q.mul (Q.add Q.one (Q.mul (Q.of_int 3) delta)) (Q.add Q.one (Q.mul delta delta)))
      t
  in
  Q.add tbar (Q.add (Q.mul delta t) (Q.mul (Q.mul delta delta) t))

type gjob = { gsize : int; members : int list }

type gclass = { large_jobs : gjob list; small_job : gjob option }

(* Same Lemma 15 grouping as the non-preemptive case. *)
let group_class ~delta_t jobs =
  let is_small (_, p) = Q.(Q.of_int p < delta_t) in
  let smalls, bigs = List.partition is_small jobs in
  let packets = ref [] in
  let cur_ids = ref [] and cur_sz = ref 0 in
  List.iter
    (fun (id, p) ->
      cur_ids := id :: !cur_ids;
      cur_sz := !cur_sz + p;
      if Q.(Q.of_int !cur_sz >= delta_t) then begin
        packets := { gsize = !cur_sz; members = !cur_ids } :: !packets;
        cur_ids := [];
        cur_sz := 0
      end)
    smalls;
  let leftover = if !cur_sz > 0 then Some { gsize = !cur_sz; members = !cur_ids } else None in
  let big_gjobs = List.map (fun (id, p) -> { gsize = p; members = [ id ] }) bigs in
  match (leftover, big_gjobs @ !packets) with
  | None, [] -> assert false
  | None, large -> { large_jobs = large; small_job = None }
  | Some y, [] -> { large_jobs = []; small_job = Some y }
  | Some y, j :: rest ->
      { large_jobs = { gsize = j.gsize + y.gsize; members = j.members @ y.members } :: rest;
        small_job = None }

type rounded = {
  layer_q : Q.t;  (* delta^2*T, the layer height *)
  layers : int;  (* |L| *)
  tbar_u1 : int;  (* Tbar in units of delta^2*T/(c*d) *)
  cstar : int;
  gclasses : gclass array;
  (* (class id, grouped jobs with their layer demands k_j) *)
  large : (int * (gjob * int) list) list;
  smalls_by_size : (int * int list) list;  (* size in delta^2*T/c units *)
}

let round_instance (p : Common.param) inst t =
  let d = p.Common.d in
  let c = Instance.c inst in
  let layer_q = Q.div t (Q.of_int (d * d)) in
  (* |L| = floor(Tbar / layer) + 1 with Tbar = (1+3delta)(1+delta^2)T *)
  let layers = ((d + 3) * (d * d + 1) / d) + 1 in
  let tbar_u1 = c * (d + 3) * ((d * d) + 1) in
  let delta_t = Q.div t (Q.of_int d) in
  let class_jobs = Instance.class_jobs inst in
  let gclasses =
    Array.map
      (fun ids ->
        group_class ~delta_t (List.map (fun j -> (j, (Instance.job inst j).Instance.p)) ids))
      class_jobs
  in
  let large = ref [] and smalls = Hashtbl.create 8 in
  Array.iteri
    (fun u gc ->
      match gc.small_job with
      | Some y ->
          let s =
            max 1
              (Bigint.to_int_exn
                 (Q.ceil (Q.div (Q.of_int y.gsize) (Q.div layer_q (Q.of_int c)))))
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt smalls s) in
          Hashtbl.replace smalls s (u :: prev)
      | None ->
          let jobs =
            List.map
              (fun gj ->
                let k = Bigint.to_int_exn (Q.ceil (Q.div (Q.of_int gj.gsize) layer_q)) in
                (gj, k))
              gc.large_jobs
          in
          large := (u, jobs) :: !large)
    gclasses;
  {
    layer_q;
    layers;
    tbar_u1;
    cstar = min (Instance.c inst) layers;
    gclasses;
    large = List.rev !large;
    smalls_by_size = Hashtbl.fold (fun s cls acc -> (s, cls) :: acc) smalls [];
  }

type layout = {
  nvars : int;
  x : int array;
  y : (int * int, int) Hashtbl.t;  (* (large idx, cardinality) -> var *)
  w : (int * int, int) Hashtbl.t;
  configs : int list array;
  hb_of_config : int array;
  hb_groups : (int * int) array;  (* (layers used, module count) *)
}

let build_layout rounded =
  let cards = List.init rounded.layers (fun i -> i + 1) in
  let configs =
    Common.multisets ~parts:cards ~max_sum:rounded.layers ~max_count:rounded.cstar ()
  in
  let configs = Array.of_list configs in
  let hb_tbl = Hashtbl.create 16 in
  let hb_list = ref [] in
  let hb_of_config =
    Array.map
      (fun k ->
        let h = List.fold_left ( + ) 0 k and b = List.length k in
        match Hashtbl.find_opt hb_tbl (h, b) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length hb_tbl in
            Hashtbl.replace hb_tbl (h, b) i;
            hb_list := (h, b) :: !hb_list;
            i)
      configs
  in
  let hb_groups = Array.of_list (List.rev !hb_list) in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let x = Array.init (Array.length configs) (fun _ -> fresh ()) in
  let y = Hashtbl.create 64 in
  List.iteri
    (fun li _ -> List.iter (fun k -> Hashtbl.replace y (li, k) (fresh ())) cards)
    rounded.large;
  let w = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      Array.iteri (fun hbi _ -> Hashtbl.replace w (s, hbi) (fresh ())) hb_groups)
    rounded.smalls_by_size;
  { nvars = !next; x; y; w; configs; hb_of_config; hb_groups }

(* Space accounting uses units u1 = delta^2*T/(c*d): a layer is c*d units, a
   small class of rounded size s (in delta^2*T/c units) is s*d units, and
   Tbar is the integer tbar_u1 = c*(d+3)*(d^2+1). *)
let build_rows (p : Common.param) inst rounded layout =
  let d = p.Common.d in
  let c = Instance.c inst in
  let m = Instance.m inst in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  push (Common.row_eq (Array.to_list (Array.map (fun v -> (v, 1)) layout.x)) m);
  (* (1) per cardinality: config slots = chosen modules *)
  List.iter
    (fun k ->
      let lhs = ref [] in
      Array.iteri
        (fun ki cfg ->
          let cnt = List.length (List.filter (( = ) k) cfg) in
          if cnt > 0 then lhs := (layout.x.(ki), cnt) :: !lhs)
        layout.configs;
      List.iteri (fun li _ -> lhs := (Hashtbl.find layout.y (li, k), -1) :: !lhs) rounded.large;
      push (Common.row_eq !lhs 0))
    (List.init rounded.layers (fun i -> i + 1));
  (* (2,3) small-class slots and space per (h,b) group *)
  Array.iteri
    (fun hbi (h, b) ->
      let xs = ref [] in
      Array.iteri
        (fun ki v -> if layout.hb_of_config.(ki) = hbi then xs := v :: !xs)
        layout.x;
      let slot_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), 1)) rounded.smalls_by_size
        @ List.map (fun v -> (v, b - c)) !xs
      in
      push (Common.row_le slot_row 0);
      let space_row =
        List.map (fun (s, _) -> (Hashtbl.find layout.w (s, hbi), s * d)) rounded.smalls_by_size
        @ List.map (fun v -> (v, (h * c * d) - rounded.tbar_u1)) !xs
      in
      push (Common.row_le space_row 0))
    layout.hb_groups;
  (* (4) per large class: total layer demand covered by its modules *)
  List.iteri
    (fun li (_, jobs) ->
      let demand = List.fold_left (fun acc (_, k) -> acc + k) 0 jobs in
      let lhs =
        List.init rounded.layers (fun i -> (Hashtbl.find layout.y (li, i + 1), i + 1))
      in
      push (Common.row_eq lhs demand))
    rounded.large;
  (* (5) every small class assigned once *)
  List.iter
    (fun (s, cls) ->
      let lhs =
        Array.to_list
          (Array.mapi (fun hbi _ -> (Hashtbl.find layout.w (s, hbi), 1)) layout.hb_groups)
      in
      push (Common.row_eq lhs (List.length cls)))
    rounded.smalls_by_size;
  List.rev !rows

(* ---------------------------------------------------------------- *)
(* Realization: symmetric solution -> concrete layer sets -> flow-matched
   job pieces -> preemptive schedule. *)

let construct (p : Common.param) inst rounded layout sol =
  ignore p;
  let m = Instance.m inst in
  let nlayers = rounded.layers in
  let large = Array.of_list rounded.large in
  let nlarge = Array.length large in
  (* module supply per (class, cardinality) *)
  let supply = Array.make_matrix nlarge (nlayers + 1) 0 in
  for li = 0 to nlarge - 1 do
    for k = 1 to nlayers do
      supply.(li).(k) <- sol.(Hashtbl.find layout.y (li, k))
    done
  done;
  (* materialize machines *)
  let machines = ref [] in
  Array.iteri
    (fun ki cfg ->
      for _ = 1 to sol.(layout.x.(ki)) do
        machines := (ki, cfg) :: !machines
      done)
    layout.configs;
  let machines = Array.of_list !machines in
  if Array.length machines <> m then failwith "Preemptive_ptas: machine count mismatch";
  (* assign modules (class, cardinality) to machines and choose layer sets
     greedily, balancing each class's per-layer slot supply *)
  let slot_count = Array.make_matrix nlarge nlayers 0 in
  (* per machine: list of (class, layer list) *)
  let machine_modules = Array.make (Array.length machines) [] in
  Array.iteri
    (fun mi (_, cfg) ->
      let used = Array.make nlayers false in
      (* larger modules first: they have the least freedom *)
      let cfg = List.sort (fun a b -> compare b a) cfg in
      List.iter
        (fun k ->
          (* pick any class with remaining modules of cardinality k *)
          let li = ref (-1) in
          for cand = 0 to nlarge - 1 do
            if !li < 0 && supply.(cand).(k) > 0 then li := cand
          done;
          if !li < 0 then failwith "Preemptive_ptas: module supply exhausted";
          supply.(!li).(k) <- supply.(!li).(k) - 1;
          (* choose the k unused layers with the smallest current supply *)
          let candidates =
            List.init nlayers Fun.id
            |> List.filter (fun l -> not used.(l))
            |> List.sort (fun a b ->
                   compare (slot_count.(!li).(a), a) (slot_count.(!li).(b), b))
          in
          let chosen = List.filteri (fun i _ -> i < k) candidates in
          if List.length chosen < k then failwith "Preemptive_ptas: not enough layers";
          List.iter
            (fun l ->
              used.(l) <- true;
              slot_count.(!li).(l) <- slot_count.(!li).(l) + 1)
            chosen;
          machine_modules.(mi) <- (!li, chosen) :: machine_modules.(mi))
        cfg)
    machines;
  (* flow per class: grouped jobs (capacity k_j) -> layers (1 per job) ->
     sink (slot_count); integral max flow = total demand or the realization
     failed (Theorem 18 / Lemma 16 machinery) *)
  let piece_assignment = Array.make nlarge [||] in
  (* piece_assignment.(li).(layer) = gjob queue assigned to that layer *)
  Array.iteri
    (fun li (_, jobs) ->
      let jobs = Array.of_list jobs in
      let njobs = Array.length jobs in
      let demand = Array.fold_left (fun acc (_, k) -> acc + k) 0 jobs in
      let source = njobs + nlayers and sink = njobs + nlayers + 1 in
      let g = Flow.create (njobs + nlayers + 2) in
      Array.iteri
        (fun ji (_, k) -> ignore (Flow.add_edge g ~src:source ~dst:ji ~cap:k))
        jobs;
      let edge_ids = Array.make_matrix njobs nlayers (-1) in
      for ji = 0 to njobs - 1 do
        for l = 0 to nlayers - 1 do
          if slot_count.(li).(l) > 0 then
            edge_ids.(ji).(l) <- Flow.add_edge g ~src:ji ~dst:(njobs + l) ~cap:1
        done
      done;
      for l = 0 to nlayers - 1 do
        if slot_count.(li).(l) > 0 then
          ignore (Flow.add_edge g ~src:(njobs + l) ~dst:sink ~cap:slot_count.(li).(l))
      done;
      let v = Flow.max_flow g ~source ~sink in
      if v <> demand then
        failwith
          (Printf.sprintf "Preemptive_ptas: layer realization failed for class %d (%d/%d)"
             (fst large.(li)) v demand);
      let per_layer = Array.make nlayers [] in
      for ji = 0 to njobs - 1 do
        for l = 0 to nlayers - 1 do
          if edge_ids.(ji).(l) >= 0 && Flow.flow_on g edge_ids.(ji).(l) = 1 then
            per_layer.(l) <- ji :: per_layer.(l)
        done
      done;
      piece_assignment.(li) <- per_layer)
    large;
  (* distribute the (class, layer) jobs onto the machine slots; collect per
     grouped job its (machine, layer) slots *)
  let gjob_slots : (int * int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  (* key (li, ji) *)
  let cursor = Array.make_matrix nlarge nlayers [] in
  for li = 0 to nlarge - 1 do
    if Array.length piece_assignment.(li) > 0 then
      for l = 0 to nlayers - 1 do
        cursor.(li).(l) <- piece_assignment.(li).(l)
      done
  done;
  Array.iteri
    (fun mi modules ->
      List.iter
        (fun (li, layers_chosen) ->
          List.iter
            (fun l ->
              match cursor.(li).(l) with
              | ji :: rest ->
                  cursor.(li).(l) <- rest;
                  let key = (li, ji) in
                  let r =
                    match Hashtbl.find_opt gjob_slots key with
                    | Some r -> r
                    | None ->
                        let r = ref [] in
                        Hashtbl.replace gjob_slots key r;
                        r
                  in
                  r := (mi, l) :: !r
              | [] -> failwith "Preemptive_ptas: slot/piece mismatch")
            layers_chosen)
        modules)
    machine_modules;
  (* build the schedule: fill each grouped job's members sequentially into
     its slots ordered by layer *)
  let sched : Schedule.ppiece list ref array = Array.init m (fun _ -> ref []) in
  let layer_q = rounded.layer_q in
  Array.iteri
    (fun li (_, jobs) ->
      let jobs_arr = Array.of_list jobs in
      Array.iteri
        (fun ji (gj, _) ->
          let slots =
            match Hashtbl.find_opt gjob_slots (li, ji) with
            | Some r -> List.sort (fun (_, a) (_, b) -> compare a b) !r
            | None -> []
          in
          let members = ref (List.map (fun id -> (id, Q.of_int (Instance.job inst id).Instance.p))
                               (List.sort compare gj.members)) in
          List.iter
            (fun (mi, l) ->
              let base = Q.mul (Q.of_int l) layer_q in
              let room = ref layer_q in
              let offset = ref Q.zero in
              let continue_fill = ref true in
              while !continue_fill && Q.sign !room > 0 do
                match !members with
                | [] -> continue_fill := false
                | (id, remaining) :: rest ->
                    let take = Q.min remaining !room in
                    sched.(mi) :=
                      { Schedule.pjob = id; start = Q.add base !offset; len = take }
                      :: !(sched.(mi));
                    offset := Q.add !offset take;
                    room := Q.sub !room take;
                    let rem' = Q.sub remaining take in
                    if Q.sign rem' = 0 then members := rest
                    else members := (id, rem') :: rest
              done)
            slots;
          if !members <> [] then failwith "Preemptive_ptas: grouped job did not fit its slots")
        jobs_arr)
    large;
  (* small classes: round robin within (h,b) groups, filling time gaps *)
  let group_machines = Array.make (Array.length layout.hb_groups) [] in
  Array.iteri
    (fun mi (ki, _) ->
      let g = layout.hb_of_config.(ki) in
      group_machines.(g) <- mi :: group_machines.(g))
    machines;
  (* free intervals per machine: unused layers, then open-ended tail *)
  let machine_used_layers = Array.make m [] in
  Array.iteri
    (fun mi modules ->
      machine_used_layers.(mi) <- List.concat_map snd modules)
    machine_modules;
  let place_small mi gj =
    let used = Array.make nlayers false in
    List.iter (fun l -> used.(l) <- true) machine_used_layers.(mi);
    (* also account for smalls already placed on this machine: track via a
       per-machine cursor list of free intervals consumed so far *)
    let members = ref (List.map (fun id -> (id, Q.of_int (Instance.job inst id).Instance.p))
                         (List.sort compare gj.members)) in
    (* existing small pieces on this machine beyond the layer grid *)
    let existing = !(sched.(mi)) in
    (* compute free intervals: within layers not used by large modules and
       not already holding small pieces; simplest correct approach: collect
       all occupied intervals and scan. *)
    let occupied =
      List.map (fun pc -> (pc.Schedule.start, Q.add pc.Schedule.start pc.Schedule.len)) existing
      |> List.sort (fun (a, _) (b, _) -> Q.compare a b)
    in
    (* merge into a simple cursor walk: we fill from time 0 upward, skipping
       occupied intervals and layers used by large modules *)
    let layer_busy l = used.(l) in
    let rec next_free t =
      (* skip any occupied interval or busy layer containing t *)
      let in_layer = Q.floor (Q.div t layer_q) in
      let li = Bigint.to_int_exn in_layer in
      if li < nlayers && layer_busy li then
        next_free (Q.mul (Q.of_int (li + 1)) layer_q)
      else
        match
          List.find_opt (fun (s, e) -> Q.(s <= t) && Q.(t < e)) occupied
        with
        | Some (_, e) -> next_free e
        | None -> t
    in
    let cursor = ref (next_free Q.zero) in
    while !members <> [] do
      let t = !cursor in
      (* available room until the next obstacle *)
      let li = Bigint.to_int_exn (Q.floor (Q.div t layer_q)) in
      let layer_end =
        if li < nlayers then Q.mul (Q.of_int (li + 1)) layer_q
        else Q.add t (Q.of_int (Instance.total_load inst))
      in
      let next_occ =
        List.fold_left
          (fun acc (s, _) -> if Q.(s > t) then Q.min acc s else acc)
          layer_end occupied
      in
      let room = Q.sub next_occ t in
      if Q.sign room <= 0 then cursor := next_free (Q.add t layer_q)
      else begin
        match !members with
        | [] -> ()
        | (id, remaining) :: rest ->
            let take = Q.min remaining room in
            sched.(mi) := { Schedule.pjob = id; start = t; len = take } :: !(sched.(mi));
            let rem' = Q.sub remaining take in
            if Q.sign rem' = 0 then members := rest else members := (id, rem') :: rest;
            cursor := next_free (Q.add t take)
      end
    done
  in
  let smalls_remaining = List.map (fun (s, cls) -> (s, ref cls)) rounded.smalls_by_size in
  Array.iteri
    (fun hbi _ ->
      let chosen = ref [] in
      List.iter
        (fun (s, remaining) ->
          let v = sol.(Hashtbl.find layout.w (s, hbi)) in
          for _ = 1 to v do
            match !remaining with
            | u :: rest ->
                remaining := rest;
                chosen := (s, u) :: !chosen
            | [] -> failwith "Preemptive_ptas: small class accounting mismatch"
          done)
        smalls_remaining;
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !chosen in
      if sorted <> [] then begin
        let arr = Array.of_list (List.rev group_machines.(hbi)) in
        let count = Array.length arr in
        if count = 0 then failwith "Preemptive_ptas: empty group with small classes";
        List.iteri
          (fun i (_, u) ->
            match rounded.gclasses.(u).small_job with
            | Some gj -> place_small arr.(i mod count) gj
            | None -> assert false)
          sorted
      end)
    layout.hb_groups;
  Array.map (fun r -> List.rev !r) sched

let oracle ?warm ?basis_out (p : Common.param) inst t =
  if Q.(Q.of_int (Instance.pmax inst) > t) then None
  else
    Ccs_obs.Span.with_ "preemptive.oracle"
      ~fields:[ Ccs_obs.Log.str "t" (Q.to_string t) ]
    @@ fun () ->
    let rounded = Ccs_obs.Span.with_ "ptas.round" (fun () -> round_instance p inst t) in
    let layout = Ccs_obs.Span.with_ "ptas.layout" (fun () -> build_layout rounded) in
    Common.observe_rounding
      ~large:(List.length rounded.large)
      ~small_groups:(List.length rounded.smalls_by_size)
      ~configs:(Array.length layout.configs);
    let rows = build_rows p inst rounded layout in
    let upper = Array.make layout.nvars None in
    match Common.solve_int_feasibility ?warm ?basis_out ~nvars:layout.nvars ~upper rows with
    | None -> None
    | Some sol ->
        let sched =
          Ccs_obs.Span.with_ "ptas.construct" (fun () -> construct p inst rounded layout sol)
        in
        (match Schedule.validate_preemptive inst sched with
        | Ok _ -> Some sched
        | Error e -> failwith ("Preemptive_ptas: constructed invalid schedule: " ^ e))

let solve ?progress p inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Preemptive_ptas.solve: C > c*m, no schedule exists";
  let n = Instance.n inst in
  if Instance.m inst >= n then
    (* one job per machine is an optimal preemptive schedule *)
    ( Array.init n (fun j ->
          [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int (Instance.job inst j).Instance.p } ]),
      { t_accepted = Q.of_int (Instance.pmax inst); oracle_calls = 0; ilp_vars = 0; layers = 0 } )
  else
    Ccs_obs.Recorder.phase "ptas"
    @@ fun () ->
    Ccs_obs.Span.with_ "preemptive.solve"
      ~fields:
        [ Ccs_obs.Log.int "n" n;
          Ccs_obs.Log.int "m" (Instance.m inst);
          Ccs_obs.Log.int "c" (Instance.c inst);
          Ccs_obs.Log.int "d" p.Common.d ]
    @@ fun () ->
    (* probes run on pool domains, so the call counter must be atomic *)
    let calls = Atomic.make 0 in
    (* set-once warm reference basis; see Splittable_ptas.solve *)
    let warm_ref = Atomic.make None in
    let orc t =
      Atomic.incr calls;
      let bout = ref None in
      let r = oracle ?warm:(Atomic.get warm_ref) ~basis_out:bout p inst t in
      (match (Atomic.get warm_ref, !bout) with
      | None, Some b -> ignore (Atomic.compare_and_set warm_ref None (Some b))
      | _ -> ());
      r
    in
    let lb = Bounds.lb_preemptive inst in
    (* the preemptive 2-approximation provides an achievable upper bound *)
    let approx_sched, _ = Approx.Preemptive.solve inst in
    let approx_mk = Schedule.preemptive_makespan approx_sched in
    let ub = Q.max lb approx_mk in
    let sched, t_accepted =
      Common.geometric_search ?progress ~lb ~ub ~delta:(Common.delta p) ~oracle:orc ()
    in
    let rounded = round_instance p inst t_accepted in
    let layout = build_layout rounded in
    Ccs_obs.Log.info (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t_accepted" (Q.to_string t_accepted);
              Ccs_obs.Log.int "oracle_calls" (Atomic.get calls);
              Ccs_obs.Log.int "ilp_vars" layout.nvars ]
          "preemptive.solve: accepted");
    ( sched,
      {
        t_accepted;
        oracle_calls = (Atomic.get calls);
        ilp_vars = layout.nvars;
        layers = rounded.layers;
      } )

(* Anytime entry; see Splittable_ptas.solve_anytime. *)
let solve_anytime p inst =
  let prog = Common.progress () in
  match solve ~progress:prog p inst with
  | sched, stats ->
      { Common.result = Some (sched, stats.t_accepted);
        refuted = prog.Common.rejected;
        complete = true }
  | exception Ccs_resil.Deadline.Cancelled _ ->
      { Common.result = prog.Common.accepted;
        refuted = prog.Common.rejected;
        complete = false }
