(** Class Constrained Scheduling instances.

    An instance is [n] jobs, each with an integral processing time
    [p_j >= 1] and a class [c_j] in [0 .. classes-1]; [machines] identical
    machines; and a per-machine budget of [slots] class slots (a machine may
    run jobs from at most [slots] distinct classes). This is the input
    [I = [p_1..p_n, c_1..c_n, m, c]] of the paper, 0-indexed. *)

type job = { p : int; cls : int }

type t = private {
  jobs : job array;
  machines : int;  (** m; may be astronomically larger than n *)
  slots : int;  (** c *)
  classes : int;  (** C; every class in [0, C) has at least one job *)
}

(** [make ~machines ~slots jobs] builds and validates an instance. Classes
    are renumbered densely (empty classes are discarded, matching the paper's
    assumption C <= n). Slots are clamped to [min slots C] — a machine can
    never use more distinct classes than exist (the paper's observation that
    c <= C, c <= n is w.l.o.g.). Raises [Invalid_argument] on empty jobs,
    non-positive processing times or machine/slot counts. *)
val make : machines:int -> slots:int -> (int * int) list -> t

val n : t -> int
val m : t -> int
val c : t -> int
val num_classes : t -> int

val job : t -> int -> job

(** Sum of all processing times. *)
val total_load : t -> int

val pmax : t -> int

(** [class_load t] is the array of accumulated loads [P_u]. *)
val class_load : t -> int array

(** [class_jobs t].(u) lists job indices of class [u] in increasing order. *)
val class_jobs : t -> int list array

(** True iff any schedule exists at all: C <= c * m. *)
val schedulable : t -> bool

(** Encoding length |I| in bits, as defined in the paper's introduction. *)
val encoding_length : t -> int

val pp : Format.formatter -> t -> unit

(** Compact flat representation for million-job instances: processing times
    and classes live in two off-heap [Bigarray]s (16 bytes per job, never
    scanned by the GC) instead of an array of boxed records. The invariants
    are the same as the record form's — classes dense in [0, classes),
    slots clamped to [min slots classes], positive processing times — so
    {!to_flat}/{!of_flat} are exact O(n) inverses and every solver accepting
    either form produces bit-identical output. *)
module Flat : sig
  type arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = private {
    p : arr;
    cls : arr;
    machines : int;
    slots : int;
    classes : int;
  }

  val n : t -> int
  val m : t -> int
  val c : t -> int
  val num_classes : t -> int
  val job_p : t -> int -> int
  val job_cls : t -> int -> int

  (** Build from parallel arrays, validating and renumbering classes densely
      exactly as {!Instance.make} does (distinct original ids, sorted
      ascending, map to 0, 1, ...). Raises [Invalid_argument] like [make]. *)
  val of_arrays : machines:int -> slots:int -> p:int array -> cls:int array -> t

  (** Like {!of_arrays} but takes ownership of the Bigarrays — the class
      array is renumbered in place, no copy. This is the streaming parser's
      zero-copy entry point. *)
  val of_bigarrays : machines:int -> slots:int -> p:arr -> cls:arr -> t

  val total_load : t -> int
  val pmax : t -> int

  (** Accumulated per-class loads [P_u], as in {!Instance.class_load}. *)
  val class_load : t -> int array

  (** [(offsets, ids)]: the job indices of class [u] in increasing order are
      [ids.(offsets.(u)) .. ids.(offsets.(u+1) - 1)]. One counting pass,
      O(n) ints, no per-class list cells. *)
  val class_jobs_csr : t -> int array * int array

  (** True iff any schedule exists at all: C <= c * m. *)
  val schedulable : t -> bool

  (** Off-heap bytes held by the two Bigarrays (16 per job). *)
  val mem_bytes : t -> int
end

(** O(n) conversions between the two forms; exact inverses. *)
val to_flat : t -> Flat.t

val of_flat : Flat.t -> t
