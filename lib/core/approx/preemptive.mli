(** The 2-approximation for preemptive CCS (Theorem 5, Algorithms 1 + 2).

    Same framework as the splittable algorithm, with two changes: the lower
    bound becomes [max (pmax, sum p / m)] so that no job is longer than the
    guess T (each job is then cut at most once), and after round robin the
    schedule above each machine's first item is shifted to start at time T
    (Algorithm 2, Figure 2), which separates the two fragments of every cut
    job in time.

    When [m >= n] the problem is trivial — one job per machine is optimal
    with makespan pmax — and is answered directly (this also keeps the
    schedule explicit: w.l.o.g. at most n machines are ever used). *)

type stats = {
  t_guess : Rat.t;
  probes : int;
  repacked : bool;  (** whether the Algorithm 2 shift was applied *)
}

val solve : Instance.t -> Schedule.preemptive * stats

(** Same algorithm directly on the flat representation (CSR class views,
    no per-job boxing on the way in). Bit-identical to [solve] on the
    converted instance. *)
val solve_flat : Instance.Flat.t -> Schedule.preemptive * stats
