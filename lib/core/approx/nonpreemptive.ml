type stats = { t_guess : int; probes : int }

let chk_probe = Ccs_resil.Deadline.site "approx.probe"

(* C2_u: jobs > T/2 need distinct machines; jobs in (T/3, T/2] are paired
   onto them greedily (largest fitting on the smallest remaining big job
   maximizes the number of pairings); leftovers go two per machine. *)
let cu_large ~t jobs =
  let bigs = List.filter (fun p -> 2 * p > t) jobs |> List.sort compare in
  let mids =
    List.filter (fun p -> 2 * p <= t && 3 * p > t) jobs |> List.sort (fun a b -> compare b a)
  in
  let ku = List.length bigs in
  (* two-pointer matching: mids descending against bigs ascending *)
  let rec pair bigs mids unmatched =
    match (bigs, mids) with
    | _, [] -> unmatched
    | [], rest -> unmatched + List.length rest
    | b :: bs, mid :: ms ->
        if b + mid <= t then pair bs ms unmatched
        else pair bigs ms (unmatched + 1)
  in
  let lu = pair bigs mids 0 in
  ku + ((lu + 1) / 2)

let cu_area_only ~t jobs =
  let total = List.fold_left ( + ) 0 jobs in
  (total + t - 1) / t

let cu ~t jobs = max (cu_area_only ~t jobs) (cu_large ~t jobs)

let solve_with_counter ?(use_lpt = true) ~counter inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Nonpreemptive.solve: C > c*m, no schedule exists";
  let n = Instance.n inst in
  let m = Instance.m inst in
  if m >= n then begin
    (* One machine per job is optimal (makespan pmax = LB). *)
    let sched = Array.init n (fun j -> j) in
    (sched, { t_guess = Instance.pmax inst; probes = 0 })
  end
  else begin
    let class_jobs = Instance.class_jobs inst in
    let class_sizes =
      Array.map (List.map (fun j -> (Instance.job inst j).Instance.p)) class_jobs
    in
    let cap = Border_search.slot_cap ~machines:m ~slots:(Instance.c inst) in
    let probes = ref 0 in
    let feasible t =
      Ccs_resil.Deadline.check chk_probe;
      incr probes;
      let count = ref 0 in
      (try
         Array.iter
           (fun sizes ->
             count := !count + counter ~t sizes;
             if !count > cap then raise Exit)
           class_sizes;
         true
       with Exit -> false)
    in
    let total = Instance.total_load inst in
    let lb = max (Instance.pmax inst) ((total + m - 1) / m) in
    let ub = max lb (Array.fold_left max 0 (Instance.class_load inst)) in
    (* Integral makespan: standard binary search for the smallest feasible
       guess (the count is monotone in T). *)
    let lo = ref lb and hi = ref ub in
    if not (feasible ub) then
      invalid_arg "Approx.Nonpreemptive.solve: unschedulable at the upper bound";
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      if feasible mid then hi := mid else lo := mid + 1
    done;
    let t = !lo in
    (* Split every class into C_u sub-classes by LPT and round-robin the
       sub-classes in non-ascending load order. *)
    let items = ref [] in
    Array.iteri
      (fun u jobs ->
        let sized = List.map (fun j -> (j, (Instance.job inst j).Instance.p)) jobs in
        let bins = counter ~t (List.map snd sized) in
        let content, load = Lpt.split ~sorted:use_lpt ~bins sized in
        Array.iteri
          (fun k part ->
            if part <> [] then items := (load.(k), List.map fst part) :: !items)
          content;
        ignore u)
      class_jobs;
    let sorted = List.stable_sort (fun (a, _) (b, _) -> compare b a) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    let assignment = Array.make n (-1) in
    Array.iteri
      (fun machine items ->
        List.iter (fun (_, jobs) -> List.iter (fun j -> assignment.(j) <- machine) jobs) items)
      per_machine;
    (assignment, { t_guess = t; probes = !probes })
  end

let solve inst = solve_with_counter ~counter:cu inst

let m_flat_solves = Ccs_obs.Metrics.counter "approx.flat_solves"
    ~help:"2-approximation solves run directly on the flat representation"

(* Flat fast path. Same algorithm, same answers, different plumbing: each
   class's job indices are sorted once by (p descending, index ascending)
   into a CSR segment, so a feasibility probe classifies jobs against T by
   scanning its segment — no per-probe sorting, no allocation (the big/mid
   scratch arrays are reused across probes) — and the final LPT split
   consumes the presorted segment directly. The probe's value sequences
   (bigs ascending, mids descending) are exactly the ones the list-based
   [cu] builds, and the LPT placement order matches [Lpt.split]'s stable
   sort, so [solve_flat (Instance.to_flat i)] is bit-identical to
   [solve i]. O(n log n) once, O(n) per probe, O(log ub) probes. *)
let solve_flat fl =
  if not (Instance.Flat.schedulable fl) then
    invalid_arg "Approx.Nonpreemptive.solve: C > c*m, no schedule exists";
  Ccs_obs.Metrics.incr m_flat_solves;
  Ccs_obs.Recorder.phase "approx" @@ fun () ->
  let n = Instance.Flat.n fl in
  let m = Instance.Flat.m fl in
  if m >= n then begin
    (* One machine per job is optimal (makespan pmax = LB). *)
    let sched = Array.init n (fun j -> j) in
    (sched, { t_guess = Instance.Flat.pmax fl; probes = 0 })
  end
  else begin
    let loads = Instance.Flat.class_load fl in
    let classes = Instance.Flat.num_classes fl in
    let offsets, ids = Instance.Flat.class_jobs_csr fl in
    let job_p = Instance.Flat.job_p fl in
    (* Job ids per class, sorted by (p desc, index asc) — the order
       [Lpt.split]'s stable sort produces from the index-ascending lists. *)
    let sid = Array.copy ids in
    for u = 0 to classes - 1 do
      let lo = offsets.(u) and hi = offsets.(u + 1) in
      if hi - lo > 1 then begin
        let seg = Array.sub sid lo (hi - lo) in
        Array.sort
          (fun a b ->
            let pa = job_p a and pb = job_p b in
            if pa <> pb then compare pb pa else compare a b)
          seg;
        Array.blit seg 0 sid lo (hi - lo)
      end
    done;
    let sp = Array.map job_p sid in
    (* Scratch for one class's big/mid sizes, reused across probes. *)
    let bigs = Array.make n 0 and mids = Array.make n 0 in
    let cu_cls ~t u =
      let lo = offsets.(u) and hi = offsets.(u + 1) in
      (* The segment is size-descending, so the bigs land in [bigs] in
         descending order (read backwards for the ascending two-pointer)
         and the mids in descending order, exactly the sequences the
         list-based [cu_large] sorts into. *)
      let nb = ref 0 and nm = ref 0 in
      for i = lo to hi - 1 do
        let p = Array.unsafe_get sp i in
        if 2 * p > t then begin
          Array.unsafe_set bigs !nb p;
          incr nb
        end
        else if 3 * p > t then begin
          Array.unsafe_set mids !nm p;
          incr nm
        end
      done;
      let bi = ref (!nb - 1) and mi = ref 0 and lu = ref 0 in
      while !mi < !nm do
        if !bi < 0 then begin
          lu := !lu + (!nm - !mi);
          mi := !nm
        end
        else if Array.unsafe_get bigs !bi + Array.unsafe_get mids !mi <= t then begin
          decr bi;
          incr mi
        end
        else begin
          incr lu;
          incr mi
        end
      done;
      let c2 = !nb + ((!lu + 1) / 2) in
      let c1 = (loads.(u) + t - 1) / t in
      max c1 c2
    in
    let cap = Border_search.slot_cap ~machines:m ~slots:(Instance.Flat.c fl) in
    let probes = ref 0 in
    let feasible t =
      Ccs_resil.Deadline.check chk_probe;
      incr probes;
      let count = ref 0 in
      try
        for u = 0 to classes - 1 do
          count := !count + cu_cls ~t u;
          if !count > cap then raise Exit
        done;
        true
      with Exit -> false
    in
    let total = Instance.Flat.total_load fl in
    let lb = max (Instance.Flat.pmax fl) ((total + m - 1) / m) in
    let ub = max lb (Array.fold_left max 0 loads) in
    let lo = ref lb and hi = ref ub in
    if not (feasible ub) then
      invalid_arg "Approx.Nonpreemptive.solve: unschedulable at the upper bound";
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      if feasible mid then hi := mid else lo := mid + 1
    done;
    let t = !lo in
    (* LPT over each presorted segment, replicating [Lpt.split]'s
       first-minimum bin scan and reversed per-bin placement order. *)
    let items = ref [] in
    for u = 0 to classes - 1 do
      let lo_u = offsets.(u) and hi_u = offsets.(u + 1) in
      let bins = cu_cls ~t u in
      let load = Array.make bins 0 in
      let content = Array.make bins [] in
      for i = lo_u to hi_u - 1 do
        let best = ref 0 in
        for k = 1 to bins - 1 do
          if load.(k) < load.(!best) then best := k
        done;
        content.(!best) <- sid.(i) :: content.(!best);
        load.(!best) <- load.(!best) + sp.(i)
      done;
      Array.iteri
        (fun k part -> if part <> [] then items := (load.(k), part) :: !items)
        content
    done;
    let sorted = List.stable_sort (fun (a, _) (b, _) -> compare b a) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    let assignment = Array.make n (-1) in
    Array.iteri
      (fun machine items ->
        List.iter (fun (_, jobs) -> List.iter (fun j -> assignment.(j) <- machine) jobs) items)
      per_machine;
    (assignment, { t_guess = t; probes = !probes })
  end
