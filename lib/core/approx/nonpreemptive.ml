type stats = { t_guess : int; probes : int }

let chk_probe = Ccs_resil.Deadline.site "approx.probe"

(* C2_u: jobs > T/2 need distinct machines; jobs in (T/3, T/2] are paired
   onto them greedily (largest fitting on the smallest remaining big job
   maximizes the number of pairings); leftovers go two per machine. *)
let cu_large ~t jobs =
  let bigs = List.filter (fun p -> 2 * p > t) jobs |> List.sort compare in
  let mids =
    List.filter (fun p -> 2 * p <= t && 3 * p > t) jobs |> List.sort (fun a b -> compare b a)
  in
  let ku = List.length bigs in
  (* two-pointer matching: mids descending against bigs ascending *)
  let rec pair bigs mids unmatched =
    match (bigs, mids) with
    | _, [] -> unmatched
    | [], rest -> unmatched + List.length rest
    | b :: bs, mid :: ms ->
        if b + mid <= t then pair bs ms unmatched
        else pair bigs ms (unmatched + 1)
  in
  let lu = pair bigs mids 0 in
  ku + ((lu + 1) / 2)

let cu_area_only ~t jobs =
  let total = List.fold_left ( + ) 0 jobs in
  (total + t - 1) / t

let cu ~t jobs = max (cu_area_only ~t jobs) (cu_large ~t jobs)

let solve_with_counter ?(use_lpt = true) ~counter inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Nonpreemptive.solve: C > c*m, no schedule exists";
  let n = Instance.n inst in
  let m = Instance.m inst in
  if m >= n then begin
    (* One machine per job is optimal (makespan pmax = LB). *)
    let sched = Array.init n (fun j -> j) in
    (sched, { t_guess = Instance.pmax inst; probes = 0 })
  end
  else begin
    let class_jobs = Instance.class_jobs inst in
    let class_sizes =
      Array.map (List.map (fun j -> (Instance.job inst j).Instance.p)) class_jobs
    in
    let cap = Border_search.slot_cap ~machines:m ~slots:(Instance.c inst) in
    let probes = ref 0 in
    let feasible t =
      Ccs_resil.Deadline.check chk_probe;
      incr probes;
      let count = ref 0 in
      (try
         Array.iter
           (fun sizes ->
             count := !count + counter ~t sizes;
             if !count > cap then raise Exit)
           class_sizes;
         true
       with Exit -> false)
    in
    let total = Instance.total_load inst in
    let lb = max (Instance.pmax inst) ((total + m - 1) / m) in
    let ub = max lb (Array.fold_left max 0 (Instance.class_load inst)) in
    (* Integral makespan: standard binary search for the smallest feasible
       guess (the count is monotone in T). *)
    let lo = ref lb and hi = ref ub in
    if not (feasible ub) then
      invalid_arg "Approx.Nonpreemptive.solve: unschedulable at the upper bound";
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      if feasible mid then hi := mid else lo := mid + 1
    done;
    let t = !lo in
    (* Split every class into C_u sub-classes by LPT and round-robin the
       sub-classes in non-ascending load order. *)
    let items = ref [] in
    Array.iteri
      (fun u jobs ->
        let sized = List.map (fun j -> (j, (Instance.job inst j).Instance.p)) jobs in
        let bins = counter ~t (List.map snd sized) in
        let content, load = Lpt.split ~sorted:use_lpt ~bins sized in
        Array.iteri
          (fun k part ->
            if part <> [] then items := (load.(k), List.map fst part) :: !items)
          content;
        ignore u)
      class_jobs;
    let sorted = List.stable_sort (fun (a, _) (b, _) -> compare b a) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    let assignment = Array.make n (-1) in
    Array.iteri
      (fun machine items ->
        List.iter (fun (_, jobs) -> List.iter (fun j -> assignment.(j) <- machine) jobs) items)
      per_machine;
    (assignment, { t_guess = t; probes = !probes })
  end

let solve inst = solve_with_counter ~counter:cu inst
