module Q = Rat

type stats = { t_guess : Q.t; probes : int; full_slices : int }

let m_flat_solves = Ccs_obs.Metrics.counter "approx.flat_solves"
    ~help:"2-approximation solves run directly on the flat representation"

(* The whole algorithm only ever looks at the per-class loads, so the record
   and flat front-ends share this core verbatim — bit-identical schedules by
   construction. *)
let solve_on ~loads ~machines:m ~slots ~total_load =
  let lb = Bounds.lb_splittable_of ~total_load ~machines:m in
  let { Border_search.t_star = t; probes } =
    Border_search.search ~loads ~machines:m ~slots ~lb
  in
  (* Slice large classes: f_u full slices of size exactly T plus a remainder
     in (0, T]. Every full slice occupies a machine alone (F < m because
     F*T < sum P_u <= m*lb <= m*T), so classes become consecutive blocks. *)
  let blocks = ref [] in
  let cursor = ref 0 in
  let tail_items = ref [] in
  Array.iteri
    (fun u pu ->
      let pu_q = Q.of_int pu in
      if Q.(pu_q > t) then begin
        let f = Bigint.to_int_exn (Q.ceil (Q.div pu_q t)) - 1 in
        let remainder = Q.sub pu_q (Q.mul (Q.of_int f) t) in
        if f > 0 then begin
          blocks :=
            { Schedule.cls = u; m_start = !cursor; m_count = f; per_machine = t }
            :: !blocks;
          cursor := !cursor + f
        end;
        tail_items := (u, remainder) :: !tail_items
      end
      else tail_items := (u, pu_q) :: !tail_items)
    loads;
  let full = !cursor in
  (* Round robin continues with the remaining items in non-ascending order,
     starting at machine F and wrapping around all m machines. *)
  let items =
    List.sort (fun (_, a) (_, b) -> Q.compare b a) !tail_items
  in
  let per_machine : (int, (int * Q.t) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i (u, size) ->
      let machine = (full + i) mod m in
      match Hashtbl.find_opt per_machine machine with
      | Some r -> r := (u, size) :: !r
      | None -> Hashtbl.replace per_machine machine (ref [ (u, size) ]))
    items;
  let explicit_machines =
    Hashtbl.fold (fun machine r acc -> (machine, List.rev !r) :: acc) per_machine []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  ( { Schedule.blocks = List.rev !blocks; explicit_machines },
    { t_guess = t; probes; full_slices = full } )

let solve inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Splittable.solve: C > c*m, no schedule exists";
  solve_on
    ~loads:(Instance.class_load inst)
    ~machines:(Instance.m inst) ~slots:(Instance.c inst)
    ~total_load:(Instance.total_load inst)

let solve_flat f =
  if not (Instance.Flat.schedulable f) then
    invalid_arg "Approx.Splittable.solve: C > c*m, no schedule exists";
  Ccs_obs.Metrics.incr m_flat_solves;
  Ccs_obs.Recorder.phase "approx" @@ fun () ->
  solve_on
    ~loads:(Instance.Flat.class_load f)
    ~machines:(Instance.Flat.m f) ~slots:(Instance.Flat.c f)
    ~total_load:(Instance.Flat.total_load f)
