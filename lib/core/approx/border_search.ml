module Q = Rat

type result = { t_star : Q.t; probes : int }

let m_probes = Ccs_obs.Metrics.counter "border_search.probes"
let m_searches = Ccs_obs.Metrics.counter "border_search.searches"

let count_classes ~loads ~cap t =
  let count = ref 0 in
  (try
     Array.iter
       (fun pu ->
         let pu_q = Q.of_int pu in
         let contribution =
           if Q.(pu_q > t) then Bigint.to_int_exn (Q.ceil (Q.div pu_q t)) else 1
         in
         count := !count + contribution;
         if !count > cap then raise Exit)
       loads
   with Exit -> count := cap + 1);
  !count

(* c * m without overflow: saturate at max_int. *)
let slot_cap ~machines ~slots =
  if machines > max_int / slots then max_int else machines * slots

let search ~loads ~machines ~slots ~lb =
  if Q.sign lb <= 0 then invalid_arg "Border_search.search: lb must be positive";
  Ccs_obs.Span.with_ "border_search"
    ~fields:
      [ Ccs_obs.Log.int "classes" (Array.length loads);
        Ccs_obs.Log.int "machines" machines ]
  @@ fun () ->
  let cap = slot_cap ~machines ~slots in
  let probes = ref 0 in
  let feasible t =
    incr probes;
    count_classes ~loads ~cap t <= cap
  in
  let finish r =
    Ccs_obs.Metrics.incr m_searches;
    Ccs_obs.Metrics.add m_probes r.probes;
    Ccs_obs.Log.debug (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t_star" (Q.to_string r.t_star);
              Ccs_obs.Log.int "probes" r.probes ]
          "border_search.done");
    r
  in
  if feasible lb then finish { t_star = lb; probes = !probes }
  else begin
    let best = ref None in
    Array.iter
      (fun pu ->
        let pu_q = Q.of_int pu in
        if Q.(pu_q >= lb) then begin
          (* Borders of this class: P_u / k for k in [1, k_max], k_max chosen
             so the border stays >= lb (and k <= m automatically, see
             Lemma 2: P_u / lb <= m). *)
          let k_max = Bigint.to_int_exn (Q.floor (Q.div pu_q lb)) in
          let k_max = min k_max machines in
          if k_max >= 1 && feasible pu_q then begin
            (* Largest k with feasible (P_u / k): prefix property in k. *)
            let lo = ref 1 and hi = ref k_max in
            while !lo < !hi do
              let mid = (!lo + !hi + 1) / 2 in
              if feasible (Q.div pu_q (Q.of_int mid)) then lo := mid else hi := mid - 1
            done;
            let border = Q.div pu_q (Q.of_int !lo) in
            match !best with
            | Some b when Q.(b <= border) -> ()
            | _ -> best := Some border
          end
        end)
      loads;
    match !best with
    | Some t -> finish { t_star = t; probes = !probes }
    | None ->
        invalid_arg
          "Border_search.search: no feasible guess (C > c*m, instance unschedulable)"
  end

let search_naive ~loads ~machines ~slots ~lb =
  let cap = slot_cap ~machines ~slots in
  let probes = ref 0 in
  let feasible t =
    incr probes;
    count_classes ~loads ~cap t <= cap
  in
  let best = ref None in
  if feasible lb then best := Some lb;
  Array.iter
    (fun pu ->
      let pu_q = Q.of_int pu in
      for k = 1 to machines do
        let border = Q.div pu_q (Q.of_int k) in
        if Q.(border >= lb) && feasible border then
          match !best with
          | Some b when Q.(b <= border) -> ()
          | _ -> best := Some border
      done)
    loads;
  match !best with
  | Some t -> { t_star = t; probes = !probes }
  | None -> invalid_arg "Border_search.search_naive: unschedulable"
