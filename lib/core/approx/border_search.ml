module Q = Rat

type result = { t_star : Q.t; probes : int }

let m_probes = Ccs_obs.Metrics.counter "border_search.probes"
let m_searches = Ccs_obs.Metrics.counter "border_search.searches"

(* Each feasibility probe scans all classes (O(C log)), so the clock is
   read every time. *)
let chk_probe = Ccs_resil.Deadline.site "approx.probe"

let count_classes ~loads ~cap t =
  let count = ref 0 in
  (try
     Array.iter
       (fun pu ->
         let pu_q = Q.of_int pu in
         let contribution =
           if Q.(pu_q > t) then Bigint.to_int_exn (Q.ceil (Q.div pu_q t)) else 1
         in
         count := !count + contribution;
         if !count > cap then raise Exit)
       loads
   with Exit -> count := cap + 1);
  !count

(* c * m without overflow: saturate at max_int. *)
let slot_cap ~machines ~slots =
  if machines > max_int / slots then max_int else machines * slots

let search ~loads ~machines ~slots ~lb =
  if Q.sign lb <= 0 then invalid_arg "Border_search.search: lb must be positive";
  Ccs_obs.Span.with_ "border_search"
    ~fields:
      [ Ccs_obs.Log.int "classes" (Array.length loads);
        Ccs_obs.Log.int "machines" machines ]
  @@ fun () ->
  let cap = slot_cap ~machines ~slots in
  let feasible probes t =
    Ccs_resil.Deadline.check chk_probe;
    incr probes;
    count_classes ~loads ~cap t <= cap
  in
  let finish r =
    Ccs_obs.Metrics.incr m_searches;
    Ccs_obs.Metrics.add m_probes r.probes;
    Ccs_obs.Log.debug (fun log ->
        log
          ~fields:
            [ Ccs_obs.Log.str "t_star" (Q.to_string r.t_star);
              Ccs_obs.Log.int "probes" r.probes ]
          "border_search.done");
    r
  in
  let lb_probes = ref 0 in
  if feasible lb_probes lb then finish { t_star = lb; probes = !lb_probes }
  else begin
    (* Each class's candidate border is a pure function of the shared load
       vector, so the classes fan out on the pool (when there are enough of
       them for the batch to pay for itself — each task is only a handful
       of O(C) probes); probes are counted per task and summed by index,
       and the final minimum is order-independent — the result is the
       sequential one bit for bit. *)
    let map =
      if Array.length loads >= 64 then fun f a -> Ccs_par.parallel_map f a
      else Array.map
    in
    let per_class =
      map
        (fun pu ->
          let probes = ref 0 in
          let border =
            let pu_q = Q.of_int pu in
            if Q.(pu_q >= lb) then begin
              (* Borders of this class: P_u / k for k in [1, k_max], k_max
                 chosen so the border stays >= lb (and k <= m automatically,
                 see Lemma 2: P_u / lb <= m). *)
              let k_max = Bigint.to_int_exn (Q.floor (Q.div pu_q lb)) in
              let k_max = min k_max machines in
              if k_max >= 1 && feasible probes pu_q then begin
                (* Largest k with feasible (P_u / k): prefix property in k. *)
                let lo = ref 1 and hi = ref k_max in
                while !lo < !hi do
                  let mid = (!lo + !hi + 1) / 2 in
                  if feasible probes (Q.div pu_q (Q.of_int mid)) then lo := mid
                  else hi := mid - 1
                done;
                Some (Q.div pu_q (Q.of_int !lo))
              end
              else None
            end
            else None
          in
          (border, !probes))
        loads
    in
    let best = ref None and probes = ref !lb_probes in
    Array.iter
      (fun (border, p) ->
        probes := !probes + p;
        match border with
        | None -> ()
        | Some border -> (
            match !best with
            | Some b when Q.(b <= border) -> ()
            | _ -> best := Some border))
      per_class;
    match !best with
    | Some t -> finish { t_star = t; probes = !probes }
    | None ->
        invalid_arg
          "Border_search.search: no feasible guess (C > c*m, instance unschedulable)"
  end

let search_naive ~loads ~machines ~slots ~lb =
  let cap = slot_cap ~machines ~slots in
  let probes = ref 0 in
  let feasible t =
    incr probes;
    count_classes ~loads ~cap t <= cap
  in
  let best = ref None in
  if feasible lb then best := Some lb;
  Array.iter
    (fun pu ->
      let pu_q = Q.of_int pu in
      for k = 1 to machines do
        let border = Q.div pu_q (Q.of_int k) in
        if Q.(border >= lb) && feasible border then
          match !best with
          | Some b when Q.(b <= border) -> ()
          | _ -> best := Some border
      done)
    loads;
  match !best with
  | Some t -> { t_star = t; probes = !probes }
  | None -> invalid_arg "Border_search.search_naive: unschedulable"
