module Q = Rat

type stats = { t_guess : Q.t; probes : int; repacked : bool }

(* A sub-class item: fragments (job, length) stacked in order; [size] is
   their total. *)
type item = { size : Q.t; frags : (int * Q.t) list }

let m_flat_solves = Ccs_obs.Metrics.counter "approx.flat_solves"
    ~help:"2-approximation solves run directly on the flat representation"

(* Shared core: both front-ends present jobs through [job_p] and
   [iter_cls] (job indices of a class in increasing order), so the record
   and flat paths traverse identical data in identical order and emit
   bit-identical schedules. *)
let solve_on ~n ~machines:m ~slots ~loads ~total_load ~pmax ~job_p ~iter_cls =
  if m >= n then begin
    (* One machine per job: makespan pmax = LB, an optimal schedule. *)
    let sched =
      Array.init n (fun j ->
          [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int (job_p j) } ])
    in
    (sched, { t_guess = Q.of_int pmax; probes = 0; repacked = false })
  end
  else begin
    let lb = Bounds.lb_preemptive_of ~total_load ~machines:m ~pmax in
    let { Border_search.t_star = t; probes } =
      Border_search.search ~loads ~machines:m ~slots ~lb
    in
    (* Cut each large class's job concatenation at multiples of T. Because
       T >= pmax, a job is cut at most once. *)
    let items = ref [] in
    let any_split = ref false in
    Array.iteri
      (fun u pu ->
        let pu_q = Q.of_int pu in
        if Q.(pu_q > t) then begin
          any_split := true;
          let current = ref [] and current_size = ref Q.zero in
          let flush () =
            if Q.sign !current_size > 0 then begin
              items := { size = !current_size; frags = List.rev !current } :: !items;
              current := [];
              current_size := Q.zero
            end
          in
          iter_cls u (fun j ->
              let remaining = ref (Q.of_int (job_p j)) in
              while Q.sign !remaining > 0 do
                let room = Q.sub t !current_size in
                let take = Q.min room !remaining in
                current := (j, take) :: !current;
                current_size := Q.add !current_size take;
                remaining := Q.sub !remaining take;
                if Q.(Q.sub t !current_size = Q.zero) then flush ()
              done);
          flush ()
        end
        else begin
          let frags = ref [] in
          iter_cls u (fun j -> frags := (j, Q.of_int (job_p j)) :: !frags);
          items := { size = pu_q; frags = List.rev !frags } :: !items
        end)
      loads;
    (* Stable sort on the build order keeps same-class slices consecutive
       and in slicing order among equal sizes, as in Figure 1. *)
    let sorted = List.stable_sort (fun a b -> Q.compare b.size a.size) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    (* Stack items bottom-up; if any class was split, shift everything above
       each machine's first item to start at time T (Algorithm 2). *)
    let repack = !any_split in
    let sched =
      Array.map
        (fun machine_items ->
          let pieces = ref [] in
          let top = ref Q.zero in
          List.iteri
            (fun idx item ->
              if repack && idx = 1 then top := Q.max !top t;
              List.iter
                (fun (j, len) ->
                  pieces := { Schedule.pjob = j; start = !top; len } :: !pieces;
                  top := Q.add !top len)
                item.frags)
            machine_items;
          List.rev !pieces)
        per_machine
    in
    (sched, { t_guess = t; probes; repacked = repack })
  end

let solve inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Preemptive.solve: C > c*m, no schedule exists";
  let class_jobs = Instance.class_jobs inst in
  solve_on ~n:(Instance.n inst) ~machines:(Instance.m inst) ~slots:(Instance.c inst)
    ~loads:(Instance.class_load inst) ~total_load:(Instance.total_load inst)
    ~pmax:(Instance.pmax inst)
    ~job_p:(fun j -> (Instance.job inst j).Instance.p)
    ~iter_cls:(fun u f -> List.iter f class_jobs.(u))

(* Flat fast path: the same cutting, ordering and stacking as [solve_on],
   but the sub-class items and their fragments live in flat CSR arrays
   instead of per-item cons cells, and the final stable sort runs on an
   index array. A million-job solve allocates O(items) scratch words plus
   the output pieces, instead of churning through one list cell per
   fragment in every intermediate stage. The property suite pins this
   path's output bit-identical to [solve_on]'s, so every cut point, the
   stable tie order and the round-robin placement must match exactly. *)
let solve_on_flat ~n ~machines:m ~slots ~loads ~total_load ~pmax ~job_p ~offsets ~ids =
  if m >= n then begin
    let sched =
      Array.init n (fun j ->
          [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int (job_p j) } ])
    in
    (sched, { t_guess = Q.of_int pmax; probes = 0; repacked = false })
  end
  else begin
    let lb = Bounds.lb_preemptive_of ~total_load ~machines:m ~pmax in
    let { Border_search.t_star = t; probes } =
      Border_search.search ~loads ~machines:m ~slots ~lb
    in
    let nc = Array.length loads in
    (* Exact item count: a class above T flushes exactly ceil(pu/T) items
       (the final flush fires iff a remainder is left), anything else is a
       single item — even an empty class, which [solve_on] also emits (its
       zero-size item shifts the round robin's modulo). *)
    let total_items = ref 0 in
    for u = 0 to nc - 1 do
      let pu_q = Q.of_int loads.(u) in
      total_items :=
        !total_items
        + (if Q.(pu_q > t) then Bigint.to_int_exn (Q.ceil (Q.div pu_q t)) else 1)
    done;
    let total_items = !total_items in
    (* Each of the at most [total_items - 1] cuts adds one fragment beyond
       the per-job one, so [n + total_items] bounds the fragment count. *)
    let frag_cap = n + total_items in
    let item_size = Array.make total_items Q.zero in
    let item_off = Array.make (total_items + 1) 0 in
    let frag_job = Array.make frag_cap 0 in
    let frag_len = Array.make frag_cap Q.zero in
    let ni = ref 0 and nf = ref 0 in
    let open_item () = item_off.(!ni) <- !nf in
    let close_item size =
      item_size.(!ni) <- size;
      incr ni;
      open_item ()
    in
    let any_split = ref false in
    for u = 0 to nc - 1 do
      let pu_q = Q.of_int loads.(u) in
      if Q.(pu_q > t) then begin
        any_split := true;
        let current_size = ref Q.zero in
        let flush () =
          if Q.sign !current_size > 0 then begin
            close_item !current_size;
            current_size := Q.zero
          end
        in
        for k = offsets.(u) to offsets.(u + 1) - 1 do
          let j = ids.(k) in
          let remaining = ref (Q.of_int (job_p j)) in
          while Q.sign !remaining > 0 do
            let room = Q.sub t !current_size in
            let take = Q.min room !remaining in
            frag_job.(!nf) <- j;
            frag_len.(!nf) <- take;
            incr nf;
            current_size := Q.add !current_size take;
            remaining := Q.sub !remaining take;
            if Q.(Q.sub t !current_size = Q.zero) then flush ()
          done
        done;
        flush ()
      end
      else begin
        for k = offsets.(u) to offsets.(u + 1) - 1 do
          let j = ids.(k) in
          frag_job.(!nf) <- j;
          frag_len.(!nf) <- Q.of_int (job_p j);
          incr nf
        done;
        close_item pu_q
      end
    done;
    assert (!ni = total_items);
    item_off.(total_items) <- !nf;
    (* Stable sort of the identity permutation = the unique stable order,
       the same permutation [solve_on]'s List.stable_sort produces. *)
    let order = Array.init total_items (fun i -> i) in
    Array.stable_sort (fun a b -> Q.compare item_size.(b) item_size.(a)) order;
    let repack = !any_split in
    let sched =
      Array.init m (fun mi ->
          let pieces = ref [] in
          let top = ref Q.zero in
          let idx = ref 0 in
          let i = ref mi in
          while !i < total_items do
            let it = order.(!i) in
            if repack && !idx = 1 then top := Q.max !top t;
            for k = item_off.(it) to item_off.(it + 1) - 1 do
              pieces := { Schedule.pjob = frag_job.(k); start = !top; len = frag_len.(k) } :: !pieces;
              top := Q.add !top frag_len.(k)
            done;
            incr idx;
            i := !i + m
          done;
          List.rev !pieces)
    in
    (sched, { t_guess = t; probes; repacked = repack })
  end

let solve_flat fl =
  if not (Instance.Flat.schedulable fl) then
    invalid_arg "Approx.Preemptive.solve: C > c*m, no schedule exists";
  Ccs_obs.Metrics.incr m_flat_solves;
  Ccs_obs.Recorder.phase "approx" @@ fun () ->
  let offsets, ids = Instance.Flat.class_jobs_csr fl in
  solve_on_flat ~n:(Instance.Flat.n fl) ~machines:(Instance.Flat.m fl)
    ~slots:(Instance.Flat.c fl) ~loads:(Instance.Flat.class_load fl)
    ~total_load:(Instance.Flat.total_load fl) ~pmax:(Instance.Flat.pmax fl)
    ~job_p:(Instance.Flat.job_p fl) ~offsets ~ids
