module Q = Rat

type stats = { t_guess : Q.t; probes : int; repacked : bool }

(* A sub-class item: fragments (job, length) stacked in order; [size] is
   their total. *)
type item = { size : Q.t; frags : (int * Q.t) list }

let m_flat_solves = Ccs_obs.Metrics.counter "approx.flat_solves"
    ~help:"2-approximation solves run directly on the flat representation"

(* Shared core: both front-ends present jobs through [job_p] and
   [iter_cls] (job indices of a class in increasing order), so the record
   and flat paths traverse identical data in identical order and emit
   bit-identical schedules. *)
let solve_on ~n ~machines:m ~slots ~loads ~total_load ~pmax ~job_p ~iter_cls =
  if m >= n then begin
    (* One machine per job: makespan pmax = LB, an optimal schedule. *)
    let sched =
      Array.init n (fun j ->
          [ { Schedule.pjob = j; start = Q.zero; len = Q.of_int (job_p j) } ])
    in
    (sched, { t_guess = Q.of_int pmax; probes = 0; repacked = false })
  end
  else begin
    let lb = Bounds.lb_preemptive_of ~total_load ~machines:m ~pmax in
    let { Border_search.t_star = t; probes } =
      Border_search.search ~loads ~machines:m ~slots ~lb
    in
    (* Cut each large class's job concatenation at multiples of T. Because
       T >= pmax, a job is cut at most once. *)
    let items = ref [] in
    let any_split = ref false in
    Array.iteri
      (fun u pu ->
        let pu_q = Q.of_int pu in
        if Q.(pu_q > t) then begin
          any_split := true;
          let current = ref [] and current_size = ref Q.zero in
          let flush () =
            if Q.sign !current_size > 0 then begin
              items := { size = !current_size; frags = List.rev !current } :: !items;
              current := [];
              current_size := Q.zero
            end
          in
          iter_cls u (fun j ->
              let remaining = ref (Q.of_int (job_p j)) in
              while Q.sign !remaining > 0 do
                let room = Q.sub t !current_size in
                let take = Q.min room !remaining in
                current := (j, take) :: !current;
                current_size := Q.add !current_size take;
                remaining := Q.sub !remaining take;
                if Q.(Q.sub t !current_size = Q.zero) then flush ()
              done);
          flush ()
        end
        else begin
          let frags = ref [] in
          iter_cls u (fun j -> frags := (j, Q.of_int (job_p j)) :: !frags);
          items := { size = pu_q; frags = List.rev !frags } :: !items
        end)
      loads;
    (* Stable sort on the build order keeps same-class slices consecutive
       and in slicing order among equal sizes, as in Figure 1. *)
    let sorted = List.stable_sort (fun a b -> Q.compare b.size a.size) (List.rev !items) in
    let per_machine = Round_robin.assign ~machines:m sorted in
    (* Stack items bottom-up; if any class was split, shift everything above
       each machine's first item to start at time T (Algorithm 2). *)
    let repack = !any_split in
    let sched =
      Array.map
        (fun machine_items ->
          let pieces = ref [] in
          let top = ref Q.zero in
          List.iteri
            (fun idx item ->
              if repack && idx = 1 then top := Q.max !top t;
              List.iter
                (fun (j, len) ->
                  pieces := { Schedule.pjob = j; start = !top; len } :: !pieces;
                  top := Q.add !top len)
                item.frags)
            machine_items;
          List.rev !pieces)
        per_machine
    in
    (sched, { t_guess = t; probes; repacked = repack })
  end

let solve inst =
  if not (Instance.schedulable inst) then
    invalid_arg "Approx.Preemptive.solve: C > c*m, no schedule exists";
  let class_jobs = Instance.class_jobs inst in
  solve_on ~n:(Instance.n inst) ~machines:(Instance.m inst) ~slots:(Instance.c inst)
    ~loads:(Instance.class_load inst) ~total_load:(Instance.total_load inst)
    ~pmax:(Instance.pmax inst)
    ~job_p:(fun j -> (Instance.job inst j).Instance.p)
    ~iter_cls:(fun u f -> List.iter f class_jobs.(u))

let solve_flat fl =
  if not (Instance.Flat.schedulable fl) then
    invalid_arg "Approx.Preemptive.solve: C > c*m, no schedule exists";
  Ccs_obs.Metrics.incr m_flat_solves;
  Ccs_obs.Recorder.phase "approx" @@ fun () ->
  let offsets, ids = Instance.Flat.class_jobs_csr fl in
  solve_on ~n:(Instance.Flat.n fl) ~machines:(Instance.Flat.m fl)
    ~slots:(Instance.Flat.c fl) ~loads:(Instance.Flat.class_load fl)
    ~total_load:(Instance.Flat.total_load fl) ~pmax:(Instance.Flat.pmax fl)
    ~job_p:(Instance.Flat.job_p fl)
    ~iter_cls:(fun u f ->
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        f ids.(k)
      done)
