(** The 7/3-approximation for non-preemptive CCS (Theorem 6).

    Framework of Algorithm 1 with three changes. The lower bound is
    [max (pmax, ceil (sum p / m))]. The number of sub-classes for a class u
    at guess T is the sharper [C_u = max (C1_u, C2_u)] where [C1_u =
    ceil (P_u / T)] is the area bound and [C2_u = k_u + ceil (l_u / 2)]
    counts machines forced by large jobs: the [k_u] jobs above T/2 cannot
    share a machine; of the jobs in (T/3, T/2], as many as possible are
    greedily paired on top of them (largest fitting first) and the [l_u]
    leftovers fit at most two per machine. Jobs are then distributed into
    the [C_u] sub-classes by LPT, which overfills each sub-class by at most
    one job of size <= T/3, giving sub-class loads <= 4T/3 and overall
    makespan <= LB + 4T/3 <= 7T/3. The makespan guess is integral, so a
    standard binary search replaces the border search. *)

type stats = {
  t_guess : int;
  probes : int;  (** binary-search feasibility evaluations *)
}

(** [cu ~t jobs] computes [C_u] for one class (exposed for the A2 ablation
    and tests): [jobs] are the processing times of the class. *)
val cu : t:int -> int list -> int

(** Area-only variant [C1_u] (ablation A2). *)
val cu_area_only : t:int -> int list -> int

val solve : Instance.t -> Schedule.nonpreemptive * stats

(** Same algorithm directly on the flat representation, with presorted
    per-class views so a feasibility probe allocates nothing and the whole
    solve is O(n log n + n log ub). Bit-identical to [solve] on the
    converted instance. *)
val solve_flat : Instance.Flat.t -> Schedule.nonpreemptive * stats

(** Ablation hook: same algorithm but with a caller-supplied sub-class
    counter (e.g. {!cu_area_only} for ablation A2) — demonstrating that the
    careful [C2_u] computation matters. [~use_lpt:false] additionally
    replaces the LPT order inside each class split by raw input order
    (ablation A3). Either way the schedule stays valid, only worse. *)
val solve_with_counter :
  ?use_lpt:bool ->
  counter:(t:int -> int list -> int) ->
  Instance.t ->
  Schedule.nonpreemptive * stats
