(** The 2-approximation for splittable CCS (Algorithm 1, Theorem 4).

    Guess the makespan T with the border search of Lemma 2; slice every
    class with [P_u > T] into [ceil (P_u/T)] sub-classes (all but the last
    of size exactly T); round-robin all sub-classes in non-ascending size
    order. The slices of size exactly T land one per machine (there are
    fewer than m of them whenever T >= LB), so they are emitted as
    compressed {!Schedule.block}s and the whole algorithm runs in time
    polynomial in n even when m is astronomically large — the case the
    paper treats explicitly at the end of Theorem 4's proof. *)

type stats = {
  t_guess : Rat.t;  (** the accepted guess T; [t_guess <= opt(I)] by Lemma 2 *)
  probes : int;  (** border-search feasibility probes *)
  full_slices : int;  (** number of size-T sub-classes (compressed machines) *)
}

(** Raises [Invalid_argument] if the instance is unschedulable (C > c*m). *)
val solve : Instance.t -> Schedule.splittable * stats

(** Same algorithm directly on the flat representation. The two entry
    points share one core over the per-class load array, so
    [solve_flat (Instance.to_flat i)] is bit-identical to [solve i]. *)
val solve_flat : Instance.Flat.t -> Schedule.splittable * stats
