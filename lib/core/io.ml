let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ccs 1\n";
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Instance.m inst));
  Buffer.add_string buf (Printf.sprintf "slots %d\n" (Instance.c inst));
  for i = 0 to Instance.n inst - 1 do
    let j = Instance.job inst i in
    Buffer.add_string buf (Printf.sprintf "job %d %d\n" j.Instance.p j.Instance.cls)
  done;
  Buffer.contents buf

(* Fields may be separated by any blank run — files written on Windows
   (CRLF line endings) or exported from spreadsheets (tab-delimited) parse
   the same as space-separated ones. *)
let tokenize line =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (function ' ' | '\t' | '\r' | '\012' -> flush () | ch -> Buffer.add_char buf ch)
    line;
  flush ();
  List.rev !out

let of_string text =
  let lines = String.split_on_char '\n' text in
  let machines = ref None and slots = ref None and jobs = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens = tokenize line in
        let fail msg = error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
        match tokens with
        | [] -> ()
        | [ "ccs"; "1" ] -> ()
        | [ "machines"; v ] -> (
            match int_of_string_opt v with
            | Some m when m > 0 -> machines := Some m
            | _ -> fail "bad machine count")
        | [ "slots"; v ] -> (
            match int_of_string_opt v with
            | Some c when c > 0 -> slots := Some c
            | _ -> fail "bad slot count")
        | [ "job"; pv; cv ] -> (
            match (int_of_string_opt pv, int_of_string_opt cv) with
            | Some p, Some cls when p > 0 && cls >= 0 -> jobs := (p, cls) :: !jobs
            | _ -> fail "bad job line")
        | _ -> fail "unrecognized line"
      end)
    lines;
  match (!error, !machines, !slots, List.rev !jobs) with
  | Some e, _, _, _ -> Error e
  | None, None, _, _ -> Error "missing 'machines' line"
  | None, _, None, _ -> Error "missing 'slots' line"
  | None, _, _, [] -> Error "no jobs"
  | None, Some m, Some c, jobs -> (
      try Ok (Instance.make ~machines:m ~slots:c jobs)
      with Invalid_argument msg -> Error msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path inst = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string inst))
