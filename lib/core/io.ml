module A1 = Bigarray.Array1

let m_stream_bytes =
  Ccs_obs.Metrics.counter "io.stream_bytes"
    ~help:"Bytes consumed by the streaming instance tokenizer"

let m_stream_tokens =
  Ccs_obs.Metrics.counter "io.stream_tokens"
    ~help:"Tokens produced by the streaming instance tokenizer"

let m_flat_loads =
  Ccs_obs.Metrics.counter "io.flat_loads"
    ~help:"Instances parsed in binary flat format"

let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ccs 1\n";
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Instance.m inst));
  Buffer.add_string buf (Printf.sprintf "slots %d\n" (Instance.c inst));
  for i = 0 to Instance.n inst - 1 do
    let j = Instance.job inst i in
    Buffer.add_string buf (Printf.sprintf "job %d %d\n" j.Instance.p j.Instance.cls)
  done;
  Buffer.contents buf

let to_string_flat f =
  let buf = Buffer.create (32 + (16 * Instance.Flat.n f)) in
  Buffer.add_string buf "ccs 1\n";
  Buffer.add_string buf (Printf.sprintf "machines %d\n" (Instance.Flat.m f));
  Buffer.add_string buf (Printf.sprintf "slots %d\n" (Instance.Flat.c f));
  for i = 0 to Instance.Flat.n f - 1 do
    Buffer.add_string buf
      (Printf.sprintf "job %d %d\n" (Instance.Flat.job_p f i) (Instance.Flat.job_cls f i))
  done;
  Buffer.contents buf

(* ---------------- streaming text parser ----------------

   One incremental tokenizer feeds both front-ends ([of_string] and the
   channel loaders), so the two parse byte-for-byte identically: fields
   separated by any blank run (space, tab, CR, form feed — files written on
   Windows or exported from spreadsheets parse the same as space-separated
   ones), '#' comments to end of line, at most one directive per line.
   Chunks arrive through a [read] callback; a token split across chunk
   boundaries accumulates in [pending]. Job fields go straight into growable
   int arrays — no whole-file string, no token list, no per-job boxing. *)

type parser_state = {
  mutable lineno : int;
  tok : string array; (* first 3 tokens of the current line *)
  mutable ntok : int; (* may exceed 3: only the count matters then *)
  mutable in_comment : bool;
  pending : Buffer.t; (* token prefix left over from the previous chunk *)
  mutable machines : int option;
  mutable slots : int option;
  mutable jp : int array; (* growable job arrays, [njobs] filled *)
  mutable jcls : int array;
  mutable njobs : int;
  mutable error : string option;
}

let new_state () =
  { lineno = 1; tok = Array.make 3 ""; ntok = 0; in_comment = false;
    pending = Buffer.create 32; machines = None; slots = None;
    jp = Array.make 1024 0; jcls = Array.make 1024 0; njobs = 0; error = None }

let fail st msg =
  if st.error = None then
    st.error <- Some (Printf.sprintf "line %d: %s" st.lineno msg)

let push_job st p cls =
  let cap = Array.length st.jp in
  if st.njobs = cap then begin
    let jp = Array.make (2 * cap) 0 and jcls = Array.make (2 * cap) 0 in
    Array.blit st.jp 0 jp 0 cap;
    Array.blit st.jcls 0 jcls 0 cap;
    st.jp <- jp;
    st.jcls <- jcls
  end;
  st.jp.(st.njobs) <- p;
  st.jcls.(st.njobs) <- cls;
  st.njobs <- st.njobs + 1

let add_token st s =
  Ccs_obs.Metrics.incr m_stream_tokens;
  if st.ntok < 3 then st.tok.(st.ntok) <- s;
  st.ntok <- st.ntok + 1

(* Mirror of the per-line dispatch [of_string] historically performed on its
   token lists; the error strings are part of the CLI contract. *)
let dispatch_line st =
  (match st.ntok with
  | 0 -> ()
  | 2 -> (
      match st.tok.(0) with
      | "ccs" -> if st.tok.(1) <> "1" then fail st "unrecognized line"
      | "machines" -> (
          match int_of_string_opt st.tok.(1) with
          | Some m when m > 0 -> st.machines <- Some m
          | _ -> fail st "bad machine count")
      | "slots" -> (
          match int_of_string_opt st.tok.(1) with
          | Some c when c > 0 -> st.slots <- Some c
          | _ -> fail st "bad slot count")
      | _ -> fail st "unrecognized line")
  | 3 when st.tok.(0) = "job" -> (
      match (int_of_string_opt st.tok.(1), int_of_string_opt st.tok.(2)) with
      | Some p, Some cls when p > 0 && cls >= 0 -> push_job st p cls
      | _ -> fail st "bad job line")
  | _ -> fail st "unrecognized line");
  st.ntok <- 0

let feed st buf len =
  Ccs_obs.Metrics.add m_stream_bytes len;
  let tok_start = ref (-1) in
  let flush i =
    if !tok_start >= 0 then begin
      if Buffer.length st.pending = 0 then
        add_token st (Bytes.sub_string buf !tok_start (i - !tok_start))
      else begin
        Buffer.add_subbytes st.pending buf !tok_start (i - !tok_start);
        add_token st (Buffer.contents st.pending);
        Buffer.clear st.pending
      end;
      tok_start := -1
    end
    else if Buffer.length st.pending > 0 then begin
      add_token st (Buffer.contents st.pending);
      Buffer.clear st.pending
    end
  in
  let i = ref 0 in
  while !i < len && st.error = None do
    let ch = Bytes.unsafe_get buf !i in
    if st.in_comment then begin
      if ch = '\n' then begin
        st.in_comment <- false;
        dispatch_line st;
        st.lineno <- st.lineno + 1
      end
    end
    else begin
      match ch with
      | ' ' | '\t' | '\r' | '\012' -> flush !i
      | '\n' ->
          flush !i;
          dispatch_line st;
          st.lineno <- st.lineno + 1
      | '#' ->
          flush !i;
          st.in_comment <- true
      | _ -> if !tok_start < 0 then tok_start := !i
    end;
    incr i
  done;
  (* a token cut by the chunk boundary waits in [pending] *)
  if !tok_start >= 0 then
    Buffer.add_subbytes st.pending buf !tok_start (len - !tok_start)

let finish st =
  (* final line without a trailing newline *)
  if st.error = None then begin
    if Buffer.length st.pending > 0 then begin
      add_token st (Buffer.contents st.pending);
      Buffer.clear st.pending
    end;
    dispatch_line st
  end;
  match (st.error, st.machines, st.slots, st.njobs) with
  | Some e, _, _, _ -> Error e
  | None, None, _, _ -> Error "missing 'machines' line"
  | None, _, None, _ -> Error "missing 'slots' line"
  | None, _, _, 0 -> Error "no jobs"
  | None, Some machines, Some slots, n -> (
      let p = A1.create Bigarray.int Bigarray.c_layout n in
      let cls = A1.create Bigarray.int Bigarray.c_layout n in
      for i = 0 to n - 1 do
        A1.unsafe_set p i st.jp.(i);
        A1.unsafe_set cls i st.jcls.(i)
      done;
      try Ok (Instance.Flat.of_bigarrays ~machines ~slots ~p ~cls)
      with Invalid_argument msg -> Error msg)

let default_chunk = 65536

(* [read buf] fills [buf] and returns the byte count, 0 at end of input. *)
let parse_stream ~chunk read =
  let st = new_state () in
  let buf = Bytes.create chunk in
  let rec loop () =
    match read buf with
    | 0 -> finish st
    | k ->
        feed st buf k;
        if st.error <> None then finish st else loop ()
  in
  loop ()

let of_string_flat ?(chunk = default_chunk) text =
  if chunk <= 0 then invalid_arg "Io.of_string_flat: chunk must be positive";
  let pos = ref 0 in
  let read buf =
    let k = min (Bytes.length buf) (String.length text - !pos) in
    Bytes.blit_string text !pos buf 0 k;
    pos := !pos + k;
    k
  in
  parse_stream ~chunk read

let of_string text = Result.map Instance.of_flat (of_string_flat text)

(* ---------------- binary flat format ----------------

   Fixed little-endian layout built for the million-job tier: parsing is a
   header check plus two bulk int64 reads straight into the off-heap flat
   arrays.

   {v
     "ccsb1\n"                     6-byte magic
     n, machines, slots            3 x int64 LE
     p_0 .. p_{n-1}                n x int64 LE
     cls_0 .. cls_{n-1}            n x int64 LE
   v} *)

let flat_magic = "ccsb1\n"

let io_chunk_words = 8192

let save_flat path f =
  Out_channel.with_open_bin path @@ fun oc ->
  Out_channel.output_string oc flat_magic;
  let buf = Bytes.create (8 * io_chunk_words) in
  let header = Bytes.create 24 in
  Bytes.set_int64_le header 0 (Int64.of_int (Instance.Flat.n f));
  Bytes.set_int64_le header 8 (Int64.of_int (Instance.Flat.m f));
  Bytes.set_int64_le header 16 (Int64.of_int (Instance.Flat.c f));
  Out_channel.output_bytes oc header;
  let write_arr get n =
    let i = ref 0 in
    while !i < n do
      let k = min io_chunk_words (n - !i) in
      for j = 0 to k - 1 do
        Bytes.set_int64_le buf (8 * j) (Int64.of_int (get (!i + j)))
      done;
      Out_channel.output oc buf 0 (8 * k);
      i := !i + k
    done
  in
  let n = Instance.Flat.n f in
  write_arr (Instance.Flat.job_p f) n;
  write_arr (Instance.Flat.job_cls f) n

let read_flat_body ic =
  let header = Bytes.create 24 in
  let int_field off name =
    let v64 = Bytes.get_int64_le header off in
    let v = Int64.to_int v64 in
    if Int64.of_int v <> v64 then Error (Printf.sprintf "flat file: %s out of range" name)
    else Ok v
  in
  match In_channel.really_input ic header 0 24 with
  | None -> Error "flat file: truncated header"
  | Some () -> (
      match (int_field 0 "job count", int_field 8 "machine count", int_field 16 "slot count") with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok n, Ok machines, Ok slots ->
          if n <= 0 then Error "no jobs"
          else begin
            let buf = Bytes.create (8 * io_chunk_words) in
            let read_arr name =
              let a = A1.create Bigarray.int Bigarray.c_layout n in
              let i = ref 0 in
              let err = ref None in
              while !err = None && !i < n do
                let k = min io_chunk_words (n - !i) in
                match In_channel.really_input ic buf 0 (8 * k) with
                | None -> err := Some (Printf.sprintf "flat file: truncated %s array" name)
                | Some () ->
                    for j = 0 to k - 1 do
                      let v64 = Bytes.get_int64_le buf (8 * j) in
                      let v = Int64.to_int v64 in
                      if Int64.of_int v <> v64 then
                        err :=
                          Some (Printf.sprintf "flat file: %s %d out of range" name (!i + j))
                      else A1.unsafe_set a (!i + j) v
                    done;
                    i := !i + k
              done;
              match !err with Some e -> Error e | None -> Ok a
            in
            match read_arr "p" with
            | Error e -> Error e
            | Ok p -> (
                match read_arr "cls" with
                | Error e -> Error e
                | Ok cls -> (
                    Ccs_obs.Metrics.incr m_flat_loads;
                    try Ok (Instance.Flat.of_bigarrays ~machines ~slots ~p ~cls)
                    with Invalid_argument msg -> Error msg))
          end)

(* Auto-detection: a file starting with the binary magic parses as flat
   binary, anything else streams through the text tokenizer (the magic's
   first line, "ccsb1", is not a valid text directive, so the formats cannot
   be confused). The sniffed prefix is replayed into the text reader. *)
let parse_channel ?(chunk = default_chunk) ic =
  let prefix = Bytes.create (String.length flat_magic) in
  let got =
    let rec fill off =
      if off >= Bytes.length prefix then off
      else
        match In_channel.input ic prefix off (Bytes.length prefix - off) with
        | 0 -> off
        | k -> fill (off + k)
    in
    fill 0
  in
  if got = String.length flat_magic && Bytes.to_string prefix = flat_magic then
    read_flat_body ic
  else begin
    let served = ref 0 in
    let read buf =
      if !served < got then begin
        let k = min (got - !served) (Bytes.length buf) in
        Bytes.blit prefix !served buf 0 k;
        served := !served + k;
        k
      end
      else In_channel.input ic buf 0 (Bytes.length buf)
    in
    parse_stream ~chunk read
  end

let load_flat path =
  match In_channel.with_open_bin path (fun ic -> parse_channel ic) with
  | r -> r
  | exception Sys_error msg -> Error msg

let load path = Result.map Instance.of_flat (load_flat path)

let save path inst = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string inst))
