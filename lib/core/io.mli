(** Instance serialization, for the CLI tools and examples.

    Text format (one token group per line, '#' comments allowed):
    {v
      ccs 1
      machines <m>
      slots <c>
      job <p> <class>
      ...
    v}

    Both text front-ends — {!of_string} and the channel loaders — run the
    same incremental tokenizer, so they accept exactly the same inputs and
    report exactly the same errors. The streaming path never materializes
    the whole file: bytes are consumed in fixed-size chunks and job fields
    land directly in the flat arrays.

    There is also a binary flat format (magic ["ccsb1\n"], int64
    little-endian header [n, machines, slots] followed by the [p] and [cls]
    arrays) that loads a million-job instance with two bulk reads. {!load}
    and {!load_flat} auto-detect the format by sniffing the magic. *)

val to_string : Instance.t -> string
val to_string_flat : Instance.Flat.t -> string

val of_string : string -> (Instance.t, string) result

(** Parse text into the flat form without building any boxed records.
    [chunk] (default 64 KiB) sets the tokenizer's buffer size — tests use
    tiny chunks to exercise tokens split across boundaries. *)
val of_string_flat : ?chunk:int -> string -> (Instance.Flat.t, string) result

(** Stream an instance from an open channel, auto-detecting binary vs text
    by the leading magic. The channel must be in binary mode. *)
val parse_channel : ?chunk:int -> in_channel -> (Instance.Flat.t, string) result

val load : string -> (Instance.t, string) result
val load_flat : string -> (Instance.Flat.t, string) result

val save : string -> Instance.t -> unit

(** Write the binary flat format. *)
val save_flat : string -> Instance.Flat.t -> unit
