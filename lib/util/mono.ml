external now_ns : unit -> int = "ccs_mono_now_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9
let elapsed_s ~since = float_of_int (now_ns () - since) *. 1e-9
let ns_of_ms ms = ms * 1_000_000
let ms_of_ns ns = float_of_int ns *. 1e-6
