(** Monotonic clock.

    All deadline arithmetic and span/bench timing in the repo goes through
    this module rather than [Unix.gettimeofday]: the monotonic clock never
    jumps backwards (or forwards) under NTP adjustment, so durations and
    deadlines measured with it are always non-negative and honest.

    Readings are nanoseconds from an arbitrary fixed origin (boot,
    typically) — only differences are meaningful. *)

val now_ns : unit -> int
(** Current monotonic reading in nanoseconds. Allocation-free. *)

val now_s : unit -> float
(** Same reading in seconds (for human-facing durations). *)

val elapsed_s : since:int -> float
(** Seconds elapsed since the [now_ns] reading [since]. *)

val ns_of_ms : int -> int
val ms_of_ns : int -> float
