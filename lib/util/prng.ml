(* Deterministic splitmix64 generator.

   Every workload generator and every experiment in this repository draws
   randomness from here, so results are reproducible bit-for-bit from a seed
   regardless of the OCaml stdlib Random implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit value, safe to store in a native [int]. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let v = next_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

(* Uniform in [lo, hi] inclusive. *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Sample an index in [0, n) proportionally to [weights.(i)]. *)
let weighted t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Prng.weighted: empty";
  let total = Array.fold_left (+.) 0.0 weights in
  if total <= 0.0 then invalid_arg "Prng.weighted: non-positive total";
  let x = float t *. total in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Stream [index] of the family keyed by [seed]: a pure function of
   (seed, index), so parallel workers that take stream i for task i draw
   identical values no matter which domain runs the task or in what order.
   Index 0 is the base stream, identical to [create seed]. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Prng.stream: index must be >= 0";
  let t = create seed in
  if index > 0 then begin
    let mixer =
      { state = Int64.logxor t.state (Int64.mul (Int64.of_int index) 0xDA942042E4DD58B5L) }
    in
    t.state <- next_int64 mixer
  end;
  t

let split t =
  (* Derive an independent stream; mixing with a distinct odd constant keeps
     the child decorrelated from the parent's continuation. *)
  let child_seed = Int64.to_int (Int64.mul (next_int64 t) 0xDA942042E4DD58B5L) in
  create child_seed
