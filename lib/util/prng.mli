(** Deterministic splitmix64 PRNG.

    All randomness in generators, tests and benchmarks flows through this
    module so results are bit-for-bit reproducible from a seed, independent
    of the OCaml stdlib's Random implementation. *)

type t

val create : int -> t
val copy : t -> t

(** Raw 64-bit step. *)
val next_int64 : t -> int64

(** Uniform non-negative 62-bit value. *)
val next_int : t -> int

(** [int t bound] is uniform in [0, bound); rejection-sampled, no modulo
    bias. Raises [Invalid_argument] on non-positive bound. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [weighted t w] samples an index proportionally to [w.(i)] (weights must
    be non-negative with positive sum). *)
val weighted : t -> float array -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [stream ~seed ~index] is the [index]-th stream of the family keyed by
    [seed]: a pure function of both arguments, for handing each task of a
    parallel batch its own reproducible generator. [index = 0] is the base
    stream, identical to [create seed]. Raises on negative index. *)
val stream : seed:int -> index:int -> t

(** Derive an independent child stream (advances [t]). *)
val split : t -> t
