/* Monotonic clock for deadlines and span timing.

   CLOCK_MONOTONIC never goes backwards under NTP slews or manual clock
   adjustment, which is the whole point: a deadline armed for 50ms must
   fire in ~50ms of real time no matter what the wall clock does.

   The reading is returned as an OCaml immediate int of nanoseconds. A
   63-bit int holds ~146 years of nanoseconds, so overflow is not a
   practical concern, and [@@noalloc] keeps the fast path free of any
   allocation — it is called from amortized cancellation checkpoints
   inside simplex pivot loops. */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value ccs_mono_now_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
