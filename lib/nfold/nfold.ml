type t = {
  r : int;
  s : int;
  t : int;
  n : int;
  a : int array array array;
  b : int array array array;
  rhs_top : int array;
  rhs_block : int array array;
  lower : int array array;
  upper : int array array;
  weight : int array array;
}

exception Invalid of string

(* Cancellation checkpoints: the kernel-candidate DFS is the hot inner
   loop (amortized clock), one augmentation step of the Graver walk is the
   coarse outer one (clock every time). *)
let chk_kernel = Ccs_resil.Deadline.site ~hot:true "nfold.kernel"
let chk_augment = Ccs_resil.Deadline.site "nfold.augment"
exception Too_large of string

let m_aug_steps = Ccs_obs.Metrics.counter "nfold.augmentation_steps"
let m_kernel = Ccs_obs.Metrics.counter "nfold.kernel_candidates"
let m_ilp_solves = Ccs_obs.Metrics.counter "nfold.ilp_solves"
let h_lambda = Ccs_obs.Metrics.histogram "nfold.step_lambda"

let validate p =
  let fail msg = raise (Invalid msg) in
  if p.r < 0 || p.s < 0 || p.t <= 0 || p.n <= 0 then fail "non-positive dimension";
  let check_mat name rows cols m =
    if Array.length m <> rows then fail (name ^ ": wrong row count");
    Array.iter (fun row -> if Array.length row <> cols then fail (name ^ ": wrong col count")) m
  in
  if Array.length p.a <> p.n then fail "a: wrong block count";
  if Array.length p.b <> p.n then fail "b: wrong block count";
  Array.iter (check_mat "a" p.r p.t) p.a;
  Array.iter (check_mat "b" p.s p.t) p.b;
  if Array.length p.rhs_top <> p.r then fail "rhs_top: wrong length";
  check_mat "rhs_block" p.n p.s p.rhs_block;
  check_mat "lower" p.n p.t p.lower;
  check_mat "upper" p.n p.t p.upper;
  check_mat "weight" p.n p.t p.weight;
  for i = 0 to p.n - 1 do
    for j = 0 to p.t - 1 do
      if p.lower.(i).(j) > p.upper.(i).(j) then fail "lower > upper"
    done
  done

let make_uniform ~n ~a ~b ~rhs_top ~rhs_block ~lower ~upper ~weight =
  let p =
    {
      r = Array.length a;
      s = Array.length b;
      t = (if Array.length a > 0 then Array.length a.(0) else Array.length b.(0));
      n;
      a = Array.init n (fun _ -> Array.map Array.copy a);
      b = Array.init n (fun _ -> Array.map Array.copy b);
      rhs_top;
      rhs_block;
      lower = Array.init n (fun _ -> Array.copy lower);
      upper = Array.init n (fun _ -> Array.copy upper);
      weight = Array.init n (fun _ -> Array.copy weight);
    }
  in
  validate p;
  p

let delta p =
  let m = ref 1 in
  let scan mat = Array.iter (Array.iter (fun v -> if abs v > !m then m := abs v)) mat in
  Array.iter scan p.a;
  Array.iter scan p.b;
  !m

let objective p x =
  let acc = ref 0 in
  for i = 0 to p.n - 1 do
    for j = 0 to p.t - 1 do
      acc := !acc + (p.weight.(i).(j) * x.(i).(j))
    done
  done;
  !acc

let check p x =
  try
    if Array.length x <> p.n then raise Exit;
    Array.iteri
      (fun i xi ->
        if Array.length xi <> p.t then raise Exit;
        Array.iteri
          (fun j v -> if v < p.lower.(i).(j) || v > p.upper.(i).(j) then raise Exit)
          xi)
      x;
    for k = 0 to p.r - 1 do
      let sum = ref 0 in
      for i = 0 to p.n - 1 do
        for j = 0 to p.t - 1 do
          sum := !sum + (p.a.(i).(k).(j) * x.(i).(j))
        done
      done;
      if !sum <> p.rhs_top.(k) then raise Exit
    done;
    for i = 0 to p.n - 1 do
      for k = 0 to p.s - 1 do
        let sum = ref 0 in
        for j = 0 to p.t - 1 do
          sum := !sum + (p.b.(i).(k).(j) * x.(i).(j))
        done;
        if !sum <> p.rhs_block.(i).(k) then raise Exit
      done
    done;
    true
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* Flattened MILP backend. *)

let solve_ilp ?max_nodes ?(feasibility = false) p =
  validate p;
  let q = Rat.of_int in
  let nv = p.n * p.t in
  let var i j = (i * p.t) + j in
  let rows = ref [] in
  for k = 0 to p.r - 1 do
    let coeffs = ref [] in
    for i = 0 to p.n - 1 do
      for j = 0 to p.t - 1 do
        if p.a.(i).(k).(j) <> 0 then coeffs := (var i j, q p.a.(i).(k).(j)) :: !coeffs
      done
    done;
    rows := Lp.constr !coeffs Lp.Eq (q p.rhs_top.(k)) :: !rows
  done;
  for i = 0 to p.n - 1 do
    for k = 0 to p.s - 1 do
      let coeffs = ref [] in
      for j = 0 to p.t - 1 do
        if p.b.(i).(k).(j) <> 0 then coeffs := (var i j, q p.b.(i).(k).(j)) :: !coeffs
      done;
      rows := Lp.constr !coeffs Lp.Eq (q p.rhs_block.(i).(k)) :: !rows
    done
  done;
  let lower = Array.make nv (Some Rat.zero) in
  let upper = Array.make nv None in
  let obj_coeffs = Array.make nv Rat.zero in
  for i = 0 to p.n - 1 do
    for j = 0 to p.t - 1 do
      lower.(var i j) <- Some (q p.lower.(i).(j));
      upper.(var i j) <- Some (q p.upper.(i).(j));
      obj_coeffs.(var i j) <- q p.weight.(i).(j)
    done
  done;
  let lp = Lp.problem ~lower ~upper ~nvars:nv ~objective:obj_coeffs (List.rev !rows) in
  Ccs_obs.Metrics.incr m_ilp_solves;
  Ccs_obs.Recorder.phase "nfold"
  @@ fun () ->
  Ccs_obs.Span.with_ "nfold.solve_ilp"
    ~fields:[ Ccs_obs.Log.int "nvars" nv; Ccs_obs.Log.int "bricks" p.n ]
  @@ fun () ->
  match Ilp.solve ?max_nodes ~feasibility (Ilp.all_integer lp) with
  | Ilp.Infeasible -> `Infeasible
  | Ilp.Node_limit -> `Node_limit
  | Ilp.Unbounded -> assert false (* finite bounds *)
  | Ilp.Optimal { solution; _ } ->
      let x =
        Array.init p.n (fun i ->
            Array.init p.t (fun j -> Bigint.to_int_exn (Rat.num solution.(var i j))))
      in
      `Solution (x, objective p x)

(* ------------------------------------------------------------------ *)
(* Augmentation (Graver-walk) solver. *)

(* Enumerate kernel candidates of one brick: vectors g with B g = 0,
   |g_j| <= norm and lo_j <= g_j <= hi_j (the residual move bounds). DFS over
   coordinates with a reachability prune on the partial row sums. *)
let brick_candidates ~bmat ~s ~t ~norm ~lo ~hi =
  (* Remaining max absolute contribution to each row from coordinates >= j. *)
  let tail = Array.make_matrix (t + 1) s 0 in
  for j = t - 1 downto 0 do
    for k = 0 to s - 1 do
      let move = max (abs lo.(j)) (abs hi.(j)) in
      tail.(j).(k) <- tail.(j + 1).(k) + (abs bmat.(k).(j) * min move norm)
    done
  done;
  let out = ref [] in
  let count = ref 0 in
  let g = Array.make t 0 in
  let partial = Array.make s 0 in
  let rec go j =
    Ccs_resil.Deadline.check chk_kernel;
    if j = t then begin
      if Array.for_all (fun v -> v = 0) partial then begin
        incr count;
        if !count > 500_000 then raise (Too_large "brick kernel enumeration");
        out := Array.copy g :: !out
      end
    end
    else begin
      let lo_j = max (-norm) lo.(j) and hi_j = min norm hi.(j) in
      for v = lo_j to hi_j do
        let ok = ref true in
        for k = 0 to s - 1 do
          partial.(k) <- partial.(k) + (bmat.(k).(j) * v);
          if abs partial.(k) > tail.(j + 1).(k) then ok := false
        done;
        g.(j) <- v;
        if !ok then go (j + 1);
        for k = 0 to s - 1 do
          partial.(k) <- partial.(k) - (bmat.(k).(j) * v)
        done
      done;
      g.(j) <- 0
    end
  in
  go 0;
  Ccs_obs.Metrics.add m_kernel !count;
  !out

module State = struct
  type t = int array

  let equal = ( = )
  let hash (a : int array) = Hashtbl.hash a
end

module StateTbl = Hashtbl.Make (State)

(* Best improving direction for step length lambda, or None.
   DP over bricks; state = running sum of A_i g_i; value = (cost, choices). *)
let best_step p x lambda ~max_norm ~state_bound =
  let zero_state = Array.make p.r 0 in
  let start = StateTbl.create 97 in
  StateTbl.replace start zero_state (0, []);
  let states = ref start in
  for i = 0 to p.n - 1 do
    (* Move bounds for this brick: lower <= x + lambda g <= upper. *)
    let lo =
      Array.init p.t (fun j ->
          (* smallest g_j with x + lambda*g_j >= lower: ceil((l - x)/lambda) *)
          let d = p.lower.(i).(j) - x.(i).(j) in
          if d <= 0 then -((-d) / lambda) else (d + lambda - 1) / lambda)
    in
    let hi =
      Array.init p.t (fun j ->
          let d = p.upper.(i).(j) - x.(i).(j) in
          if d >= 0 then d / lambda else -(((-d) + lambda - 1) / lambda))
    in
    let cands = brick_candidates ~bmat:p.b.(i) ~s:p.s ~t:p.t ~norm:max_norm ~lo ~hi in
    let next = StateTbl.create (StateTbl.length !states * 2) in
    StateTbl.iter
      (fun state (cost, choices) ->
        List.iter
          (fun g ->
            let cost' = ref cost in
            for j = 0 to p.t - 1 do
              cost' := !cost' + (p.weight.(i).(j) * g.(j))
            done;
            let state' = Array.copy state in
            let ok = ref true in
            for k = 0 to p.r - 1 do
              for j = 0 to p.t - 1 do
                state'.(k) <- state'.(k) + (p.a.(i).(k).(j) * g.(j))
              done;
              if abs state'.(k) > state_bound then ok := false
            done;
            if !ok then
              match StateTbl.find_opt next state' with
              | Some (c, _) when c <= !cost' -> ()
              | _ -> StateTbl.replace next state' (!cost', g :: choices))
          cands;
        if StateTbl.length next > 2_000_000 then raise (Too_large "augmentation state space"))
      !states;
    states := next
  done;
  match StateTbl.find_opt !states zero_state with
  | Some (cost, choices) when cost < 0 ->
      let g = Array.of_list (List.rev choices) in
      Some (cost, g)
  | _ -> None

let default_state_bound p max_norm =
  (* Any single Graver step's prefix sums are bounded by the total possible
     contribution of all bricks; cap generously but finitely. *)
  let d = delta p in
  max 1 (d * p.t * max_norm * p.n)

let optimize ?(max_norm = 2) p x0 =
  validate p;
  if not (check p x0) then invalid_arg "Nfold.optimize: infeasible start";
  let x = Array.map Array.copy x0 in
  let state_bound = default_state_bound p max_norm in
  (* Largest useful step length: the widest bound range. *)
  let max_lambda = ref 1 in
  for i = 0 to p.n - 1 do
    for j = 0 to p.t - 1 do
      max_lambda := max !max_lambda (p.upper.(i).(j) - p.lower.(i).(j))
    done
  done;
  Ccs_obs.Recorder.phase "nfold"
  @@ fun () ->
  Ccs_obs.Span.with_ "nfold.optimize"
    ~fields:[ Ccs_obs.Log.int "bricks" p.n; Ccs_obs.Log.int "t" p.t ]
  @@ fun () ->
  let improved = ref true in
  while !improved do
    Ccs_resil.Deadline.check chk_augment;
    improved := false;
    (* Graver-best step over powers of two for lambda. *)
    let best = ref None in
    let lambda = ref 1 in
    while !lambda <= !max_lambda do
      (match best_step p x !lambda ~max_norm ~state_bound with
      | Some (cost, g) ->
          let gain = cost * !lambda in
          (match !best with
          | Some (bg, _, _) when bg <= gain -> ()
          | _ -> best := Some (gain, !lambda, g))
      | None -> ());
      lambda := !lambda * 2
    done;
    match !best with
    | Some (gain, lam, g) ->
        for i = 0 to p.n - 1 do
          for j = 0 to p.t - 1 do
            x.(i).(j) <- x.(i).(j) + (lam * g.(i).(j))
          done
        done;
        assert (check p x);
        Ccs_obs.Metrics.incr m_aug_steps;
        Ccs_obs.Metrics.observe h_lambda (float_of_int lam);
        Ccs_obs.Log.debug (fun log ->
            log
              ~fields:[ Ccs_obs.Log.int "lambda" lam; Ccs_obs.Log.int "gain" gain ]
              "nfold.augmentation_step");
        improved := true
    | None -> ()
  done;
  x

(* Phase 1: auxiliary N-fold whose bricks carry slack columns that absorb the
   residual of the trivial point x = lower; minimizing the slacks to zero
   yields a feasible point of the original program. Every brick gets r + s
   extra columns (top-row slacks live in brick 0 only; the others have them
   frozen at zero) to keep a uniform brick size. *)
let find_feasible ?(max_norm = 2) p =
  validate p;
  Ccs_obs.Recorder.phase "nfold"
  @@ fun () ->
  Ccs_obs.Span.with_ "nfold.find_feasible"
    ~fields:[ Ccs_obs.Log.int "bricks" p.n ]
  @@ fun () ->
  let t' = p.t + p.r + p.s in
  (* residuals at x = lower *)
  let top_res = Array.copy p.rhs_top in
  for k = 0 to p.r - 1 do
    for i = 0 to p.n - 1 do
      for j = 0 to p.t - 1 do
        top_res.(k) <- top_res.(k) - (p.a.(i).(k).(j) * p.lower.(i).(j))
      done
    done
  done;
  let block_res =
    Array.init p.n (fun i ->
        Array.init p.s (fun k ->
            let acc = ref p.rhs_block.(i).(k) in
            for j = 0 to p.t - 1 do
              acc := !acc - (p.b.(i).(k).(j) * p.lower.(i).(j))
            done;
            !acc))
  in
  let a' =
    Array.init p.n (fun i ->
        Array.init p.r (fun k ->
            Array.init t' (fun j ->
                if j < p.t then p.a.(i).(k).(j)
                else if i = 0 && j - p.t = k then if top_res.(k) >= 0 then 1 else -1
                else 0)))
  in
  let b' =
    Array.init p.n (fun i ->
        Array.init p.s (fun k ->
            Array.init t' (fun j ->
                if j < p.t then p.b.(i).(k).(j)
                else if j - p.t - p.r = k then if block_res.(i).(k) >= 0 then 1 else -1
                else 0)))
  in
  let lower' = Array.init p.n (fun i -> Array.init t' (fun j -> if j < p.t then p.lower.(i).(j) else 0)) in
  let upper' =
    Array.init p.n (fun i ->
        Array.init t' (fun j ->
            if j < p.t then p.upper.(i).(j)
            else if j < p.t + p.r then if i = 0 then abs top_res.(j - p.t) else 0
            else abs block_res.(i).(j - p.t - p.r)))
  in
  let weight' = Array.init p.n (fun _ -> Array.init t' (fun j -> if j < p.t then 0 else 1)) in
  let aux =
    {
      r = p.r;
      s = p.s;
      t = t';
      n = p.n;
      a = a';
      b = b';
      rhs_top = p.rhs_top;
      rhs_block = p.rhs_block;
      lower = lower';
      upper = upper';
      weight = weight';
    }
  in
  let x0 =
    Array.init p.n (fun i ->
        Array.init t' (fun j ->
            if j < p.t then p.lower.(i).(j)
            else if j < p.t + p.r then if i = 0 then abs top_res.(j - p.t) else 0
            else abs block_res.(i).(j - p.t - p.r)))
  in
  assert (check aux x0);
  let x = optimize ~max_norm aux x0 in
  if objective aux x = 0 then
    Some (Array.init p.n (fun i -> Array.init p.t (fun j -> x.(i).(j))))
  else None

let solve_augmentation ?(max_norm = 2) p =
  match find_feasible ~max_norm p with
  | None -> `Infeasible
  | Some x0 ->
      let x = optimize ~max_norm p x0 in
      `Solution (x, objective p x)
