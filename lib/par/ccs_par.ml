(* Fixed-size domain pool with deterministic, sequential-equivalent
   combinators.

   Design notes. A batch claims indices from an atomic cursor in ascending
   order; the caller drains the cursor itself and enqueues at most
   [size - 1] helper tasks, so a batch never *depends* on pool workers
   being free — nested fan-out cannot deadlock, it only loses parallelism.
   Determinism comes from keeping all merge steps index-ordered: results
   land in slot [i], the surviving exception is the lowest-index one, and
   find_first reports the lowest-index event (Some or raise), which is
   precisely what the sequential left-to-right loop observes. *)

let m_batches = Ccs_obs.Metrics.counter "par.batches"
let m_tasks = Ccs_obs.Metrics.counter "par.tasks"

module Deadline = Ccs_resil.Deadline

(* One cancellation checkpoint per batch task, taken inside the task's own
   exception scope so a cancelled task reports like any other failure and
   the batch bookkeeping (the [remaining] countdown) always completes. *)
let chk_task = Deadline.site "par.task"

(* Cores the machine actually has. A pool larger than this only adds GC
   coordination and scheduler thrash (domains are not hyperthreads), so
   batches never hand work to more than [available_cores] domains — on a
   single-core host every batch degenerates to the caller's sequential
   drain, which by the determinism contract changes nothing but the wall
   clock. *)
let available_cores = max 1 (Domain.recommended_domain_count ())

module Pool = struct
  type t = {
    psize : int;
    nworkers : int;  (* domains actually spawned; see [create] *)
    queue : (unit -> unit) Queue.t;
    mu : Mutex.t;
    work : Condition.t;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
  }

  let size t = t.psize
  let workers t = t.nworkers

  (* Helper tasks terminate on their own (the batch cursor runs dry), so a
     worker loop only has to wait for work or for shutdown. *)
  let rec worker pool =
    Mutex.lock pool.mu;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.mu
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mu (* stop *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mu;
      task ();
      worker pool
    end

  let create ?(force = false) ~jobs () =
    if jobs < 1 then invalid_arg "Ccs_par.Pool.create: jobs must be >= 1";
    (* Spawn only workers that [run_batch] can ever hand work to (see
       [available_cores]): an idle surplus domain still costs a backup
       thread in every stop-the-world minor collection, which on a small
       machine is pure drag. [force] spawns [jobs - 1] workers regardless —
       concurrency tests need real contention even on a single core. *)
    let nworkers = if force then jobs - 1 else min jobs available_cores - 1 in
    let pool =
      {
        psize = jobs;
        nworkers;
        queue = Queue.create ();
        mu = Mutex.create ();
        work = Condition.create ();
        stop = false;
        domains = [];
      }
    in
    pool.domains <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let submit pool task =
    Mutex.lock pool.mu;
    Queue.push task pool.queue;
    Condition.signal pool.work;
    Mutex.unlock pool.mu

  let shutdown pool =
    Mutex.lock pool.mu;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mu;
    List.iter Domain.join pool.domains;
    pool.domains <- []
end

(* ---------------- ambient pool ---------------- *)

let sequential = lazy (Pool.create ~jobs:1 ())
let ambient_pool : Pool.t option ref = ref None

let ambient () =
  match !ambient_pool with Some p -> p | None -> Lazy.force sequential

let jobs () = match !ambient_pool with Some p -> Pool.size p | None -> 1
let effective_jobs () = min (jobs ()) available_cores

let set_jobs n =
  if n < 1 then invalid_arg "Ccs_par.set_jobs: jobs must be >= 1";
  (match !ambient_pool with Some p -> Pool.shutdown p | None -> ());
  ambient_pool := (if n = 1 then None else Some (Pool.create ~jobs:n ()))

(* Joining the workers at exit keeps domain teardown orderly even when the
   CLI exits from the middle of a parallel phase. *)
let () = at_exit (fun () -> match !ambient_pool with Some p -> Pool.shutdown p | None -> ())

(* ---------------- batches ---------------- *)

(* Run [n] indexed steps on [pool]; steps must handle their own exceptions.
   The caller participates, helpers are best-effort. *)
let run_batch pool n step =
  Ccs_obs.Metrics.incr m_batches;
  Ccs_obs.Metrics.add m_tasks n;
  (* Helpers run on other domains, whose ambient deadline token is not the
     submitter's: re-install it around the helper's drain so a --deadline
     reaches every task of the batch wherever it executes. *)
  let tok = Deadline.ambient () in
  let next = Atomic.make 0 in
  let remaining = Atomic.make n in
  let mu = Mutex.create () in
  let finished = Condition.create () in
  let rec drain () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      step i;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock mu;
        Condition.broadcast finished;
        Mutex.unlock mu
      end;
      drain ()
    end
  in
  for _ = 1 to min (Pool.workers pool) (n - 1) do
    Pool.submit pool (fun () -> Deadline.with_token tok drain)
  done;
  drain ();
  Mutex.lock mu;
  while Atomic.get remaining > 0 do
    Condition.wait finished mu
  done;
  Mutex.unlock mu

let resolve_pool = function Some p -> p | None -> ambient ()

let parallel_mapi ?pool f arr =
  let pool = resolve_pool pool in
  let n = Array.length arr in
  if n <= 1 || Pool.size pool = 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    run_batch pool n (fun i ->
        match
          Deadline.check chk_task;
          f i arr.(i)
        with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some e);
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some r -> r | None -> assert false) results
  end

let parallel_map ?pool f arr = parallel_mapi ?pool (fun _ x -> f x) arr

let parallel_find_firsti ?pool f arr =
  let pool = resolve_pool pool in
  let n = Array.length arr in
  if n <= 1 || Pool.size pool = 1 then begin
    (* plain left-to-right scan *)
    let rec go i =
      if i >= n then None
      else match f i arr.(i) with Some v -> Some v | None -> go (i + 1)
    in
    go 0
  end
  else begin
    (* [cut] is the lowest index known to carry an event (a [Some] or a
       raise); indices above it are skipped, indices below it are always
       evaluated, which is what makes the final answer the sequential
       one. *)
    let cut = Atomic.make n in
    let outcome = Array.make n `None in
    let rec lower i =
      let c = Atomic.get cut in
      if i < c && not (Atomic.compare_and_set cut c i) then lower i
    in
    (* Prompt shutdown: every task runs under its own child token, and an
       event at index i kills the tokens of in-flight tasks above the cut,
       whose next checkpoint then unwinds them. [cut] only ever decreases,
       so a killed index is strictly above the final winner and its outcome
       could never reach the sequential answer — the kill changes wall
       clock, not results. A [Killed] cancellation is therefore swallowed
       (no event) unless the parent token itself is cancelled, in which
       case it is the real deadline and propagates like any exception. *)
    let parent = Deadline.ambient () in
    let tokens = Array.init n (fun _ -> Deadline.child parent) in
    let kill_above c =
      for j = c + 1 to n - 1 do
        Deadline.kill tokens.(j)
      done
    in
    let event i ev =
      outcome.(i) <- ev;
      lower i;
      kill_above (Atomic.get cut)
    in
    run_batch pool n (fun i ->
        if i < Atomic.get cut then
          match
            Deadline.with_token tokens.(i) (fun () ->
                Deadline.check chk_task;
                f i arr.(i))
          with
          | Some v -> event i (`Found v)
          | None -> ()
          | exception (Deadline.Cancelled { reason = Deadline.Killed; _ } as e) ->
              if Deadline.cancelled parent then event i (`Exn e)
          | exception e -> event i (`Exn e));
    let w = Atomic.get cut in
    if w >= n then None
    else
      match outcome.(w) with
      | `Found v -> Some v
      | `Exn e -> raise e
      | `None -> assert false
  end

let parallel_find_first ?pool f arr = parallel_find_firsti ?pool (fun _ x -> f x) arr
