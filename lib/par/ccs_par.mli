(** Multicore execution layer: a fixed-size domain pool with deterministic
    parallel combinators.

    Every combinator is sequential-equivalent: results are gathered by input
    index, first-success means lowest index, and the exception that escapes
    a batch is the one the sequential loop would have hit first. A seeded
    run therefore produces bit-identical output at any pool size, provided
    the mapped functions are pure (draw randomness only via
    [Ccs_util.Prng.stream] keyed by index, never from shared streams).

    Nesting is safe: the calling domain always works through its own batch,
    so a task that itself fans out makes progress even when every pool
    worker is busy.

    Worker domains beyond [Domain.recommended_domain_count] never claim
    work: oversubscribing cores cannot help a CPU-bound batch, so a pool
    larger than the machine only costs what the idle domains cost. The
    results are unaffected — that is the point of the determinism
    contract. *)

module Pool : sig
  type t

  (** [create ~jobs ()] spawns [jobs - 1] worker domains (capped by
      [Domain.recommended_domain_count] unless [force] is set; see below);
      the caller of each combinator acts as the [jobs]-th worker.
      [jobs = 1] spawns nothing and makes every combinator run strictly
      sequentially. [force] spawns [jobs - 1] domains even beyond the core
      count — oversubscription buys nothing for throughput, but
      cancellation tests need genuinely concurrent tasks on single-core
      machines. Raises [Invalid_argument] if [jobs < 1]. *)
  val create : ?force:bool -> jobs:int -> unit -> t

  val size : t -> int

  (** Worker domains actually spawned (<= [size] - 1). *)
  val workers : t -> int

  (** Joins the worker domains. Idempotent; combinators must not be
      called on a pool after shutdown. *)
  val shutdown : t -> unit
end

(** {1 Ambient pool}

    Library hot paths (PTAS guess probes, border search, configuration
    enumeration) draw their parallelism from a process-wide ambient pool so
    that a single [--jobs N] flag reaches every layer. The default is 1:
    nothing runs in parallel unless explicitly requested. *)

(** [set_jobs n] replaces the ambient pool with one of size [n] (shutting
    down the previous one). *)
val set_jobs : int -> unit

(** Size of the ambient pool. *)
val jobs : unit -> int

(** Ambient pool size capped by [Domain.recommended_domain_count] — the
    parallelism a batch can actually realize. Call sites that restructure
    work for the pool (branch decompositions, k-section searches) should
    gate on [effective_jobs () > 1]: when the cap bites, the restructuring
    costs extra work that no core is there to absorb. Any such gate must
    leave the computed result unchanged (only the schedule of work), or
    determinism across machines is lost. *)
val effective_jobs : unit -> int

val ambient : unit -> Pool.t

(** {1 Combinators}

    All default to the ambient pool. *)

(** [parallel_map f arr] is [Array.map f arr]; elements are evaluated
    concurrently but the result is ordered by index. If several elements
    raise, the lowest-index exception is re-raised (later elements may
    still have been evaluated, unlike the sequential loop). *)
val parallel_map : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_mapi] passes the element index, e.g. to seed a
    [Prng.stream]. *)
val parallel_mapi : ?pool:Pool.t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [parallel_find_first f arr] is the lowest-index [Some] that [f]
    produces, [None] if every element maps to [None] — exactly the answer
    of the sequential left-to-right scan, including which exception (if
    any) escapes: an element's outcome is only reported once every earlier
    element has evaluated to [None]. Elements beyond the winner are
    skipped opportunistically, and in-flight elements above the winning
    index are cancelled through their {!Ccs_resil.Deadline} child tokens —
    a poisoned (raising or cancelled) task never serializes the batch by
    letting its siblings run to completion. *)
val parallel_find_first : ?pool:Pool.t -> ('a -> 'b option) -> 'a array -> 'b option

val parallel_find_firsti : ?pool:Pool.t -> (int -> 'a -> 'b option) -> 'a array -> 'b option
