(** Solver-phase tracing: nested wall-clock spans.

    Disabled by default — [with_] then just calls its thunk (one branch of
    overhead). When enabled, completed spans accumulate into an in-process
    tree that can be inspected programmatically or exported in the Chrome
    trace-event format ([chrome://tracing], Perfetto, or plain [jq]). *)

type t

val name : t -> string

(** Seconds since {!set_enabled}[ true] at which the span started. *)
val start : t -> float

(** Wall-clock duration in seconds. *)
val duration : t -> float

val fields : t -> Log.field list

(** Completed children, in execution order. *)
val children : t -> t list

(** Id of the domain the span ran on ([Domain.self] at span start); spans
    opened inside a [Ccs_par] task carry the worker's id, and the Chrome
    export maps it to [tid] so concurrent lanes render separately. *)
val tid : t -> int

(** Enabling (re)starts a fresh trace; disabling keeps the collected spans
    readable. Default: disabled. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Drop all collected spans (the trace epoch is kept). *)
val reset : unit -> unit

(** [with_ "ptas.binary_search" ~fields f] runs [f ()] inside a span.
    The span is recorded even when [f] raises. Nesting follows the dynamic
    call structure. *)
val with_ : string -> ?fields:Log.field list -> (unit -> 'a) -> 'a

(** Completed top-level spans, ordered by start time (ties broken by domain
    id, so the order is stable under concurrency). A span whose parent ran
    on a different domain is a root of its own. Spans still open (an
    enclosing [with_] has not returned yet) are not included. *)
val roots : unit -> t list

(** Flat array of Chrome trace-event objects (["ph":"X"] complete events,
    microsecond [ts]/[dur], span fields under ["args"]). *)
val to_chrome_json : unit -> Jsonx.t

(** [write_chrome_trace path] dumps {!to_chrome_json} to [path]. *)
val write_chrome_trace : string -> unit

(** Total number of completed spans in the current trace. *)
val count : unit -> int

(** Number of spans currently open on the calling domain. Zero outside
    every [with_] — including right after a {!Ccs_resil.Deadline.Cancelled}
    unwound a solver, which is what the resilience tests assert. *)
val open_depth : unit -> int
