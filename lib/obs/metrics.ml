type counter = { mutable count : int }
type gauge = { mutable gval : float; mutable gset : bool }

type histogram = {
  mutable samples : float array;  (* filled prefix of length [len] *)
  mutable len : int;
}

(* Fixed log-spaced buckets (1 / 2.5 / 5 per decade, 1e-6 .. 5e6) shared by
   every log histogram and by the OpenMetrics exposition of raw-sample
   histograms: one bucket layout means panels over different metrics line
   up, and a bounded bucket array means a long-running service (ROADMAP
   item 3) never grows a latency histogram without bound. *)
let log_bounds =
  let bounds = ref [] in
  for e = -6 to 6 do
    List.iter
      (fun m -> bounds := float_of_string (Printf.sprintf "%se%d" m e) :: !bounds)
      [ "1"; "2.5"; "5" ]
  done;
  Array.of_list (List.sort compare !bounds)

type log_histogram = {
  lbuckets : int array;  (* per log_bounds entry, plus a final +Inf bucket *)
  mutable lsum : float;
  mutable lcount : int;
  mutable lmax : float;
}

type entry =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Log_histogram of log_histogram

type reg = { entry : entry; help : string option }

let registry : (string, reg) Hashtbl.t = Hashtbl.create 64

(* One registry-wide lock. Solver phases run concurrently on domains
   (Ccs_par), and every mutation — bumping a counter, growing a histogram,
   registering a metric — is tiny next to the work being measured, so a
   single mutex is both safe and cheap. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Log_histogram _ -> "log_histogram"

(* ---------------- naming convention (DESIGN.md, "Metric naming") -------- *)

let canonical_units = [ "s"; "ms"; "words"; "bytes"; "ratio" ]

(* Common unit spellings we deliberately refuse, so there is exactly one
   way to name a latency or a byte count across the codebase. *)
let rejected_units =
  [ "ns"; "us"; "usec"; "usecs"; "micros"; "msec"; "msecs"; "millis";
    "sec"; "secs"; "seconds"; "mins"; "minutes"; "b"; "kb"; "mb"; "gb";
    "kib"; "mib"; "pct"; "percent" ]

let unit_of name =
  match String.rindex_opt name '_' with
  | None -> None
  | Some i ->
      let u = String.sub name (i + 1) (String.length name - i - 1) in
      if List.mem u canonical_units then Some u else None

let check_name name =
  let bad reason =
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S: %s" name reason)
  in
  let seg_ok seg =
    String.length seg > 0
    && (match seg.[0] with 'a' .. 'z' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
         seg
  in
  let segs = String.split_on_char '.' name in
  if not (List.for_all seg_ok segs) then
    bad "segments must match [a-z][a-z0-9_]* joined by '.'";
  let tokens = String.split_on_char '_' name in
  let last_token = List.nth tokens (List.length tokens - 1) in
  if List.length tokens > 1 && List.mem last_token rejected_units then
    bad
      (Printf.sprintf
         "unit suffix _%s is not canonical; use %s (or no suffix for a \
          dimensionless count) — see DESIGN.md"
         last_token
         (String.concat "/" (List.map (fun u -> "_" ^ u) canonical_units)))

(* ---------------- registration ---------------- *)

let register name help make check =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some r -> (
      match check r.entry with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name r.entry)))
  | None ->
      check_name name;
      let h, e = make () in
      Hashtbl.replace registry name { entry = e; help };
      h

let counter ?help name =
  register name help
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge ?help name =
  register name help
    (fun () ->
      let g = { gval = 0.0; gset = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?help name =
  register name help
    (fun () ->
      let h = { samples = Array.make 16 0.0; len = 0 } in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let log_histogram ?help name =
  register name help
    (fun () ->
      let h =
        { lbuckets = Array.make (Array.length log_bounds + 1) 0;
          lsum = 0.0; lcount = 0; lmax = neg_infinity }
      in
      (h, Log_histogram h))
    (function Log_histogram h -> Some h | _ -> None)

let incr c = locked (fun () -> c.count <- c.count + 1)
let add c n = locked (fun () -> c.count <- c.count + n)
let counter_value c = locked (fun () -> c.count)

let set_gauge g v =
  locked @@ fun () ->
  g.gval <- v;
  g.gset <- true

let gauge_value g = locked (fun () -> if g.gset then Some g.gval else None)

let observe h x =
  locked @@ fun () ->
  if h.len = Array.length h.samples then begin
    let bigger = Array.make (2 * h.len) 0.0 in
    Array.blit h.samples 0 bigger 0 h.len;
    h.samples <- bigger
  end;
  h.samples.(h.len) <- x;
  h.len <- h.len + 1

let histogram_count h = locked (fun () -> h.len)

(* must be called with [mu] held *)
let filled h = Array.sub h.samples 0 h.len

let histogram_percentile h p = locked (fun () -> Ccs_util.Stats.percentile (filled h) p)
let histogram_mean h = locked (fun () -> Ccs_util.Stats.mean (filled h))
let histogram_max h = locked (fun () -> Ccs_util.Stats.maximum (filled h))

let observe_log h x =
  locked @@ fun () ->
  let n = Array.length log_bounds in
  let i = ref 0 in
  while !i < n && x > log_bounds.(!i) do
    Stdlib.incr i
  done;
  h.lbuckets.(!i) <- h.lbuckets.(!i) + 1;
  h.lsum <- h.lsum +. x;
  h.lcount <- h.lcount + 1;
  if x > h.lmax then h.lmax <- x

let log_histogram_count h = locked (fun () -> h.lcount)
let log_histogram_sum h = locked (fun () -> h.lsum)
let log_histogram_max h = locked (fun () -> if h.lcount = 0 then nan else h.lmax)

(* Smallest bucket bound whose cumulative count reaches p% — an upper
   estimate of the percentile, exact up to bucket granularity. [+Inf]
   resolves to the recorded max. Must be called with [mu] held. *)
let log_quantile_locked h p =
  if h.lcount = 0 then nan
  else begin
    let need =
      int_of_float (ceil (p /. 100.0 *. float_of_int h.lcount)) |> max 1
    in
    let cum = ref 0 and ans = ref h.lmax in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= need then begin
             if i < Array.length log_bounds then ans := log_bounds.(i);
             raise Exit
           end)
         h.lbuckets
     with Exit -> ());
    min !ans h.lmax
  end

let log_histogram_quantile h p = locked (fun () -> log_quantile_locked h p)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ r ->
      match r.entry with
      | Counter c -> c.count <- 0
      | Gauge g ->
          g.gval <- 0.0;
          g.gset <- false
      | Histogram h -> h.len <- 0
      | Log_histogram h ->
          Array.fill h.lbuckets 0 (Array.length h.lbuckets) 0;
          h.lsum <- 0.0;
          h.lcount <- 0;
          h.lmax <- neg_infinity)
    registry

let sorted_entries () =
  locked @@ fun () ->
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let dump_table () =
  let t = Ccs_util.Tables.create [ "metric"; "kind"; "value"; "p50"; "p95"; "max" ] in
  List.iter
    (fun (name, r) ->
      match r.entry with
      | Counter c ->
          Ccs_util.Tables.add_row t [ name; "counter"; string_of_int c.count; "-"; "-"; "-" ]
      | Gauge g ->
          let v = if g.gset then fnum g.gval else "unset" in
          Ccs_util.Tables.add_row t [ name; "gauge"; v; "-"; "-"; "-" ]
      | Histogram h ->
          if h.len = 0 then
            Ccs_util.Tables.add_row t [ name; "histogram"; "n=0"; "-"; "-"; "-" ]
          else
            Ccs_util.Tables.add_row t
              [ name; "histogram";
                Printf.sprintf "n=%d" h.len;
                fnum (histogram_percentile h 50.0);
                fnum (histogram_percentile h 95.0);
                fnum (histogram_max h) ]
      | Log_histogram h ->
          if log_histogram_count h = 0 then
            Ccs_util.Tables.add_row t [ name; "log_histogram"; "n=0"; "-"; "-"; "-" ]
          else
            Ccs_util.Tables.add_row t
              [ name; "log_histogram";
                Printf.sprintf "n=%d" (log_histogram_count h);
                fnum (log_histogram_quantile h 50.0);
                fnum (log_histogram_quantile h 95.0);
                fnum (log_histogram_max h) ])
    (sorted_entries ());
  Ccs_util.Tables.render t

let entry_json = function
  | Counter c -> Jsonx.Int c.count
  | Gauge g -> if g.gset then Jsonx.Float g.gval else Jsonx.Null
  | Histogram h ->
      if h.len = 0 then Jsonx.Obj [ ("count", Jsonx.Int 0) ]
      else
        Jsonx.Obj
          [ ("count", Jsonx.Int h.len);
            ("mean", Jsonx.Float (histogram_mean h));
            ("p50", Jsonx.Float (histogram_percentile h 50.0));
            ("p95", Jsonx.Float (histogram_percentile h 95.0));
            ("max", Jsonx.Float (histogram_max h)) ]
  | Log_histogram h ->
      if log_histogram_count h = 0 then Jsonx.Obj [ ("count", Jsonx.Int 0) ]
      else
        Jsonx.Obj
          [ ("count", Jsonx.Int (log_histogram_count h));
            ("sum", Jsonx.Float (log_histogram_sum h));
            ("p50", Jsonx.Float (log_histogram_quantile h 50.0));
            ("p95", Jsonx.Float (log_histogram_quantile h 95.0));
            ("max", Jsonx.Float (log_histogram_max h)) ]

let active = function
  | Counter c -> c.count <> 0
  | Gauge g -> g.gset
  | Histogram h -> h.len > 0
  | Log_histogram h -> h.lcount > 0

let snapshot ?(all = false) () =
  sorted_entries ()
  |> List.filter_map (fun (name, r) ->
         if all || active r.entry then Some (name, entry_json r.entry) else None)

let dump_json () =
  Jsonx.Obj (sorted_entries () |> List.map (fun (name, r) -> (name, entry_json r.entry)))

(* ---------------- OpenMetrics text exposition ---------------- *)

(* One family per registered metric: the dotted registry name becomes an
   underscore name with a "ccs_" namespace prefix; counters expose a
   [_total] sample, histograms (both kinds) expose cumulative log buckets
   plus [_sum]/[_count]. Terminated by "# EOF" as the OpenMetrics spec
   requires, so a scraper (or the test-suite's validator) can detect a
   truncated write. *)

let om_name name = "ccs_" ^ String.map (fun c -> if c = '.' then '_' else c) name

let om_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let om_meta buf n kind help unit =
  Printf.bprintf buf "# TYPE %s %s\n" n kind;
  (match unit with Some u -> Printf.bprintf buf "# UNIT %s %s\n" n u | None -> ());
  match help with
  | Some h ->
      let clean = String.map (function '\n' -> ' ' | c -> c) h in
      Printf.bprintf buf "# HELP %s %s\n" n clean
  | None -> ()

let om_buckets buf n ~cumulative ~total ~sum =
  Array.iteri
    (fun i bound ->
      Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n (om_float bound) cumulative.(i))
    log_bounds;
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n total;
  Printf.bprintf buf "%s_count %d\n" n total;
  Printf.bprintf buf "%s_sum %s\n" n (om_float sum)

let to_openmetrics () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, r) ->
      let n = om_name name in
      let unit = unit_of name in
      match r.entry with
      | Counter c ->
          om_meta buf n "counter" r.help unit;
          Printf.bprintf buf "%s_total %d\n" n (locked (fun () -> c.count))
      | Gauge g -> (
          match gauge_value g with
          | None -> ()  (* never set: no samples, so no family *)
          | Some v ->
              om_meta buf n "gauge" r.help unit;
              Printf.bprintf buf "%s %s\n" n (om_float v))
      | Histogram h ->
          let samples = locked (fun () -> filled h) in
          let nb = Array.length log_bounds in
          let cumulative = Array.make nb 0 in
          let sum = ref 0.0 in
          Array.iter
            (fun x ->
              sum := !sum +. x;
              let i = ref 0 in
              while !i < nb && x > log_bounds.(!i) do
                Stdlib.incr i
              done;
              if !i < nb then cumulative.(!i) <- cumulative.(!i) + 1)
            samples;
          for i = 1 to nb - 1 do
            cumulative.(i) <- cumulative.(i) + cumulative.(i - 1)
          done;
          om_meta buf n "histogram" r.help unit;
          om_buckets buf n ~cumulative ~total:(Array.length samples) ~sum:!sum
      | Log_histogram h ->
          let cumulative, total, sum =
            locked (fun () ->
                let nb = Array.length log_bounds in
                let cum = Array.make nb 0 in
                let run = ref 0 in
                for i = 0 to nb - 1 do
                  run := !run + h.lbuckets.(i);
                  cum.(i) <- !run
                done;
                (cum, h.lcount, h.lsum))
          in
          om_meta buf n "histogram" r.help unit;
          om_buckets buf n ~cumulative ~total ~sum)
    (sorted_entries ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_openmetrics path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_openmetrics ()))
