type counter = { mutable count : int }
type gauge = { mutable gval : float; mutable gset : bool }

type histogram = {
  mutable samples : float array;  (* filled prefix of length [len] *)
  mutable len : int;
}

type entry = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

(* One registry-wide lock. Solver phases run concurrently on domains
   (Ccs_par), and every mutation — bumping a counter, growing a histogram,
   registering a metric — is tiny next to the work being measured, so a
   single mutex is both safe and cheap. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register name make check =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some e -> (
      match check e with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name e)))
  | None ->
      let h, e = make () in
      Hashtbl.replace registry name e;
      h

let counter name =
  register name
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { gval = 0.0; gset = false } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h = { samples = Array.make 16 0.0; len = 0 } in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let incr c = locked (fun () -> c.count <- c.count + 1)
let add c n = locked (fun () -> c.count <- c.count + n)
let counter_value c = locked (fun () -> c.count)

let set_gauge g v =
  locked @@ fun () ->
  g.gval <- v;
  g.gset <- true

let gauge_value g = locked (fun () -> if g.gset then Some g.gval else None)

let observe h x =
  locked @@ fun () ->
  if h.len = Array.length h.samples then begin
    let bigger = Array.make (2 * h.len) 0.0 in
    Array.blit h.samples 0 bigger 0 h.len;
    h.samples <- bigger
  end;
  h.samples.(h.len) <- x;
  h.len <- h.len + 1

let histogram_count h = locked (fun () -> h.len)

(* must be called with [mu] held *)
let filled h = Array.sub h.samples 0 h.len

let histogram_percentile h p = locked (fun () -> Ccs_util.Stats.percentile (filled h) p)
let histogram_mean h = locked (fun () -> Ccs_util.Stats.mean (filled h))
let histogram_max h = locked (fun () -> Ccs_util.Stats.maximum (filled h))

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.count <- 0
      | Gauge g ->
          g.gval <- 0.0;
          g.gset <- false
      | Histogram h -> h.len <- 0)
    registry

let sorted_entries () =
  locked @@ fun () ->
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let dump_table () =
  let t = Ccs_util.Tables.create [ "metric"; "kind"; "value"; "p50"; "p95"; "max" ] in
  List.iter
    (fun (name, e) ->
      match e with
      | Counter c ->
          Ccs_util.Tables.add_row t [ name; "counter"; string_of_int c.count; "-"; "-"; "-" ]
      | Gauge g ->
          let v = if g.gset then fnum g.gval else "unset" in
          Ccs_util.Tables.add_row t [ name; "gauge"; v; "-"; "-"; "-" ]
      | Histogram h ->
          if h.len = 0 then
            Ccs_util.Tables.add_row t [ name; "histogram"; "n=0"; "-"; "-"; "-" ]
          else
            Ccs_util.Tables.add_row t
              [ name; "histogram";
                Printf.sprintf "n=%d" h.len;
                fnum (histogram_percentile h 50.0);
                fnum (histogram_percentile h 95.0);
                fnum (histogram_max h) ])
    (sorted_entries ());
  Ccs_util.Tables.render t

let entry_json = function
  | Counter c -> Jsonx.Int c.count
  | Gauge g -> if g.gset then Jsonx.Float g.gval else Jsonx.Null
  | Histogram h ->
      if h.len = 0 then Jsonx.Obj [ ("count", Jsonx.Int 0) ]
      else
        Jsonx.Obj
          [ ("count", Jsonx.Int h.len);
            ("mean", Jsonx.Float (histogram_mean h));
            ("p50", Jsonx.Float (histogram_percentile h 50.0));
            ("p95", Jsonx.Float (histogram_percentile h 95.0));
            ("max", Jsonx.Float (histogram_max h)) ]

let active = function
  | Counter c -> c.count <> 0
  | Gauge g -> g.gset
  | Histogram h -> h.len > 0

let snapshot ?(all = false) () =
  sorted_entries ()
  |> List.filter_map (fun (name, e) ->
         if all || active e then Some (name, entry_json e) else None)

let dump_json () = Jsonx.Obj (snapshot ~all:true ())
