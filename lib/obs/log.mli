(** Leveled structured logging.

    Messages carry a severity, a text body and key-value fields, and are
    rendered either as aligned text or as one JSON object per line (JSONL).
    The continuation style makes disabled levels genuinely free: the
    closure passed to {!debug} & co. is only invoked after the level check,
    so neither the message nor its fields are ever materialized when the
    level is off — safe to sprinkle on hot paths like simplex pivots. *)

type level = Error | Warn | Info | Debug | Trace

type value = Int of int | Float of float | Str of string | Bool of bool

type field = string * value

(** Field constructors, e.g. [Log.int "pivots" 42]. *)
val int : string -> int -> field

val float : string -> float -> field
val str : string -> string -> field
val bool : string -> bool -> field

(** [None] disables logging entirely. Default: [Some Warn]. *)
val set_level : level option -> unit

val level : unit -> level option
val enabled : level -> bool

(** Accepts "off", "error", "warn", "info", "debug", "trace"
    (case-insensitive); [Error] lists the valid names. *)
val level_of_string : string -> (level option, string) result

val level_to_string : level -> string

type format = Text | Jsonl

(** Default [Text]. In [Jsonl] every line is
    [{"ts":seconds,"level":...,"msg":...,<fields>}]. *)
val set_format : format -> unit

(** Where complete lines (newline included) go. Default: stderr, flushed
    per line. The test-suite redirects into a [Buffer]. *)
val set_output : (string -> unit) -> unit

(** [msg lvl (fun m -> m ~fields:[...] "text")] — [m] may be applied at
    most once; it is never invoked when [lvl] is filtered out. *)
val msg : level -> ((?fields:field list -> string -> unit) -> unit) -> unit

val err : ((?fields:field list -> string -> unit) -> unit) -> unit
val warn : ((?fields:field list -> string -> unit) -> unit) -> unit
val info : ((?fields:field list -> string -> unit) -> unit) -> unit
val debug : ((?fields:field list -> string -> unit) -> unit) -> unit
val trace : ((?fields:field list -> string -> unit) -> unit) -> unit

(** Seconds since the logger was initialized (process start, effectively);
    the [ts] of every emitted line. Exposed for the span layer so both
    clocks agree. *)
val elapsed : unit -> float

val value_to_json : value -> Jsonx.t
