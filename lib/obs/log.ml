type level = Error | Warn | Info | Debug | Trace

type value = Int of int | Float of float | Str of string | Bool of bool

type field = string * value

let int k v = (k, Int v)
let float k v = (k, Float v)
let str k v = (k, Str v)
let bool k v = (k, Bool v)

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3 | Trace -> 4

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"
  | Trace -> "trace"

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" | "quiet" -> Ok None
  | "error" -> Ok (Some Error)
  | "warn" | "warning" -> Ok (Some Warn)
  | "info" -> Ok (Some Info)
  | "debug" -> Ok (Some Debug)
  | "trace" -> Ok (Some Trace)
  | other ->
      Error
        (Printf.sprintf "unknown log level %S (off|error|warn|info|debug|trace)" other)

let current = ref (Some Warn)

let set_level l = current := l
let level () = !current

let enabled lvl =
  match !current with None -> false | Some l -> severity lvl <= severity l

type format = Text | Jsonl

let fmt = ref Text
let set_format f = fmt := f

let default_output line =
  output_string stderr line;
  flush stderr

let out = ref default_output
let set_output f = out := f

(* Concurrent solver phases (Ccs_par workers) log through the same sink;
   one lock around the write keeps lines whole instead of interleaved. *)
let out_mu = Mutex.create ()

let start_time = Ccs_util.Mono.now_s ()
let elapsed () = Ccs_util.Mono.now_s () -. start_time

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let value_to_json = function
  | Int i -> Jsonx.Int i
  | Float f -> Jsonx.Float f
  | Str s -> Jsonx.Str s
  | Bool b -> Jsonx.Bool b

let emit lvl fields text =
  let line =
    match !fmt with
    | Text ->
        let kv =
          List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (value_to_string v)) fields
        in
        Printf.sprintf "[%10.6f] %-5s %s%s\n" (elapsed ()) (level_to_string lvl) text
          (String.concat "" kv)
    | Jsonl ->
        let obj =
          ("ts", Jsonx.Float (elapsed ()))
          :: ("level", Jsonx.Str (level_to_string lvl))
          :: ("msg", Jsonx.Str text)
          :: List.map (fun (k, v) -> (k, value_to_json v)) fields
        in
        Jsonx.to_string (Jsonx.Obj obj) ^ "\n"
  in
  Mutex.lock out_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock out_mu) (fun () -> !out line)

let msg lvl k = if enabled lvl then k (fun ?(fields = []) text -> emit lvl fields text)

let err k = msg Error k
let warn k = msg Warn k
let info k = msg Info k
let debug k = msg Debug k
let trace k = msg Trace k
