module Mono = Ccs_util.Mono

type t = {
  sname : string;
  sfields : Log.field list;
  stid : int;  (* id of the domain the span ran on *)
  sstart : float;  (* seconds since trace epoch *)
  mutable sdur : float;
  mutable rev_children : t list;
}

let name sp = sp.sname
let start sp = sp.sstart
let duration sp = sp.sdur
let fields sp = sp.sfields
let children sp = List.rev sp.rev_children
let tid sp = sp.stid

let on = ref false
let epoch = ref 0.0

(* Each domain keeps its own open-span stack, so nesting is tracked per
   worker and never races; finished top-level spans funnel into one shared
   forest under [mu]. A span whose parent lives on another domain (a
   Ccs_par task spawned from inside a span) becomes a root of its own,
   distinguished in the trace by its domain id. *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let mu = Mutex.create ()
let rev_roots : t list ref = ref []
let completed = ref 0

let reset () =
  Mutex.lock mu;
  rev_roots := [];
  completed := 0;
  Mutex.unlock mu;
  Domain.DLS.get stack_key := []

let set_enabled b =
  if b then begin
    reset ();
    epoch := Mono.now_s ()
  end;
  on := b

let enabled () = !on

let with_ sname ?(fields = []) f =
  if not !on then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let sp =
      {
        sname;
        sfields = fields;
        stid = (Domain.self () :> int);
        sstart = Mono.now_s () -. !epoch;
        sdur = 0.0;
        rev_children = [];
      }
    in
    stack := sp :: !stack;
    let finish () =
      sp.sdur <- Mono.now_s () -. !epoch -. sp.sstart;
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ ->
          (* A span escaped its dynamic extent (should be impossible with
             with_-only usage); resynchronize by dropping to it. *)
          let rec drop = function
            | top :: rest when top == sp -> rest
            | _ :: rest -> drop rest
            | [] -> []
          in
          stack := drop !stack);
      match !stack with
      | parent :: _ ->
          parent.rev_children <- sp :: parent.rev_children;
          Mutex.lock mu;
          incr completed;
          Mutex.unlock mu
      | [] ->
          Mutex.lock mu;
          rev_roots := sp :: !rev_roots;
          incr completed;
          Mutex.unlock mu
    in
    Fun.protect ~finally:finish f
  end

(* Open spans on the calling domain — zero whenever the program is outside
   every [with_]; the resilience tests assert this after interrupting a
   solver at an arbitrary checkpoint, proving cancellation unwinds spans. *)
let open_depth () = List.length !(Domain.DLS.get stack_key)

let roots () =
  Mutex.lock mu;
  let r = List.rev !rev_roots in
  Mutex.unlock mu;
  (* stable presentation order regardless of which domain finished first *)
  List.stable_sort (fun a b -> compare (a.sstart, a.stid) (b.sstart, b.stid)) r

let count () =
  Mutex.lock mu;
  let c = !completed in
  Mutex.unlock mu;
  c

let to_chrome_json () =
  let micros s = Float.round (s *. 1e6) in
  let events = ref [] in
  let rec walk sp =
    let args = List.map (fun (k, v) -> (k, Log.value_to_json v)) sp.sfields in
    let ev =
      Jsonx.Obj
        ([
           ("name", Jsonx.Str sp.sname);
           ("ph", Jsonx.Str "X");
           ("ts", Jsonx.Float (micros sp.sstart));
           ("dur", Jsonx.Float (micros sp.sdur));
           ("pid", Jsonx.Int 0);
           ("tid", Jsonx.Int sp.stid);
         ]
        @ if args = [] then [] else [ ("args", Jsonx.Obj args) ])
    in
    events := ev :: !events;
    List.iter walk (children sp)
  in
  List.iter walk (roots ());
  Jsonx.List (List.rev !events)

let write_chrome_trace path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (to_chrome_json ()));
      Out_channel.output_char oc '\n')
