type t = {
  sname : string;
  sfields : Log.field list;
  sstart : float;  (* seconds since trace epoch *)
  mutable sdur : float;
  mutable rev_children : t list;
}

let name sp = sp.sname
let start sp = sp.sstart
let duration sp = sp.sdur
let fields sp = sp.sfields
let children sp = List.rev sp.rev_children

let on = ref false
let epoch = ref 0.0
let stack : t list ref = ref []
let rev_roots : t list ref = ref []
let completed = ref 0

let reset () =
  stack := [];
  rev_roots := [];
  completed := 0

let set_enabled b =
  if b then begin
    reset ();
    epoch := Unix.gettimeofday ()
  end;
  on := b

let enabled () = !on

let with_ sname ?(fields = []) f =
  if not !on then f ()
  else begin
    let sp =
      {
        sname;
        sfields = fields;
        sstart = Unix.gettimeofday () -. !epoch;
        sdur = 0.0;
        rev_children = [];
      }
    in
    stack := sp :: !stack;
    let finish () =
      sp.sdur <- Unix.gettimeofday () -. !epoch -. sp.sstart;
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ ->
          (* A span escaped its dynamic extent (should be impossible with
             with_-only usage); resynchronize by dropping to it. *)
          let rec drop = function
            | top :: rest when top == sp -> rest
            | _ :: rest -> drop rest
            | [] -> []
          in
          stack := drop !stack);
      incr completed;
      match !stack with
      | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
      | [] -> rev_roots := sp :: !rev_roots
    in
    Fun.protect ~finally:finish f
  end

let roots () = List.rev !rev_roots
let count () = !completed

let to_chrome_json () =
  let micros s = Float.round (s *. 1e6) in
  let events = ref [] in
  let rec walk sp =
    let args = List.map (fun (k, v) -> (k, Log.value_to_json v)) sp.sfields in
    let ev =
      Jsonx.Obj
        ([
           ("name", Jsonx.Str sp.sname);
           ("ph", Jsonx.Str "X");
           ("ts", Jsonx.Float (micros sp.sstart));
           ("dur", Jsonx.Float (micros sp.sdur));
           ("pid", Jsonx.Int 0);
           ("tid", Jsonx.Int 0);
         ]
        @ if args = [] then [] else [ ("args", Jsonx.Obj args) ])
    in
    events := ev :: !events;
    List.iter walk (children sp)
  in
  List.iter walk (roots ());
  Jsonx.List (List.rev !events)

let write_chrome_trace path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (to_chrome_json ()));
      Out_channel.output_char oc '\n')
