type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding: recursive descent over a cursor. *)

exception Malformed of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal, expected " ^ word)
  in
  let utf8_encode buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char buf '"'
           | '\\' -> advance (); Buffer.add_char buf '\\'
           | '/' -> advance (); Buffer.add_char buf '/'
           | 'b' -> advance (); Buffer.add_char buf '\b'
           | 'f' -> advance (); Buffer.add_char buf '\012'
           | 'n' -> advance (); Buffer.add_char buf '\n'
           | 'r' -> advance (); Buffer.add_char buf '\r'
           | 't' -> advance (); Buffer.add_char buf '\t'
           | 'u' ->
               advance ();
               let cp = hex4 () in
               (* surrogate pair *)
               if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                  && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   utf8_encode buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                 else begin
                   utf8_encode buf cp;
                   utf8_encode buf lo
                 end
               end
               else utf8_encode buf cp
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '+' | '-' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let entry () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ entry () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := entry () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Malformed (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* Round-tripping through %.*g decimal keeps [digits] significant digits
   and drops the trailing binary noise a raw double prints with. Shared by
   every JSON emitter that writes measured floats (bench rows, recorder
   events): 9 digits is far below clock resolution but enough that diffs
   of regenerated files stay readable. *)
let round_sig digits x =
  if x = 0.0 || not (Float.is_finite x) then x
  else float_of_string (Printf.sprintf "%.*g" digits x)
