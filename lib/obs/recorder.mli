(** Solver flight recorder: a process-wide, ring-buffered event stream.

    Disabled by default; every emitter below is a single bool check when
    off, so instrumented solvers cost nothing unless a run asked for
    [--record]. When on, events carry seconds-since-{!start} timestamps
    from the monotonic clock and are kept in a fixed-size ring — a long
    solve can evict old events (see {!dropped}) but never grows memory.

    The recorder only observes (metric counters, [Gc.quick_stat]); it
    cannot perturb solver decisions, so output is bit-identical with and
    without recording.

    Event kinds emitted by the instrumented solvers:
    - [incumbent] / [lower_bound] — convergence updates with [src]
      ("driver", "ilp", "bnb"), a per-source [solve] ordinal, and the
      bound [value]; the gap-over-time trace.
    - [phase_start] / [phase_end] — paired by [id], tagged with the
      domain. [phase_end] adds [dur_s], [Gc.quick_stat] deltas
      ([gc_minor_words], [gc_promoted_words], [gc_major_words],
      [gc_minor_collections], [gc_major_collections]) and watched-counter
      deltas (pivots, nodes, augment steps, ...), zeros omitted.
    - [sample] — periodic absolute counter snapshot from deadline
      checkpoints the solvers already visit ([site], [checks], counters).

    Serialized as JSONL: one meta header line
    [{"ev":"meta","format":"ccs-recorder",...}], then one event object per
    line with floats rounded to 9 significant digits. *)

type event = { t_s : float; kind : string; fields : (string * Jsonx.t) list }

(** Enable recording into a fresh ring ([capacity] events, default 65536)
    and reset the clock epoch. Raises [Invalid_argument] on a
    non-positive capacity. *)
val start : ?capacity:int -> unit -> unit

(** Disable and discard the buffer (also turns the progress ticker off). *)
val stop : unit -> unit

val active : unit -> bool

(** Toggle the stderr progress ticker: at most one line per 100 ms
    showing current phase, relative gap, and elapsed (plus the deadline
    when {!set_deadline_ns} was called). *)
val set_progress : bool -> unit

(** Absolute monotonic deadline ([Ccs_util.Mono.now_ns] scale) shown by
    the ticker as [elapsed/budget]. *)
val set_deadline_ns : int -> unit

(** Append an arbitrary event (no-op when inactive). *)
val emit : string -> (string * Jsonx.t) list -> unit

(** Convergence updates. [src] identifies the emitter; [solve] is that
    source's solve ordinal, so traces from repeated sub-solves (many ILP
    calls per PTAS guess) can be grouped before asserting monotonicity. *)
val incumbent : src:string -> solve:int -> float -> unit

val lower_bound : src:string -> solve:int -> float -> unit

(** [phase name f] runs [f] between a [phase_start]/[phase_end] pair
    carrying GC and watched-counter deltas. Exceptions propagate (the
    [phase_end] is still emitted, flagged [raised]). When the recorder is
    off this is exactly [f ()]. *)
val phase : string -> (unit -> 'a) -> 'a

(** Checkpoint hook (called by [Ccs_resil.Deadline.check]): amortized —
    one [sample] event per 1024 calls per domain. *)
val sample : site:string -> checks:int -> unit

(** Buffered events, oldest first. *)
val events : unit -> event list

(** Events evicted by ring wrap-around since {!start}. *)
val dropped : unit -> int

val to_jsonl : unit -> string
val write_jsonl : string -> unit
