(** Process-wide metrics registry: named counters, gauges and histograms.

    Handles are obtained once (typically at module initialization) and
    updated with plain mutable-field writes, so the hot-path cost of an
    increment is a couple of nanoseconds — no hashtable lookup, no
    allocation. [dump_table]/[dump_json] render the whole registry;
    [reset] zeroes every value but keeps the handles valid, which is what
    the bench harness does between runs. *)

type counter
type gauge
type histogram

(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit

(** [None] until the first [set_gauge]. *)
val gauge_value : gauge -> float option

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

(** Nearest-rank percentile over the recorded samples (defers to
    {!Ccs_util.Stats.percentile}); raises [Invalid_argument] when empty. *)
val histogram_percentile : histogram -> float -> float

val histogram_mean : histogram -> float
val histogram_max : histogram -> float

(** Zero all counters, unset all gauges, clear all histogram samples.
    Registrations (and outstanding handles) survive. *)
val reset : unit -> unit

(** Plain-text table (via {!Ccs_util.Tables}) of every registered metric,
    sorted by name: columns metric / kind / value / p50 / p95 / max. *)
val dump_table : unit -> string

(** One object keyed by metric name; counters as ints, gauges as floats
    (or null), histograms as
    [{"count":..,"mean":..,"p50":..,"p95":..,"max":..}]. *)
val dump_json : unit -> Jsonx.t

(** [(name, value)] pairs as in {!dump_json}. With [~all:false] (default)
    only metrics that saw activity — nonzero counters, set gauges,
    non-empty histograms — are included. *)
val snapshot : ?all:bool -> unit -> (string * Jsonx.t) list
