(** Process-wide metrics registry: named counters, gauges and histograms.

    Handles are obtained once (typically at module initialization) and
    updated with plain mutable-field writes, so the hot-path cost of an
    increment is a couple of nanoseconds — no hashtable lookup, no
    allocation. [dump_table]/[dump_json] render the whole registry;
    [reset] zeroes every value but keeps the handles valid, which is what
    the bench harness does between runs.

    {2 Naming convention (enforced at registration, documented in DESIGN.md)}

    A metric name is dot-separated segments, each matching
    [[a-z][a-z0-9_]*]. If the name measures a dimensioned quantity it must
    end in a canonical unit suffix — one of [_s], [_ms], [_words],
    [_bytes], [_ratio] — and the common aliases ([_us], [_msec], [_secs],
    [_kb], [_pct], ...) are rejected with [Invalid_argument] so there is
    exactly one spelling per unit. Dimensionless counts carry no suffix. *)

type counter
type gauge
type histogram

(** Fixed-bucket histogram over log-spaced bounds (1 / 2.5 / 5 per decade,
    [1e-6 .. 5e6]): O(1) memory per metric regardless of sample count,
    unlike {!histogram} which retains raw samples for exact percentiles.
    Use for unbounded-volume observations (per-rung latencies, per-node
    times); use {!histogram} when the sample count is small and exact
    quantiles matter. *)
type log_histogram

(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different kind, or (on first registration) if [name]
    violates the naming convention above. [?help] is kept for the
    OpenMetrics [# HELP] line; the first registration wins. *)
val counter : ?help:string -> string -> counter

val gauge : ?help:string -> string -> gauge
val histogram : ?help:string -> string -> histogram
val log_histogram : ?help:string -> string -> log_histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit

(** [None] until the first [set_gauge]. *)
val gauge_value : gauge -> float option

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

(** Nearest-rank percentile over the recorded samples (defers to
    {!Ccs_util.Stats.percentile}); raises [Invalid_argument] when empty. *)
val histogram_percentile : histogram -> float -> float

val histogram_mean : histogram -> float
val histogram_max : histogram -> float

val observe_log : log_histogram -> float -> unit
val log_histogram_count : log_histogram -> int
val log_histogram_sum : log_histogram -> float

(** [nan] when empty. *)
val log_histogram_max : log_histogram -> float

(** Upper estimate of the [p]-th percentile: the smallest bucket bound
    whose cumulative count reaches [p]% (clamped to the observed max).
    Exact up to bucket granularity; [nan] when empty. *)
val log_histogram_quantile : log_histogram -> float -> float

(** The shared bucket upper bounds, exposed for the exposition tests. *)
val log_bounds : float array

(** Zero all counters, unset all gauges, clear all histogram samples.
    Registrations (and outstanding handles) survive. *)
val reset : unit -> unit

(** Plain-text table (via {!Ccs_util.Tables}) of every registered metric,
    sorted by name: columns metric / kind / value / p50 / p95 / max. *)
val dump_table : unit -> string

(** One object keyed by metric name; counters as ints, gauges as floats
    (or null), histograms as
    [{"count":..,"mean":..,"p50":..,"p95":..,"max":..}]. *)
val dump_json : unit -> Jsonx.t

(** [(name, value)] pairs as in {!dump_json}. With [~all:false] (default)
    only metrics that saw activity — nonzero counters, set gauges,
    non-empty histograms — are included. *)
val snapshot : ?all:bool -> unit -> (string * Jsonx.t) list

(** OpenMetrics text exposition of the whole registry, terminated by
    [# EOF]. Dotted names become underscore names under a [ccs_]
    namespace ([lp.pivots] → [ccs_lp_pivots]); counters expose a
    [_total] sample; both histogram kinds expose cumulative [le] buckets
    over {!log_bounds} plus [+Inf], [_count] and [_sum]; never-set gauges
    are omitted. Ready for ROADMAP item 3's [/metrics] endpoint. *)
val to_openmetrics : unit -> string

(** Write {!to_openmetrics} to [path] (the [--metrics-out] backend). *)
val write_openmetrics : string -> unit
