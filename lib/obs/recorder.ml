(* Flight recorder: a process-wide, ring-buffered event stream every solver
   emits into. Disabled by default — each emitter checks one bool, so the
   solvers pay nothing unless a CLI run asked for [--record]. When enabled,
   events carry seconds-since-start timestamps from the monotonic clock
   ([Ccs_util.Mono]), and the ring bounds memory: a runaway solve can drop
   old events (counted in [dropped ()]) but can never OOM the process.

   The recorder observes, it never steers: it reads metric counters and
   [Gc.quick_stat], and writes only to its own buffer (and stderr for the
   progress ticker), so enabling it cannot perturb solver decisions —
   output stays bit-identical with and without [--record]. *)

type event = { t_s : float; kind : string; fields : (string * Jsonx.t) list }

type state = {
  ring : event option array;
  mutable next : int;      (* write cursor, wraps *)
  mutable count : int;     (* total events written (not dropped) *)
  mutable dropped : int;
  epoch_ns : int;
  mutable deadline_ns : int option;  (* absolute mono reading, for the ticker *)
  (* progress-ticker state *)
  mutable cur_phase : string;
  mutable cur_ub : float option;
  mutable cur_lb : float option;
  mutable last_tick_ns : int;
}

let st : state option ref = ref None
let enabled = ref false  (* mirrors [!st <> None]; single hot-path read *)
let progress = ref false
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let default_capacity = 65536

let start ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.start: capacity must be positive";
  locked @@ fun () ->
  st :=
    Some
      { ring = Array.make capacity None;
        next = 0;
        count = 0;
        dropped = 0;
        epoch_ns = Ccs_util.Mono.now_ns ();
        deadline_ns = None;
        cur_phase = "-";
        cur_ub = None;
        cur_lb = None;
        last_tick_ns = 0 };
  enabled := true

let stop () =
  locked @@ fun () ->
  enabled := false;
  progress := false;
  st := None

let active () = !enabled
let set_progress b = progress := b

let set_deadline_ns ns =
  locked @@ fun () -> match !st with None -> () | Some s -> s.deadline_ns <- Some ns

(* ---------------- watched counters ---------------- *)

(* Work-attribution counters sampled at checkpoint boundaries and diffed
   across phases. [Metrics.counter] is find-or-create, so resolving them
   here just shares the handle the owning module registers (or creates it
   first if the recorder wins the race — same handle either way). *)
let watched =
  lazy
    (List.map
       (fun name -> (name, Metrics.counter name))
       [ "lp.pivots"; "lp.phase1_iterations"; "ilp.nodes"; "bnb.nodes";
         "nfold.augmentation_steps"; "nfold.kernel_candidates";
         "ptas.guesses"; "ptas.ilp_calls"; "border_search.probes";
         "resil.cancel_checks" ])

let counter_values () =
  List.map (fun (n, c) -> (n, Metrics.counter_value c)) (Lazy.force watched)

(* ---------------- emission ---------------- *)

(* must hold [mu] *)
let push_locked s kind fields =
  let t_s = float_of_int (Ccs_util.Mono.now_ns () - s.epoch_ns) /. 1e9 in
  let ev = { t_s; kind; fields } in
  if s.ring.(s.next) <> None then s.dropped <- s.dropped + 1;
  s.ring.(s.next) <- Some ev;
  s.next <- (s.next + 1) mod Array.length s.ring;
  s.count <- s.count + 1

let tick_min_interval_ns = 100_000_000 (* 0.1 s between progress lines *)

(* must hold [mu]; stderr ticker for long solves *)
let maybe_tick_locked s =
  if !progress then begin
    let now = Ccs_util.Mono.now_ns () in
    if now - s.last_tick_ns >= tick_min_interval_ns then begin
      s.last_tick_ns <- now;
      let elapsed = float_of_int (now - s.epoch_ns) /. 1e9 in
      let gap =
        match (s.cur_ub, s.cur_lb) with
        | Some ub, Some lb when lb > 0.0 -> Printf.sprintf "%.4f" ((ub -. lb) /. lb)
        | Some _, _ | _, Some _ -> "?"
        | None, None -> "-"
      in
      let deadline =
        match s.deadline_ns with
        | None -> ""
        | Some d ->
            Printf.sprintf "/%.1fs" (float_of_int (d - s.epoch_ns) /. 1e9)
      in
      Printf.eprintf "[ccs] phase=%s gap=%s elapsed=%.1fs%s\n%!" s.cur_phase gap
        elapsed deadline
    end
  end

let emit kind fields =
  if !enabled then
    locked @@ fun () ->
    match !st with None -> () | Some s -> push_locked s kind fields

(* ---------------- convergence events ---------------- *)

let bound_event kind ~src ~solve v =
  if !enabled then
    locked @@ fun () ->
    match !st with
    | None -> ()
    | Some s ->
        (match kind with
        | "incumbent" when src = "driver" -> s.cur_ub <- Some v
        | "lower_bound" when src = "driver" -> s.cur_lb <- Some v
        | _ -> ());
        push_locked s kind
          [ ("src", Jsonx.Str src); ("solve", Jsonx.Int solve);
            ("value", Jsonx.Float v) ];
        maybe_tick_locked s

let incumbent ~src ~solve v = bound_event "incumbent" ~src ~solve v
let lower_bound ~src ~solve v = bound_event "lower_bound" ~src ~solve v

(* ---------------- phases with GC + counter attribution ---------------- *)

let phase_ids = Atomic.make 0

let gc_fields pre post =
  let f name v = if v <> 0.0 then [ (name, Jsonx.Float v) ] else [] in
  let i name v = if v <> 0 then [ (name, Jsonx.Int v) ] else [] in
  let open Gc in
  f "gc_minor_words" (post.minor_words -. pre.minor_words)
  @ f "gc_promoted_words" (post.promoted_words -. pre.promoted_words)
  @ f "gc_major_words" (post.major_words -. pre.major_words)
  @ i "gc_minor_collections" (post.minor_collections - pre.minor_collections)
  @ i "gc_major_collections" (post.major_collections - pre.major_collections)

let counter_fields pre post =
  List.concat_map
    (fun ((n, v1), (_, v0)) ->
      if v1 <> v0 then [ (n, Jsonx.Int (v1 - v0)) ] else [])
    (List.combine post pre)

let phase name f =
  if not !enabled then f ()
  else begin
    let id = Atomic.fetch_and_add phase_ids 1 in
    let dom = (Domain.self () :> int) in
    let prev_phase = ref "-" in
    let t0 = Ccs_util.Mono.now_ns () in
    (locked @@ fun () ->
     match !st with
     | None -> ()
     | Some s ->
         prev_phase := s.cur_phase;
         s.cur_phase <- name;
         push_locked s "phase_start"
           [ ("phase", Jsonx.Str name); ("id", Jsonx.Int id); ("dom", Jsonx.Int dom) ]);
    let pre_gc = Gc.quick_stat () in
    let pre_counters = counter_values () in
    let finish ok =
      let post_counters = counter_values () in
      let post_gc = Gc.quick_stat () in
      let dur_s = float_of_int (Ccs_util.Mono.now_ns () - t0) /. 1e9 in
      locked @@ fun () ->
      match !st with
      | None -> ()
      | Some s ->
          s.cur_phase <- !prev_phase;
          push_locked s "phase_end"
            ([ ("phase", Jsonx.Str name); ("id", Jsonx.Int id);
               ("dom", Jsonx.Int dom); ("dur_s", Jsonx.Float dur_s) ]
            @ (if ok then [] else [ ("raised", Jsonx.Bool true) ])
            @ gc_fields pre_gc post_gc
            @ counter_fields pre_counters post_counters);
          maybe_tick_locked s
    in
    match f () with
    | v ->
        finish true;
        v
    | exception e ->
        finish false;
        raise e
  end

(* ---------------- checkpoint sampling ---------------- *)

(* Called from [Ccs_resil.Deadline.check]: piggybacks on checkpoints the
   solvers already visit, so work attribution needs no new instrumentation
   sites. Amortized per domain — one sample event per [sample_every]
   checks — to keep the checkpoint hot path at a DLS increment. *)
let sample_every = 1024
let sample_tick : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let sample ~site ~checks =
  if !enabled then begin
    let tick = Domain.DLS.get sample_tick in
    tick := !tick + 1;
    if !tick mod sample_every = 0 then
      locked @@ fun () ->
      match !st with
      | None -> ()
      | Some s ->
          push_locked s "sample"
            (("site", Jsonx.Str site)
             :: ("checks", Jsonx.Int checks)
             :: List.map (fun (n, v) -> (n, Jsonx.Int v)) (counter_values ()));
          maybe_tick_locked s
  end

(* ---------------- draining ---------------- *)

let events () =
  locked @@ fun () ->
  match !st with
  | None -> []
  | Some s ->
      let cap = Array.length s.ring in
      let n = min s.count cap in
      let first = if s.count <= cap then 0 else s.next in
      List.init n (fun i ->
          match s.ring.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false)

let dropped () =
  locked @@ fun () -> match !st with None -> 0 | Some s -> s.dropped

let event_json e =
  Jsonx.Obj
    (("t_s", Jsonx.Float (Jsonx.round_sig 9 e.t_s))
    :: ("ev", Jsonx.Str e.kind)
    :: List.map
         (fun (k, v) ->
           match v with
           | Jsonx.Float f -> (k, Jsonx.Float (Jsonx.round_sig 9 f))
           | v -> (k, v))
         e.fields)

let to_jsonl () =
  let evs = events () in
  let drp = dropped () in
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Jsonx.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Jsonx.Obj
       [ ("ev", Jsonx.Str "meta"); ("format", Jsonx.Str "ccs-recorder");
         ("version", Jsonx.Int 1); ("events", Jsonx.Int (List.length evs));
         ("dropped", Jsonx.Int drp) ]);
  List.iter (fun e -> line (event_json e)) evs;
  Buffer.contents buf

let write_jsonl path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_jsonl ()))
