(** Minimal JSON values for the observability layer: enough to emit JSONL
    log lines, Chrome trace events and metric dumps, and to parse them back
    in the test-suite. Kept dependency-free on purpose — the sealed
    environment has no JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. Strings are escaped per RFC 8259;
    non-finite floats become [null] (JSON has no representation for them). *)
val to_string : t -> string

(** Strict-enough parser for everything {!to_string} emits plus ordinary
    hand-written JSON. Returns [Error msg] with a position on malformed
    input. *)
val of_string : string -> (t, string) result

(** [member key j] looks up [key] in an [Obj], [None] otherwise. *)
val member : string -> t -> t option

(** [round_sig d x] rounds [x] to [d] significant decimal digits (identity
    on zero and non-finite values). Every emitter of measured floats —
    bench rows ([Bench_util.round9]), recorder events — goes through this
    so JSON files carry [1.20789991e-05], not 12 digits of clock noise. *)
val round_sig : int -> float -> float
