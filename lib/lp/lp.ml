module Q = Rat

type cmp = Le | Ge | Eq

type constr = { coeffs : (int * Q.t) list; cmp : cmp; rhs : Q.t }

type problem = {
  nvars : int;
  objective : Q.t array;
  constraints : constr list;
  lower : Q.t option array;
  upper : Q.t option array;
}

type stats = {
  phase1_iterations : int;
  phase2_iterations : int;
  pivots : int;
  bland_switched : bool;
}

type result =
  | Optimal of { objective : Q.t; solution : Q.t array; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

(* Registry handles created once; per-solve updates are plain field writes. *)
let m_solves = Ccs_obs.Metrics.counter "lp.solves"
let m_pivots = Ccs_obs.Metrics.counter "lp.pivots"
let m_phase1 = Ccs_obs.Metrics.counter "lp.phase1_iterations"
let m_phase2 = Ccs_obs.Metrics.counter "lp.phase2_iterations"
let m_bland = Ccs_obs.Metrics.counter "lp.bland_switches"
let m_infeasible = Ccs_obs.Metrics.counter "lp.infeasible"
let m_unbounded = Ccs_obs.Metrics.counter "lp.unbounded"

let problem ?lower ?upper ~nvars ~objective constraints =
  let lower = match lower with Some l -> l | None -> Array.make nvars (Some Q.zero) in
  let upper = match upper with Some u -> u | None -> Array.make nvars None in
  if Array.length objective <> nvars || Array.length lower <> nvars || Array.length upper <> nvars
  then invalid_arg "Lp.problem: arity mismatch";
  { nvars; objective; constraints; lower; upper }

let constr coeffs cmp rhs = { coeffs; cmp; rhs }

let feasible p x =
  if Array.length x <> p.nvars then false
  else begin
    let bounds_ok = ref true in
    Array.iteri
      (fun j v ->
        (match p.lower.(j) with Some l when Q.(v < l) -> bounds_ok := false | _ -> ());
        match p.upper.(j) with Some u when Q.(v > u) -> bounds_ok := false | _ -> ())
      x;
    !bounds_ok
    && List.for_all
         (fun c ->
           let lhs =
             List.fold_left (fun acc (j, a) -> Q.add acc (Q.mul a x.(j))) Q.zero c.coeffs
           in
           match c.cmp with
           | Le -> Q.(lhs <= c.rhs)
           | Ge -> Q.(lhs >= c.rhs)
           | Eq -> Q.(lhs = c.rhs))
         p.constraints
  end

(* ------------------------------------------------------------------ *)
(* Core tableau simplex on: min c x  s.t.  A x = b,  x >= 0,  b >= 0.
   [n_real] marks the prefix of columns allowed to enter during phase 2
   (artificial columns beyond it are frozen). *)

type tableau = {
  a : Q.t array array;  (* m x n *)
  b : Q.t array;        (* m, kept >= 0 *)
  cost : Q.t array;     (* reduced costs, length n *)
  mutable obj : Q.t;    (* current objective value *)
  basis : int array;    (* m: variable basic in each row *)
}

let pivot t row col =
  let m = Array.length t.a and n = Array.length t.cost in
  let piv = t.a.(row).(col) in
  let arow = t.a.(row) in
  if not (Q.equal piv Q.one) then begin
    let inv = Q.inv piv in
    for j = 0 to n - 1 do
      arow.(j) <- Q.mul arow.(j) inv
    done;
    t.b.(row) <- Q.mul t.b.(row) inv
  end;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if not (Q.is_zero f) then begin
        let irow = t.a.(i) in
        for j = 0 to n - 1 do
          if not (Q.is_zero arow.(j)) then irow.(j) <- Q.sub irow.(j) (Q.mul f arow.(j))
        done;
        t.b.(i) <- Q.sub t.b.(i) (Q.mul f t.b.(row))
      end
    end
  done;
  let f = t.cost.(col) in
  if not (Q.is_zero f) then begin
    for j = 0 to n - 1 do
      if not (Q.is_zero arow.(j)) then t.cost.(j) <- Q.sub t.cost.(j) (Q.mul f arow.(j))
    done;
    t.obj <- Q.sub t.obj (Q.mul f t.b.(row))
  end;
  t.basis.(row) <- col

(* One phase's worth of simplex effort, reported back to [solve]. *)
type phase_stats = { iters : int; pivs : int; bland : bool }

(* Dantzig rule for speed, switching to Bland's rule (which provably cannot
   cycle) after a grace period proportional to the tableau size. *)
let run_simplex t ~n_enter =
  let m = Array.length t.a in
  let iterations = ref 0 in
  let pivots = ref 0 in
  let bland_after = 50 * (m + n_enter) in
  let rec loop () =
    incr iterations;
    let bland = !iterations > bland_after in
    (* entering column *)
    let enter = ref (-1) in
    let best = ref Q.zero in
    (try
       for j = 0 to n_enter - 1 do
         if Q.sign t.cost.(j) < 0 then
           if bland then begin
             enter := j;
             raise Exit
           end
           else if Q.(t.cost.(j) < !best) then begin
             best := t.cost.(j);
             enter := j
           end
       done
     with Exit -> ());
    if !enter < 0 then `Optimal
    else begin
      let col = !enter in
      (* ratio test; ties broken by smallest basis variable (Bland) *)
      let row = ref (-1) in
      let best_ratio = ref Q.zero in
      for i = 0 to m - 1 do
        if Q.sign t.a.(i).(col) > 0 then begin
          let ratio = Q.div t.b.(i) t.a.(i).(col) in
          if !row < 0 || Q.(ratio < !best_ratio)
             || (Q.(ratio = !best_ratio) && t.basis.(i) < t.basis.(!row))
          then begin
            row := i;
            best_ratio := ratio
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot t !row col;
        incr pivots;
        loop ()
      end
    end
  in
  let status = loop () in
  (status, { iters = !iterations; pivs = !pivots; bland = !iterations > bland_after })

(* ------------------------------------------------------------------ *)
(* Conversion from the user-facing form to standard form.

   Variable j is translated to non-negative internal variables:
   - finite lower bound l: x = l + x'                       (1 column)
   - no lower bound:       x = x+ - x-                      (2 columns)
   Finite upper bounds become <= rows on the internal variables. *)

let solve p =
  let nv = p.nvars in
  (* column mapping: var j -> (positive column, optional negative column) *)
  let col_of = Array.make nv (0, None) in
  let next = ref 0 in
  let shift = Array.make nv Q.zero in
  for j = 0 to nv - 1 do
    match p.lower.(j) with
    | Some l ->
        shift.(j) <- l;
        col_of.(j) <- (!next, None);
        incr next
    | None ->
        col_of.(j) <- (!next, Some (!next + 1));
        next := !next + 2
  done;
  let n_struct = !next in
  (* Gather rows: user constraints with shifted rhs, plus upper-bound rows. *)
  let rows = ref [] in
  let add_row coeffs cmp rhs = rows := (coeffs, cmp, rhs) :: !rows in
  List.iter
    (fun c ->
      let rhs =
        List.fold_left (fun acc (j, a) -> Q.sub acc (Q.mul a shift.(j))) c.rhs c.coeffs
      in
      let coeffs =
        List.concat_map
          (fun (j, a) ->
            if Q.is_zero a then []
            else
              let pos, negc = col_of.(j) in
              match negc with
              | None -> [ (pos, a) ]
              | Some ncol -> [ (pos, a); (ncol, Q.neg a) ])
          c.coeffs
      in
      add_row coeffs c.cmp rhs)
    p.constraints;
  for j = 0 to nv - 1 do
    match p.upper.(j) with
    | None -> ()
    | Some u -> (
        (* An empty box (u < l) simply yields an unsatisfiable row, which
           phase 1 reports as Infeasible. *)
        let rhs = Q.sub u shift.(j) in
        let pos, negc = col_of.(j) in
        match negc with
        | None -> add_row [ (pos, Q.one) ] Le rhs
        | Some ncol -> add_row [ (pos, Q.one); (ncol, Q.minus_one) ] Le rhs)
  done;
  let rows = List.rev !rows in
  let m = List.length rows in
  (* Slack columns for Le/Ge rows. *)
  let n_slack =
    List.fold_left (fun acc (_, cmp, _) -> if cmp = Eq then acc else acc + 1) 0 rows
  in
  let n_total = n_struct + n_slack + m in
  (* artificials: one per row *)
  let a = Array.init m (fun _ -> Array.make n_total Q.zero) in
  let b = Array.make m Q.zero in
  let basis = Array.make m 0 in
  let slack_cursor = ref n_struct in
  List.iteri
    (fun i (coeffs, cmp, rhs) ->
      List.iter (fun (j, v) -> a.(i).(j) <- Q.add a.(i).(j) v) coeffs;
      b.(i) <- rhs;
      (match cmp with
      | Le ->
          a.(i).(!slack_cursor) <- Q.one;
          incr slack_cursor
      | Ge ->
          a.(i).(!slack_cursor) <- Q.minus_one;
          incr slack_cursor
      | Eq -> ());
      (* normalize rhs >= 0 *)
      if Q.sign b.(i) < 0 then begin
        for j = 0 to n_total - 1 do
          a.(i).(j) <- Q.neg a.(i).(j)
        done;
        b.(i) <- Q.neg b.(i)
      end;
      (* artificial for this row *)
      let art = n_struct + n_slack + i in
      a.(i).(art) <- Q.one;
      basis.(i) <- art)
    rows;
  (* ---- phase 1: minimize sum of artificials ---- *)
  let cost = Array.make n_total Q.zero in
  for i = 0 to m - 1 do
    cost.(n_struct + n_slack + i) <- Q.one
  done;
  let t = { a; b; cost; obj = Q.zero; basis } in
  (* price out the artificial basis *)
  for i = 0 to m - 1 do
    for j = 0 to n_total - 1 do
      t.cost.(j) <- Q.sub t.cost.(j) t.a.(i).(j)
    done;
    t.obj <- Q.sub t.obj t.b.(i)
  done;
  let p1 =
    match run_simplex t ~n_enter:n_total with
    | `Unbounded, _ -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal, ps -> ps
  in
  let record ~p1 ~p2 ~extra_pivots ~outcome =
    let stats =
      {
        phase1_iterations = p1.iters;
        phase2_iterations = p2.iters;
        pivots = p1.pivs + p2.pivs + extra_pivots;
        bland_switched = p1.bland || p2.bland;
      }
    in
    Ccs_obs.Metrics.incr m_solves;
    Ccs_obs.Metrics.add m_phase1 stats.phase1_iterations;
    Ccs_obs.Metrics.add m_phase2 stats.phase2_iterations;
    Ccs_obs.Metrics.add m_pivots stats.pivots;
    if stats.bland_switched then Ccs_obs.Metrics.incr m_bland;
    (match outcome with
    | `Infeasible -> Ccs_obs.Metrics.incr m_infeasible
    | `Unbounded -> Ccs_obs.Metrics.incr m_unbounded
    | `Optimal -> ());
    Ccs_obs.Log.trace (fun log ->
        log
          ~fields:
            [
              Ccs_obs.Log.int "rows" m;
              Ccs_obs.Log.int "cols" n_total;
              Ccs_obs.Log.int "pivots" stats.pivots;
              Ccs_obs.Log.str "outcome"
                (match outcome with
                | `Infeasible -> "infeasible"
                | `Unbounded -> "unbounded"
                | `Optimal -> "optimal");
            ]
          "lp.solve");
    stats
  in
  let no_phase2 = { iters = 0; pivs = 0; bland = false } in
  if Q.sign t.obj < 0 then
    Infeasible (record ~p1 ~p2:no_phase2 ~extra_pivots:0 ~outcome:`Infeasible)
  else begin
    (* Drive remaining artificials (basic at zero) out of the basis where
       possible; rows where it is not possible are redundant. *)
    let driveout = ref 0 in
    for i = 0 to m - 1 do
      if t.basis.(i) >= n_struct + n_slack then begin
        let j = ref 0 in
        let found = ref (-1) in
        while !found < 0 && !j < n_struct + n_slack do
          if not (Q.is_zero t.a.(i).(!j)) then found := !j;
          incr j
        done;
        if !found >= 0 then begin
          pivot t i !found;
          incr driveout
        end
      end
    done;
    (* ---- phase 2 ---- *)
    Array.fill t.cost 0 n_total Q.zero;
    t.obj <- Q.zero;
    for jv = 0 to nv - 1 do
      let c = p.objective.(jv) in
      if not (Q.is_zero c) then begin
        let pos, negc = col_of.(jv) in
        t.cost.(pos) <- Q.add t.cost.(pos) c;
        (match negc with
        | Some ncol -> t.cost.(ncol) <- Q.sub t.cost.(ncol) c
        | None -> ());
        (* constant from the shift *)
        t.obj <- Q.sub t.obj (Q.mul c shift.(jv))
      end
    done;
    (* price out the current basis *)
    for i = 0 to m - 1 do
      let bj = t.basis.(i) in
      let f = t.cost.(bj) in
      if not (Q.is_zero f) then begin
        for j = 0 to n_total - 1 do
          if not (Q.is_zero t.a.(i).(j)) then t.cost.(j) <- Q.sub t.cost.(j) (Q.mul f t.a.(i).(j))
        done;
        t.obj <- Q.sub t.obj (Q.mul f t.b.(i))
      end
    done;
    match run_simplex t ~n_enter:(n_struct + n_slack) with
    | `Unbounded, p2 ->
        Unbounded (record ~p1 ~p2 ~extra_pivots:!driveout ~outcome:`Unbounded)
    | `Optimal, p2 ->
        let internal = Array.make n_total Q.zero in
        for i = 0 to m - 1 do
          internal.(t.basis.(i)) <- t.b.(i)
        done;
        let x = Array.make nv Q.zero in
        for jv = 0 to nv - 1 do
          let pos, negc = col_of.(jv) in
          let v = match negc with
            | None -> internal.(pos)
            | Some ncol -> Q.sub internal.(pos) internal.(ncol)
          in
          x.(jv) <- Q.add v shift.(jv)
        done;
        (* t.obj tracks -(objective); reconstruct directly for clarity. *)
        let value =
          Array.to_list x
          |> List.mapi (fun j v -> Q.mul p.objective.(j) v)
          |> List.fold_left Q.add Q.zero
        in
        let stats = record ~p1 ~p2 ~extra_pivots:!driveout ~outcome:`Optimal in
        Optimal { objective = value; solution = x; stats }
  end
