module Q = Rat

(* Cooperative cancellation: one checkpoint per simplex iteration (pricing
   pass or repair pivot). Cancellation unwinds before the pivot mutates the
   eta file, so an exported basis is never half-updated. *)
(* Not a hot site: a revised-simplex pivot does O(m^2) exact-rational work,
   so a clock read per pivot is noise — and amortizing it left the solver
   blind for up to 63 pivots, seconds on bases with blown-up numerators. *)
let chk_pivot = Ccs_resil.Deadline.site "lp.pivot"

type cmp = Le | Ge | Eq

type constr = { coeffs : (int * Q.t) list; cmp : cmp; rhs : Q.t }

type problem = {
  nvars : int;
  objective : Q.t array;
  constraints : constr list;
  lower : Q.t option array;
  upper : Q.t option array;
}

type stats = {
  phase1_iterations : int;
  phase2_iterations : int;
  pivots : int;
  bland_switched : bool;
  pricing_switches : int;
  basis_refactorizations : int;
  warm_started : bool;
}

(* A basis is valid for any LP of the same internal shape: same row count
   and same column layout (structural/slack/artificial partition). Bound
   and rhs values may differ — the importer recomputes the basic solution
   and falls back to a cold start if it is not primal feasible. *)
type basis = {
  b_rows : int;
  b_struct : int;
  b_slack : int;
  b_total : int;
  b_basic : int array;  (* column basic in each row *)
  b_upper : int array;  (* nonbasic columns sitting at their upper bound *)
}

type result =
  | Optimal of { objective : Q.t; solution : Q.t array; stats : stats; basis : basis }
  | Infeasible of stats
  | Unbounded of stats

(* Registry handles created once; per-solve updates are plain field writes. *)
let m_solves = Ccs_obs.Metrics.counter "lp.solves"
let m_pivots = Ccs_obs.Metrics.counter "lp.pivots"
let m_phase1 = Ccs_obs.Metrics.counter "lp.phase1_iterations"
let m_phase2 = Ccs_obs.Metrics.counter "lp.phase2_iterations"
let m_bland = Ccs_obs.Metrics.counter "lp.bland_switches"
let m_infeasible = Ccs_obs.Metrics.counter "lp.infeasible"
let m_unbounded = Ccs_obs.Metrics.counter "lp.unbounded"
let m_refactor = Ccs_obs.Metrics.counter "lp.basis_refactorizations"
let m_pricing_switches = Ccs_obs.Metrics.counter "lp.pricing_switches"
let m_warm = Ccs_obs.Metrics.counter "lp.warm_starts"
let m_rat_hits = Ccs_obs.Metrics.counter "rat.small_hits"
let m_rat_promos = Ccs_obs.Metrics.counter "rat.promotions"

(* Rat keeps its own exact per-domain counters; bridge them into the metrics
   registry by publishing the delta since the last sync. The baseline refs
   are deliberately not tied to [Metrics.reset], so after a reset the
   counters accumulate deltas from that point on, as every other counter
   does. *)
let rat_sync_mu = Mutex.create ()
let rat_last_hits = ref 0
let rat_last_promos = ref 0

let sync_rat_counters () =
  let s = Q.stats () in
  Mutex.lock rat_sync_mu;
  let dh = s.Q.small_hits - !rat_last_hits in
  let dp = s.Q.promotions - !rat_last_promos in
  rat_last_hits := s.Q.small_hits;
  rat_last_promos := s.Q.promotions;
  Mutex.unlock rat_sync_mu;
  if dh > 0 then Ccs_obs.Metrics.add m_rat_hits dh;
  if dp > 0 then Ccs_obs.Metrics.add m_rat_promos dp

let problem ?lower ?upper ~nvars ~objective constraints =
  let lower = match lower with Some l -> l | None -> Array.make nvars (Some Q.zero) in
  let upper = match upper with Some u -> u | None -> Array.make nvars None in
  if Array.length objective <> nvars || Array.length lower <> nvars || Array.length upper <> nvars
  then invalid_arg "Lp.problem: arity mismatch";
  { nvars; objective; constraints; lower; upper }

let constr coeffs cmp rhs = { coeffs; cmp; rhs }

let feasible p x =
  if Array.length x <> p.nvars then false
  else begin
    let bounds_ok = ref true in
    Array.iteri
      (fun j v ->
        (match p.lower.(j) with Some l when Q.(v < l) -> bounds_ok := false | _ -> ());
        match p.upper.(j) with Some u when Q.(v > u) -> bounds_ok := false | _ -> ())
      x;
    !bounds_ok
    && List.for_all
         (fun c ->
           let lhs =
             List.fold_left (fun acc (j, a) -> Q.add acc (Q.mul a x.(j))) Q.zero c.coeffs
           in
           match c.cmp with
           | Le -> Q.(lhs <= c.rhs)
           | Ge -> Q.(lhs >= c.rhs)
           | Eq -> Q.(lhs = c.rhs))
         p.constraints
  end

(* ------------------------------------------------------------------ *)
(* Revised simplex core over: min c x  s.t.  A x = b,  0 <= x <= ub
   (ub componentwise optional), with sparse columns and a product-form-eta
   factorization of the basis. Upper bounds are implicit: a nonbasic
   variable rests at 0 or at its upper bound, never in an explicit row. *)

type status = Basic of int (* row *) | At_lower | At_upper

(* Basis change B' = B E, where E is the identity with column [er] replaced
   by the pivot column u: [epiv] = u_er, [ecol] the other nonzeros. *)
type eta = { er : int; epiv : Q.t; ecol : (int * Q.t) array }

let refactor_every = 64

type core = {
  m : int;
  n_struct : int;
  n_slack : int;
  n_total : int;
  n_enter : int;  (* columns allowed to price; artificials are beyond *)
  cols : (int * Q.t) array array;  (* sparse columns, rows ascending *)
  crash : int option array;  (* per row: slack usable as initial basic *)
  b : Q.t array;
  ub : Q.t option array;
  cost : Q.t array;  (* phase-dependent, length n_total *)
  status : status array;
  basis : int array;
  xb : Q.t array;
  etas : eta option array;  (* first [neta] slots in application order *)
  mutable neta : int;
  d : Q.t array;  (* reduced costs of the enterable columns *)
  w : float array;  (* Devex reference weights, enterable columns *)
  mutable iters : int;
  mutable pivots : int;
  mutable degen_streak : int;
  mutable bland_mode : bool;
  mutable bland_switched : bool;
  mutable pricing_switches : int;
  mutable refactorizations : int;
  bland_after : int;
}

exception Singular

let ftran core v =
  for k = 0 to core.neta - 1 do
    match core.etas.(k) with
    | None -> assert false
    | Some e ->
        if not (Q.is_zero v.(e.er)) then begin
          let pr = Q.div v.(e.er) e.epiv in
          Array.iter (fun (i, u) -> v.(i) <- Q.sub v.(i) (Q.mul u pr)) e.ecol;
          v.(e.er) <- pr
        end
  done

let btran core y =
  for k = core.neta - 1 downto 0 do
    match core.etas.(k) with
    | None -> assert false
    | Some e ->
        let s = ref y.(e.er) in
        Array.iter (fun (i, u) -> s := Q.sub !s (Q.mul u y.(i))) e.ecol;
        y.(e.er) <- Q.div !s e.epiv
  done

let col_dot y col =
  Array.fold_left (fun acc (i, a) -> Q.add acc (Q.mul a y.(i))) Q.zero col

let dense_col core j =
  let v = Array.make core.m Q.zero in
  Array.iter (fun (i, a) -> v.(i) <- a) core.cols.(j);
  v

(* x_B = B^{-1} (b - sum over at-upper columns of ub_j * a_j). *)
let recompute_xb core =
  let v = Array.copy core.b in
  for j = 0 to core.n_total - 1 do
    if core.status.(j) = At_upper then begin
      let u = match core.ub.(j) with Some u -> u | None -> assert false in
      if not (Q.is_zero u) then
        Array.iter (fun (i, a) -> v.(i) <- Q.sub v.(i) (Q.mul a u)) core.cols.(j)
    end
  done;
  ftran core v;
  Array.blit v 0 core.xb 0 core.m

(* Rebuild the eta file from scratch by re-pivoting the basis columns in
   row order; raises [Singular] if the column set is not a basis. Pivot
   rows are reassigned deterministically (smallest eligible index). *)
let refactor core =
  core.neta <- 0;
  let assigned = Array.make core.m false in
  let new_basis = Array.make core.m (-1) in
  Array.iter
    (fun j ->
      let v = dense_col core j in
      ftran core v;
      let r = ref (-1) in
      for i = core.m - 1 downto 0 do
        if (not assigned.(i)) && not (Q.is_zero v.(i)) then r := i
      done;
      if !r < 0 then raise Singular;
      let r = !r in
      assigned.(r) <- true;
      new_basis.(r) <- j;
      let others = ref [] in
      for i = core.m - 1 downto 0 do
        if i <> r && not (Q.is_zero v.(i)) then others := (i, v.(i)) :: !others
      done;
      core.etas.(core.neta) <- Some { er = r; epiv = v.(r); ecol = Array.of_list !others };
      core.neta <- core.neta + 1)
    (Array.copy core.basis);
  Array.blit new_basis 0 core.basis 0 core.m;
  Array.iteri (fun r j -> core.status.(j) <- Basic r) core.basis;
  core.refactorizations <- core.refactorizations + 1;
  recompute_xb core

(* Reduced costs d_j = c_j - y a_j with y = c_B B^{-1}, for enterable
   columns; Devex weights reset to the unit reference framework. *)
let compute_duals core =
  let y = Array.make core.m Q.zero in
  Array.iteri (fun r j -> y.(r) <- core.cost.(j)) core.basis;
  btran core y;
  for j = 0 to core.n_enter - 1 do
    (match core.status.(j) with
    | Basic _ -> core.d.(j) <- Q.zero
    | At_lower | At_upper -> core.d.(j) <- Q.sub core.cost.(j) (col_dot y core.cols.(j)));
    core.w.(j) <- 1.0
  done

(* Entering-column choice. Devex: maximize d_j^2 / w_j (float scores decide
   the order only; all arithmetic on the chosen column stays exact). Bland:
   smallest favorable index, which provably cannot cycle. *)
let price core =
  (* A fixed column (width-zero box, e.g. a variable pinned by branch &
     bound) can only ever take a zero-length flip step: it is excluded
     from pricing outright, both for speed and so its reduced-cost sign
     never blocks the optimality test. *)
  let fixed j =
    match core.ub.(j) with Some u -> Q.sign u = 0 | None -> false
  in
  let favorable j =
    if fixed j then false
    else
      match core.status.(j) with
      | At_lower -> Q.sign core.d.(j) < 0
      | At_upper -> Q.sign core.d.(j) > 0
      | Basic _ -> false
  in
  if core.bland_mode then begin
    let q = ref (-1) in
    (try
       for j = 0 to core.n_enter - 1 do
         if favorable j then begin
           q := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !q < 0 then None else Some !q
  end
  else begin
    let q = ref (-1) in
    let best = ref 0.0 in
    for j = 0 to core.n_enter - 1 do
      if favorable j then begin
        let df = Q.to_float core.d.(j) in
        let score = df *. df /. core.w.(j) in
        if score > !best then begin
          best := score;
          q := j
        end
      end
    done;
    if !q < 0 then None else Some !q
  end

(* Ratio test for entering column [q] moving by [theta >= 0] in direction
   [sigma] (+1 off its lower bound, -1 off its upper bound). *)
type step =
  | Step_unbounded
  | Step_flip of Q.t  (* q reaches its own opposite bound *)
  | Step_pivot of int * Q.t  (* leaving row, theta *)

let ratio_test core q sigma v =
  let best_theta = ref None in
  let best_row = ref (-1) in
  (* Tie-break among minimum-ratio rows. Under Devex pricing, prefer to
     drive an artificial out of the basis — phase 1 on degenerate
     configuration LPs otherwise stalls for long plateaus with artificials
     parked at zero (their column indices are the largest, so a plain
     smallest-index rule keeps them basic forever). In Bland mode the rule
     must stay pure smallest-index: that is what the anti-cycling proof
     relies on. *)
  let art_start = core.n_struct + core.n_slack in
  let prefer bi bj =
    if core.bland_mode then bi < bj
    else
      match (bi >= art_start, bj >= art_start) with
      | true, false -> true
      | false, true -> false
      | _ -> bi < bj
  in
  let consider i theta =
    let better =
      match !best_theta with
      | None -> true
      | Some t ->
          Q.(theta < t)
          || (Q.(theta = t)
             && !best_row >= 0
             && prefer core.basis.(i) core.basis.(!best_row))
    in
    if better then begin
      best_theta := Some theta;
      best_row := i
    end
  in
  for i = 0 to core.m - 1 do
    let vi = if sigma > 0 then v.(i) else Q.neg v.(i) in
    let s = Q.sign vi in
    if s > 0 then consider i (Q.div core.xb.(i) vi)
    else if s < 0 then begin
      match core.ub.(core.basis.(i)) with
      | Some u -> consider i (Q.div (Q.sub u core.xb.(i)) (Q.neg vi))
      | None -> ()
    end
  done;
  match (core.ub.(q), !best_theta) with
  | None, None -> Step_unbounded
  | Some u, None -> Step_flip u
  | Some u, Some t when Q.(u <= t) -> Step_flip u
  | _, Some t -> Step_pivot (!best_row, t)

(* Execute a basis change: update x_B, the eta file, reduced costs and
   Devex weights. [v] is B^{-1} a_q (FTRANed), [r] the leaving row. *)
let do_pivot core q sigma v r theta =
  let p = core.basis.(r) in
  let alpha_q = v.(r) in
  (* dual row: rho = e_r B^{-1} (pre-pivot) *)
  let rho = Array.make core.m Q.zero in
  rho.(r) <- Q.one;
  btran core rho;
  let dq = core.d.(q) in
  let dq_over = Q.div dq alpha_q in
  let aqf = Q.to_float alpha_q in
  let aq2 = aqf *. aqf in
  let wq = core.w.(q) in
  for j = 0 to core.n_enter - 1 do
    if j <> q then
      match core.status.(j) with
      | Basic _ -> ()
      | At_lower | At_upper ->
          let alpha = col_dot rho core.cols.(j) in
          if not (Q.is_zero alpha) then begin
            core.d.(j) <- Q.sub core.d.(j) (Q.mul dq_over alpha);
            let af = Q.to_float alpha in
            let cand = af *. af /. aq2 *. wq in
            if cand > core.w.(j) then core.w.(j) <- cand
          end
  done;
  (* primal update *)
  if Q.sign theta <> 0 then begin
    let step = if sigma > 0 then theta else Q.neg theta in
    for i = 0 to core.m - 1 do
      if not (Q.is_zero v.(i)) then core.xb.(i) <- Q.sub core.xb.(i) (Q.mul step v.(i))
    done
  end;
  let x_enter =
    if sigma > 0 then theta
    else
      match core.ub.(q) with Some u -> Q.sub u theta | None -> assert false
  in
  (* leaving variable rests at the bound it ran into *)
  let leave_low = Q.sign (if sigma > 0 then v.(r) else Q.neg v.(r)) > 0 in
  core.status.(p) <- (if leave_low then At_lower else At_upper);
  if p < core.n_enter then begin
    core.d.(p) <- Q.neg dq_over;
    core.w.(p) <- Float.max 1.0 (wq /. aq2)
  end;
  core.d.(q) <- Q.zero;
  let others = ref [] in
  for i = core.m - 1 downto 0 do
    if i <> r && not (Q.is_zero v.(i)) then others := (i, v.(i)) :: !others
  done;
  core.etas.(core.neta) <- Some { er = r; epiv = alpha_q; ecol = Array.of_list !others };
  core.neta <- core.neta + 1;
  core.basis.(r) <- q;
  core.status.(q) <- Basic r;
  core.xb.(r) <- x_enter;
  core.pivots <- core.pivots + 1;
  (* a rebuild itself emits m etas, so the trigger sits above that floor *)
  if core.neta >= core.m + refactor_every then refactor core

(* Weights past this magnitude stop discriminating; restart the framework. *)
let devex_overflow = 1e12

let reset_devex core = Array.fill core.w 0 core.n_enter 1.0

(* Phase-1 objective: artificial columns never sit at an upper bound, so
   the current infeasibility is the sum of basic artificial values. *)
let phase1_value core =
  let acc = ref Q.zero in
  for r = 0 to core.m - 1 do
    if core.basis.(r) >= core.n_enter then acc := Q.add !acc core.xb.(r)
  done;
  !acc

(* One phase of simplex. [stop_at_feasible] makes phase 1 return as soon as
   the artificial infeasibility hits zero instead of proving optimality. *)
let run_phase core ~stop_at_feasible =
  let iters0 = core.iters in
  let rec loop () =
    Ccs_resil.Deadline.check chk_pivot;
    core.iters <- core.iters + 1;
    if (not core.bland_mode) && core.degen_streak >= core.bland_after then begin
      core.bland_mode <- true;
      core.pricing_switches <- core.pricing_switches + 1
    end;
    match price core with
    | None -> `Optimal
    | Some q ->
        let sigma = if core.status.(q) = At_lower then 1 else -1 in
        let v = dense_col core q in
        ftran core v;
        (match ratio_test core q sigma v with
        | Step_unbounded -> `Unbounded
        | Step_flip u ->
            core.status.(q) <- (if sigma > 0 then At_upper else At_lower);
            if not (Q.is_zero u) then begin
              let step = if sigma > 0 then u else Q.neg u in
              for i = 0 to core.m - 1 do
                if not (Q.is_zero v.(i)) then
                  core.xb.(i) <- Q.sub core.xb.(i) (Q.mul step v.(i))
              done;
              core.degen_streak <- 0;
              if core.bland_mode then begin
                core.bland_mode <- false;
                reset_devex core
              end
            end;
            continue ()
        | Step_pivot (r, theta) ->
            if core.bland_mode then core.bland_switched <- true;
            if Q.sign theta = 0 then core.degen_streak <- core.degen_streak + 1
            else begin
              core.degen_streak <- 0;
              if core.bland_mode then begin
                core.bland_mode <- false;
                reset_devex core
              end
            end;
            do_pivot core q sigma v r theta;
            if (not core.bland_mode)
               && Array.exists (fun w -> w > devex_overflow) core.w
            then reset_devex core;
            continue ())
  and continue () =
    if stop_at_feasible && Q.is_zero (phase1_value core) then `Optimal else loop ()
  in
  let status = loop () in
  (status, core.iters - iters0)

(* ------------------------------------------------------------------ *)
(* Translation from the user-facing form.

   Variable j becomes non-negative internal columns:
   - finite lower bound l: x = l + x', upper carried implicitly as ub
   - no lower bound:       x = x+ - x- (two columns); a finite upper with
     no lower is the one combination that still needs an explicit row.
   Finite upper bounds on shifted variables become implicit column bounds,
   so bound tightenings (e.g. branch & bound) never change the LP shape. *)

type model = {
  c_core : core;
  col_of : (int * int option) array;  (* var -> (pos column, neg column) *)
  shift : Q.t array;
}

exception Empty_box

let build_model ~bland_after p =
  let nv = p.nvars in
  let col_of = Array.make nv (0, None) in
  let next = ref 0 in
  let shift = Array.make nv Q.zero in
  for j = 0 to nv - 1 do
    match p.lower.(j) with
    | Some l ->
        shift.(j) <- l;
        col_of.(j) <- (!next, None);
        incr next
    | None ->
        col_of.(j) <- (!next, Some (!next + 1));
        next := !next + 2
  done;
  let n_struct = !next in
  (* rows: user constraints with shifted rhs, plus the rare upper-bound
     row for variables unbounded below *)
  let rows = ref [] in
  let add_row coeffs cmp rhs = rows := (coeffs, cmp, rhs) :: !rows in
  List.iter
    (fun c ->
      let rhs =
        List.fold_left (fun acc (j, a) -> Q.sub acc (Q.mul a shift.(j))) c.rhs c.coeffs
      in
      let coeffs =
        List.concat_map
          (fun (j, a) ->
            if Q.is_zero a then []
            else
              let pos, negc = col_of.(j) in
              match negc with
              | None -> [ (pos, a) ]
              | Some ncol -> [ (pos, a); (ncol, Q.neg a) ])
          c.coeffs
      in
      add_row coeffs c.cmp rhs)
    p.constraints;
  let ub_struct = Array.make n_struct None in
  for j = 0 to nv - 1 do
    match (p.lower.(j), p.upper.(j)) with
    | Some l, Some u ->
        let w = Q.sub u l in
        if Q.sign w < 0 then raise Empty_box;
        ub_struct.(fst col_of.(j)) <- Some w
    | None, Some u ->
        let pos, negc = col_of.(j) in
        add_row [ (pos, Q.one); (Option.get negc, Q.minus_one) ] Le u
    | _, None -> ()
  done;
  let rows = List.rev !rows in
  let m = List.length rows in
  let n_slack =
    List.fold_left (fun acc (_, cmp, _) -> if cmp = Eq then acc else acc + 1) 0 rows
  in
  let n_total = n_struct + n_slack + m in
  let b = Array.make m Q.zero in
  let crash = Array.make m None in
  let col_acc = Array.make n_total [] in
  let slack_cursor = ref n_struct in
  List.iteri
    (fun i (coeffs, cmp, rhs) ->
      (* merge duplicate variable indices in the row *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (j, a) ->
          Hashtbl.replace tbl j
            (Q.add a (Option.value ~default:Q.zero (Hashtbl.find_opt tbl j))))
        coeffs;
      let slack =
        match cmp with
        | Le ->
            let s = !slack_cursor in
            incr slack_cursor;
            Some (s, Q.one)
        | Ge ->
            let s = !slack_cursor in
            incr slack_cursor;
            Some (s, Q.minus_one)
        | Eq -> None
      in
      (* normalize rhs >= 0 so the artificial start is primal feasible *)
      let flip = Q.sign rhs < 0 in
      let fix a = if flip then Q.neg a else a in
      b.(i) <- fix rhs;
      Hashtbl.fold (fun j a acc -> (j, a) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (j, a) ->
             if not (Q.is_zero a) then col_acc.(j) <- (i, fix a) :: col_acc.(j));
      (match slack with
      | Some (s, a) ->
          let a = fix a in
          col_acc.(s) <- (i, a) :: col_acc.(s);
          (* a +1 slack is a ready-made basic column: the crash start uses
             it instead of an artificial, shortening phase 1 *)
          if Q.(a = Q.one) then crash.(i) <- Some s
      | None -> ());
      let art = n_struct + n_slack + i in
      col_acc.(art) <- [ (i, Q.one) ])
    rows;
  let cols = Array.map (fun l -> Array.of_list (List.rev l)) col_acc in
  let ub = Array.make n_total None in
  Array.blit ub_struct 0 ub 0 n_struct;
  let n_enter = n_struct + n_slack in
  let core =
    {
      m;
      n_struct;
      n_slack;
      n_total;
      n_enter;
      cols;
      crash;
      b;
      ub;
      cost = Array.make n_total Q.zero;
      status = Array.make n_total At_lower;
      basis = Array.init m (fun i -> n_enter + i);
      xb = Array.make m Q.zero;
      etas = Array.make (m + refactor_every + 1) None;
      neta = 0;
      d = Array.make n_enter Q.zero;
      w = Array.make n_enter 1.0;
      iters = 0;
      pivots = 0;
      degen_streak = 0;
      bland_mode = false;
      bland_switched = false;
      pricing_switches = 0;
      refactorizations = 0;
      bland_after;
    }
  in
  { c_core = core; col_of; shift }

(* Cold start: +1 slacks where available (crash), artificials elsewhere,
   everything else at its lower bound. Either way the initial basis is the
   identity, so the start is primal feasible for phase 1 with no etas. *)
let init_cold core =
  Array.fill core.status 0 core.n_total At_lower;
  for i = 0 to core.m - 1 do
    let j = match core.crash.(i) with Some s -> s | None -> core.n_enter + i in
    core.basis.(i) <- j;
    core.status.(j) <- Basic i;
    core.xb.(i) <- core.b.(i)
  done;
  core.neta <- 0;
  (* phase-1 costs: unit on artificials *)
  Array.fill core.cost 0 core.n_total Q.zero;
  for i = 0 to core.m - 1 do
    core.cost.(core.n_enter + i) <- Q.one
  done;
  compute_duals core

(* Warm start: adopt an exported basis if it matches the shape and still
   factors. Returns the number of basic variables that violate their box
   under the current bounds and rhs: [`Ok 0] means the basis is primal
   feasible as-is; [`Ok k] with [k > 0] is a candidate for dual-simplex
   repair; [`No] sends the caller down the cold path. The artificial
   columns must already be pinned to [0, 0] so their violations count. *)
let try_warm core (wb : basis) =
  if wb.b_rows <> core.m || wb.b_struct <> core.n_struct
     || wb.b_slack <> core.n_slack || wb.b_total <> core.n_total
  then `No
  else if Array.exists (fun j -> j < 0 || j >= core.n_total) wb.b_basic then `No
  else begin
    Array.fill core.status 0 core.n_total At_lower;
    let distinct = Hashtbl.create core.m in
    Array.iter (fun j -> Hashtbl.replace distinct j ()) wb.b_basic;
    if Hashtbl.length distinct <> core.m then `No
    else if
      Array.exists
        (fun j ->
          j < 0 || j >= core.n_total || Hashtbl.mem distinct j || core.ub.(j) = None)
        wb.b_upper
    then `No
    else begin
      Array.blit wb.b_basic 0 core.basis 0 core.m;
      Array.iteri (fun r j -> core.status.(j) <- Basic r) core.basis;
      Array.iter (fun j -> core.status.(j) <- At_upper) wb.b_upper;
      core.neta <- 0;
      match refactor core with
      | () ->
          core.refactorizations <- core.refactorizations - 1;
          (* do not bill the import factorization as churn *)
          let viol = ref 0 in
          for r = 0 to core.m - 1 do
            let j = core.basis.(r) in
            let v = core.xb.(r) in
            if Q.sign v < 0 then incr viol
            else
              match core.ub.(j) with
              | Some u when Q.(v > u) -> incr viol
              | _ -> ()
          done;
          `Ok !viol
      | exception Singular -> `No
    end
  end

(* Is a nonbasic column pinned to a width-zero box? (Branch-and-bound
   fixings and the pinned artificials; such a column can never enter.) *)
let fixed_col core j =
  match core.ub.(j) with Some u -> Q.sign u = 0 | None -> false

(* The adopted reduced costs must satisfy the dual sign conditions for the
   dual simplex to run; fixed columns are exempt (they never price). *)
let dual_feasible core =
  let ok = ref true in
  for j = 0 to core.n_enter - 1 do
    if !ok && not (fixed_col core j) then
      match core.status.(j) with
      | Basic _ -> ()
      | At_lower -> if Q.sign core.d.(j) < 0 then ok := false
      | At_upper -> if Q.sign core.d.(j) > 0 then ok := false
  done;
  !ok

(* Dual-simplex feasibility repair, starting from a factored, dual-feasible
   basis whose x_B violates some boxes — the branch-and-bound child case,
   where the parent's optimal basis is off by exactly one tightened bound.
   Leaving row and entering column both break ties by smallest variable
   index (Bland-style), which keeps runs deterministic and, together with
   exact arithmetic, rules out cycling; a generous iteration cap returns
   [`Stalled] so the caller can always fall back to a cold start.
   Maintains [core.d] exactly; Devex weights are left alone because the
   caller re-derives them before phase 2. *)
let dual_repair core =
  let max_iters = 100 + (20 * core.m) in
  let rec loop iters =
    Ccs_resil.Deadline.check chk_pivot;
    if iters > max_iters then `Stalled
    else begin
      (* most negative choice would be faster on average; smallest basic
         variable index is the Bland-style choice that cannot cycle *)
      let r = ref (-1) in
      let sr = ref 0 in
      for i = core.m - 1 downto 0 do
        let x = core.xb.(i) in
        let s =
          if Q.sign x < 0 then -1
          else
            match core.ub.(core.basis.(i)) with
            | Some u when Q.(x > u) -> 1
            | _ -> 0
        in
        if s <> 0 && (!r < 0 || core.basis.(i) < core.basis.(!r)) then begin
          r := i;
          sr := s
        end
      done;
      if !r < 0 then `Feasible iters
      else begin
        let r = !r and sr = !sr in
        core.iters <- core.iters + 1;
        let srq = Q.of_int sr in
        let rho = Array.make core.m Q.zero in
        rho.(r) <- Q.one;
        btran core rho;
        let alpha = Array.make core.n_enter Q.zero in
        let q = ref (-1) in
        let best = ref Q.zero in
        for j = 0 to core.n_enter - 1 do
          match core.status.(j) with
          | Basic _ -> ()
          | At_lower | At_upper ->
              if not (fixed_col core j) then begin
                let a = col_dot rho core.cols.(j) in
                alpha.(j) <- a;
                let sa = Q.mul srq a in
                let eligible =
                  match core.status.(j) with
                  | At_lower -> Q.sign sa > 0
                  | At_upper -> Q.sign sa < 0
                  | Basic _ -> false
                in
                if eligible then begin
                  let ratio = Q.div core.d.(j) sa in
                  if !q < 0 || Q.(ratio < !best) then begin
                    q := j;
                    best := ratio
                  end
                end
              end
        done;
        if !q < 0 then `Infeasible (iters + 1)
          (* row r cannot be brought inside its box by any admissible move *)
        else begin
          let q = !q in
          let theta_d = !best in
          let alpha_q = alpha.(q) in
          let p = core.basis.(r) in
          (* dual update: y += theta_d * sr * rho, so d_j -= theta_d*sr*alpha_j *)
          if Q.sign theta_d <> 0 then
            for j = 0 to core.n_enter - 1 do
              if j <> q then
                match core.status.(j) with
                | Basic _ -> ()
                | At_lower | At_upper ->
                    if not (Q.is_zero alpha.(j)) then
                      core.d.(j) <-
                        Q.sub core.d.(j) (Q.mul theta_d (Q.mul srq alpha.(j)))
            done;
          (* primal update: entering moves by delta, leaving lands on the
             bound it violated *)
          let viol =
            if sr < 0 then core.xb.(r)
            else
              match core.ub.(p) with
              | Some u -> Q.sub core.xb.(r) u
              | None -> assert false
          in
          let delta = Q.div viol alpha_q in
          let bound_q =
            match core.status.(q) with
            | At_upper -> ( match core.ub.(q) with Some u -> u | None -> assert false)
            | _ -> Q.zero
          in
          let v = dense_col core q in
          ftran core v;
          if Q.sign delta <> 0 then
            for i = 0 to core.m - 1 do
              if not (Q.is_zero v.(i)) then
                core.xb.(i) <- Q.sub core.xb.(i) (Q.mul v.(i) delta)
            done;
          core.status.(p) <- (if sr < 0 then At_lower else At_upper);
          if p < core.n_enter then begin
            core.d.(p) <- Q.neg (Q.mul theta_d srq);
            core.w.(p) <- 1.0
          end;
          core.d.(q) <- Q.zero;
          let others = ref [] in
          for i = core.m - 1 downto 0 do
            if i <> r && not (Q.is_zero v.(i)) then others := (i, v.(i)) :: !others
          done;
          core.etas.(core.neta) <-
            Some { er = r; epiv = alpha_q; ecol = Array.of_list !others };
          core.neta <- core.neta + 1;
          core.basis.(r) <- q;
          core.status.(q) <- Basic r;
          core.xb.(r) <- Q.add bound_q delta;
          core.pivots <- core.pivots + 1;
          if core.neta >= core.m + refactor_every then refactor core;
          loop (iters + 1)
        end
      end
    end
  in
  loop 0

let export_basis core =
  let uppers = ref [] in
  for j = core.n_total - 1 downto 0 do
    if core.status.(j) = At_upper then uppers := j :: !uppers
  done;
  {
    b_rows = core.m;
    b_struct = core.n_struct;
    b_slack = core.n_slack;
    b_total = core.n_total;
    b_basic = Array.copy core.basis;
    b_upper = Array.of_list !uppers;
  }

let extract_solution p model =
  let core = model.c_core in
  let internal = Array.make core.n_total Q.zero in
  for j = 0 to core.n_total - 1 do
    match core.status.(j) with
    | Basic r -> internal.(j) <- core.xb.(r)
    | At_upper -> internal.(j) <- (match core.ub.(j) with Some u -> u | None -> Q.zero)
    | At_lower -> ()
  done;
  let x = Array.make p.nvars Q.zero in
  for jv = 0 to p.nvars - 1 do
    let pos, negc = model.col_of.(jv) in
    let v =
      match negc with
      | None -> internal.(pos)
      | Some ncol -> Q.sub internal.(pos) internal.(ncol)
    in
    x.(jv) <- Q.add v model.shift.(jv)
  done;
  x

let default_bland_after = 32

let solve ?warm ?(bland_after = default_bland_after) p =
  Ccs_obs.Recorder.phase "lp" @@ fun () ->
  match build_model ~bland_after p with
  | exception Empty_box ->
      let stats =
        {
          phase1_iterations = 0;
          phase2_iterations = 0;
          pivots = 0;
          bland_switched = false;
          pricing_switches = 0;
          basis_refactorizations = 0;
          warm_started = false;
        }
      in
      Ccs_obs.Metrics.incr m_solves;
      Ccs_obs.Metrics.incr m_infeasible;
      sync_rat_counters ();
      Infeasible stats
  | model ->
      let core = model.c_core in
      let pin_artificials () =
        for i = 0 to core.m - 1 do
          core.ub.(core.n_enter + i) <- Some Q.zero
        done
      in
      let unpin_artificials () =
        for i = 0 to core.m - 1 do
          core.ub.(core.n_enter + i) <- None
        done
      in
      let install_phase2_costs () =
        Array.fill core.cost 0 core.n_total Q.zero;
        for jv = 0 to p.nvars - 1 do
          let c = p.objective.(jv) in
          if not (Q.is_zero c) then begin
            let pos, negc = model.col_of.(jv) in
            core.cost.(pos) <- Q.add core.cost.(pos) c;
            match negc with
            | Some ncol -> core.cost.(ncol) <- Q.sub core.cost.(ncol) c
            | None -> ()
          end
        done
      in
      let warm_ok = ref false in
      (* Warm path: adopt the basis under the real costs with artificials
         pinned to zero. A clean import skips phase 1 outright; an import
         that is only primal-infeasible (the branch-and-bound child case:
         one tightened bound) is repaired with dual-simplex pivots, which
         is the whole point of exporting bases. Anything else — shape
         mismatch, singular, dual-infeasible, repair stall — falls back to
         the cold two-phase start, so a stale basis is never wrong. *)
      let warm_result =
        match warm with
        | None -> `Cold
        | Some wb -> (
            install_phase2_costs ();
            pin_artificials ();
            match try_warm core wb with
            | `No ->
                unpin_artificials ();
                `Cold
            | `Ok nviol -> (
                compute_duals core;
                if nviol = 0 then begin
                  warm_ok := true;
                  `Feasible 0
                end
                else if not (dual_feasible core) then begin
                  unpin_artificials ();
                  `Cold
                end
                else
                  match dual_repair core with
                  | `Feasible iters ->
                      warm_ok := true;
                      `Feasible iters
                  | `Infeasible iters ->
                      warm_ok := true;
                      `Infeasible iters
                  | `Stalled ->
                      unpin_artificials ();
                      `Cold))
      in
      let p1 =
        match warm_result with
        | (`Feasible _ | `Infeasible _) as r -> r
        | `Cold -> (
            init_cold core;
            match run_phase core ~stop_at_feasible:true with
            | `Unbounded, _ -> assert false (* phase-1 objective is bounded below *)
            | `Optimal, iters ->
                if Q.sign (phase1_value core) <> 0 then `Infeasible iters
                else begin
                  pin_artificials ();
                  `Feasible iters
                end)
      in
      let warm_ok = !warm_ok in
      let record ~p1_iters ~p2_iters ~outcome =
        let stats =
          {
            phase1_iterations = p1_iters;
            phase2_iterations = p2_iters;
            pivots = core.pivots;
            bland_switched = core.bland_switched;
            pricing_switches = core.pricing_switches;
            basis_refactorizations = core.refactorizations;
            warm_started = warm_ok;
          }
        in
        Ccs_obs.Metrics.incr m_solves;
        Ccs_obs.Metrics.add m_phase1 stats.phase1_iterations;
        Ccs_obs.Metrics.add m_phase2 stats.phase2_iterations;
        Ccs_obs.Metrics.add m_pivots stats.pivots;
        Ccs_obs.Metrics.add m_refactor stats.basis_refactorizations;
        Ccs_obs.Metrics.add m_pricing_switches stats.pricing_switches;
        if stats.bland_switched then Ccs_obs.Metrics.incr m_bland;
        if warm_ok then Ccs_obs.Metrics.incr m_warm;
        (match outcome with
        | `Infeasible -> Ccs_obs.Metrics.incr m_infeasible
        | `Unbounded -> Ccs_obs.Metrics.incr m_unbounded
        | `Optimal -> ());
        sync_rat_counters ();
        Ccs_obs.Log.trace (fun log ->
            log
              ~fields:
                [
                  Ccs_obs.Log.int "rows" core.m;
                  Ccs_obs.Log.int "cols" core.n_total;
                  Ccs_obs.Log.int "pivots" stats.pivots;
                  Ccs_obs.Log.bool "warm" warm_ok;
                  Ccs_obs.Log.str "outcome"
                    (match outcome with
                    | `Infeasible -> "infeasible"
                    | `Unbounded -> "unbounded"
                    | `Optimal -> "optimal");
                ]
              "lp.solve");
        stats
      in
      (match p1 with
      | `Infeasible p1_iters ->
          Infeasible (record ~p1_iters ~p2_iters:0 ~outcome:`Infeasible)
      | `Feasible p1_iters ->
          (* phase 2: real costs; artificials are pinned at zero by their
             bounds, so redundant rows stay inert without a drive-out pass *)
          install_phase2_costs ();
          core.bland_mode <- false;
          core.degen_streak <- 0;
          compute_duals core;
          (match run_phase core ~stop_at_feasible:false with
          | `Unbounded, p2_iters ->
              Unbounded (record ~p1_iters ~p2_iters ~outcome:`Unbounded)
          | `Optimal, p2_iters ->
              let x = extract_solution p model in
              let value =
                Array.to_list x
                |> List.mapi (fun j v -> Q.mul p.objective.(j) v)
                |> List.fold_left Q.add Q.zero
              in
              let stats = record ~p1_iters ~p2_iters ~outcome:`Optimal in
              Optimal { objective = value; solution = x; stats; basis = export_basis core }))
