(** Exact linear programming over rationals.

    A bounded-variable revised simplex with exact {!Rat} arithmetic and
    sparse columns: the basis is held as a product-form-eta factorization,
    pricing is Devex (float scores choose the pivot order; every number
    that enters the solution is exact), and Bland's rule takes over after
    a run of degenerate pivots so cycling remains impossible. There are no
    tolerances and answers are exactly right — which is what the
    branch-and-bound ILP solver and the PTAS feasibility oracles require.
    Built from scratch; the sealed environment has no LP library.

    Finite variable bounds are implicit (a nonbasic variable rests at its
    lower or upper bound) rather than explicit rows, so tightening bounds
    — as branch & bound does — never changes the LP shape and a basis from
    one solve can warm-start the next. *)

type cmp = Le | Ge | Eq

type constr = {
  coeffs : (int * Rat.t) list;  (** sparse row: (variable index, coefficient) *)
  cmp : cmp;
  rhs : Rat.t;
}

type problem = {
  nvars : int;
  objective : Rat.t array;  (** minimized; length [nvars] *)
  constraints : constr list;
  lower : Rat.t option array;  (** [None] = unbounded below *)
  upper : Rat.t option array;  (** [None] = unbounded above *)
}

(** Solver effort for one [solve] call. Iterations count simplex loop
    passes (each prices a column, then pivots, flips a bound, or proves
    optimality/unboundedness); [pivots] counts actual basis changes.
    [bland_switched] is true only if at least one pivot was chosen by
    Bland's anti-cycling rule — not merely because the degenerate-streak
    threshold was crossed. [pricing_switches] counts Devex-to-Bland
    handovers; [basis_refactorizations] counts eta-file rebuilds.
    [warm_started] records that a caller-supplied basis was adopted —
    either feasible as-is (then [phase1_iterations] is 0) or made feasible
    by dual-simplex repair pivots, which are what [phase1_iterations]
    counts on a warm start. *)
type stats = {
  phase1_iterations : int;
  phase2_iterations : int;  (** 0 when phase 1 proves infeasibility *)
  pivots : int;
  bland_switched : bool;
  pricing_switches : int;
  basis_refactorizations : int;
  warm_started : bool;
}

(** Opaque snapshot of an optimal basis, exportable across solves.

    A basis is valid for any problem with the same internal shape: the
    same constraint rows (count and Le/Ge/Eq kinds in order) and the same
    variable layout (which variables have finite lower bounds). Bound
    values and right-hand sides are free to differ — [solve ~warm] checks
    the adopted basis under the new data: primal-feasible bases skip
    phase 1 outright, bases violating only variable bounds (the
    branch-and-bound case, dual feasible by construction) are repaired
    with dual-simplex pivots, and anything else falls back to a cold
    start. Passing a stale or mismatched basis is always safe, never
    wrong. *)
type basis

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array; stats : stats; basis : basis }
  | Infeasible of stats
  | Unbounded of stats

(** Convenience constructor with all variables in [0, +inf). *)
val problem :
  ?lower:Rat.t option array ->
  ?upper:Rat.t option array ->
  nvars:int ->
  objective:Rat.t array ->
  constr list ->
  problem

val constr : (int * Rat.t) list -> cmp -> Rat.t -> constr

(** [solve ?warm ?bland_after p] minimizes [p]. [warm] supplies a starting
    basis from a previous same-shape solve (see {!basis}). [bland_after]
    is the number of consecutive degenerate pivots tolerated before
    pricing hands over to Bland's rule (default 32; 0 forces Bland from
    the first degenerate pivot, which the cycling tests use). *)
val solve : ?warm:basis -> ?bland_after:int -> problem -> result

(** Checks that [solution] satisfies every constraint and bound exactly.
    Used by the test-suite and as a post-solve assertion. *)
val feasible : problem -> Rat.t array -> bool
