(** Exact linear programming over rationals.

    A dense two-phase primal simplex with exact {!Rat} arithmetic: no
    tolerances, no cycling (Bland's rule kicks in after a Dantzig warm-up),
    and answers that are exactly right — which is what the branch-and-bound
    ILP solver and the PTAS feasibility oracles require. Built from scratch;
    the sealed environment has no LP library. *)

type cmp = Le | Ge | Eq

type constr = {
  coeffs : (int * Rat.t) list;  (** sparse row: (variable index, coefficient) *)
  cmp : cmp;
  rhs : Rat.t;
}

type problem = {
  nvars : int;
  objective : Rat.t array;  (** minimized; length [nvars] *)
  constraints : constr list;
  lower : Rat.t option array;  (** [None] = unbounded below *)
  upper : Rat.t option array;  (** [None] = unbounded above *)
}

(** Solver effort for one [solve] call. Iterations count simplex loop
    passes (each either pivots or proves optimality/unboundedness);
    [pivots] additionally includes the basis repairs that drive leftover
    artificial variables out between the phases. *)
type stats = {
  phase1_iterations : int;
  phase2_iterations : int;  (** 0 when phase 1 proves infeasibility *)
  pivots : int;
  bland_switched : bool;  (** the anti-cycling rule had to engage *)
}

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array; stats : stats }
  | Infeasible of stats
  | Unbounded of stats

(** Convenience constructor with all variables in [0, +inf). *)
val problem :
  ?lower:Rat.t option array ->
  ?upper:Rat.t option array ->
  nvars:int ->
  objective:Rat.t array ->
  constr list ->
  problem

val constr : (int * Rat.t) list -> cmp -> Rat.t -> constr

val solve : problem -> result

(** Checks that [solution] satisfies every constraint and bound exactly.
    Used by the test-suite and as a post-solve assertion. *)
val feasible : problem -> Rat.t array -> bool
