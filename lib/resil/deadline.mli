(** Cooperative cancellation and deadline tokens.

    A token carries an optional monotonic-clock deadline plus an explicit
    kill flag; solvers call {!check} from their hot loops (B&B node
    expansion, simplex pivots, N-fold augmentation steps, PTAS guess
    probes, pool task boundaries) and the call raises {!Cancelled} once the
    ambient token is expired, killed, or hit by an armed fault plan
    ({!Faults}). Cancellation is an ordinary exception, so it unwinds
    through [Fun.protect]-style cleanup: spans stay balanced, pools stay
    drainable, and warm-start bases are either intact or unpublished —
    never corrupted (DESIGN.md, "Cancellation contract").

    The fast path is allocation-free: one atomic counter bump and a couple
    of atomic loads. Sites registered [~hot] additionally amortize the
    clock read (one [clock_gettime] per 64 checks per domain); cold sites
    read the clock every time, so checkpoints that fire rarely still notice
    an expiry promptly. *)

type t

type reason =
  | Expired  (** the token's deadline passed *)
  | Killed  (** {!kill} was called (e.g. by a pool sibling's failure) *)
  | Fault  (** an armed {!Faults} plan injected a cancel *)

exception Cancelled of { site : string; reason : reason }

val never : t
(** The default ambient token: no deadline, cannot be killed. *)

val of_budget_ms : int -> t
(** A token expiring [ms] milliseconds from now. *)

val of_limit_ns : int -> t
(** A token expiring at the given {!Ccs_util.Mono.now_ns} reading — how a
    degradation-ladder rung inherits the remaining budget exactly. *)

val limit_ns : t -> int option
(** The token's expiry instant, [None] for {!never}. *)

val remaining_ns : t -> int option
(** Time to expiry ([None] = unlimited); negative once expired. *)

val expired : t -> bool

val cancelled : t -> bool
(** True once the token is expired, killed, or has already tripped a
    checkpoint — i.e. a fresh {!check} under it would raise. *)

val kill : t -> unit
(** Cancel the token explicitly. Killing {!never} is a no-op. *)

val child : t -> t
(** A token with the same deadline whose {!kill} does not touch the
    parent, while a kill of the parent still reaches the child — one per
    pool task, so one task can be cancelled without poisoning its
    siblings. *)

(** {1 Ambient token}

    The current token is ambient, per domain: solvers never thread it
    explicitly. [Ccs_par] re-installs the submitting context's token
    around each pool task. *)

val ambient : unit -> t

val with_token : t -> (unit -> 'a) -> 'a
(** Install a token for the dynamic extent of the call (restored on any
    exit, including exceptions). *)

(** {1 Checkpoints} *)

type site

val site : ?hot:bool -> string -> site
(** Register a checkpoint site. [hot] sites amortize the clock read and
    should be used for loops that iterate faster than ~10kHz. *)

val check : site -> unit
(** The checkpoint: raises {!Cancelled} if the ambient token is expired or
    killed, or an armed fault plan says so. *)

val checks_total : unit -> int
(** Exact number of checkpoints executed since start (or {!reset_stats}).
    Deterministic for a deterministic workload — the bench regression gate
    compares it across commits. *)

val flush_stats : unit -> unit
(** Push the exact check count into the [resil.cancel_checks] metrics
    counter (the registry is only updated here, so callers that snapshot
    metrics flush first). *)

val reset_stats : unit -> unit
