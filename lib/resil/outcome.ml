(* The shape every deadline-aware entry point returns: either the solver
   finished what was asked, or it degraded and reports exactly how far it
   got. [Degraded] is a successful return — the incumbent (when present)
   is a validated schedule and [lower_bound] is certified, so
   [ratio_bound] (incumbent makespan / lower bound, when both exist) is a
   sound a-posteriori approximation guarantee. *)

type 'a degraded = {
  incumbent : 'a option;  (* best validated schedule produced before the cut *)
  lower_bound : Rat.t;  (* certified lower bound on OPT for the regime *)
  ratio_bound : Rat.t option;  (* makespan(incumbent) / lower_bound *)
  phase_reached : string;  (* ladder rung / phase that produced the incumbent *)
}

type 'a t = Complete of 'a | Degraded of 'a degraded

let map f = function
  | Complete x -> Complete (f x)
  | Degraded d -> Degraded { d with incumbent = Option.map f d.incumbent }
