(** Seeded fault injection at cancellation checkpoints.

    When a plan is armed, every {!Deadline.check} consults this module
    before doing its normal work. The plan decides — as a pure function of
    the plan's seed and the global checkpoint ordinal — whether to do
    nothing, inject artificial latency, raise a synthetic exception, or
    cancel the run. That makes a chaos sweep replayable: the same seed
    injects the same fault at the same checkpoint every time (at a fixed
    [--jobs] count; checkpoint ordinals are claimed from one global
    counter, so cross-domain interleavings can reorder them).

    Nothing here is armed in normal operation: the fast path of
    {!Deadline.check} reads one atomic flag and moves on. *)

type action =
  | Cancel  (** behave exactly like a deadline expiry at this checkpoint *)
  | Raise  (** raise {!Injected} — a synthetic solver crash *)
  | Delay of float  (** sleep this many seconds, then continue *)

(** Raised by a [Raise] injection. Deliberately not an exception any solver
    knows: it must travel through every layer untranslated, proving that an
    arbitrary crash in a hot loop leaves spans balanced and pools alive. *)
exception Injected of string

type plan =
  | At of { ordinal : int; action : action }
      (** inject exactly once, at the [ordinal]-th checkpoint executed
          since {!arm} (0-based) — the deterministic "interrupt the solver
          at every point, one point per run" sweep *)
  | Rate of {
      seed : int;
      cancel_ppm : int;  (** per-million probability of [Cancel] *)
      raise_ppm : int;
      delay_ppm : int;
      delay_s : float;  (** latency injected by a delay hit *)
    }  (** independent seeded decision at every checkpoint *)

val arm : plan -> unit
(** Install [plan] and reset the checkpoint ordinal to 0. *)

val disarm : unit -> unit
val armed : unit -> bool

val decide : string -> [ `Nothing | `Cancel ]
(** Called by {!Deadline.check} with the site name when armed. Performs
    [Delay] injections internally, raises {!Injected} for [Raise], and
    returns [`Cancel] when the checkpoint should behave as cancelled. *)

val ordinal : unit -> int
(** Checkpoints executed since the last {!arm} — running a workload once
    with a no-op plan measures how many injection points it has. *)

val injected_total : unit -> int
(** Faults injected since program start (also in metrics as
    [resil.faults_injected]). *)
