type action = Cancel | Raise | Delay of float

exception Injected of string

type plan =
  | At of { ordinal : int; action : action }
  | Rate of {
      seed : int;
      cancel_ppm : int;
      raise_ppm : int;
      delay_ppm : int;
      delay_s : float;
    }

let m_injected = Ccs_obs.Metrics.counter "resil.faults_injected"

(* [state] is read on every checkpoint of every armed run, so the unarmed
   fast path must be one atomic load. The ordinal is global (not
   per-domain): an [At] plan means "the k-th checkpoint the process
   executes", whichever domain gets there. *)
let state : plan option Atomic.t = Atomic.make None
let ord = Atomic.make 0
let injected = Atomic.make 0

let arm plan =
  Atomic.set ord 0;
  Atomic.set state (Some plan)

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None
let ordinal () = Atomic.get ord
let injected_total () = Atomic.get injected

let hit site k what =
  Atomic.incr injected;
  Ccs_obs.Metrics.incr m_injected;
  Ccs_obs.Log.debug (fun log ->
      log
        ~fields:[ Ccs_obs.Log.str "site" site; Ccs_obs.Log.int "ordinal" k ]
        ("faults: injecting " ^ what))

let apply site k = function
  | Cancel ->
      hit site k "cancel";
      `Cancel
  | Raise ->
      hit site k "raise";
      raise (Injected (Printf.sprintf "fault injected at %s (checkpoint %d)" site k))
  | Delay s ->
      hit site k "delay";
      Unix.sleepf s;
      `Nothing

let decide site =
  match Atomic.get state with
  | None -> `Nothing
  | Some plan -> (
      let k = Atomic.fetch_and_add ord 1 in
      match plan with
      | At { ordinal; action } -> if k = ordinal then apply site k action else `Nothing
      | Rate { seed; cancel_ppm; raise_ppm; delay_ppm; delay_s } ->
          (* one fresh stream per checkpoint: a pure function of (seed, k),
             so the decision sequence is independent of everything else *)
          let u = Ccs_util.Prng.int (Ccs_util.Prng.stream ~seed ~index:k) 1_000_000 in
          if u < cancel_ppm then apply site k Cancel
          else if u < cancel_ppm + raise_ppm then apply site k Raise
          else if u < cancel_ppm + raise_ppm + delay_ppm then apply site k (Delay delay_s)
          else `Nothing)
