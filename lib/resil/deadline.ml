module Mono = Ccs_util.Mono

type t = {
  dlimit_ns : int;  (* max_int = no deadline *)
  killed : bool Atomic.t;
  (* cached "this token is cancelled" so that after the first slow-path
     detection every subsequent check raises without reading the clock *)
  tripped : bool Atomic.t;
  parent : t option;
}

type reason = Expired | Killed | Fault

exception Cancelled of { site : string; reason : reason }

let make ?parent dlimit_ns =
  { dlimit_ns; killed = Atomic.make false; tripped = Atomic.make false; parent }

let never = make max_int
let of_budget_ms ms = make (Mono.now_ns () + Mono.ns_of_ms ms)
let of_limit_ns limit = make limit
let limit_ns t = if t.dlimit_ns = max_int then None else Some t.dlimit_ns

let remaining_ns t =
  if t.dlimit_ns = max_int then None else Some (t.dlimit_ns - Mono.now_ns ())

let expired t = t.dlimit_ns <> max_int && Mono.now_ns () >= t.dlimit_ns
let kill t = if t != never then Atomic.set t.killed true

let child t =
  { dlimit_ns = t.dlimit_ns;
    killed = Atomic.make false;
    tripped = Atomic.make false;
    parent = (if t == never then None else Some t) }

let rec is_killed t =
  Atomic.get t.killed || match t.parent with Some p -> is_killed p | None -> false

let cancelled t = Atomic.get t.tripped || is_killed t || expired t

(* ---------------- ambient token ---------------- *)

let ambient_key : t ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref never)
let ambient () = !(Domain.DLS.get ambient_key)

let with_token tok f =
  let cell = Domain.DLS.get ambient_key in
  let saved = !cell in
  cell := tok;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ---------------- checkpoints ---------------- *)

type site = { sname : string; hot : bool }

let site ?(hot = false) sname = { sname; hot }

let m_checks = Ccs_obs.Metrics.counter "resil.cancel_checks"

(* The count is exact (one atomic fetch-add per check, still allocation
   free) rather than amortized: the bench gate compares it across commits,
   and an amortized count would depend on the flush phase at snapshot
   time. [pushed] tracks how much of it has been forwarded to the metrics
   registry, which takes a mutex and is therefore only touched in
   [flush_stats]. *)
let checks = Atomic.make 0
let pushed = Atomic.make 0

(* Per-domain tick for amortizing clock reads at hot sites. *)
let tick_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let checks_total () = Atomic.get checks

let flush_stats () =
  let tot = Atomic.get checks in
  let prev = Atomic.exchange pushed tot in
  if tot > prev then Ccs_obs.Metrics.add m_checks (tot - prev)

let reset_stats () =
  Atomic.set checks 0;
  Atomic.set pushed 0

let trip tok reason site =
  if tok != never then Atomic.set tok.tripped true;
  raise (Cancelled { site = site.sname; reason })

let check site =
  Atomic.incr checks;
  (* Flight-recorder sampling piggybacks on checkpoints the solvers
     already visit (amortized inside [sample]). It only reads the counter
     — the exact [resil.cancel_checks] count the bench gate pins is not
     affected by recording. *)
  if Ccs_obs.Recorder.active () then
    Ccs_obs.Recorder.sample ~site:site.sname ~checks:(Atomic.get checks);
  let tok = ambient () in
  (if Faults.armed () then
     match Faults.decide site.sname with
     | `Nothing -> ()
     | `Cancel -> trip tok Fault site);
  if tok != never then begin
    if Atomic.get tok.tripped then raise (Cancelled { site = site.sname; reason = Expired });
    if is_killed tok then trip tok Killed site;
    let read_clock =
      (not site.hot)
      ||
      let tick = Domain.DLS.get tick_key in
      incr tick;
      !tick land 63 = 0
    in
    if read_clock && expired tok then trip tok Expired site
  end
