(* Registry of every solver the differential oracle drives.

   Besides its validated makespan, each run reports two certificates
   extracted from the solver's own statistics: a lower bound on the regime's
   optimum (the accepted border of Lemma 2, or the rejected grid point of
   the dual approximation) and the upper bound its construction promises for
   the makespan. The oracle cross-checks certificates *between* solvers —
   solver A's lower bound must stay below solver B's makespan, within a
   regime and along the splittable <= preemptive <= non-preemptive
   dominance chain — which is what makes the testing differential rather
   than per-solver. *)

module Q = Rat
module I = Ccs.Instance
module S = Ccs.Schedule
module Common = Ccs.Ptas.Common

type regime = Splittable | Preemptive | Nonpreemptive

let regime_name = function
  | Splittable -> "splittable"
  | Preemptive -> "preemptive"
  | Nonpreemptive -> "nonpreemptive"

(* OPT_splittable <= OPT_preemptive <= OPT_nonpreemptive on any instance:
   every non-preemptive schedule is preemptive, every preemptive one
   splittable. *)
let regime_rank = function Splittable -> 0 | Preemptive -> 1 | Nonpreemptive -> 2

type run = {
  makespan : Q.t;  (** as recomputed by the Schedule validator *)
  lower : Q.t;  (** certified lower bound on this regime's optimum *)
  upper : Q.t;  (** certified upper bound on this run's makespan *)
  witness : Q.t;  (** the accepted guess T (the optimum itself when exact) *)
}

type outcome =
  | Solved of run
  | Skipped of string
  | Invalid of string
  | Crashed of string

type limits = {
  ptas_n : int;
  ptas_pre_n : int;
  ptas_classes : int;
  ptas_machines : int;
  exact_cm : int;
  exact_nm : int;
  bnb_n : int;
  bnb_nodes : int;
  brute_n : int;
}

(* The PTAS gates are deliberately tight: the configuration enumeration cost
   is erratic in (n, C, m) and single solves can take seconds just outside
   these bounds, while the oracle runs every solver up to four times per
   instance (base + three metamorphic probes). *)
let default_limits =
  {
    ptas_n = 8;
    ptas_pre_n = 6;
    ptas_classes = 3;
    ptas_machines = 3;
    exact_cm = 12;
    exact_nm = 18;
    bnb_n = 11;
    bnb_nodes = 300_000;
    brute_n = 7;
  }

type solver = {
  name : string;
  regime : regime;
  exact : bool;
  ratio : Q.t;  (** certified worst-case makespan / same-regime optimum *)
  scale_exact : bool;  (** makespan commutes exactly with scaling all p_j *)
  perm_exact : bool;  (** makespan invariant under class-id/job permutation *)
  mono_machines : bool;  (** adding a machine never increases the makespan *)
  witness_growth : Q.t;  (** adding a machine keeps witness' <= growth * witness *)
  applicable : limits -> I.t -> bool;
  run : I.t -> outcome;
}

let validated validate inst sched finish =
  match validate inst sched with Error e -> Invalid e | Ok mk -> Solved (finish mk)

let q2 = Q.of_int 2
let always _ _ = true

let split_approx =
  {
    name = "splittable/approx2";
    regime = Splittable;
    exact = false;
    ratio = q2;
    scale_exact = true;
    perm_exact = true;
    (* only OPT is monotone in m; the wrap-around construction can emit a
       worse schedule on more machines (seed 1 index 14 finds one) *)
    mono_machines = false;
    witness_growth = Q.one;
    applicable = always;
    run =
      (fun inst ->
        let sched, stats = Ccs.Approx.Splittable.solve inst in
        validated S.validate_splittable inst sched (fun mk ->
            let t = stats.Ccs.Approx.Splittable.t_guess in
            { makespan = mk; lower = t; upper = Q.mul q2 t; witness = t }));
  }

let pre_approx =
  {
    name = "preemptive/approx2";
    regime = Preemptive;
    exact = false;
    ratio = q2;
    scale_exact = true;
    perm_exact = true;
    mono_machines = false;
    witness_growth = Q.one;
    applicable = always;
    run =
      (fun inst ->
        let sched, stats = Ccs.Approx.Preemptive.solve inst in
        validated S.validate_preemptive inst sched (fun mk ->
            let t = stats.Ccs.Approx.Preemptive.t_guess in
            { makespan = mk; lower = t; upper = Q.mul q2 t; witness = t }));
  }

let np_approx =
  {
    name = "nonpreemptive/approx73";
    regime = Nonpreemptive;
    exact = false;
    ratio = Q.of_ints 7 3;
    (* the binary search runs on the integer grid, which does not commute
       with scaling (ceil (k*P/m) < k * ceil (P/m) in general) *)
    scale_exact = false;
    perm_exact = true;
    mono_machines = false;
    witness_growth = Q.one;
    applicable = always;
    run =
      (fun inst ->
        let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
        validated S.validate_nonpreemptive inst sched (fun mk ->
            let t = Q.of_int stats.Ccs.Approx.Nonpreemptive.t_guess in
            (* Theorem 6: round robin stays below avg + max item, with the
               sub-class loads at most 4T/3 after the LPT split. *)
            let upper = Q.add (Ccs.Bounds.lb_splittable inst) (Q.mul (Q.of_ints 4 3) t) in
            { makespan = Q.of_int mk; lower = t; upper; witness = t }));
  }

(* PTAS witnesses: the accepted grid point T_acc of the dual approximation.
   Its predecessor T_acc/(1+delta) was rejected by a complete oracle (or was
   below the certified lower bound), so T_acc/(1+delta) <= OPT. *)
let ptas_lower param t = Q.div t (Q.add Q.one (Common.delta param))

let ptas_gate ?(pre = false) limits inst =
  I.n inst <= (if pre then limits.ptas_pre_n else limits.ptas_n)
  && I.num_classes inst <= limits.ptas_classes
  && I.m inst <= limits.ptas_machines

let split_ptas param =
  let guarantee t = Q.mul (Q.add Q.one (Q.mul (Q.of_int 5) (Common.delta param))) t in
  {
    name = "splittable/ptas";
    regime = Splittable;
    exact = false;
    ratio = Q.mul (guarantee Q.one) (Q.add Q.one (Common.delta param));
    scale_exact = true;
    perm_exact = false;
    mono_machines = false;
    witness_growth = Q.add Q.one (Common.delta param);
    applicable = (fun l inst -> ptas_gate l inst);
    run =
      (fun inst ->
        let sched, stats = Ccs.Ptas.Splittable_ptas.solve param inst in
        validated S.validate_splittable inst sched (fun mk ->
            let t = stats.Ccs.Ptas.Splittable_ptas.t_accepted in
            { makespan = mk; lower = ptas_lower param t; upper = guarantee t; witness = t }));
  }

let pre_ptas param =
  let guarantee t = Ccs.Ptas.Preemptive_ptas.guarantee param t in
  {
    name = "preemptive/ptas";
    regime = Preemptive;
    exact = false;
    ratio = Q.mul (guarantee Q.one) (Q.add Q.one (Common.delta param));
    scale_exact = true;
    perm_exact = false;
    mono_machines = false;
    witness_growth = Q.add Q.one (Common.delta param);
    applicable = (fun l inst -> ptas_gate ~pre:true l inst);
    run =
      (fun inst ->
        let sched, stats = Ccs.Ptas.Preemptive_ptas.solve param inst in
        validated S.validate_preemptive inst sched (fun mk ->
            let t = stats.Ccs.Ptas.Preemptive_ptas.t_accepted in
            { makespan = mk; lower = ptas_lower param t; upper = guarantee t; witness = t }));
  }

let np_ptas param =
  let guarantee t = Ccs.Ptas.Nonpreemptive_ptas.guarantee param t in
  {
    name = "nonpreemptive/ptas";
    regime = Nonpreemptive;
    exact = false;
    ratio = Q.mul (guarantee Q.one) (Q.add Q.one (Common.delta param));
    (* integer makespan grid: does not commute with scaling (201 vs 2*101) *)
    scale_exact = false;
    perm_exact = false;
    mono_machines = false;
    witness_growth = Q.add Q.one (Common.delta param);
    applicable = (fun l inst -> ptas_gate l inst);
    run =
      (fun inst ->
        let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve param inst in
        validated S.validate_nonpreemptive inst sched (fun mk ->
            let t = stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted in
            { makespan = Q.of_int mk; lower = ptas_lower param t; upper = guarantee t; witness = t }));
  }

let exact_run opt = { makespan = opt; lower = opt; upper = opt; witness = opt }

let split_milp =
  {
    name = "splittable/milp";
    regime = Splittable;
    exact = true;
    ratio = Q.one;
    scale_exact = true;
    perm_exact = true;
    mono_machines = true;
    witness_growth = Q.one;
    applicable = (fun l inst -> I.m inst * I.num_classes inst <= l.exact_cm);
    run =
      (fun inst ->
        match Ccs_exact.Splittable_opt.solve_schedule inst with
        | None -> Skipped "MILP budget or size"
        | Some (opt, sched) ->
            validated S.validate_splittable inst sched (fun mk ->
                { (exact_run opt) with makespan = mk }));
  }

let pre_milp =
  {
    name = "preemptive/milp";
    regime = Preemptive;
    exact = true;
    ratio = Q.one;
    scale_exact = true;
    perm_exact = true;
    mono_machines = true;
    witness_growth = Q.one;
    applicable = (fun l inst -> I.n inst * I.m inst <= l.exact_nm);
    run =
      (fun inst ->
        match Ccs_exact.Preemptive_opt.solve inst with
        | None -> Skipped "MILP budget or size"
        | Some (opt, sched) ->
            validated S.validate_preemptive inst sched (fun mk ->
                { (exact_run opt) with makespan = mk }));
  }

let np_bnb limits =
  {
    name = "nonpreemptive/bnb";
    regime = Nonpreemptive;
    exact = true;
    ratio = Q.one;
    scale_exact = true;
    perm_exact = true;
    mono_machines = true;
    witness_growth = Q.one;
    applicable = (fun l inst -> I.n inst <= l.bnb_n);
    run =
      (fun inst ->
        match Ccs_exact.Bnb.solve ~node_limit:limits.bnb_nodes inst with
        | None -> Skipped "B&B node budget"
        | Some (opt, sched) ->
            validated S.validate_nonpreemptive inst sched (fun mk ->
                { (exact_run (Q.of_int opt)) with makespan = Q.of_int mk }));
  }

let np_portfolio limits =
  {
    name = "nonpreemptive/portfolio";
    regime = Nonpreemptive;
    exact = true;
    ratio = Q.one;
    scale_exact = true;
    perm_exact = true;
    mono_machines = true;
    witness_growth = Q.one;
    (* shares the B&B gate: member 0 is the B&B itself and the race runs
       sequentially on the oracle's 1-worker pool, so this mostly exercises
       the proof-or-abstain contract against the other exact solvers *)
    applicable = (fun l inst -> I.n inst <= l.bnb_n);
    run =
      (fun inst ->
        match Ccs_exact.Portfolio.solve ~node_limit:limits.bnb_nodes inst with
        | None -> Skipped "unschedulable"
        | Some o when not o.Ccs_exact.Portfolio.proved -> Skipped "portfolio budgets"
        | Some o ->
            validated S.validate_nonpreemptive inst o.Ccs_exact.Portfolio.assignment
              (fun mk ->
                { (exact_run (Q.of_int o.Ccs_exact.Portfolio.makespan)) with
                  makespan = Q.of_int mk }));
  }

let np_brute =
  {
    name = "nonpreemptive/brute";
    regime = Nonpreemptive;
    exact = true;
    ratio = Q.one;
    scale_exact = true;
    perm_exact = true;
    mono_machines = true;
    witness_growth = Q.one;
    applicable = (fun l inst -> I.n inst <= l.brute_n && I.m inst <= 4);
    run =
      (fun inst ->
        match Ccs_exact.Bnb.brute_force inst with
        | None -> Skipped "unschedulable"
        | Some opt -> Solved (exact_run (Q.of_int opt)));
  }

let all ?(limits = default_limits) param =
  [
    split_approx;
    split_ptas param;
    split_milp;
    pre_approx;
    pre_ptas param;
    pre_milp;
    np_approx;
    np_ptas param;
    np_bnb limits;
    np_portfolio limits;
    np_brute;
  ]
