(* The invariant oracle: run every applicable solver on one instance,
   validate every schedule, and cross-check the certificates.

   Checks, in order:
   - "validator"  — a solver produced a schedule its regime validator rejects
   - "crash"      — a solver raised an unexpected exception
   - "guarantee"  — a makespan exceeds the bound certified by the solver's
                    own accepted guess (2T, 2T, LB + 4T/3, PTAS guarantees)
   - "regime-lb"  — a makespan is below the unconditional lower bound of its
                    regime (Lemma 1: sum p/m, resp. max(pmax, sum p/m))
   - "cross-lb"   — solver A's certified lower bound exceeds solver B's
                    makespan although regime(A) <= regime(B) in the
                    splittable <= preemptive <= non-preemptive order; with
                    exact solvers (lower = upper = OPT) this subsumes both
                    optimum-dominance and exact-vs-exact equality
   - "ratio"      — a makespan exceeds ratio * OPT against a same-regime
                    exact solver (2, 2, 7/3, and (1+O(delta)) for the PTASs)
   - "<t>/..."    — the same checks on a metamorphically transformed
                    instance (t in scale, permute, machines), plus the
                    equivariance comparisons of Morph. *)

module Q = Rat
module I = Ccs.Instance
module Common = Ccs.Ptas.Common

type violation = { check : string; solver : string; detail : string }

type tally = { name : string; solved : int; skipped : int }

let outcome_of limits (s : Solvers.solver) inst =
  if not (s.applicable limits inst) then None
  else
    Some
      (try s.run inst with
      | Common.Too_many -> Solvers.Skipped "configuration space too large"
      | Common.Budget_exceeded -> Solvers.Skipped "ILP node budget exceeded"
      | exn -> Solvers.Crashed (Printexc.to_string exn))

let qs = Q.to_string

(* Violations visible from one batch of runs on one instance (no transform
   comparisons): per-run certificates plus all pairwise cross-checks. *)
let batch_checks inst (runs : (Solvers.solver * Solvers.run) list) =
  let vs = ref [] in
  let add check solver detail = vs := { check; solver; detail } :: !vs in
  List.iter
    (fun ((s : Solvers.solver), (r : Solvers.run)) ->
      if Q.(r.Solvers.makespan > r.upper) then
        add "guarantee" s.name
          (Printf.sprintf "makespan %s exceeds certified bound %s (witness T=%s)"
             (qs r.makespan) (qs r.upper) (qs r.witness));
      let regime_lb =
        match s.regime with
        | Solvers.Splittable -> Ccs.Bounds.lb_splittable inst
        | Solvers.Preemptive | Solvers.Nonpreemptive -> Ccs.Bounds.lb_preemptive inst
      in
      if Q.(r.makespan < regime_lb) then
        add "regime-lb" s.name
          (Printf.sprintf "makespan %s below the regime lower bound %s" (qs r.makespan)
             (qs regime_lb)))
    runs;
  List.iter
    (fun ((si : Solvers.solver), (ri : Solvers.run)) ->
      List.iter
        (fun ((sj : Solvers.solver), (rj : Solvers.run)) ->
          if
            Solvers.regime_rank si.regime <= Solvers.regime_rank sj.regime
            && Q.(ri.Solvers.lower > rj.Solvers.makespan)
          then
            add "cross-lb" sj.name
              (Printf.sprintf
                 "%s certifies OPT(%s) >= %s, above the %s makespan %s"
                 si.name
                 (Solvers.regime_name si.regime)
                 (qs ri.lower) sj.name (qs rj.makespan)))
        runs)
    runs;
  List.iter
    (fun ((se : Solvers.solver), (re : Solvers.run)) ->
      if se.exact then
        List.iter
          (fun ((sa : Solvers.solver), (ra : Solvers.run)) ->
            if
              sa.regime = se.regime && (not sa.exact)
              && Q.(ra.Solvers.makespan > Q.mul sa.ratio re.Solvers.makespan)
            then
              add "ratio" sa.name
                (Printf.sprintf "makespan %s > %s * OPT (%s from %s)" (qs ra.makespan)
                   (qs sa.ratio) (qs re.makespan) se.name))
          runs)
    runs;
  List.rev !vs

let transform_tag = function
  | Morph.Scale _ -> "scale"
  | Morph.Permute _ -> "permute"
  | Morph.Add_machine -> "machines"

(* Equivariance comparisons between the base run and the run on the
   transformed instance; only invariants the solver actually promises
   (flags in Solvers) are enforced. *)
let compare_checks t (s : Solvers.solver) (r : Solvers.run) (r' : Solvers.run) add =
  match t with
  | Morph.Scale k ->
      if s.scale_exact then begin
        let kq = Q.of_int k in
        if not (Q.equal r'.Solvers.makespan (Q.mul kq r.Solvers.makespan)) then
          add "scale/equivariance" s.name
            (Printf.sprintf "makespan %s after scaling by %d, expected exactly %s"
               (qs r'.makespan) k
               (qs (Q.mul kq r.makespan)));
        if not (Q.equal r'.Solvers.witness (Q.mul kq r.Solvers.witness)) then
          add "scale/witness" s.name
            (Printf.sprintf "accepted guess %s after scaling by %d, expected %s"
               (qs r'.witness) k
               (qs (Q.mul kq r.witness)))
      end
  | Morph.Permute _ ->
      if not (Q.equal r'.Solvers.witness r.Solvers.witness) then
        add "permute/witness" s.name
          (Printf.sprintf "accepted guess changed under permutation: %s vs %s"
             (qs r.witness) (qs r'.witness));
      if s.perm_exact && not (Q.equal r'.Solvers.makespan r.Solvers.makespan) then
        add "permute/equivariance" s.name
          (Printf.sprintf "makespan changed under permutation: %s vs %s" (qs r.makespan)
             (qs r'.makespan))
  | Morph.Add_machine ->
      if s.mono_machines && Q.(r'.Solvers.makespan > r.Solvers.makespan) then
        add "machines/monotone" s.name
          (Printf.sprintf "makespan increased from %s to %s when a machine was added"
             (qs r.makespan) (qs r'.makespan));
      if Q.(r'.Solvers.witness > Q.mul s.witness_growth r.Solvers.witness) then
        add "machines/witness" s.name
          (Printf.sprintf
             "accepted guess grew from %s to %s (> %s x) when a machine was added"
             (qs r.witness) (qs r'.witness) (qs s.witness_growth))

let check_with ?(limits = Solvers.default_limits) ?(metamorphic = true) ~mseed ~solvers
    inst =
  let outcomes = List.map (fun s -> (s, outcome_of limits s inst)) solvers in
  let tallies =
    List.map
      (fun ((s : Solvers.solver), o) ->
        match o with
        | Some (Solvers.Solved _) -> { name = s.name; solved = 1; skipped = 0 }
        | Some (Solvers.Skipped _) -> { name = s.name; solved = 0; skipped = 1 }
        | _ -> { name = s.name; solved = 0; skipped = 0 })
      outcomes
  in
  let vs = ref [] in
  let add check solver detail = vs := { check; solver; detail } :: !vs in
  List.iter
    (fun ((s : Solvers.solver), o) ->
      match o with
      | Some (Solvers.Invalid e) -> add "validator" s.name e
      | Some (Solvers.Crashed e) -> add "crash" s.name e
      | _ -> ())
    outcomes;
  let runs =
    List.filter_map
      (function s, Some (Solvers.Solved r) -> Some (s, r) | _ -> None)
      outcomes
  in
  let base = batch_checks inst runs in
  let meta =
    if not metamorphic then []
    else
      List.concat_map
        (fun t ->
          let tag = transform_tag t in
          let inst' = Morph.apply t inst in
          let mvs = ref [] in
          let madd check solver detail = mvs := { check; solver; detail } :: !mvs in
          let runs' =
            List.filter_map
              (fun ((s : Solvers.solver), r) ->
                match outcome_of limits s inst' with
                | None | Some (Solvers.Skipped _) -> None
                | Some (Solvers.Invalid e) ->
                    madd (tag ^ "/validator") s.name
                      (Printf.sprintf "after %s: %s" (Morph.name t) e);
                    None
                | Some (Solvers.Crashed e) ->
                    madd (tag ^ "/crash") s.name
                      (Printf.sprintf "after %s: %s" (Morph.name t) e);
                    None
                | Some (Solvers.Solved r') ->
                    compare_checks t s r r' madd;
                    Some (s, r'))
              runs
          in
          let standalone =
            List.map
              (fun v -> { v with check = tag ^ "/" ^ v.check })
              (batch_checks inst' runs')
          in
          List.rev !mvs @ standalone)
        (Morph.probes ~mseed inst)
  in
  (tallies, List.rev !vs @ base @ meta)

let check ?(limits = Solvers.default_limits) ?metamorphic ~param ~mseed inst =
  check_with ~limits ?metamorphic ~mseed ~solvers:(Solvers.all ~limits param) inst
