(* Metamorphic transforms: semantics-preserving (or semantics-bounding)
   rewrites of an instance whose effect on the optimum — and, for the
   equivariant solvers, on the computed makespan — is known in advance.
   Scaling all processing times by k scales every schedule by k; permuting
   class ids and job order relabels schedules; adding a machine can only
   help. *)

module Q = Rat
module I = Ccs.Instance
module Prng = Ccs_util.Prng

type transform = Scale of int | Permute of int | Add_machine

let name = function
  | Scale k -> Printf.sprintf "scale x%d" k
  | Permute _ -> "permute classes/jobs"
  | Add_machine -> "add a machine"

let jobs_of inst = List.init (I.n inst) (fun i -> let j = I.job inst i in (j.I.p, j.I.cls))

let remake ?machines ?slots inst jobs =
  let machines = Option.value ~default:(I.m inst) machines in
  let slots = Option.value ~default:(I.c inst) slots in
  I.make ~machines ~slots jobs

let apply transform inst =
  match transform with
  | Scale k ->
      if k <= 0 then invalid_arg "Morph.apply: scale factor must be positive";
      remake inst (List.map (fun (p, cls) -> (p * k, cls)) (jobs_of inst))
  | Permute seed ->
      let rng = Prng.create seed in
      let perm = Array.init (I.num_classes inst) Fun.id in
      Prng.shuffle rng perm;
      let jobs =
        Array.of_list (List.map (fun (p, cls) -> (p, perm.(cls))) (jobs_of inst))
      in
      Prng.shuffle rng jobs;
      remake inst (Array.to_list jobs)
  | Add_machine -> remake ~machines:(I.m inst + 1) inst (jobs_of inst)

(* The transforms probed for one instance: one scale factor and one
   permutation drawn from [mseed], plus the extra machine. Scaling is
   skipped when the processing times are so large that the product could
   overflow native ints. *)
let probes ~mseed inst =
  let rng = Prng.create mseed in
  let k = [| 2; 3; 5 |].(Prng.int rng 3) in
  let pseed = Prng.next_int rng in
  let scale = if I.pmax inst <= max_int / (8 * k) then [ Scale k ] else [] in
  scale @ [ Permute pseed; Add_machine ]
