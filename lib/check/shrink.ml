(* Greedy instance shrinker: starting from a violating instance, repeatedly
   try the one-step reductions — drop a job, merge two classes, drop a
   machine, halve a processing time — and keep any reduction under which the
   violation persists, until a fixpoint (no candidate still violates) or the
   test budget runs out. The result is the instance printed in a repro. *)

module I = Ccs.Instance

let jobs_of = Morph.jobs_of

(* All one-step smaller, still-schedulable variants, most aggressive
   reductions first: fewer jobs, then fewer classes, then fewer machines,
   then smaller processing times. *)
let candidates inst =
  let m = I.m inst and c = I.c inst in
  let jobs = jobs_of inst in
  let n = List.length jobs in
  let build ?(machines = m) js =
    if js = [] then None
    else
      let inst' = I.make ~machines ~slots:c js in
      if I.schedulable inst' then Some inst' else None
  in
  let drop_job =
    if n <= 1 then []
    else List.init n (fun i -> build (List.filteri (fun k _ -> k <> i) jobs))
  in
  let merge_class =
    let nc = I.num_classes inst in
    if nc <= 1 then []
    else
      List.concat
        (List.init nc (fun u ->
             List.init u (fun v ->
                 build
                   (List.map (fun (p, cls) -> (p, (if cls = u then v else cls))) jobs))))
  in
  let drop_machine = if m <= 1 then [] else [ build ~machines:(m - 1) jobs ] in
  let halve_p =
    List.init n (fun i ->
        let p, _ = List.nth jobs i in
        if p < 2 then None
        else
          build (List.mapi (fun k (pk, ck) -> if k = i then (pk / 2, ck) else (pk, ck)) jobs))
  in
  List.filter_map Fun.id (drop_job @ merge_class @ drop_machine @ halve_p)

let shrink ?(max_tests = 300) ~violates inst =
  let tests = ref 0 in
  let keep inst' =
    !tests < max_tests
    && begin
         incr tests;
         violates inst'
       end
  in
  let rec loop inst =
    match List.find_opt keep (candidates inst) with
    | Some smaller -> loop smaller
    | None -> inst
  in
  loop inst
