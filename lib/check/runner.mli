(** The fuzzing loop: seeded random instances through the oracle, violations
    shrunk to self-contained repros. Index [i] of a run is checked with the
    PRNG stream [Prng.stream ~seed ~index:i], so any single violation
    replays from (seed, index) alone, and the batch parallelizes over the
    ambient {!Ccs_par} pool with bit-identical results at any pool size. *)

type config = {
  seed : int;
  count : int;
  param : Ccs.Ptas.Common.param;
  limits : Solvers.limits;
  metamorphic : bool;
  shrink : bool;
  max_n : int;  (** cap on generated instance size *)
  max_shrink_tests : int;
  family : Ccs.Generator.family option;
      (** [Some f] pins every instance to family [f] (the LP-stress sweep
          uses this); [None] draws the family per index *)
}

(** seed 1, count 100, PTAS delta = 1/2, metamorphic + shrinking on,
    family drawn per index. *)
val default_config : config

type case = {
  index : int;
  violation : Oracle.violation;
  instance : Ccs.Instance.t;  (** shrunk repro *)
  original : Ccs.Instance.t;
}

type report = {
  checked : int;
  tallies : Oracle.tally list;  (** aggregated per solver, registry order *)
  cases : case list;
}

(** The instance drawn for one index (exposed for tests and replay
    tooling); draws from [rng] exactly as the fuzzing loop does. The
    family draw happens even when [family] overrides it, so pinned and
    unpinned runs stay stream-aligned. *)
val gen_instance :
  ?family:Ccs.Generator.family -> Ccs_util.Prng.t -> max_n:int -> Ccs.Instance.t

(** One index of the loop: generate, check, shrink. [run] is exactly a
    parallel map of this over [0, count). *)
val check_index : config -> int -> Oracle.tally list * case list

val run : config -> report

(** Printable self-contained repro: violation, replay coordinates, and the
    shrunk instance in {!Ccs.Io} format. *)
val render_case : config -> case -> string
