(** The per-instance invariant oracle: run every applicable solver, validate
    every schedule, and cross-check certificates between solvers — within a
    regime, along the splittable <= preemptive <= non-preemptive dominance
    chain, against same-regime exact optima (ratios 2 / 2 / 7/3 and the PTAS
    guarantees), and under metamorphic transforms. *)

type violation = {
  check : string;
      (** stable id: "validator", "crash", "guarantee", "regime-lb",
          "cross-lb", "ratio", or "<scale|permute|machines>/..." for the
          metamorphic variants *)
  solver : string;
  detail : string;
}

type tally = { name : string; solved : int; skipped : int }

(** One solver on one instance: [None] when not applicable under [limits];
    exceptions mapped to [Skipped] (budget) or [Crashed]. *)
val outcome_of :
  Solvers.limits -> Solvers.solver -> Ccs.Instance.t -> Solvers.outcome option

(** [check ~param ~mseed inst] returns the per-solver outcome tally (base
    runs only) and all violations found. [mseed] seeds the metamorphic
    transform choices; keep it fixed while shrinking so the violation being
    chased does not move. *)
val check :
  ?limits:Solvers.limits ->
  ?metamorphic:bool ->
  param:Ccs.Ptas.Common.param ->
  mseed:int ->
  Ccs.Instance.t ->
  tally list * violation list

(** Same, over an explicit solver list — lets tests inject a deliberately
    broken solver and assert the oracle catches it. *)
val check_with :
  ?limits:Solvers.limits ->
  ?metamorphic:bool ->
  mseed:int ->
  solvers:Solvers.solver list ->
  Ccs.Instance.t ->
  tally list * violation list
