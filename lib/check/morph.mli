(** Metamorphic transforms with a known effect on the optimum: scaling all
    processing times by k scales every schedule by k, permuting class ids
    and job order only relabels schedules, and adding a machine can only
    help. *)

type transform =
  | Scale of int
  | Permute of int  (** seed of the class/job permutation *)
  | Add_machine

val name : transform -> string

(** The instance as a job list, for rebuilding variants. *)
val jobs_of : Ccs.Instance.t -> (int * int) list

(** [apply t inst] — always produces a well-formed, schedulable instance
    when [inst] is schedulable. *)
val apply : transform -> Ccs.Instance.t -> Ccs.Instance.t

(** The transforms probed for one instance: one scale factor and one
    permutation derived from [mseed], plus [Add_machine]. Scaling is omitted
    when the processing times are large enough to risk overflow. *)
val probes : mseed:int -> Ccs.Instance.t -> transform list
