(** Greedy repro shrinker: drop jobs, merge classes, drop machines and halve
    processing times while [violates] keeps holding, to a fixpoint or until
    [max_tests] probes were spent. Every candidate it tries (and therefore
    the result) is well-formed and schedulable. *)

(** One-step smaller variants, most aggressive reductions first (exposed for
    tests). *)
val candidates : Ccs.Instance.t -> Ccs.Instance.t list

val shrink :
  ?max_tests:int ->
  violates:(Ccs.Instance.t -> bool) ->
  Ccs.Instance.t ->
  Ccs.Instance.t
