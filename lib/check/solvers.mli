(** Registry of all solvers of the reproduction, with the certificates the
    differential oracle cross-checks: per run a validated makespan, a
    certified lower bound on the regime optimum, and a certified upper bound
    on the makespan; per solver the invariance flags the metamorphic checks
    may rely on. *)

type regime = Splittable | Preemptive | Nonpreemptive

val regime_name : regime -> string

(** Position in the dominance chain
    [OPT_splittable <= OPT_preemptive <= OPT_nonpreemptive]. *)
val regime_rank : regime -> int

type run = {
  makespan : Rat.t;  (** as recomputed by the Schedule validator *)
  lower : Rat.t;  (** certified lower bound on this regime's optimum *)
  upper : Rat.t;  (** certified upper bound on this run's makespan *)
  witness : Rat.t;  (** accepted guess T (the optimum itself when exact) *)
}

type outcome =
  | Solved of run
  | Skipped of string  (** solver declined (budget, size) — not a violation *)
  | Invalid of string  (** the regime validator rejected the schedule *)
  | Crashed of string  (** unexpected exception *)

(** Applicability gates: the exact solvers and PTASs only run on instances
    small enough for the fuzz budget. *)
type limits = {
  ptas_n : int;
  ptas_pre_n : int;  (** the preemptive PTAS (layers + flows) is the heaviest *)
  ptas_classes : int;
  ptas_machines : int;
  exact_cm : int;  (** splittable MILP: cap on C * m *)
  exact_nm : int;  (** preemptive MILP: cap on n * m *)
  bnb_n : int;
  bnb_nodes : int;
  brute_n : int;
}

val default_limits : limits

type solver = {
  name : string;
  regime : regime;
  exact : bool;
  ratio : Rat.t;  (** certified worst-case makespan / same-regime optimum *)
  scale_exact : bool;  (** makespan commutes exactly with scaling all p_j *)
  perm_exact : bool;  (** makespan invariant under class-id/job permutation *)
  mono_machines : bool;  (** adding a machine never increases the makespan *)
  witness_growth : Rat.t;
      (** adding a machine keeps [witness' <= witness_growth * witness] *)
  applicable : limits -> Ccs.Instance.t -> bool;
  run : Ccs.Instance.t -> outcome;
}

(** All eleven solvers (three regimes x approx/PTAS/exact, plus the exact
    non-preemptive portfolio race and the brute-force reference), at PTAS
    accuracy [param]. *)
val all : ?limits:limits -> Ccs.Ptas.Common.param -> solver list
