(* The fuzzing loop: for each index in [0, count) derive an independent PRNG
   stream from the base seed, draw a random instance family/shape, run the
   oracle, and shrink any violation to a self-contained repro. Indices are
   independent, so the batch parallelizes over the ambient Ccs_par pool with
   bit-identical results at any pool size. *)

module Q = Rat
module I = Ccs.Instance
module Prng = Ccs_util.Prng
module Common = Ccs.Ptas.Common

type config = {
  seed : int;
  count : int;
  param : Common.param;
  limits : Solvers.limits;
  metamorphic : bool;
  shrink : bool;
  max_n : int;
  max_shrink_tests : int;
  family : Ccs.Generator.family option;
}

let default_config =
  {
    seed = 1;
    count = 100;
    param = Common.param 2;
    limits = Solvers.default_limits;
    metamorphic = true;
    shrink = true;
    max_n = 24;
    max_shrink_tests = 300;
    family = None;
  }

type case = {
  index : int;  (** which instance of the run (combine with seed to replay) *)
  violation : Oracle.violation;
  instance : I.t;  (** shrunk repro *)
  original : I.t;
}

type report = {
  checked : int;
  tallies : Oracle.tally list;  (** aggregated per solver, in registry order *)
  cases : case list;
}

let families = [| Ccs.Generator.Uniform; Zipf; Heavy_classes; Large_jobs; Lp_stress; Bnb_stress |]

(* Mostly small processing times (where the combinatorics live), sometimes
   large ones (where overflow bugs live). *)
let draw_p_hi rng =
  match Prng.int rng 20 with
  | 0 -> 1_000_000_000_000
  | 1 | 2 -> 1_000_000
  | k when k < 9 -> 1000
  | k when k < 15 -> 100
  | _ -> 10

let gen_instance ?family rng ~max_n =
  (* draw the family even when pinned, so pinned and unpinned runs consume
     the same PRNG stream and an index replays identically in both *)
  let drawn = families.(Prng.int rng (Array.length families)) in
  let spec =
    {
      Ccs.Generator.n = 1 + Prng.int rng max_n;
      classes = 1 + Prng.int rng 8;
      machines = 1 + Prng.int rng 6;
      slots = 1 + Prng.int rng 4;
      p_lo = 1;
      p_hi = draw_p_hi rng;
      family = (match family with Some f -> f | None -> drawn);
    }
  in
  let inst = Ccs.Generator.generate ~seed:(Prng.next_int rng) spec in
  if I.schedulable inst then inst
  else begin
    (* bump the machine count to the least schedulable value *)
    let needed = (I.num_classes inst + I.c inst - 1) / I.c inst in
    I.make ~machines:needed ~slots:(I.c inst) (Morph.jobs_of inst)
  end

(* Checks that implicate a single solver; chasing one during shrinking only
   needs that solver re-run. "cross-lb" and "ratio" compare pairs and keep
   the full registry. *)
let single_solver_check check =
  let kind =
    match String.index_opt check '/' with
    | None -> check
    | Some i -> String.sub check (i + 1) (String.length check - i - 1)
  in
  match kind with
  | "validator" | "crash" | "guarantee" | "regime-lb" | "equivariance" | "witness"
  | "monotone" ->
      true
  | _ -> false

let check_index config index =
  let rng = Prng.stream ~seed:config.seed ~index in
  let inst = gen_instance ?family:config.family rng ~max_n:config.max_n in
  let mseed = Prng.next_int rng in
  let solvers = Solvers.all ~limits:config.limits config.param in
  let tallies, violations =
    Oracle.check_with ~limits:config.limits ~metamorphic:config.metamorphic ~mseed
      ~solvers inst
  in
  let to_shrink = List.filteri (fun i _ -> i < 3) violations in
  let cases =
    List.map
      (fun (v : Oracle.violation) ->
        let instance =
          if not config.shrink then inst
          else begin
            (* Each shrinker probe re-runs the oracle, so narrow it to what
               can reproduce this violation: only the implicated solver when
               the check is single-solver, and metamorphic probes only when
               the check is a metamorphic one. *)
            let solvers =
              if single_solver_check v.Oracle.check then
                List.filter
                  (fun (s : Solvers.solver) -> s.Solvers.name = v.Oracle.solver)
                  solvers
              else solvers
            in
            let metamorphic = String.contains v.Oracle.check '/' in
            let violates inst' =
              let _, vs' =
                Oracle.check_with ~limits:config.limits ~metamorphic ~mseed ~solvers
                  inst'
              in
              List.exists
                (fun (v' : Oracle.violation) ->
                  v'.Oracle.check = v.Oracle.check && v'.Oracle.solver = v.Oracle.solver)
                vs'
            in
            Shrink.shrink ~max_tests:config.max_shrink_tests ~violates inst
          end
        in
        { index; violation = v; instance; original = inst })
      to_shrink
  in
  (tallies, cases)

let merge_tallies per_index =
  match per_index with
  | [] -> []
  | first :: _ ->
      List.mapi
        (fun i (t : Oracle.tally) ->
          List.fold_left
            (fun acc ts ->
              let t = List.nth ts i in
              {
                acc with
                Oracle.solved = acc.Oracle.solved + t.Oracle.solved;
                skipped = acc.Oracle.skipped + t.Oracle.skipped;
              })
            { t with Oracle.solved = 0; skipped = 0 }
            per_index)
        first

let run config =
  let results =
    Ccs_par.parallel_mapi
      (fun index () -> check_index config index)
      (Array.make config.count ())
  in
  let tallies = merge_tallies (Array.to_list (Array.map fst results)) in
  let cases = List.concat (Array.to_list (Array.map snd results)) in
  { checked = config.count; tallies; cases }

(* A self-contained repro: the violation, the exact replay coordinates, and
   the shrunk instance in Io format (feed it to ccs_solve, or replay the
   whole index with ccs_fuzz --seed S --count I+1). *)
let render_case config (c : case) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "violation [%s] in %s (seed %d, instance index %d)\n"
    c.violation.Oracle.check c.violation.Oracle.solver config.seed c.index;
  Printf.bprintf buf "  %s\n" c.violation.Oracle.detail;
  Printf.bprintf buf "  replay: ccs_fuzz --seed %d --count %d   # instance index %d\n"
    config.seed (c.index + 1) c.index;
  Printf.bprintf buf "  shrunk instance (%d of originally %d jobs):\n" (I.n c.instance)
    (I.n c.original);
  String.split_on_char '\n' (Ccs.Io.to_string c.instance)
  |> List.iter (fun line -> if line <> "" then Printf.bprintf buf "    %s\n" line);
  Buffer.contents buf
