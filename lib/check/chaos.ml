module Q = Rat
module Prng = Ccs_util.Prng
module Mono = Ccs_util.Mono
module Deadline = Ccs_resil.Deadline
module Faults = Ccs_resil.Faults
module Outcome = Ccs_resil.Outcome
module Driver = Ccs_anytime.Driver
module Schedule = Ccs.Schedule

type config = {
  seed : int;
  count : int;
  param : Ccs.Ptas.Common.param;
  max_n : int;
  deadline_ms : int option;
  faults : bool;
  cancel_ppm : int;
  raise_ppm : int;
  delay_ppm : int;
  node_limit : int;
  family : Ccs.Generator.family option;
  portfolio : bool;
}

let default_config =
  {
    seed = 1;
    count = 100;
    param = Ccs.Ptas.Common.param 2;
    max_n = 20;
    deadline_ms = None;
    faults = false;
    cancel_ppm = 1000;
    raise_ppm = 500;
    delay_ppm = 500;
    node_limit = 50_000;
    family = None;
    portfolio = false;
  }

type failure = { index : int; regime : string; reason : string }

type report = {
  runs : int;
  complete : int;
  degraded : int;
  phases : (string * int) list;
  max_overshoot_ms : float;
  failures : failure list;
}

(* One outcome checked down to the validator: the incumbent must be a
   schedule the regime validator accepts, its recorded makespan must be the
   validator's, the certified lower bound must not exceed it, and the
   ratio must be their exact quotient. Returns the reasons that fail. *)
let check_outcome validate outcome =
  let check_solved what (s : _ Driver.solved) =
    match validate s.Driver.schedule with
    | Error e -> [ Printf.sprintf "%s schedule invalid: %s" what e ]
    | Ok mk ->
        if Q.equal mk s.Driver.makespan then []
        else
          [ Printf.sprintf "%s makespan mismatch: recorded %s, validator %s" what
              (Q.to_string s.Driver.makespan) (Q.to_string mk) ]
  in
  match outcome with
  | Outcome.Complete s -> check_solved "complete" s
  | Outcome.Degraded d -> (
      match d.Outcome.incumbent with
      | None -> [ "degraded without incumbent (the fallback rung cannot fail)" ]
      | Some s ->
          check_solved ("degraded@" ^ d.Outcome.phase_reached) s
          @ (if Q.(d.Outcome.lower_bound <= s.Driver.makespan) then []
             else
               [ Printf.sprintf "lower bound %s above incumbent makespan %s"
                   (Q.to_string d.Outcome.lower_bound) (Q.to_string s.Driver.makespan) ])
          @
          (match d.Outcome.ratio_bound with
          | None when Q.sign d.Outcome.lower_bound > 0 -> [ "missing ratio_bound" ]
          | None -> []
          | Some r ->
              if Q.equal r Q.(s.Driver.makespan / d.Outcome.lower_bound) then []
              else [ "ratio_bound is not makespan / lower_bound" ]))

let regimes = [ "splittable"; "preemptive"; "nonpreemptive" ]

let run config =
  let runs = ref 0 and complete = ref 0 and degraded = ref 0 in
  let phases : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let max_over = ref 0.0 in
  let failures = ref [] in
  let fail index regime reason = failures := { index; regime; reason } :: !failures in
  for index = 0 to config.count - 1 do
    let inst =
      Runner.gen_instance ?family:config.family
        (Prng.stream ~seed:config.seed ~index)
        ~max_n:config.max_n
    in
    List.iteri
      (fun k regime ->
        incr runs;
        (* One fault stream per (instance, regime) so a failure replays
           from its printed coordinates alone. *)
        if config.faults then
          Faults.arm
            (Faults.Rate
               {
                 seed = (config.seed * 1_000_003) + (3 * index) + k;
                 cancel_ppm = config.cancel_ppm;
                 raise_ppm = config.raise_ppm;
                 delay_ppm = config.delay_ppm;
                 delay_s = 0.0002;
               });
        let deadline = Option.map Deadline.of_budget_ms config.deadline_ms in
        let limit = Option.bind deadline Deadline.limit_ns in
        let tally = function
          | Outcome.Complete _ -> incr complete
          | Outcome.Degraded d ->
              incr degraded;
              let c =
                match Hashtbl.find_opt phases d.Outcome.phase_reached with
                | Some c -> c
                | None ->
                    let c = ref 0 in
                    Hashtbl.add phases d.Outcome.phase_reached c;
                    c
              in
              incr c
        in
        (* Nothing may escape the ladder — a [Degraded] value is the only
           acceptable way for a deadline or fault to surface. *)
        let solve_checked validate solve =
          match solve () with
          | o ->
              tally (Outcome.map (fun _ -> ()) o);
              check_outcome validate o
          | exception e ->
              [ Printf.sprintf "exception escaped the ladder: %s" (Printexc.to_string e) ]
        in
        let param = config.param and node_limit = config.node_limit in
        let result =
          Fun.protect ~finally:Faults.disarm (fun () ->
              match regime with
              | "splittable" ->
                  solve_checked
                    (Schedule.validate_splittable inst)
                    (fun () -> Driver.solve_splittable ?deadline ~param ~node_limit inst)
              | "preemptive" ->
                  solve_checked
                    (Schedule.validate_preemptive inst)
                    (fun () -> Driver.solve_preemptive ?deadline ~param ~node_limit inst)
              | _ ->
                  solve_checked
                    (fun a -> Result.map Q.of_int (Schedule.validate_nonpreemptive inst a))
                    (fun () ->
                      Driver.solve_nonpreemptive ?deadline ~param ~node_limit
                        ~portfolio:config.portfolio inst))
        in
        (match limit with
        | Some l ->
            let over = float_of_int (max 0 (Mono.now_ns () - l)) /. 1e6 in
            if over > !max_over then max_over := over
        | None -> ());
        List.iter (fail index regime) result;
        if Ccs_obs.Span.open_depth () <> 0 then
          fail index regime
            (Printf.sprintf "span stack unbalanced: %d open" (Ccs_obs.Span.open_depth ())))
      regimes
  done;
  {
    runs = !runs;
    complete = !complete;
    degraded = !degraded;
    phases =
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) phases [] |> List.sort compare;
    max_overshoot_ms = !max_over;
    failures = List.rev !failures;
  }

let render_failure config f =
  Printf.sprintf "chaos failure: seed %d index %d regime %s: %s\n" config.seed f.index f.regime
    f.reason
