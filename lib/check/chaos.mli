(** Chaos sweep: the degradation ladder under deadlines and injected
    faults.

    Each index draws one seeded instance (the same stream the differential
    fuzzer uses) and runs the {!Ccs_anytime.Driver} ladder in all three
    regimes, optionally under a per-run deadline and a seeded
    {!Ccs_resil.Faults} rate plan. Whatever the deadline or the faults do
    to the solvers, every run must end in a [Complete] result or a clean
    [Degraded] value whose incumbent passes the regime validator and whose
    certified lower bound does not exceed the incumbent's makespan — and
    must leave the observability span stack balanced. Anything else is a
    failure, printed as a replayable (seed, index, regime) coordinate.

    Runs are sequential by design: fault ordinals are claimed from one
    global counter, so a fixed seed replays the same fault at the same
    checkpoint only when nothing else interleaves. *)

type config = {
  seed : int;
  count : int;  (** instances; each runs the ladder in all three regimes *)
  param : Ccs.Ptas.Common.param;
  max_n : int;
  deadline_ms : int option;  (** per-run budget; [None] = no deadline *)
  faults : bool;  (** arm a seeded [Rate] plan around every run *)
  cancel_ppm : int;
  raise_ppm : int;
  delay_ppm : int;
  node_limit : int;  (** exact-rung budget, kept small for sweep speed *)
  family : Ccs.Generator.family option;
      (** pin every instance to one workload family (e.g. [Bnb_stress] to
          hammer the conflict-driven search under faults); [None] draws it
          per index like the differential fuzzer *)
  portfolio : bool;  (** race the exact-rung portfolio instead of the lone B&B *)
}

(** seed 1, count 100, delta 1/2, max_n 20, no deadline, faults off,
    1000/500/500 ppm, 50_000 nodes, no pinned family, no portfolio. *)
val default_config : config

type failure = { index : int; regime : string; reason : string }

type report = {
  runs : int;  (** driver invocations (3 per index) *)
  complete : int;
  degraded : int;
  phases : (string * int) list;  (** degraded runs per ladder phase reached *)
  max_overshoot_ms : float;  (** worst observed deadline overshoot *)
  failures : failure list;
}

val run : config -> report
val render_failure : config -> failure -> string
