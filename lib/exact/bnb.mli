(** Exact branch & bound for non-preemptive CCS.

    Ground truth for measured approximation ratios (experiments E3, E7).
    A conflict-driven depth-first search: jobs are assigned in
    activity-ordered sequence with load/area/class-slot pruning, learned
    no-goods over canonical (machine load + class-set, remaining job
    multiset) states in a bounded store, failed-placement probing at the
    root (jobs with a single feasible machine are forced there before the
    search starts; a job with none proves the warm-start incumbent
    optimal), Luby restarts that keep the learned store, and full
    identical-machine symmetry breaking (machines with equal load and
    class set are interchangeable, not just empty ones). Exponential,
    intended for n up to ~20. *)

(** How far a search got. The search warm-starts from the 7/3
    approximation, so a valid incumbent exists from the first node on. *)
type status =
  | Complete  (** incumbent is optimal *)
  | Node_limit  (** budget exhausted; incumbent is the best found *)
  | Interrupted of exn  (** ambient deadline cancelled the search *)

(** What a search run yields even when it cannot finish: the incumbent, the
    best proven lower bound on the optimum (equal to [makespan] iff
    [status] is [Complete]), and the node count. Mirrors the anytime
    [Degraded] contract: an exhausted budget is a weaker answer, not no
    answer. *)
type result = {
  makespan : int;
  assignment : Ccs.Schedule.nonpreemptive;
  lower_bound : int;
  status : status;
  nodes : int;
}

(** [solve_result inst] never returns [None] for a schedulable instance and
    never raises on cancellation — the incumbent plus proven bound survive
    any interruption. [None] only for unschedulable instances.
    [nogood_limit] caps the learned store (it is cleared on overflow);
    [restart_unit] is the Luby base in nodes, [0] disables restarts. Both
    knobs change only the search trajectory, never the answer — the
    property suite pins the makespan against {!brute_force} under
    adversarial settings for both. *)
val solve_result :
  ?node_limit:int ->
  ?nogood_limit:int ->
  ?restart_unit:int ->
  Ccs.Instance.t ->
  result option

(** [solve ?node_limit inst] returns the optimal makespan and an optimal
    assignment, or [None] if the node limit was exhausted before the search
    completed (the incumbent may then not be optimal) or the instance is
    unschedulable. Re-raises {!Ccs_resil.Deadline.Cancelled} if the ambient
    deadline expires mid-search; use {!solve_result} to recover the
    incumbent instead. *)
val solve : ?node_limit:int -> Ccs.Instance.t -> (int * Ccs.Schedule.nonpreemptive) option

(** Anytime variant: always returns the best incumbent together with its
    status ([None] only for unschedulable instances). Never raises on
    cancellation — the degradation ladder consumes the incumbent. *)
val solve_status :
  ?node_limit:int -> Ccs.Instance.t -> (int * Ccs.Schedule.nonpreemptive * status) option

(** Exhaustive reference (every class-feasible assignment, no makespan
    pruning) for cross-checking the pruned search on tiny instances. Loads
    and class counts are maintained incrementally and a deadline checkpoint
    runs at every node, so oracles built on it cannot hang. *)
val brute_force : Ccs.Instance.t -> int option
