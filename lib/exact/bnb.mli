(** Exact branch & bound for non-preemptive CCS.

    Ground truth for measured approximation ratios (experiments E3, E7).
    Depth-first search assigning jobs in non-increasing size order with
    load/area pruning, class-slot pruning and empty-machine symmetry
    breaking. Exponential, intended for n up to ~16. *)

(** [solve ?node_limit inst] returns the optimal makespan and an optimal
    assignment, or [None] if the node limit was exhausted before the search
    completed (the incumbent may then not be optimal) or the instance is
    unschedulable. Re-raises {!Ccs_resil.Deadline.Cancelled} if the ambient
    deadline expires mid-search; use {!solve_status} to recover the
    incumbent instead. *)
val solve : ?node_limit:int -> Ccs.Instance.t -> (int * Ccs.Schedule.nonpreemptive) option

(** How far a search got. The search warm-starts from the 7/3
    approximation, so a valid incumbent exists from the first node on. *)
type status =
  | Complete  (** incumbent is optimal *)
  | Node_limit  (** budget exhausted; incumbent is the best found *)
  | Interrupted of exn  (** ambient deadline cancelled the search *)

(** Anytime variant: always returns the best incumbent together with its
    status ([None] only for unschedulable instances). Never raises on
    cancellation — the degradation ladder consumes the incumbent. *)
val solve_status :
  ?node_limit:int -> Ccs.Instance.t -> (int * Ccs.Schedule.nonpreemptive * status) option

(** Exhaustive reference (every assignment, no pruning) for cross-checking
    the pruned search on tiny instances. *)
val brute_force : Ccs.Instance.t -> int option
