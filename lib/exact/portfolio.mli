(** A racing portfolio of exact non-preemptive solvers.

    Three members run on the ambient {!Ccs_par} pool in fixed priority
    order — the conflict-driven {!Bnb}, an exact configuration-ILP (binary
    search on the integral makespan, each probe decided by {!Ilp}), and an
    exact N-fold program with one brick per machine ({!Nfold.solve_ilp}).
    A member returns only a {e proof} (an optimal assignment) or abstains
    when its budget runs out, and {!Ccs_par.parallel_find_first} picks the
    lowest-index proof — so the winner, makespan and assignment are
    bit-identical at any [--jobs], and always agree with a sequential run
    of the members in order. The members are complementary: the B&B wins
    on instances with many distinct job sizes, the ILP members on
    palette-style instances (few types, many interchangeable jobs) whose
    combinatorial search space is deep but whose configuration space is
    tiny. *)

type outcome = {
  makespan : int;  (** optimal iff [proved] *)
  assignment : Ccs.Schedule.nonpreemptive;
  winner : string;
      (** ["bnb"], ["config_ilp"], ["nfold"], or ["none"] when every member
          abstained (the warm-start incumbent is returned) *)
  proved : bool;
  lower_bound : int;  (** best proven bound; [= makespan] iff [proved] *)
}

(** [None] only for unschedulable instances. [node_limit] budgets the B&B
    member; [max_configs] and [ilp_nodes] budget the configuration
    enumeration and the exact MILP probes of the other two. Re-raises
    {!Ccs_resil.Deadline.Cancelled} if the ambient deadline expires
    mid-race (members are cancelled through their pool child tokens). *)
val solve :
  ?node_limit:int ->
  ?max_configs:int ->
  ?ilp_nodes:int ->
  Ccs.Instance.t ->
  outcome option
