let m_solves = Ccs_obs.Metrics.counter "bnb.solves"
let m_nodes = Ccs_obs.Metrics.counter "bnb.nodes"
let m_prune_area = Ccs_obs.Metrics.counter "bnb.prunes_area"
let m_incumbents = Ccs_obs.Metrics.counter "bnb.incumbents"
let m_limit_hits = Ccs_obs.Metrics.counter "bnb.node_limit_hits"

(* Node expansions run at millions per second, so the checkpoint is a hot
   site (amortized clock read). *)
let chk_node = Ccs_resil.Deadline.site ~hot:true "bnb.node"

(* The search warm-starts from the 7/3 approximation, so an incumbent
   exists from node zero: interrupting the search at any point still
   yields a valid schedule, just a possibly sub-optimal one. *)
type status = Complete | Node_limit | Interrupted of exn

let solve_ids = Atomic.make 0

let solve_status ?(node_limit = 50_000_000) inst =
  if not (Ccs.Instance.schedulable inst) then None
  else begin
    let ord = Atomic.fetch_and_add solve_ids 1 in
    let n = Ccs.Instance.n inst in
    let m = min (Ccs.Instance.m inst) n in
    let c = Ccs.Instance.c inst in
    (* jobs sorted non-increasing: big jobs branch first *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare (Ccs.Instance.job inst b).Ccs.Instance.p (Ccs.Instance.job inst a).Ccs.Instance.p)
      order;
    let p = Array.map (fun i -> (Ccs.Instance.job inst i).Ccs.Instance.p) order in
    let cls = Array.map (fun i -> (Ccs.Instance.job inst i).Ccs.Instance.cls) order in
    (* suffix sums for the area bound *)
    let suffix = Array.make (n + 1) 0 in
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) + p.(i)
    done;
    (* warm start from the 7/3 algorithm *)
    let start, _ = Ccs.Approx.Nonpreemptive.solve inst in
    let best = ref (Ccs.Schedule.nonpreemptive_makespan inst start) in
    let best_assignment = ref (Array.copy start) in
    (* the warm start is incumbent zero of this solve's gap trace *)
    Ccs_obs.Recorder.incumbent ~src:"bnb" ~solve:ord (float_of_int !best);
    let loads = Array.make m 0 in
    let class_count = Array.make m 0 in
    let class_used = Array.init m (fun _ -> Hashtbl.create 4) in
    let assignment = Array.make n (-1) in
    let nodes = ref 0 in
    let prunes = ref 0 in
    let incumbents = ref 0 in
    let exception Limit in
    let rec go idx current_max =
      Ccs_resil.Deadline.check chk_node;
      incr nodes;
      if !nodes > node_limit then raise Limit;
      if current_max < !best then begin
        if idx = n then begin
          best := current_max;
          incr incumbents;
          Ccs_obs.Recorder.incumbent ~src:"bnb" ~solve:ord
            (float_of_int current_max);
          Ccs_obs.Log.debug (fun log ->
              log
                ~fields:
                  [ Ccs_obs.Log.int "makespan" current_max;
                    Ccs_obs.Log.int "nodes" !nodes ]
                "bnb.incumbent");
          let out = Array.make n 0 in
          for k = 0 to n - 1 do
            out.(order.(k)) <- assignment.(k)
          done;
          best_assignment := out
        end
        else begin
          (* area bound: remaining work must fit under best-1 *)
          let slack = ref 0 in
          for k = 0 to m - 1 do
            slack := !slack + max 0 (!best - 1 - loads.(k))
          done;
          if !slack < suffix.(idx) then incr prunes
          else begin
            let tried_empty = ref false in
            for k = 0 to m - 1 do
              let empty = loads.(k) = 0 in
              (* symmetry: identical empty machines — try only the first *)
              if (not empty) || not !tried_empty then begin
                if empty then tried_empty := true;
                let known = Hashtbl.mem class_used.(k) cls.(idx) in
                if (known || class_count.(k) < c) && loads.(k) + p.(idx) < !best then begin
                  loads.(k) <- loads.(k) + p.(idx);
                  if not known then begin
                    Hashtbl.replace class_used.(k) cls.(idx) ();
                    class_count.(k) <- class_count.(k) + 1
                  end;
                  assignment.(idx) <- k;
                  go (idx + 1) (max current_max loads.(k));
                  loads.(k) <- loads.(k) - p.(idx);
                  if not known then begin
                    Hashtbl.remove class_used.(k) cls.(idx);
                    class_count.(k) <- class_count.(k) - 1
                  end;
                  assignment.(idx) <- -1
                end
              end
            done
          end
        end
      end
    in
    let finish result =
      Ccs_obs.Metrics.incr m_solves;
      Ccs_obs.Metrics.add m_nodes !nodes;
      Ccs_obs.Metrics.add m_prune_area !prunes;
      Ccs_obs.Metrics.add m_incumbents !incumbents;
      Ccs_obs.Log.debug (fun log ->
          log
            ~fields:
              [ Ccs_obs.Log.int "n" n;
                Ccs_obs.Log.int "m" m;
                Ccs_obs.Log.int "nodes" !nodes;
                Ccs_obs.Log.int "prunes_area" !prunes;
                Ccs_obs.Log.bool "complete" (result = Complete) ]
            "bnb.solve");
      Some (!best, !best_assignment, result)
    in
    Ccs_obs.Recorder.phase "exact"
    @@ fun () ->
    Ccs_obs.Span.with_ "bnb.solve"
      ~fields:[ Ccs_obs.Log.int "n" n; Ccs_obs.Log.int "m" m ]
      (fun () ->
        match go 0 0 with
        | () -> finish Complete
        | exception Limit ->
            Ccs_obs.Metrics.incr m_limit_hits;
            finish Node_limit
        | exception (Ccs_resil.Deadline.Cancelled _ as e) -> finish (Interrupted e))
  end

let solve ?node_limit inst =
  match solve_status ?node_limit inst with
  | None -> None
  | Some (mk, a, Complete) -> Some (mk, a)
  | Some (_, _, Node_limit) -> None
  | Some (_, _, Interrupted e) -> raise e

let brute_force inst =
  let n = Ccs.Instance.n inst in
  let m = min (Ccs.Instance.m inst) n in
  if n > 10 then invalid_arg "Bnb.brute_force: too large";
  let assignment = Array.make n 0 in
  let best = ref None in
  let rec go idx =
    if idx = n then begin
      match Ccs.Schedule.validate_nonpreemptive inst (Array.copy assignment) with
      | Ok mk -> (
          match !best with
          | Some b when b <= mk -> ()
          | _ -> best := Some mk)
      | Error _ -> ()
    end
    else
      for k = 0 to m - 1 do
        assignment.(idx) <- k;
        go (idx + 1)
      done
  in
  go 0;
  !best
