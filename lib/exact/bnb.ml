let m_solves = Ccs_obs.Metrics.counter "bnb.solves"
let m_nodes = Ccs_obs.Metrics.counter "bnb.nodes"
let m_prune_area = Ccs_obs.Metrics.counter "bnb.prunes_area"
let m_prune_slots = Ccs_obs.Metrics.counter "bnb.prunes_slots"
let m_incumbents = Ccs_obs.Metrics.counter "bnb.incumbents"
let m_limit_hits = Ccs_obs.Metrics.counter "bnb.node_limit_hits"

let m_nogoods = Ccs_obs.Metrics.counter "bnb.nogoods"
    ~help:"No-good states recorded by the conflict-driven search"

let m_nogood_hits = Ccs_obs.Metrics.counter "bnb.nogood_hits"
    ~help:"Nodes pruned by a previously learned no-good"

let m_nogood_resets = Ccs_obs.Metrics.counter "bnb.nogood_resets"
    ~help:"Times the bounded no-good store overflowed and was cleared"

let m_probe_failed = Ccs_obs.Metrics.counter "bnb.probe_failed"
    ~help:"Failed (job, machine) placement probes at the root"

let m_probe_forced = Ccs_obs.Metrics.counter "bnb.probe_forced"
    ~help:"Placements forced by root probing (single feasible machine)"

let m_restarts = Ccs_obs.Metrics.counter "bnb.restarts"

(* Node expansions run at millions per second, so the checkpoint is a hot
   site (amortized clock read). *)
let chk_node = Ccs_resil.Deadline.site ~hot:true "bnb.node"
let chk_brute = Ccs_resil.Deadline.site ~hot:true "bnb.brute"

(* The search warm-starts from the 7/3 approximation, so an incumbent
   exists from node zero: interrupting the search at any point still
   yields a valid schedule, just a possibly sub-optimal one. *)
type status = Complete | Node_limit | Interrupted of exn

type result = {
  makespan : int;
  assignment : Ccs.Schedule.nonpreemptive;
  lower_bound : int;
  status : status;
  nodes : int;
}

let solve_ids = Atomic.make 0

(* Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1) else luby (i - (1 lsl (!k - 1)) + 1)

(* Subtrees this shallow are cheaper to re-explore than to memoize. *)
let nogood_min_height = 4

let solve_result ?(node_limit = 50_000_000) ?(nogood_limit = 1_000_000) ?(restart_unit = 2048) inst
    =
  if not (Ccs.Instance.schedulable inst) then None
  else begin
    let ord = Atomic.fetch_and_add solve_ids 1 in
    let n = Ccs.Instance.n inst in
    let m = min (Ccs.Instance.m inst) n in
    let c = Ccs.Instance.c inst in
    let nc = Ccs.Instance.num_classes inst in
    (* Base job order: non-increasing size, so big jobs branch first and
       the area bound bites early. Restarts permute a view over this. *)
    let base = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (Ccs.Instance.job inst b).Ccs.Instance.p (Ccs.Instance.job inst a).Ccs.Instance.p)
      base;
    let bp = Array.map (fun i -> (Ccs.Instance.job inst i).Ccs.Instance.p) base in
    let bcls = Array.map (fun i -> (Ccs.Instance.job inst i).Ccs.Instance.cls) base in
    (* Job types: jobs with equal (p, class) are interchangeable, so learned
       no-goods are keyed on the remaining type multiset, not job identity —
       which also makes them valid across restarts that permute the order. *)
    let type_tbl = Hashtbl.create 16 in
    let ntypes = ref 0 in
    let btype =
      Array.init n (fun i ->
          let kk = (bp.(i), bcls.(i)) in
          match Hashtbl.find_opt type_tbl kk with
          | Some id -> id
          | None ->
              let id = !ntypes in
              incr ntypes;
              Hashtbl.add type_tbl kk id;
              id)
    in
    let ntypes = !ntypes in
    (* warm start from the 7/3 algorithm *)
    let start, _ = Ccs.Approx.Nonpreemptive.solve inst in
    let best = ref (Ccs.Schedule.nonpreemptive_makespan inst start) in
    let best_assignment = ref (Array.copy start) in
    (* the warm start is incumbent zero of this solve's gap trace *)
    Ccs_obs.Recorder.incumbent ~src:"bnb" ~solve:ord (float_of_int !best);
    (* Integral root lower bound: OPT uses at most [min m n] machines. *)
    let total = Ccs.Instance.total_load inst in
    let lb0 = max (Ccs.Instance.pmax inst) ((total + m - 1) / m) in
    Ccs_obs.Recorder.lower_bound ~src:"bnb" ~solve:ord (float_of_int lb0);
    (* ---------------- machine state ---------------- *)
    let words = ((nc + 62) / 63) in
    let loads = Array.make m 0 in
    let masks = Array.make (m * words) 0 in
    let class_count = Array.make m 0 in
    (* Slot bound: every class that still has unplaced jobs but sits on no
       machine yet needs at least one of the remaining free class slots. *)
    let present = Array.make nc 0 in
    let remaining = Array.make nc 0 in
    Array.iter (fun u -> remaining.(u) <- remaining.(u) + 1) bcls;
    let missing = ref 0 in
    Array.iter (fun r -> if r > 0 then incr missing) remaining;
    let free_slots = ref (m * c) in
    let asg = Array.make n (-1) in
    let has_class k u = masks.((k * words) + (u / 63)) land (1 lsl (u mod 63)) <> 0 in
    let masks_equal k k' =
      let rec eq w = w >= words || (masks.((k * words) + w) = masks.((k' * words) + w) && eq (w + 1)) in
      eq 0
    in
    (* Full identical-machine symmetry: machines with equal load and class
       set are interchangeable — branch only on the first of each group. *)
    let duplicate k =
      let rec scan k' =
        k' < k && ((loads.(k') = loads.(k) && masks_equal k' k) || scan (k' + 1))
      in
      scan 0
    in
    let is_missing u = remaining.(u) > 0 && present.(u) = 0 in
    (* occupancy.(k*nc + u): jobs of class u currently on machine k, so
       unplacing knows when the class leaves the machine *)
    let occupancy = Array.make (m * nc) 0 in
    let place j k =
      let u = bcls.(j) in
      let was = is_missing u in
      loads.(k) <- loads.(k) + bp.(j);
      remaining.(u) <- remaining.(u) - 1;
      let o = (k * nc) + u in
      occupancy.(o) <- occupancy.(o) + 1;
      if occupancy.(o) = 1 then begin
        let w = (k * words) + (u / 63) and bit = 1 lsl (u mod 63) in
        masks.(w) <- masks.(w) lor bit;
        class_count.(k) <- class_count.(k) + 1;
        present.(u) <- present.(u) + 1;
        decr free_slots
      end;
      if was && not (is_missing u) then decr missing;
      asg.(j) <- k
    in
    let unplace j k =
      let u = bcls.(j) in
      let was = is_missing u in
      loads.(k) <- loads.(k) - bp.(j);
      remaining.(u) <- remaining.(u) + 1;
      let o = (k * nc) + u in
      occupancy.(o) <- occupancy.(o) - 1;
      if occupancy.(o) = 0 then begin
        let w = (k * words) + (u / 63) and bit = 1 lsl (u mod 63) in
        masks.(w) <- masks.(w) land lnot bit;
        class_count.(k) <- class_count.(k) - 1;
        present.(u) <- present.(u) - 1;
        incr free_slots
      end;
      asg.(j) <- -1;
      if (not was) && is_missing u then incr missing
    in
    (* ---------------- search order / activities ---------------- *)
    let seq = Array.init n (fun i -> i) in
    let forced_len = ref 0 in
    let act = Array.make n 0.0 in
    let var_inc = ref 1.0 in
    let bump j =
      act.(j) <- act.(j) +. !var_inc;
      var_inc := !var_inc *. 1.02;
      if act.(j) > 1e100 then begin
        for i = 0 to n - 1 do
          act.(i) <- act.(i) *. 1e-100
        done;
        var_inc := !var_inc *. 1e-100
      end
    in
    let suffix = Array.make (n + 1) 0 in
    let compute_suffix () =
      suffix.(n) <- 0;
      for d = n - 1 downto 0 do
        suffix.(d) <- suffix.(d + 1) + bp.(seq.(d))
      done
    in
    (* ---------------- no-good store ---------------- *)
    (* A state is (canonical machine multiset, remaining job multiset). The
       remaining multiset depends only on the depth of the current order, so
       it is interned once per restart into a small id; the machine part is
       the per-machine (load, class-bitset) tuples sorted lexicographically.
       Keys are exact int arrays compared structurally — a collision can
       slow the search down but can never cut the optimum. *)
    let mult_tbl : (int array, int) Hashtbl.t = Hashtbl.create 64 in
    let mult_next = ref 0 in
    let intern canon =
      match Hashtbl.find_opt mult_tbl canon with
      | Some id -> id
      | None ->
          let id = !mult_next in
          incr mult_next;
          Hashtbl.add mult_tbl canon id;
          id
    in
    let depth_id = Array.make (n + 1) 0 in
    let tcount = Array.make ntypes 0 in
    let compute_depth_ids () =
      Array.fill tcount 0 ntypes 0;
      depth_id.(n) <- intern [||];
      for d = n - 1 downto !forced_len do
        tcount.(btype.(seq.(d))) <- tcount.(btype.(seq.(d))) + 1;
        let nz = ref 0 in
        for t = 0 to ntypes - 1 do
          if tcount.(t) > 0 then incr nz
        done;
        let canon = Array.make (2 * !nz) 0 in
        let w = ref 0 in
        for t = 0 to ntypes - 1 do
          if tcount.(t) > 0 then begin
            canon.(!w) <- t;
            canon.(!w + 1) <- tcount.(t);
            w := !w + 2
          end
        done;
        depth_id.(d) <- intern canon
      done
    in
    let stride = 1 + words in
    let scratch = Array.make (1 + (m * stride)) 0 in
    let morder = Array.make m 0 in
    let mcompare a b =
      let cl = compare loads.(a) loads.(b) in
      if cl <> 0 then cl
      else begin
        let rec cw w =
          if w >= words then 0
          else
            let cc = compare masks.((a * words) + w) masks.((b * words) + w) in
            if cc <> 0 then cc else cw (w + 1)
        in
        cw 0
      end
    in
    let build_key depth =
      scratch.(0) <- depth_id.(depth);
      for k = 0 to m - 1 do
        morder.(k) <- k
      done;
      Array.sort mcompare morder;
      for i = 0 to m - 1 do
        let k = morder.(i) in
        scratch.(1 + (i * stride)) <- loads.(k);
        for w = 0 to words - 1 do
          scratch.(2 + (i * stride) + w) <- masks.((k * words) + w)
        done
      done
    in
    let store : (int array, int) Hashtbl.t = Hashtbl.create 4096 in
    let ng_stored = ref 0 and ng_hits = ref 0 and ng_resets = ref 0 in
    let record_nogood b =
      match Hashtbl.find_opt store scratch with
      | Some old -> if b > old then Hashtbl.replace store (Array.copy scratch) b
      | None ->
          if Hashtbl.length store >= nogood_limit then begin
            Hashtbl.reset store;
            incr ng_resets
          end;
          Hashtbl.add store (Array.copy scratch) b;
          incr ng_stored
    in
    (* ---------------- root probing ---------------- *)
    let probe_failed = ref 0 and probe_forced = ref 0 in
    let total_unforced = ref total in
    (* Failed-placement probing at the root under target = best - 1: a job
       with no feasible canonical machine refutes the target (the incumbent
       is optimal); a job with exactly one is forced there — any schedule
       beating the incumbent agrees with the forcing up to machine renaming,
       and the canonical choice fixes the renaming. Forced jobs move to the
       front of the order and become the fixed search root. *)
    let probe () =
      let target = !best - 1 in
      if target < lb0 then true
      else begin
        let infeasible = ref false and changed = ref true in
        while !changed && not !infeasible do
          changed := false;
          let d = ref !forced_len in
          while (not !infeasible) && !d < n do
            let j = seq.(!d) in
            let pj = bp.(j) and u = bcls.(j) in
            let rem = !total_unforced - pj in
            let nfeas = ref 0 and last_k = ref (-1) in
            for k = 0 to m - 1 do
              if not (duplicate k) then begin
                let ok =
                  (has_class k u || class_count.(k) < c)
                  && loads.(k) + pj <= target
                  &&
                  (* area check with j provisionally on k *)
                  let slack = ref 0 in
                  for k' = 0 to m - 1 do
                    let l = loads.(k') + if k' = k then pj else 0 in
                    slack := !slack + max 0 (target - l)
                  done;
                  !slack >= rem
                in
                if ok then begin
                  incr nfeas;
                  last_k := k
                end
                else incr probe_failed
              end
            done;
            if !nfeas = 0 then infeasible := true
            else if !nfeas = 1 then begin
              let tmp = seq.(!d) in
              seq.(!d) <- seq.(!forced_len);
              seq.(!forced_len) <- tmp;
              place j !last_k;
              total_unforced := !total_unforced - pj;
              incr forced_len;
              incr probe_forced;
              changed := true;
              d := !forced_len
            end
            else incr d
          done
        done;
        !infeasible
      end
    in
    (* ---------------- search ---------------- *)
    let nodes = ref 0 in
    let nodes_since = ref 0 in
    let restart_limit = ref 0 in
    let prunes_area = ref 0 and prunes_slots = ref 0 in
    let incumbents = ref 0 in
    let restarts = ref 0 in
    let exception Limit in
    let exception Restart in
    let rec go depth current_max =
      Ccs_resil.Deadline.check chk_node;
      incr nodes;
      incr nodes_since;
      if !nodes > node_limit then raise Limit;
      if !restart_limit > 0 && !nodes_since > !restart_limit && depth > !forced_len then
        raise Restart;
      if current_max < !best then begin
        if depth = n then begin
          best := current_max;
          incr incumbents;
          Ccs_obs.Recorder.incumbent ~src:"bnb" ~solve:ord (float_of_int current_max);
          Ccs_obs.Log.debug (fun log ->
              log
                ~fields:
                  [ Ccs_obs.Log.int "makespan" current_max;
                    Ccs_obs.Log.int "nodes" !nodes ]
                "bnb.incumbent");
          let out = Array.make n 0 in
          for i = 0 to n - 1 do
            out.(base.(i)) <- asg.(i)
          done;
          best_assignment := out
        end
        else begin
          let j = seq.(depth) in
          let pj = bp.(j) and u = bcls.(j) in
          (* area bound: remaining work must fit under best-1 *)
          let slack = ref 0 in
          for k = 0 to m - 1 do
            slack := !slack + max 0 (!best - 1 - loads.(k))
          done;
          if !slack < suffix.(depth) then begin
            incr prunes_area;
            bump j
          end
          else if !missing > !free_slots then begin
            incr prunes_slots;
            bump j
          end
          else begin
            let deep = depth > !forced_len && n - depth >= nogood_min_height in
            let cut =
              deep
              && begin
                build_key depth;
                match Hashtbl.find_opt store scratch with
                | Some b when b >= !best ->
                    incr ng_hits;
                    bump j;
                    true
                | _ -> false
              end
            in
            if not cut then begin
              let placed = ref false in
              for k = 0 to m - 1 do
                if not (duplicate k) then
                  if (has_class k u || class_count.(k) < c) && loads.(k) + pj < !best then begin
                    placed := true;
                    place j k;
                    go (depth + 1) (max current_max loads.(k));
                    unplace j k
                  end
              done;
              if not !placed then bump j;
              (* The subtree is exhausted: no completion of this state beats
                 the current incumbent. Valid across restarts (the store
                 outlives them) because the key abstracts job identity. *)
              if deep then begin
                build_key depth;
                record_nogood !best
              end
            end
          end
        end
      end
    in
    (* snapshot of the post-probing root, restored after each restart
       (the Restart exception unwinds without running the undo path) *)
    let run_search () =
      let loads0 = Array.copy loads in
      let masks0 = Array.copy masks in
      let class_count0 = Array.copy class_count in
      let present0 = Array.copy present in
      let remaining0 = Array.copy remaining in
      let occupancy0 = Array.copy occupancy in
      let missing0 = !missing and free0 = !free_slots in
      let restore () =
        Array.blit loads0 0 loads 0 m;
        Array.blit masks0 0 masks 0 (m * words);
        Array.blit class_count0 0 class_count 0 m;
        Array.blit present0 0 present 0 nc;
        Array.blit remaining0 0 remaining 0 nc;
        Array.blit occupancy0 0 occupancy 0 (m * nc);
        missing := missing0;
        free_slots := free0
      in
      let root_max = Array.fold_left max 0 loads in
      let reorder () =
        (* Size first, activity as the tiebreak: the area bound needs big
           jobs up front (a pure activity order stalls the search — n=18
           bnb-stress takes 3x the nodes), but among equal sizes — the
           common case in the near-partition family — the restart moves
           conflict-heavy jobs forward. *)
        let len = n - !forced_len in
        let tail = Array.sub seq !forced_len len in
        Array.sort
          (fun a b ->
            match compare bp.(b) bp.(a) with
            | 0 -> (
                match compare act.(b) act.(a) with 0 -> compare a b | cmp -> cmp)
            | cmp -> cmp)
          tail;
        Array.blit tail 0 seq !forced_len len
      in
      let rec run () =
        restart_limit := (if restart_unit <= 0 then 0 else restart_unit * luby (!restarts + 1));
        nodes_since := 0;
        match go !forced_len root_max with
        | () -> Complete
        | exception Restart ->
            incr restarts;
            restore ();
            reorder ();
            compute_suffix ();
            compute_depth_ids ();
            run ()
        | exception Limit -> Node_limit
        | exception (Ccs_resil.Deadline.Cancelled _ as e) -> Interrupted e
      in
      run ()
    in
    let finish status =
      Ccs_obs.Metrics.incr m_solves;
      Ccs_obs.Metrics.add m_nodes !nodes;
      Ccs_obs.Metrics.add m_prune_area !prunes_area;
      Ccs_obs.Metrics.add m_prune_slots !prunes_slots;
      Ccs_obs.Metrics.add m_incumbents !incumbents;
      Ccs_obs.Metrics.add m_nogoods !ng_stored;
      Ccs_obs.Metrics.add m_nogood_hits !ng_hits;
      Ccs_obs.Metrics.add m_nogood_resets !ng_resets;
      Ccs_obs.Metrics.add m_probe_failed !probe_failed;
      Ccs_obs.Metrics.add m_probe_forced !probe_forced;
      Ccs_obs.Metrics.add m_restarts !restarts;
      (match status with Node_limit -> Ccs_obs.Metrics.incr m_limit_hits | _ -> ());
      let complete = match status with Complete -> true | _ -> false in
      let lower_bound = if complete then !best else lb0 in
      if complete then
        Ccs_obs.Recorder.lower_bound ~src:"bnb" ~solve:ord (float_of_int !best);
      Ccs_obs.Log.debug (fun log ->
          log
            ~fields:
              [ Ccs_obs.Log.int "n" n;
                Ccs_obs.Log.int "m" m;
                Ccs_obs.Log.int "nodes" !nodes;
                Ccs_obs.Log.int "nogoods" !ng_stored;
                Ccs_obs.Log.int "restarts" !restarts;
                Ccs_obs.Log.int "prunes_area" !prunes_area;
                Ccs_obs.Log.bool "complete" complete ]
            "bnb.solve");
      Some
        {
          makespan = !best;
          assignment = !best_assignment;
          lower_bound;
          status;
          nodes = !nodes;
        }
    in
    Ccs_obs.Recorder.phase "exact"
    @@ fun () ->
    Ccs_obs.Span.with_ "bnb.solve"
      ~fields:[ Ccs_obs.Log.int "n" n; Ccs_obs.Log.int "m" m ]
      (fun () ->
        if !best <= lb0 then finish Complete
        else begin
          compute_suffix ();
          match probe () with
          | true -> finish Complete
          | false ->
              compute_suffix ();
              compute_depth_ids ();
              finish (run_search ())
          | exception (Ccs_resil.Deadline.Cancelled _ as e) -> finish (Interrupted e)
        end)
  end

let solve_status ?node_limit inst =
  Option.map
    (fun r -> (r.makespan, r.assignment, r.status))
    (solve_result ?node_limit inst)

let solve ?node_limit inst =
  match solve_result ?node_limit inst with
  | None -> None
  | Some { status = Complete; makespan; assignment; _ } -> Some (makespan, assignment)
  | Some { status = Node_limit; _ } -> None
  | Some { status = Interrupted e; _ } -> raise e

let brute_force inst =
  let n = Ccs.Instance.n inst in
  let m = min (Ccs.Instance.m inst) n in
  if n > 10 then invalid_arg "Bnb.brute_force: too large";
  let nc = Ccs.Instance.num_classes inst in
  let c = Ccs.Instance.c inst in
  let p = Array.init n (fun j -> (Ccs.Instance.job inst j).Ccs.Instance.p) in
  let cls = Array.init n (fun j -> (Ccs.Instance.job inst j).Ccs.Instance.cls) in
  let loads = Array.make m 0 in
  let class_count = Array.make m 0 in
  let occupancy = Array.make (m * nc) 0 in
  let best = ref max_int in
  let found = ref false in
  (* Exhaustive over every class-feasible assignment — no makespan pruning,
     this is the reference the pruned search is validated against. Loads and
     per-machine class counts are maintained incrementally (the old version
     copied the assignment and ran the full validator at every leaf), and
     the deadline checkpoint keeps test-time oracles interruptible. *)
  let rec go idx cur =
    Ccs_resil.Deadline.check chk_brute;
    if idx = n then begin
      found := true;
      if cur < !best then best := cur
    end
    else
      for k = 0 to m - 1 do
        let o = (k * nc) + cls.(idx) in
        if occupancy.(o) > 0 || class_count.(k) < c then begin
          occupancy.(o) <- occupancy.(o) + 1;
          if occupancy.(o) = 1 then class_count.(k) <- class_count.(k) + 1;
          loads.(k) <- loads.(k) + p.(idx);
          go (idx + 1) (max cur loads.(k));
          loads.(k) <- loads.(k) - p.(idx);
          occupancy.(o) <- occupancy.(o) - 1;
          if occupancy.(o) = 0 then class_count.(k) <- class_count.(k) - 1
        end
      done
  in
  go 0 0;
  if !found then Some !best else None
