module Q = Rat

let build inst =
  let nc = Ccs.Instance.num_classes inst in
  (* No machine cap is valid here: extra machines always help a splittable
     schedule (a single job may be sliced across all of them), so the model
     uses the true m and the caller guards against large instances. *)
  let m = Ccs.Instance.m inst in
  let loads = Ccs.Instance.class_load inst in
  (* variables: x_{u,i} = u*m+i (continuous), y_{u,i} = nc*m + u*m+i (binary),
     T = 2*nc*m *)
  let x u i = (u * m) + i in
  let y u i = (nc * m) + (u * m) + i in
  let tvar = 2 * nc * m in
  let nvars = tvar + 1 in
  let rows = ref [] in
  for u = 0 to nc - 1 do
    rows :=
      Lp.constr (List.init m (fun i -> (x u i, Q.one))) Lp.Eq (Q.of_int loads.(u))
      :: !rows
  done;
  for i = 0 to m - 1 do
    rows :=
      Lp.constr ((tvar, Q.minus_one) :: List.init nc (fun u -> (x u i, Q.one))) Lp.Le Q.zero
      :: !rows;
    rows :=
      Lp.constr (List.init nc (fun u -> (y u i, Q.one))) Lp.Le (Q.of_int (Ccs.Instance.c inst))
      :: !rows
  done;
  for u = 0 to nc - 1 do
    for i = 0 to m - 1 do
      rows :=
        Lp.constr [ (x u i, Q.one); (y u i, Q.of_int (-loads.(u))) ] Lp.Le Q.zero :: !rows
    done
  done;
  let upper = Array.make nvars None in
  for u = 0 to nc - 1 do
    for i = 0 to m - 1 do
      upper.(y u i) <- Some Q.one;
      upper.(x u i) <- Some (Q.of_int loads.(u))
    done
  done;
  upper.(tvar) <- Some (Q.of_int (Ccs.Instance.total_load inst));
  let objective = Array.make nvars Q.zero in
  objective.(tvar) <- Q.one;
  let lp = Lp.problem ~upper ~nvars ~objective (List.rev !rows) in
  let integer = Array.make nvars false in
  for u = 0 to nc - 1 do
    for i = 0 to m - 1 do
      integer.(y u i) <- true
    done
  done;
  ({ Ilp.lp; integer }, m, x)

let solve_schedule ?(max_nodes = 2_000_000) inst =
  if not (Ccs.Instance.schedulable inst) then None
  else if Ccs.Instance.m inst * Ccs.Instance.num_classes inst > 256 then
    (* The MILP has 2*C*m variables; refuse sizes the exact simplex cannot
       handle in reasonable time. *)
    None
  else begin
    Ccs_obs.Recorder.phase "exact"
    @@ fun () ->
    let problem, m, x = build inst in
    match Ilp.solve ~max_nodes problem with
    | Ilp.Optimal { objective; solution } ->
        let nc = Ccs.Instance.num_classes inst in
        let machines = ref [] in
        for i = 0 to m - 1 do
          let entries = ref [] in
          for u = 0 to nc - 1 do
            let v = solution.(x u i) in
            if Q.sign v > 0 then entries := (u, v) :: !entries
          done;
          if !entries <> [] then machines := (i, List.rev !entries) :: !machines
        done;
        Some (objective, { Ccs.Schedule.blocks = []; explicit_machines = List.rev !machines })
    | _ -> None
  end

let solve ?max_nodes inst = Option.map fst (solve_schedule ?max_nodes inst)
