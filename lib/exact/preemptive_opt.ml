module Q = Rat
module I = Ccs.Instance

(* One checkpoint per Birkhoff matching slice; the MILP phase is covered
   by the lp.pivot / ilp.node checkpoints inside [Ilp.solve]. *)
let chk_realize = Ccs_resil.Deadline.site "exact.realize"

(* ---- phase 1: the MILP for the optimal amount matrix ---- *)

let build inst =
  let n = I.n inst in
  let m = min (I.m inst) n in
  (* w.l.o.g. n machines suffice preemptively: makespan >= pmax and with
     m >= n one job per machine achieves it, so extra machines never help *)
  let nc = I.num_classes inst in
  let a j i = (j * m) + i in
  let y u i = (n * m) + (u * m) + i in
  let tvar = (n * m) + (nc * m) in
  let nvars = tvar + 1 in
  let rows = ref [] in
  for j = 0 to n - 1 do
    rows :=
      Lp.constr (List.init m (fun i -> (a j i, Q.one))) Lp.Eq
        (Q.of_int (I.job inst j).I.p)
      :: !rows
  done;
  for i = 0 to m - 1 do
    rows :=
      Lp.constr ((tvar, Q.minus_one) :: List.init n (fun j -> (a j i, Q.one))) Lp.Le Q.zero
      :: !rows;
    rows :=
      Lp.constr (List.init nc (fun u -> (y u i, Q.one))) Lp.Le (Q.of_int (I.c inst))
      :: !rows
  done;
  for j = 0 to n - 1 do
    let p = (I.job inst j).I.p in
    let u = (I.job inst j).I.cls in
    for i = 0 to m - 1 do
      rows := Lp.constr [ (a j i, Q.one); (y u i, Q.of_int (-p)) ] Lp.Le Q.zero :: !rows
    done
  done;
  let upper = Array.make nvars None in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      upper.(a j i) <- Some (Q.of_int (I.job inst j).I.p)
    done
  done;
  for u = 0 to nc - 1 do
    for i = 0 to m - 1 do
      upper.(y u i) <- Some Q.one
    done
  done;
  upper.(tvar) <- Some (Q.of_int (I.total_load inst));
  let lower = Array.make nvars (Some Q.zero) in
  lower.(tvar) <- Some (Q.of_int (I.pmax inst));
  let objective = Array.make nvars Q.zero in
  objective.(tvar) <- Q.one;
  let lp = Lp.problem ~lower ~upper ~nvars ~objective (List.rev !rows) in
  let integer = Array.make nvars false in
  for u = 0 to nc - 1 do
    for i = 0 to m - 1 do
      integer.(y u i) <- true
    done
  done;
  ({ Ilp.lp; integer }, m, a, tvar)

(* ---- phase 2: Birkhoff decomposition of the amount matrix ----

   Pad the n x m amount matrix to a square (n+m) x (m+n) matrix whose every
   row and column sums to T: row j gets a job-slack entry, column i gets a
   machine-slack entry, and the dummy/dummy block is filled by a northwest-
   corner transportation fill. Positive entries of such a matrix always
   contain a perfect matching (Birkhoff-von Neumann); scheduling every
   matched real pair for the minimum matched amount and repeating consumes
   the matrix in finitely many slices. *)
let realize inst m amounts t =
  let n = I.n inst in
  let size = n + m in
  let b = Array.make_matrix size size Q.zero in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      b.(j).(i) <- amounts.(j).(i)
    done
  done;
  (* slacks *)
  let row_sum r = Array.fold_left Q.add Q.zero b.(r) in
  for j = 0 to n - 1 do
    b.(j).(m + j) <- Q.sub t (row_sum j)
  done;
  for i = 0 to m - 1 do
    let col = ref Q.zero in
    for j = 0 to n - 1 do
      col := Q.add !col b.(j).(i)
    done;
    b.(n + i).(i) <- Q.sub t !col
  done;
  (* transportation fill of the dummy/dummy block: row n+i still needs
     C_i = t - b.(n+i).(i); column m+j still needs R_j = t - b.(j).(m+j) *)
  let need_row = Array.init m (fun i -> Q.sub t b.(n + i).(i)) in
  let need_col = Array.init n (fun j -> Q.sub t b.(j).(m + j)) in
  let i = ref 0 and j = ref 0 in
  while !i < m && !j < n do
    let d = Q.min need_row.(!i) need_col.(!j) in
    if Q.sign d > 0 then begin
      b.(n + !i).(m + !j) <- Q.add b.(n + !i).(m + !j) d;
      need_row.(!i) <- Q.sub need_row.(!i) d;
      need_col.(!j) <- Q.sub need_col.(!j) d
    end;
    if Q.sign need_row.(!i) = 0 then incr i else incr j
  done;
  (* slice off perfect matchings *)
  let sched = Array.make (I.m inst) [] in
  let clock = ref Q.zero in
  let remaining = ref t in
  let guard = ref (size * size * 4) in
  while Q.sign !remaining > 0 do
    Ccs_resil.Deadline.check chk_realize;
    decr guard;
    if !guard < 0 then failwith "Preemptive_opt.realize: decomposition did not converge";
    let g = Flow.create (2 * size + 2) in
    let source = 2 * size and sink = (2 * size) + 1 in
    for r = 0 to size - 1 do
      ignore (Flow.add_edge g ~src:source ~dst:r ~cap:1);
      ignore (Flow.add_edge g ~src:(size + r) ~dst:sink ~cap:1)
    done;
    let edges = ref [] in
    for r = 0 to size - 1 do
      for c = 0 to size - 1 do
        if Q.sign b.(r).(c) > 0 then
          edges := (r, c, Flow.add_edge g ~src:r ~dst:(size + c) ~cap:1) :: !edges
      done
    done;
    let v = Flow.max_flow g ~source ~sink in
    if v <> size then failwith "Preemptive_opt.realize: no perfect matching (bug)";
    let matched = List.filter (fun (_, _, e) -> Flow.flow_on g e = 1) !edges in
    let d =
      List.fold_left (fun acc (r, c, _) -> Q.min acc b.(r).(c)) !remaining matched
    in
    assert (Q.sign d > 0);
    List.iter
      (fun (r, c, _) ->
        b.(r).(c) <- Q.sub b.(r).(c) d;
        if r < n && c < m then
          sched.(c) <- { Ccs.Schedule.pjob = r; start = !clock; len = d } :: sched.(c))
      matched;
    clock := Q.add !clock d;
    remaining := Q.sub !remaining d
  done;
  Array.map List.rev sched

let solve ?(max_nodes = 400_000) inst =
  if not (I.schedulable inst) then None
  else if I.n inst * min (I.m inst) (I.n inst) > 120 then None
  else begin
    Ccs_obs.Recorder.phase "exact"
    @@ fun () ->
    let problem, m, a, _ = build inst in
    match Ilp.solve ~max_nodes problem with
    | Ilp.Optimal { objective; solution } ->
        let amounts = Array.init (I.n inst) (fun j -> Array.init m (fun i -> solution.(a j i))) in
        let sched = realize inst m amounts objective in
        (match Ccs.Schedule.validate_preemptive inst sched with
        | Ok mk ->
            if not (Q.equal mk objective) then
              failwith "Preemptive_opt: realized makespan differs from the MILP optimum";
            Some (objective, sched)
        | Error e -> failwith ("Preemptive_opt: invalid realization: " ^ e))
    | _ -> None
  end

let opt ?max_nodes inst = Option.map fst (solve ?max_nodes inst)
