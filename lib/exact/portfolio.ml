(* A portfolio of exact non-preemptive solvers raced on the ambient pool.

   Three members, in fixed priority order: the conflict-driven B&B, an
   exact configuration-ILP (binary search on the integral makespan, each
   probe decided by the exact MILP solver), and an exact N-fold program
   with one brick per machine. Each member either returns a *proof* — an
   optimal assignment — or abstains ([None]) when its budget is exhausted;
   [Ccs_par.parallel_find_first] then yields the lowest-index proof, so the
   winner and its assignment are bit-identical at any [--jobs] by the
   pool's sequential-equivalence contract. Incumbent-quality (unproven)
   answers never race: they would make the result depend on timing. *)

module Q = Rat

type outcome = {
  makespan : int;
  assignment : Ccs.Schedule.nonpreemptive;
  winner : string;
  proved : bool;
  lower_bound : int;
}

let member_names = [| "bnb"; "config_ilp"; "nfold" |]
let m_races = Ccs_obs.Metrics.counter "portfolio.races"

let m_winner =
  Array.map
    (fun name -> Ccs_obs.Metrics.counter ("portfolio.winner." ^ name))
    member_names

let m_winner_none = Ccs_obs.Metrics.counter "portfolio.winner.none"
    ~help:"Races in which every member abstained (budget exhausted)"

let solve_ids = Atomic.make 0

exception Abstain

(* Integral root lower bound: OPT uses at most [min m n] machines. *)
let int_lower_bound inst =
  let m = min (Ccs.Instance.m inst) (Ccs.Instance.n inst) in
  let total = Ccs.Instance.total_load inst in
  max (Ccs.Instance.pmax inst) ((total + m - 1) / m)

(* Distinct (size, class) job types: sizes/classes/demands plus the job
   indices of each type in increasing order, so decoding an ILP solution
   into a concrete assignment is deterministic. *)
let types_of inst =
  let n = Ccs.Instance.n inst in
  let tbl = Hashtbl.create 16 in
  let nt = ref 0 in
  let tp = ref [] and tcls = ref [] in
  let type_of = Array.make n 0 in
  for j = 0 to n - 1 do
    let job = Ccs.Instance.job inst j in
    let kk = (job.Ccs.Instance.p, job.Ccs.Instance.cls) in
    match Hashtbl.find_opt tbl kk with
    | Some id -> type_of.(j) <- id
    | None ->
        let id = !nt in
        incr nt;
        Hashtbl.add tbl kk id;
        tp := job.Ccs.Instance.p :: !tp;
        tcls := job.Ccs.Instance.cls :: !tcls;
        type_of.(j) <- id
  done;
  let nt = !nt in
  let tp = Array.of_list (List.rev !tp) in
  let tcls = Array.of_list (List.rev !tcls) in
  let dem = Array.make nt 0 in
  let jobs_of = Array.make nt [] in
  for j = n - 1 downto 0 do
    let t = type_of.(j) in
    dem.(t) <- dem.(t) + 1;
    jobs_of.(t) <- j :: jobs_of.(t)
  done;
  (nt, tp, tcls, dem, jobs_of)

(* Pop [cfg.(t)] jobs of each type off the per-type stacks for one machine. *)
let decode_machine ~nt ~cursors ~asg ~machine cfg =
  for t = 0 to nt - 1 do
    for _ = 1 to cfg.(t) do
      match cursors.(t) with
      | j :: rest ->
          cursors.(t) <- rest;
          asg.(j) <- machine
      | [] -> raise Abstain (* solver returned an over-full type: distrust it *)
    done
  done

(* Binary search for the least feasible integral makespan in [lb, ub]; [ub]
   is known feasible (the warm-start schedule achieves it). [decide] may
   raise [Abstain]. Returns the optimum and the decided solution at it, or
   [None] when the optimum is [ub] itself (never probed). *)
let bisect ~lb ~ub ~decide =
  let lo = ref lb and hi = ref ub in
  let sol = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    match decide mid with
    | Some s ->
        sol := Some (mid, s);
        hi := mid
    | None -> lo := mid + 1
  done;
  (!lo, match !sol with Some (t, s) when t = !lo -> Some s | _ -> None)

(* ---------------- member: configuration ILP ---------------- *)

(* Enumerate every machine configuration (a multiset of job types with
   total size <= tgt and at most c distinct classes), then decide whether
   the demands split into at most m of them with an exact ILP over the
   config-count variables. The enumeration explodes when there are many
   distinct types — that is the B&B's territory; this member shines on
   palette-style instances (lp-stress, bnb-stress) with few types. *)
let config_ilp ~max_configs ~ilp_nodes inst =
  let n = Ccs.Instance.n inst in
  let m = min (Ccs.Instance.m inst) n in
  let c = Ccs.Instance.c inst in
  let nt, tp, tcls, dem, jobs_of = types_of inst in
  let warm, _ = Ccs.Approx.Nonpreemptive.solve inst in
  let ub0 = Ccs.Schedule.nonpreemptive_makespan inst warm in
  let lb0 = int_lower_bound inst in
  if ub0 = lb0 then Some (ub0, warm)
  else begin
    try
      let enum_configs tgt =
        let configs = ref [] and count = ref 0 in
        let k = Array.make nt 0 in
        let rec go t load ncls clsset =
          if t = nt then begin
            incr count;
            if !count > max_configs then raise Abstain;
            configs := Array.copy k :: !configs
          end
          else begin
            go (t + 1) load ncls clsset;
            let u = tcls.(t) in
            let fresh = not (List.mem u clsset) in
            let ncls' = if fresh then ncls + 1 else ncls in
            if ncls' <= c then begin
              let cs = if fresh then u :: clsset else clsset in
              let l = ref load and i = ref 1 in
              while !i <= dem.(t) && !l + tp.(t) <= tgt do
                l := !l + tp.(t);
                k.(t) <- !i;
                go (t + 1) !l ncls' cs;
                incr i
              done;
              k.(t) <- 0
            end
          end
        in
        go 0 0 0 [];
        Array.of_list (List.rev !configs)
      in
      let decide tgt =
        let configs = enum_configs tgt in
        let ncfg = Array.length configs in
        let rows = ref [] in
        for t = 0 to nt - 1 do
          let coeffs = ref [] in
          Array.iteri
            (fun ki cfg -> if cfg.(t) > 0 then coeffs := (ki, Q.of_int cfg.(t)) :: !coeffs)
            configs;
          rows := Lp.constr !coeffs Lp.Eq (Q.of_int dem.(t)) :: !rows
        done;
        rows :=
          Lp.constr (List.init ncfg (fun ki -> (ki, Q.one))) Lp.Le (Q.of_int m) :: !rows;
        let upper = Array.make ncfg (Some (Q.of_int m)) in
        let objective = Array.make ncfg Q.zero in
        let lp = Lp.problem ~upper ~nvars:ncfg ~objective (List.rev !rows) in
        match Ilp.solve ~max_nodes:ilp_nodes ~feasibility:true (Ilp.all_integer lp) with
        | Ilp.Optimal { solution; _ } -> Some (configs, solution)
        | Ilp.Infeasible -> None
        | Ilp.Node_limit -> raise Abstain
        | Ilp.Unbounded -> assert false (* all variables bounded *)
      in
      let opt, sol = bisect ~lb:lb0 ~ub:ub0 ~decide in
      match sol with
      | None -> Some (opt, warm) (* optimum = ub0: the warm schedule is optimal *)
      | Some (configs, z) ->
          let asg = Array.make n (-1) in
          let cursors = Array.copy jobs_of in
          let machine = ref 0 in
          Array.iteri
            (fun ki cfg ->
              let q = Bigint.to_int_exn (Q.num z.(ki)) in
              for _ = 1 to q do
                decode_machine ~nt ~cursors ~asg ~machine:!machine cfg;
                incr machine
              done)
            configs;
          Some (opt, asg)
    with Abstain -> None
  end

(* ---------------- member: exact N-fold ---------------- *)

(* One brick per machine: per-type counts x_t, class indicators y_u, and
   slack variables turning the <= rows into the N-fold's Eq form. Globally
   uniform rows pin the per-type demands; locally uniform rows bound the
   load (sum p_t x_t + s_load = tgt), the class slots (sum y_u + s_slot =
   c), and link x to y (sum_{t in u} x_t - d_u y_u + s_u = 0). Decided by
   the flattened exact MILP. *)
let nfold_member ~ilp_nodes inst =
  let n = Ccs.Instance.n inst in
  let m = min (Ccs.Instance.m inst) n in
  let c = Ccs.Instance.c inst in
  let nc = Ccs.Instance.num_classes inst in
  let nt, tp, tcls, dem, jobs_of = types_of inst in
  let tb = nt + nc + 2 + nc in
  if m * tb > 512 then None (* the flattened MILP would be hopeless *)
  else begin
    let warm, _ = Ccs.Approx.Nonpreemptive.solve inst in
    let ub0 = Ccs.Schedule.nonpreemptive_makespan inst warm in
    let lb0 = int_lower_bound inst in
    if ub0 = lb0 then Some (ub0, warm)
    else begin
      let class_dem = Array.make nc 0 in
      Array.iteri (fun t d -> class_dem.(tcls.(t)) <- class_dem.(tcls.(t)) + d) dem;
      let x_v t = t and y_v u = nt + u in
      let s_load = nt + nc and s_slot = nt + nc + 1 in
      let s_link u = nt + nc + 2 + u in
      try
        let decide tgt =
          let a =
            Array.init nt (fun t ->
                let row = Array.make tb 0 in
                row.(x_v t) <- 1;
                row)
          in
          let b = Array.make_matrix (2 + nc) tb 0 in
          for t = 0 to nt - 1 do
            b.(0).(x_v t) <- tp.(t);
            b.(2 + tcls.(t)).(x_v t) <- 1
          done;
          b.(0).(s_load) <- 1;
          for u = 0 to nc - 1 do
            b.(1).(y_v u) <- 1;
            b.(2 + u).(y_v u) <- -class_dem.(u);
            b.(2 + u).(s_link u) <- 1
          done;
          b.(1).(s_slot) <- 1;
          let rhs_one = Array.make (2 + nc) 0 in
          rhs_one.(0) <- tgt;
          rhs_one.(1) <- c;
          let rhs_block = Array.init m (fun _ -> Array.copy rhs_one) in
          let lower = Array.make tb 0 in
          let upper = Array.make tb 0 in
          for t = 0 to nt - 1 do
            upper.(x_v t) <- dem.(t)
          done;
          for u = 0 to nc - 1 do
            upper.(y_v u) <- 1;
            upper.(s_link u) <- class_dem.(u)
          done;
          upper.(s_load) <- tgt;
          upper.(s_slot) <- c;
          let nf =
            Nfold.make_uniform ~n:m ~a ~b ~rhs_top:dem ~rhs_block ~lower ~upper
              ~weight:(Array.make tb 0)
          in
          match Nfold.solve_ilp ~max_nodes:ilp_nodes ~feasibility:true nf with
          | `Solution (x, _) -> Some x
          | `Infeasible -> None
          | `Node_limit -> raise Abstain
          | exception Nfold.Too_large _ -> raise Abstain
          | exception Nfold.Invalid _ -> raise Abstain
        in
        let opt, sol = bisect ~lb:lb0 ~ub:ub0 ~decide in
        match sol with
        | None -> Some (opt, warm)
        | Some x ->
            let asg = Array.make n (-1) in
            let cursors = Array.copy jobs_of in
            for i = 0 to m - 1 do
              decode_machine ~nt ~cursors ~asg ~machine:i
                (Array.init nt (fun t -> x.(i).(x_v t)))
            done;
            Some (opt, asg)
      with Abstain -> None
    end
  end

(* ---------------- the race ---------------- *)

let solve ?(node_limit = 50_000_000) ?(max_configs = 4_000) ?(ilp_nodes = 200_000) inst =
  if not (Ccs.Instance.schedulable inst) then None
  else begin
    let ord = Atomic.fetch_and_add solve_ids 1 in
    Ccs_obs.Metrics.incr m_races;
    (* The fallback when every member abstains: the 7/3 warm start plus the
       root lower bound — the race only ever trades it up for a proof. *)
    let warm, _ = Ccs.Approx.Nonpreemptive.solve inst in
    let ub0 = Ccs.Schedule.nonpreemptive_makespan inst warm in
    let lb0 = int_lower_bound inst in
    let run i =
      let res =
        match i with
        | 0 -> (
            match Bnb.solve_result ~node_limit inst with
            | Some { status = Bnb.Complete; makespan; assignment; _ } ->
                Some (makespan, assignment)
            | _ -> None)
        | 1 -> config_ilp ~max_configs ~ilp_nodes inst
        | _ -> nfold_member ~ilp_nodes inst
      in
      match res with
      | Some (mk, asg) ->
          Ccs_obs.Recorder.incumbent ~src:("portfolio." ^ member_names.(i)) ~solve:ord
            (float_of_int mk);
          Ccs_obs.Recorder.lower_bound ~src:("portfolio." ^ member_names.(i)) ~solve:ord
            (float_of_int mk);
          Some (i, mk, asg)
      | None -> None
    in
    Ccs_obs.Span.with_ "portfolio.solve"
      ~fields:[ Ccs_obs.Log.int "n" (Ccs.Instance.n inst) ]
      (fun () ->
        match Ccs_par.parallel_find_firsti (fun i () -> run i) [| (); (); () |] with
        | Some (i, mk, asg) ->
            Ccs_obs.Metrics.incr m_winner.(i);
            Some
              {
                makespan = mk;
                assignment = asg;
                winner = member_names.(i);
                proved = true;
                lower_bound = mk;
              }
        | None ->
            Ccs_obs.Metrics.incr m_winner_none;
            Some
              {
                makespan = ub0;
                assignment = warm;
                winner = "none";
                proved = false;
                lower_bound = lb0;
              })
  end
