(** Exact mixed integer linear programming by branch & bound over the exact
    rational simplex ({!Lp}).

    This is the workhorse that decides the configuration ILPs of Section 4
    exactly (feasibility mode) and computes exact optima for the baseline
    solvers. There are no numeric tolerances anywhere: a variable is integral
    iff its rational value has denominator 1. *)

type problem = {
  lp : Lp.problem;
  integer : bool array;  (** [integer.(j)] forces variable [j] integral *)
}

type result =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded
  | Node_limit  (** search aborted after [max_nodes] B&B nodes *)

(** [solve ?max_nodes ?feasibility ?warm ?basis_out p] minimizes. With
    [~feasibility:true] the search stops at the first integral feasible
    point (use a zero objective for pure feasibility questions, as the
    PTAS oracles do). [warm] seeds the root relaxation with a basis from a
    previous same-shape solve; inside the tree each node warm-starts its
    children from its own optimal basis. [basis_out], when given, receives
    the root relaxation's optimal basis — callers reuse it to warm later
    solves of the same configuration-LP shape. *)
val solve :
  ?max_nodes:int ->
  ?feasibility:bool ->
  ?warm:Lp.basis ->
  ?basis_out:Lp.basis option ref ->
  problem ->
  result

(** [solve_batch ps] solves independent subproblems — e.g. the per-guess
    configuration ILPs of the dual-approximation search — in parallel on
    the ambient {!Ccs_par} pool. Index-ordered, sequential-equivalent:
    the result is identical to [Array.map (solve ...) ps] at any pool
    size, and if several solves raise, the lowest-index exception
    propagates. *)
val solve_batch : ?max_nodes:int -> ?feasibility:bool -> problem array -> result array

(** Statistics of the last [solve] call on the calling domain (B&B nodes,
    LP solves); concurrent solves on other domains do not disturb it. *)
val last_node_count : unit -> int

(** All-integer convenience wrapper. *)
val all_integer : Lp.problem -> problem
