module Q = Rat

type problem = { lp : Lp.problem; integer : bool array }

type result =
  | Optimal of { objective : Q.t; solution : Q.t array }
  | Infeasible
  | Unbounded
  | Node_limit

let all_integer lp = { lp; integer = Array.make lp.Lp.nvars true }

(* Checked once per B&B node, before the node's LP relaxation is solved;
   each node also runs many lp.pivot checkpoints inside [Lp.solve]. *)
let chk_node = Ccs_resil.Deadline.site "ilp.node"

let m_solves = Ccs_obs.Metrics.counter "ilp.solves"
let m_nodes = Ccs_obs.Metrics.counter "ilp.nodes"
let m_prunes = Ccs_obs.Metrics.counter "ilp.prunes_bound"
let m_limit_hits = Ccs_obs.Metrics.counter "ilp.node_limit_hits"
let h_nodes = Ccs_obs.Metrics.histogram "ilp.nodes_per_solve"

(* Node counting is domain-local: makespan-guess probes run concurrent
   [solve] calls on Ccs_par workers, and a shared ref would tear their
   counts. [last_node_count] reports the last solve on the calling domain. *)
let nodes_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let last_node_count () = !(Domain.DLS.get nodes_key)

(* First (lowest-index) fractional integer-constrained variable, or None
   if integral. Lexicographic branching fixes variables block by block,
   which doubles as symmetry breaking: the configuration ILPs (and
   especially the paper's duplicated N-fold forms) contain many
   interchangeable columns, and a most-fractional rule bounces between
   equivalent copies, re-deriving the same subtrees under permutation. *)
let pick_branch_var integer x =
  let n = Array.length x in
  let rec go j =
    if j >= n then None
    else if integer.(j) && not (Q.is_integer x.(j)) then Some j
    else go (j + 1)
  in
  go 0

(* Solve ordinal carried by recorder events: incumbents from concurrent or
   repeated solves can be regrouped before asserting a trace decreases. *)
let solve_ids = Atomic.make 0

let solve ?(max_nodes = max_int) ?(feasibility = false) ?warm ?basis_out p =
  Ccs_obs.Recorder.phase "ilp" @@ fun () ->
  let ord = Atomic.fetch_and_add solve_ids 1 in
  let nodes = Domain.DLS.get nodes_key in
  nodes := 0;
  let incumbent = ref None in
  let limit_hit = ref false in
  let exception Found_first of Q.t * Q.t array in
  (* Depth-first search over bound tightenings. Each node hands its
     optimal basis to its children: sibling LPs differ from the parent
     only in one variable bound, so the warm start usually holds (and
     falls back to a cold solve when the tightened bound cuts it off). *)
  let rec search lower upper warm =
    if !limit_hit then ()
    else begin
      Ccs_resil.Deadline.check chk_node;
      incr nodes;
      if !nodes > max_nodes then limit_hit := true
      else begin
        let lp = { p.lp with Lp.lower; upper } in
        match Lp.solve ?warm lp with
        | Lp.Infeasible _ -> ()
        | Lp.Unbounded _ ->
            (* With integer variables an unbounded relaxation does not decide
               the MILP, but every problem in this repository has a bounded
               relaxation; treat as a hard error to surface modelling bugs. *)
            failwith "Ilp.solve: unbounded relaxation"
        | Lp.Optimal { objective; solution; basis; _ } -> (
            (* bound pruning *)
            let dominated =
              match !incumbent with
              | Some (best, _) -> Q.(objective >= best)
              | None -> false
            in
            if dominated then Ccs_obs.Metrics.incr m_prunes
            else
              match pick_branch_var p.integer solution with
              | None ->
                  if feasibility then raise (Found_first (objective, solution))
                  else begin
                    (* accepted only when strictly better than the pruning
                       bound, so this per-solve trace is decreasing *)
                    incumbent := Some (objective, solution);
                    Ccs_obs.Recorder.incumbent ~src:"ilp" ~solve:ord
                      (Q.to_float objective)
                  end
              | Some j ->
                  let v = solution.(j) in
                  let fl = Q.of_bigint (Q.floor v) in
                  let ce = Q.of_bigint (Q.ceil v) in
                  let down () =
                    let upper' = Array.copy upper in
                    (match upper'.(j) with
                    | Some u when Q.(u <= fl) -> ()
                    | _ -> upper'.(j) <- Some fl);
                    search lower upper' (Some basis)
                  and up () =
                    let lower' = Array.copy lower in
                    (match lower'.(j) with
                    | Some l when Q.(l >= ce) -> ()
                    | _ -> lower'.(j) <- Some ce);
                    search lower' upper (Some basis)
                  in
                  up ();
                  down ())
      end
    end
  in
  let result =
    (* cover the root relaxation too — it is as expensive as any node's *)
    Ccs_resil.Deadline.check chk_node;
    match Lp.solve ?warm p.lp with
    | Lp.Unbounded _ -> Unbounded
    | Lp.Infeasible _ -> Infeasible
    | Lp.Optimal { basis = root_basis; _ } -> (
        (match basis_out with Some r -> r := Some root_basis | None -> ());
        match
          (try
             search (Array.copy p.lp.Lp.lower) (Array.copy p.lp.Lp.upper)
               (Some root_basis);
             None
           with Found_first (o, x) -> Some (o, x))
        with
        | Some (objective, solution) -> Optimal { objective; solution }
        | None -> (
            if !limit_hit then Node_limit
            else
              match !incumbent with
              | Some (objective, solution) -> Optimal { objective; solution }
              | None -> Infeasible))
  in
  Ccs_obs.Metrics.incr m_solves;
  Ccs_obs.Metrics.add m_nodes !nodes;
  Ccs_obs.Metrics.observe h_nodes (float_of_int !nodes);
  if !limit_hit then Ccs_obs.Metrics.incr m_limit_hits;
  Ccs_obs.Log.debug (fun log ->
      log
        ~fields:
          [
            Ccs_obs.Log.int "nvars" p.lp.Lp.nvars;
            Ccs_obs.Log.int "nodes" !nodes;
            Ccs_obs.Log.str "result"
              (match result with
              | Optimal _ -> "optimal"
              | Infeasible -> "infeasible"
              | Unbounded -> "unbounded"
              | Node_limit -> "node_limit");
          ]
        "ilp.solve");
  result

(* The dual-approximation framework generates many independent per-guess
   subproblems; solving them as one batch keeps every domain busy while the
   result array stays index-ordered (identical to [Array.map (solve ...)]).
   If several solves raise, the lowest-index exception propagates. *)
let solve_batch ?max_nodes ?feasibility ps =
  Ccs_par.parallel_map (fun p -> solve ?max_nodes ?feasibility p) ps
