(* Section 3 algorithms: every schedule validated by the independent
   validators, every guarantee of Theorems 4, 5, 6 and Lemma 2 checked
   empirically, with exact optima as ground truth on small instances. *)

module I = Ccs.Instance
module S = Ccs.Schedule
module Q = Rat

let random_instance ?(max_n = 40) ?(max_m = 8) seed =
  let rng = Ccs_util.Prng.create seed in
  let family =
    match Ccs_util.Prng.int rng 4 with
    | 0 -> Ccs.Generator.Uniform
    | 1 -> Zipf
    | 2 -> Heavy_classes
    | _ -> Large_jobs
  in
  let machines = Ccs_util.Prng.int_in rng 1 max_m in
  let slots = Ccs_util.Prng.int_in rng 1 4 in
  let classes = Ccs_util.Prng.int_in rng 1 10 in
  (* keep C <= c*m so the instance is schedulable, and C <= n *)
  let classes = min (min classes (max 1 (slots * machines))) max_n in
  let spec =
    {
      Ccs.Generator.n = Ccs_util.Prng.int_in rng (max 1 classes) max_n;
      classes;
      machines;
      slots;
      p_lo = 1;
      p_hi = 100;
      family;
    }
  in
  Ccs.Generator.generate ~seed:(seed * 7 + 1) spec

(* ---------- splittable (Theorem 4) ---------- *)

let prop_splittable_valid_and_2approx =
  QCheck.Test.make ~name:"Thm 4: splittable schedule valid, makespan <= 2T" ~count:400
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let sched, stats = Ccs.Approx.Splittable.solve inst in
      match S.validate_splittable inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid schedule: %s" e
      | Ok makespan ->
          let t_guess = stats.Ccs.Approx.Splittable.t_guess in
          Q.(makespan <= Q.mul (Q.of_int 2) t_guess))

let prop_splittable_vs_exact =
  QCheck.Test.make ~name:"Thm 4: T <= opt and makespan <= 2*opt (exact)" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:9 ~max_m:3 seed in
      (* Node_limit -> None: pathological MILPs are skipped, keeping the
         suite's worst-case time bounded. *)
      match Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
          let sched, stats = Ccs.Approx.Splittable.solve inst in
          let makespan =
            match S.validate_splittable inst sched with
            | Ok mk -> mk
            | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
          in
          let t_guess = stats.Ccs.Approx.Splittable.t_guess in
          Q.(t_guess <= opt)
          && Q.(makespan <= Q.mul (Q.of_int 2) opt))

let test_splittable_huge_m () =
  (* Astronomical machine count: algorithm must stay polynomial and emit a
     compressed schedule. 3 classes, heavy loads. *)
  let inst =
    I.make ~machines:1_000_000_000_000 ~slots:1 [ (1000, 0); (999, 1); (998, 2); (7, 0) ]
  in
  let sched, stats = Ccs.Approx.Splittable.solve inst in
  match S.validate_splittable inst sched with
  | Error e -> Alcotest.fail e
  | Ok makespan ->
      (* With that many machines, LB is tiny; T is the smallest feasible
         border; makespan <= 2T. *)
      let t_guess = stats.Ccs.Approx.Splittable.t_guess in
      Alcotest.(check bool) "2-approx" true Q.(makespan <= Q.mul (Q.of_int 2) t_guess);
      Alcotest.(check bool) "used blocks" true (List.length sched.S.blocks > 0)

let test_splittable_single_machine () =
  let inst = I.make ~machines:1 ~slots:2 [ (5, 0); (3, 1) ] in
  let sched, _ = Ccs.Approx.Splittable.solve inst in
  match S.validate_splittable inst sched with
  | Ok makespan -> Alcotest.(check bool) "all on one machine" true (Q.equal makespan (Q.of_int 8))
  | Error e -> Alcotest.fail e

let test_splittable_unschedulable () =
  let inst = I.make ~machines:1 ~slots:1 [ (1, 0); (1, 1) ] in
  match Ccs.Approx.Splittable.solve inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------- border search (Lemma 2) ---------- *)

let prop_border_search_matches_naive =
  QCheck.Test.make ~name:"Lemma 2: advanced search = naive border scan" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let nclasses = Ccs_util.Prng.int_in rng 1 8 in
      let loads = Array.init nclasses (fun _ -> Ccs_util.Prng.int_in rng 1 60) in
      let machines = Ccs_util.Prng.int_in rng 1 10 in
      let slots = Ccs_util.Prng.int_in rng 1 3 in
      if nclasses > slots * machines then QCheck.assume_fail ()
      else begin
        let total = Array.fold_left ( + ) 0 loads in
        let lb = Q.make (Bigint.of_int total) (Bigint.of_int machines) in
        let a = Ccs.Approx.Border_search.search ~loads ~machines ~slots ~lb in
        let b = Ccs.Approx.Border_search.search_naive ~loads ~machines ~slots ~lb in
        Q.equal a.Ccs.Approx.Border_search.t_star b.Ccs.Approx.Border_search.t_star
      end)

let prop_border_search_probe_bound =
  QCheck.Test.make ~name:"Lemma 2: O(C log m) probes" ~count:100
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let nclasses = Ccs_util.Prng.int_in rng 1 20 in
      let loads = Array.init nclasses (fun _ -> Ccs_util.Prng.int_in rng 1 10_000) in
      let machines = Ccs_util.Prng.int_in rng nclasses 1_000_000 in
      let total = Array.fold_left ( + ) 0 loads in
      let lb = Q.make (Bigint.of_int total) (Bigint.of_int machines) in
      let r = Ccs.Approx.Border_search.search ~loads ~machines ~slots:1 ~lb in
      (* 1 (lb probe) + per class: 1 + ceil(log2 m) probes *)
      let log2m =
        int_of_float (ceil (log (float_of_int machines) /. log 2.0)) + 2
      in
      r.Ccs.Approx.Border_search.probes <= 1 + (nclasses * (log2m + 1)))

(* ---------- preemptive (Theorem 5) ---------- *)

let prop_preemptive_valid_and_2approx =
  QCheck.Test.make ~name:"Thm 5: preemptive schedule valid, makespan <= 2T" ~count:400
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let sched, stats = Ccs.Approx.Preemptive.solve inst in
      match S.validate_preemptive inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid schedule: %s" e
      | Ok makespan ->
          let t_guess = stats.Ccs.Approx.Preemptive.t_guess in
          Q.(makespan <= Q.mul (Q.of_int 2) t_guess))

let prop_preemptive_vs_split_opt =
  QCheck.Test.make ~name:"Thm 5: makespan <= 2*opt (split-opt lower bound)" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:9 ~max_m:3 seed in
      match Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst with
      | None -> QCheck.assume_fail ()
      | Some split_opt ->
          (* preemptive opt >= max(split opt, pmax) *)
          let pre_lb = Q.max split_opt (Q.of_int (I.pmax inst)) in
          let sched, _ = Ccs.Approx.Preemptive.solve inst in
          let makespan =
            match S.validate_preemptive inst sched with
            | Ok mk -> mk
            | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
          in
          Q.(makespan <= Q.mul (Q.of_int 2) pre_lb))

let test_preemptive_many_machines () =
  let inst = I.make ~machines:100 ~slots:1 [ (5, 0); (9, 1); (3, 2) ] in
  let sched, _ = Ccs.Approx.Preemptive.solve inst in
  match S.validate_preemptive inst sched with
  | Ok makespan -> Alcotest.(check bool) "optimal pmax" true (Q.equal makespan (Q.of_int 9))
  | Error e -> Alcotest.fail e

(* ---------- non-preemptive (Theorem 6) ---------- *)

let prop_nonpreemptive_valid_and_73 =
  QCheck.Test.make ~name:"Thm 6: non-preemptive valid, makespan <= 7/3 T" ~count:400
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
      match S.validate_nonpreemptive inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid schedule: %s" e
      | Ok makespan ->
          3 * makespan <= 7 * stats.Ccs.Approx.Nonpreemptive.t_guess)

let prop_nonpreemptive_vs_exact =
  QCheck.Test.make ~name:"Thm 6: T <= opt and makespan <= 7/3 opt (exact B&B)" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:11 ~max_m:4 seed in
      match Ccs_exact.Bnb.solve inst with
      | None -> QCheck.assume_fail ()
      | Some (opt, _) ->
          let sched, stats = Ccs.Approx.Nonpreemptive.solve inst in
          let makespan =
            match S.validate_nonpreemptive inst sched with
            | Ok mk -> mk
            | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
          in
          stats.Ccs.Approx.Nonpreemptive.t_guess <= opt && 3 * makespan <= 7 * opt)

let test_cu_counts () =
  (* T = 12: jobs 7,7 are > T/2 (need 2 machines); 5,5 in (4,6] pair on top
     (7+5=12 fits); area = 24/12 = 2. So C_u = 2. *)
  Alcotest.(check int) "paired" 2 (Ccs.Approx.Nonpreemptive.cu ~t:12 [ 7; 7; 5; 5 ]);
  (* T = 12: jobs 11,11: bigs, no mids; area 22/12 -> 2; C2 = 2. *)
  Alcotest.(check int) "two bigs" 2 (Ccs.Approx.Nonpreemptive.cu ~t:12 [ 11; 11 ]);
  (* T = 12: five mids of 5: pairs -> ceil(5/2) = 3 > area ceil(25/12) = 3. *)
  Alcotest.(check int) "mids" 3 (Ccs.Approx.Nonpreemptive.cu ~t:12 [ 5; 5; 5; 5; 5 ]);
  (* large-job bound dominates area: 7,7,7 with T=12: area=ceil(21/12)=2 but
     three bigs need 3 machines. *)
  Alcotest.(check int) "bigs dominate" 3 (Ccs.Approx.Nonpreemptive.cu ~t:12 [ 7; 7; 7 ]);
  Alcotest.(check int) "area only" 2 (Ccs.Approx.Nonpreemptive.cu_area_only ~t:12 [ 7; 7; 7 ])

let test_nonpreemptive_example () =
  let inst = I.make ~machines:2 ~slots:2 [ (6, 0); (6, 1); (6, 2); (6, 3) ] in
  let sched, _ = Ccs.Approx.Nonpreemptive.solve inst in
  match S.validate_nonpreemptive inst sched with
  | Ok mk -> Alcotest.(check bool) "reasonable" true (mk <= 28)
  | Error e -> Alcotest.fail e

(* ---------- exact solvers sanity ---------- *)

let prop_preemptive_vs_true_opt =
  QCheck.Test.make ~name:"Thm 5: makespan <= 2 * true preemptive opt" ~count:30
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:8 ~max_m:3 seed in
      match Ccs_exact.Preemptive_opt.opt ~max_nodes:2_000 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
          let sched, _ = Ccs.Approx.Preemptive.solve inst in
          let makespan =
            match S.validate_preemptive inst sched with
            | Ok mk -> mk
            | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
          in
          Q.(makespan <= Q.mul (Q.of_int 2) opt))

let prop_preemptive_opt_sandwich =
  QCheck.Test.make ~name:"split opt <= preemptive opt <= nonpreemptive opt" ~count:25
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:7 ~max_m:3 seed in
      match
        ( Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst,
          Ccs_exact.Preemptive_opt.opt ~max_nodes:2_000 inst,
          Ccs_exact.Bnb.solve inst )
      with
      | Some split, Some pre, Some (np, _) ->
          Q.(split <= pre) && Q.(pre <= Q.of_int np)
          && Q.(pre >= Q.of_int (I.pmax inst))
      | _ -> QCheck.assume_fail ())

let prop_huge_m_safety =
  (* astronomically many machines: no overflow, valid compressed output *)
  QCheck.Test.make ~name:"Thm 4 with m up to 10^15: valid, no overflow" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let machines =
        let base = Ccs_util.Prng.int_in rng 1_000_000 1_000_000_000 in
        base * Ccs_util.Prng.int_in rng 1 1_000_000
      in
      let classes = Ccs_util.Prng.int_in rng 1 6 in
      let jobs =
        List.init (Ccs_util.Prng.int_in rng classes 12) (fun i ->
            (Ccs_util.Prng.int_in rng 1 1_000_000, if i < classes then i else Ccs_util.Prng.int rng classes))
      in
      let inst = I.make ~machines ~slots:(Ccs_util.Prng.int_in rng 1 3) jobs in
      let sched, stats = Ccs.Approx.Splittable.solve inst in
      match S.validate_splittable inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
      | Ok makespan ->
          let t_guess = stats.Ccs.Approx.Splittable.t_guess in
          Q.(makespan <= Q.mul (Q.of_int 2) t_guess))

let prop_bnb_matches_brute =
  QCheck.Test.make ~name:"B&B = brute force on tiny instances" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:7 ~max_m:3 seed in
      match (Ccs_exact.Bnb.solve inst, Ccs_exact.Bnb.brute_force inst) with
      | Some (a, assignment), Some b ->
          a = b
          && (match S.validate_nonpreemptive inst assignment with
             | Ok mk -> mk = a
             | Error _ -> false)
      | None, None -> true
      | _ -> false)

let prop_split_opt_lower_bound =
  QCheck.Test.make ~name:"splittable opt >= area bound, <= nonpreemptive opt" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:8 ~max_m:3 seed in
      match (Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst, Ccs_exact.Bnb.solve inst) with
      | Some split, Some (nonpre, _) ->
          Q.(split >= Ccs.Bounds.lb_splittable inst) && Q.(split <= Q.of_int nonpre)
      | _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "approx"
    [ ( "splittable",
        [ Alcotest.test_case "huge m (10^12 machines)" `Quick test_splittable_huge_m;
          Alcotest.test_case "single machine" `Quick test_splittable_single_machine;
          Alcotest.test_case "unschedulable rejected" `Quick test_splittable_unschedulable ] );
      ( "preemptive",
        [ Alcotest.test_case "m >= n fast path" `Quick test_preemptive_many_machines ] );
      ( "nonpreemptive",
        [ Alcotest.test_case "C_u computation" `Quick test_cu_counts;
          Alcotest.test_case "small example" `Quick test_nonpreemptive_example ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_splittable_valid_and_2approx; prop_splittable_vs_exact;
            prop_border_search_matches_naive; prop_border_search_probe_bound;
            prop_preemptive_valid_and_2approx; prop_preemptive_vs_split_opt;
            prop_nonpreemptive_valid_and_73; prop_nonpreemptive_vs_exact;
            prop_preemptive_vs_true_opt; prop_preemptive_opt_sandwich;
            prop_huge_m_safety; prop_bnb_matches_brute; prop_split_opt_lower_bound ] ) ]
