(* The conflict-driven exact search and the solver portfolio. The learned
   no-goods, root probing, Luby restarts and identical-machine symmetry
   breaking are pure prunings: none of them may ever cut the optimum, which
   is pinned against the unpruned brute-force reference across every
   generator family — including adversarial knob settings that force
   frequent restarts and no-good store overflows. The portfolio must be a
   deterministic function of the instance at any pool size. *)

module I = Ccs.Instance
module S = Ccs.Schedule
module Bnb = Ccs_exact.Bnb
module Portfolio = Ccs_exact.Portfolio

let all_families =
  [| Ccs.Generator.Uniform; Zipf; Heavy_classes; Large_jobs; Lp_stress; Bnb_stress |]

(* Tiny instances from every family (brute force caps at n = 10). *)
let random_instance ?(max_n = 8) ?(max_m = 3) seed =
  let rng = Ccs_util.Prng.create seed in
  let family = all_families.(Ccs_util.Prng.int rng (Array.length all_families)) in
  let machines = Ccs_util.Prng.int_in rng 1 max_m in
  let slots = Ccs_util.Prng.int_in rng 1 4 in
  let classes = Ccs_util.Prng.int_in rng 1 8 in
  let classes = min (min classes (max 1 (slots * machines))) max_n in
  let spec =
    {
      Ccs.Generator.n = Ccs_util.Prng.int_in rng (max 1 classes) max_n;
      classes;
      machines;
      slots;
      p_lo = 1;
      p_hi = 100;
      family;
    }
  in
  Ccs.Generator.generate ~seed:(seed * 13 + 5) spec

let check_optimal inst (r : Bnb.result) reference =
  (match r.status with
  | Bnb.Complete -> ()
  | _ -> QCheck.Test.fail_reportf "expected a completed search");
  (match S.validate_nonpreemptive inst r.assignment with
  | Ok mk ->
      if mk <> r.makespan then
        QCheck.Test.fail_reportf "assignment makespan %d <> reported %d" mk r.makespan
  | Error e -> QCheck.Test.fail_reportf "invalid assignment: %s" e);
  r.makespan = reference && r.lower_bound = reference

let prop_cdcl_matches_brute =
  QCheck.Test.make ~name:"conflict-driven B&B = brute force (all families)" ~count:120
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      match (Bnb.solve_result inst, Bnb.brute_force inst) with
      | Some r, Some reference -> check_optimal inst r reference
      | None, None -> true
      | _ -> QCheck.Test.fail_reportf "solvers disagree on schedulability")

let prop_cdcl_adversarial_knobs =
  (* A 16-node Luby unit restarts the search relentlessly and a 32-entry
     no-good store overflows constantly: both paths (restart state
     restore, store reset) must preserve the optimum. *)
  QCheck.Test.make ~name:"B&B = brute force under tiny restart unit / no-good cap" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      match (Bnb.solve_result ~restart_unit:16 ~nogood_limit:32 inst, Bnb.brute_force inst) with
      | Some r, Some reference -> check_optimal inst r reference
      | None, None -> true
      | _ -> QCheck.Test.fail_reportf "solvers disagree on schedulability")

let prop_no_restarts_same_answer =
  QCheck.Test.make ~name:"B&B optimum independent of restarts" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      match (Bnb.solve_result ~restart_unit:0 inst, Bnb.solve_result inst) with
      | Some a, Some b -> a.makespan = b.makespan
      | None, None -> true
      | _ -> false)

let prop_portfolio_matches_brute =
  QCheck.Test.make ~name:"portfolio = brute force, proved" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      match (Portfolio.solve inst, Bnb.brute_force inst) with
      | Some o, Some reference ->
          (match S.validate_nonpreemptive inst o.assignment with
          | Ok mk ->
              if mk <> o.makespan then
                QCheck.Test.fail_reportf "assignment makespan %d <> reported %d" mk o.makespan
          | Error e -> QCheck.Test.fail_reportf "invalid assignment: %s" e);
          o.proved && o.makespan = reference && o.lower_bound = reference
          && o.winner = "bnb" (* member 0 completes on tiny instances *)
      | None, None -> true
      | _ -> QCheck.Test.fail_reportf "solvers disagree on schedulability")

let prop_ilp_members_match_brute =
  (* Starve the B&B member (node_limit 1): the configuration-ILP member
     must pick up the proof and still land exactly on the optimum. *)
  QCheck.Test.make ~name:"config-ILP member = brute force when B&B abstains" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:7 seed in
      match (Portfolio.solve ~node_limit:1 inst, Bnb.brute_force inst) with
      | Some o, Some reference ->
          (* the B&B can still close instantly when the warm start meets the
             root bound; otherwise the proof must come from an ILP member *)
          if o.proved then o.makespan = reference
          else o.winner = "none" && o.makespan >= reference
      | None, None -> true
      | _ -> QCheck.Test.fail_reportf "solvers disagree on schedulability")

let prop_nfold_member_matches_brute =
  (* Starve both the B&B and the config enumeration: only the N-fold
     member can prove. *)
  QCheck.Test.make ~name:"N-fold member = brute force when others abstain" ~count:25
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:6 seed in
      match (Portfolio.solve ~node_limit:1 ~max_configs:0 inst, Bnb.brute_force inst) with
      | Some o, Some reference ->
          if o.proved then o.makespan = reference && o.winner <> "config_ilp"
          else o.winner = "none" && o.makespan >= reference
      | None, None -> true
      | _ -> QCheck.Test.fail_reportf "solvers disagree on schedulability")

let with_jobs jobs f =
  Ccs_par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Ccs_par.set_jobs 1) f

let prop_portfolio_jobs_deterministic =
  QCheck.Test.make ~name:"portfolio bit-identical at jobs 1 and 4" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let run () = Portfolio.solve ~node_limit:100_000 inst in
      let a = with_jobs 1 run and b = with_jobs 4 run in
      match (a, b) with
      | Some a, Some b ->
          a.winner = b.winner && a.makespan = b.makespan && a.proved = b.proved
          && a.assignment = b.assignment
      | None, None -> true
      | _ -> false)

(* ---------- node-limit incumbent surfacing (the PR-10 bugfix) ---------- *)

let test_node_limit_keeps_incumbent () =
  (* A bnb-stress instance big enough that one node cannot finish: the
     search must still surface the warm-start incumbent and a root bound. *)
  let spec =
    { Ccs.Generator.default with n = 14; classes = 4; machines = 4; slots = 2;
      family = Ccs.Generator.Bnb_stress }
  in
  let inst = Ccs.Generator.generate ~seed:42 spec in
  match Bnb.solve_result ~node_limit:1 inst with
  | Some r -> (
      (match r.status with
      | Bnb.Node_limit -> ()
      | _ -> Alcotest.fail "expected Node_limit");
      match S.validate_nonpreemptive inst r.assignment with
      | Ok mk ->
          Alcotest.(check int) "incumbent consistent" r.makespan mk;
          Alcotest.(check bool) "lower bound below incumbent" true (r.lower_bound <= r.makespan);
          Alcotest.(check bool) "lower bound positive" true (r.lower_bound > 0)
      | Error e -> Alcotest.fail ("invalid incumbent: " ^ e))
  | None -> Alcotest.fail "schedulable instance"

let test_solve_none_on_node_limit () =
  (* [solve] keeps its strict contract: no proof, no answer. *)
  let spec =
    { Ccs.Generator.default with n = 14; classes = 4; machines = 4; slots = 2;
      family = Ccs.Generator.Bnb_stress }
  in
  let inst = Ccs.Generator.generate ~seed:42 spec in
  Alcotest.(check bool) "solve abstains" true (Bnb.solve ~node_limit:1 inst = None)

let test_probing_proves_optimal () =
  (* Equal jobs, one per machine: the warm start meets the lower bound, so
     the search must finish without expanding a single node. *)
  let inst = I.make ~machines:3 ~slots:1 [ (10, 0); (10, 1); (10, 2) ] in
  match Bnb.solve_result inst with
  | Some r ->
      (match r.status with
      | Bnb.Complete -> ()
      | _ -> Alcotest.fail "expected Complete");
      Alcotest.(check int) "optimal" 10 r.makespan;
      Alcotest.(check int) "no search needed" 0 r.nodes
  | None -> Alcotest.fail "schedulable instance"

let test_brute_force_deadline () =
  (* The incremental brute force must notice an expired ambient deadline
     instead of hanging (the old version never checked). *)
  let spec =
    { Ccs.Generator.default with n = 10; classes = 3; machines = 4; slots = 2 }
  in
  let inst = Ccs.Generator.generate ~seed:7 spec in
  let tok = Ccs_resil.Deadline.of_budget_ms 0 in
  match Ccs_resil.Deadline.with_token tok (fun () -> Bnb.brute_force inst) with
  | exception Ccs_resil.Deadline.Cancelled _ -> ()
  | _ -> Alcotest.fail "expected cancellation"

let () =
  Alcotest.run "exact"
    [ ( "bnb",
        [ Alcotest.test_case "node limit keeps incumbent" `Quick test_node_limit_keeps_incumbent;
          Alcotest.test_case "solve stays strict" `Quick test_solve_none_on_node_limit;
          Alcotest.test_case "probing closes at the bound" `Quick test_probing_proves_optimal;
          Alcotest.test_case "brute force honors deadlines" `Quick test_brute_force_deadline ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cdcl_matches_brute; prop_cdcl_adversarial_knobs;
            prop_no_restarts_same_answer; prop_portfolio_matches_brute;
            prop_ilp_members_match_brute; prop_nfold_member_matches_brute;
            prop_portfolio_jobs_deterministic ] ) ]
