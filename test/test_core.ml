(* Core model: instances, schedules + validators, bounds, generators, IO. *)

module I = Ccs.Instance
module S = Ccs.Schedule
module Q = Rat

let q = Alcotest.testable Q.pp Q.equal

let mk ?(machines = 3) ?(slots = 2) jobs = I.make ~machines ~slots jobs

let test_instance_basics () =
  let inst = mk [ (3, 0); (5, 1); (2, 0); (7, 4) ] in
  Alcotest.(check int) "n" 4 (I.n inst);
  Alcotest.(check int) "classes dense" 3 (I.num_classes inst);
  Alcotest.(check int) "total" 17 (I.total_load inst);
  Alcotest.(check int) "pmax" 7 (I.pmax inst);
  Alcotest.(check (array int)) "class loads" [| 5; 5; 7 |] (I.class_load inst);
  Alcotest.(check bool) "schedulable" true (I.schedulable inst)

let test_instance_validation () =
  Alcotest.check_raises "no jobs" (Invalid_argument "Instance.make: no jobs") (fun () ->
      ignore (mk []));
  Alcotest.check_raises "bad p"
    (Invalid_argument "Instance.make: processing times must be positive") (fun () ->
      ignore (mk [ (0, 1) ]))

let test_slots_clamped () =
  let inst = mk ~slots:100 [ (1, 0); (1, 1) ] in
  Alcotest.(check int) "c clamped to C" 2 (I.c inst)

let test_unschedulable () =
  (* 5 classes, 1 machine, 2 slots. *)
  let inst = I.make ~machines:1 ~slots:2 (List.init 5 (fun i -> (1, i))) in
  Alcotest.(check bool) "unschedulable" false (I.schedulable inst)

let test_validate_nonpreemptive () =
  let inst = mk ~machines:2 ~slots:1 [ (3, 0); (4, 1); (2, 0) ] in
  (match S.validate_nonpreemptive inst [| 0; 1; 0 |] with
  | Ok mk -> Alcotest.(check int) "makespan" 5 mk
  | Error e -> Alcotest.fail e);
  (match S.validate_nonpreemptive inst [| 0; 0; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "class violation not caught");
  match S.validate_nonpreemptive inst [| 0; 5; 0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad machine not caught"

let test_validate_splittable () =
  let inst = mk ~machines:3 ~slots:1 [ (6, 0); (3, 1) ] in
  let sched =
    {
      S.blocks = [ { S.cls = 0; m_start = 0; m_count = 2; per_machine = Q.of_int 3 } ];
      explicit_machines = [ (2, [ (1, Q.of_int 3) ]) ];
    }
  in
  (match S.validate_splittable inst sched with
  | Ok mk -> Alcotest.check q "makespan" (Q.of_int 3) mk
  | Error e -> Alcotest.fail e);
  (* under-scheduled class *)
  let bad = { sched with S.explicit_machines = [ (2, [ (1, Q.of_int 2) ]) ] } in
  (match S.validate_splittable inst bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing load not caught");
  (* slot violation: both classes on machine 2 with c = 1 *)
  let bad2 =
    {
      S.blocks = [ { S.cls = 0; m_start = 2; m_count = 1; per_machine = Q.of_int 6 } ];
      explicit_machines = [ (2, [ (1, Q.of_int 3) ]) ];
    }
  in
  (match S.validate_splittable inst bad2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "slot violation not caught");
  (* overlapping blocks *)
  let bad3 =
    {
      S.blocks =
        [ { S.cls = 0; m_start = 0; m_count = 2; per_machine = Q.of_int 3 };
          { S.cls = 1; m_start = 1; m_count = 1; per_machine = Q.of_int 3 } ];
      explicit_machines = [];
    }
  in
  match S.validate_splittable inst bad3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlap not caught"

let test_to_job_pieces () =
  let inst = mk ~machines:3 ~slots:1 [ (6, 0); (3, 0) ] in
  (* class 0 spread as 4 + 5 over two machines *)
  let sched =
    {
      S.blocks = [];
      explicit_machines = [ (0, [ (0, Q.of_int 4) ]); (1, [ (0, Q.of_int 5) ]) ];
    }
  in
  let pieces = S.to_job_pieces inst sched in
  (* per-job totals *)
  let totals = Array.make 2 Q.zero in
  List.iter
    (fun (_, pl) -> List.iter (fun pc -> totals.(pc.S.job) <- Q.add totals.(pc.S.job) pc.S.size) pl)
    pieces;
  Alcotest.check q "job 0 total" (Q.of_int 6) totals.(0);
  Alcotest.check q "job 1 total" (Q.of_int 3) totals.(1)

let test_validate_preemptive () =
  let inst = mk ~machines:2 ~slots:2 [ (4, 0); (3, 1) ] in
  let ok : S.preemptive =
    [| [ { S.pjob = 0; start = Q.zero; len = Q.of_int 4 } ];
       [ { S.pjob = 1; start = Q.zero; len = Q.of_int 3 } ] |]
  in
  (match S.validate_preemptive inst ok with
  | Ok mk -> Alcotest.check q "makespan" (Q.of_int 4) mk
  | Error e -> Alcotest.fail e);
  (* same job in parallel on two machines *)
  let bad : S.preemptive =
    [| [ { S.pjob = 0; start = Q.zero; len = Q.of_int 2 };
         { S.pjob = 1; start = Q.of_int 2; len = Q.of_int 3 } ];
       [ { S.pjob = 0; start = Q.of_int 1; len = Q.of_int 2 } ] |]
  in
  (match S.validate_preemptive inst bad with
  | Error msg ->
      Alcotest.(check bool) "parallel detected" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "self-parallelism not caught");
  (* machine-level overlap *)
  let bad2 : S.preemptive =
    [| [ { S.pjob = 0; start = Q.zero; len = Q.of_int 4 };
         { S.pjob = 1; start = Q.of_int 3; len = Q.of_int 3 } ] |]
  in
  match S.validate_preemptive inst bad2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "machine overlap not caught"

let test_preemptive_first_error_wins () =
  (* two offending machines: the report must name machine 0, not the last *)
  let inst = mk ~machines:3 ~slots:2 [ (4, 0); (4, 1); (4, 2) ] in
  let bad : S.preemptive =
    [| [ { S.pjob = 0; start = Q.zero; len = Q.of_int 3 };
         { S.pjob = 0; start = Q.of_int 2; len = Q.of_int 1 } ];
       [ { S.pjob = 1; start = Q.zero; len = Q.of_int 3 };
         { S.pjob = 1; start = Q.of_int 2; len = Q.of_int 1 } ];
       [ { S.pjob = 2; start = Q.zero; len = Q.of_int 4 } ] |]
  in
  (match S.validate_preemptive inst bad with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "reports machine 0 (got %S)" msg)
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "machine 0")
  | Ok _ -> Alcotest.fail "overlap not caught");
  (* a piece with an out-of-range job index must report, not crash *)
  let oob : S.preemptive = [| [ { S.pjob = 9; start = Q.zero; len = Q.of_int 4 } ] |] in
  match S.validate_preemptive inst oob with
  | Error msg -> Alcotest.(check bool) "bad index reported" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad job index not caught"

let test_nonpreemptive_first_error_wins () =
  let inst = mk ~machines:4 ~slots:1 [ (1, 0); (1, 1); (1, 2); (1, 3) ] in
  (* machines 1 and 2 both exceed c = 1; deterministic report: machine 1 *)
  match S.validate_nonpreemptive inst [| 1; 1; 2; 2 |] with
  | Error msg -> Alcotest.(check string) "first machine" "machine 1: 2 classes > c" msg
  | Ok _ -> Alcotest.fail "slot violation not caught"

let test_splittable_block_explicit_combination () =
  (* explicit machines inside a block combine loads and classes; makespan and
     the slot check must see the combined view (exercises the one-pass
     block-load precomputation) *)
  let inst = mk ~machines:4 ~slots:2 [ (12, 0); (5, 1); (3, 2) ] in
  let sched =
    {
      S.blocks = [ { S.cls = 0; m_start = 0; m_count = 3; per_machine = Q.of_int 4 } ];
      explicit_machines = [ (1, [ (1, Q.of_int 5) ]); (3, [ (2, Q.of_int 3) ]) ];
    }
  in
  (match S.validate_splittable inst sched with
  | Ok mk -> Alcotest.check q "combined makespan" (Q.of_int 9) mk
  | Error e -> Alcotest.fail e);
  (* same shape but with c = 1: machine 1 now holds classes {0, 1} *)
  let inst1 = mk ~machines:4 ~slots:1 [ (12, 0); (5, 1); (3, 2) ] in
  match S.validate_splittable inst1 sched with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "block+explicit slot violation not caught"

let test_bounds () =
  let inst = mk ~machines:4 ~slots:2 [ (8, 0); (4, 1); (4, 2) ] in
  Alcotest.check q "lb split" (Q.of_int 4) (Ccs.Bounds.lb_splittable inst);
  Alcotest.check q "lb pre" (Q.of_int 8) (Ccs.Bounds.lb_preemptive inst);
  Alcotest.check q "ub integral" (Q.of_int 24) (Ccs.Bounds.ub_integral inst)

let test_ub_integral_no_overflow () =
  (* three jobs near max_int: n * pmax wraps in native arithmetic but must
     come back exact (and in particular positive and > max_int) *)
  let big = max_int - 7 in
  let inst = mk ~machines:2 ~slots:2 [ (big, 0); (big, 1); (big, 0) ] in
  let ub = Ccs.Bounds.ub_integral inst in
  Alcotest.(check bool) "positive" true (Q.sign ub > 0);
  Alcotest.(check bool) "exceeds max_int" true Q.(ub > Q.of_int max_int);
  Alcotest.check q "exact value" (Q.mul (Q.of_int 3) (Q.of_int big)) ub

let test_io_roundtrip () =
  let inst = mk ~machines:7 ~slots:2 [ (3, 0); (5, 1); (2, 0) ] in
  match Ccs.Io.of_string (Ccs.Io.to_string inst) with
  | Ok inst' ->
      Alcotest.(check int) "n" (I.n inst) (I.n inst');
      Alcotest.(check int) "m" (I.m inst) (I.m inst');
      Alcotest.(check int) "c" (I.c inst) (I.c inst');
      Alcotest.(check (array int)) "loads" (I.class_load inst) (I.class_load inst')
  | Error e -> Alcotest.fail e

let test_io_blank_delimiters () =
  (* CRLF line endings and tab-delimited fields parse like plain spaces *)
  let crlf = "ccs 1\r\nmachines 2\r\nslots 2\r\njob 3 1\r\njob 4 0\r\n" in
  (match Ccs.Io.of_string crlf with
  | Ok inst ->
      Alcotest.(check int) "crlf n" 2 (I.n inst);
      Alcotest.(check int) "crlf m" 2 (I.m inst)
  | Error e -> Alcotest.fail ("CRLF rejected: " ^ e));
  let tabs = "ccs\t1\nmachines\t2\nslots\t2\njob\t3\t1\njob 4\t0\n" in
  (match Ccs.Io.of_string tabs with
  | Ok inst ->
      Alcotest.(check int) "tabs n" 2 (I.n inst);
      Alcotest.(check (array int)) "tabs loads" [| 4; 3 |] (I.class_load inst)
  | Error e -> Alcotest.fail ("tabs rejected: " ^ e));
  (* round trip through to_string survives re-parsing after a CRLF rewrite *)
  let inst = mk ~machines:3 ~slots:2 [ (5, 0); (2, 1); (9, 1) ] in
  let windows =
    String.concat "\r\n" (String.split_on_char '\n' (Ccs.Io.to_string inst))
  in
  match Ccs.Io.of_string windows with
  | Ok inst' ->
      Alcotest.(check int) "roundtrip n" (I.n inst) (I.n inst');
      Alcotest.(check (array int)) "roundtrip loads" (I.class_load inst) (I.class_load inst')
  | Error e -> Alcotest.fail ("CRLF roundtrip rejected: " ^ e)

let test_io_errors () =
  (match Ccs.Io.of_string "garbage" with Error _ -> () | Ok _ -> Alcotest.fail "garbage accepted");
  (match Ccs.Io.of_string "ccs 1\nslots 2\njob 1 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing machines accepted");
  match Ccs.Io.of_string "ccs 1\nmachines 2\nslots 2\n# comment\njob 3 1\n" with
  | Ok inst -> Alcotest.(check int) "comment skipped" 1 (I.n inst)
  | Error e -> Alcotest.fail e

let prop_generator_valid =
  QCheck.Test.make ~name:"generated instances are well-formed" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let spec =
        {
          Ccs.Generator.n = 1 + (seed mod 60);
          classes = 1 + (seed mod 9);
          machines = 1 + (seed mod 7);
          slots = 1 + (seed mod 4);
          p_lo = 1;
          p_hi = 50;
          family =
            (match seed mod 4 with
            | 0 -> Ccs.Generator.Uniform
            | 1 -> Zipf
            | 2 -> Heavy_classes
            | _ -> Large_jobs);
        }
      in
      let inst = Ccs.Generator.generate ~seed spec in
      I.n inst = spec.Ccs.Generator.n
      && I.num_classes inst <= spec.Ccs.Generator.classes
      && I.pmax inst <= 50
      && Array.for_all (fun l -> l > 0) (I.class_load inst))

let prop_io_fuzz =
  (* the parser must never raise, only return Error, on arbitrary input *)
  QCheck.Test.make ~name:"Io.of_string total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      match Ccs.Io.of_string s with Ok _ | Error _ -> true)

let prop_io_roundtrip_random =
  QCheck.Test.make ~name:"Io roundtrip on random instances" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let spec =
        { Ccs.Generator.default with Ccs.Generator.n = 1 + (seed mod 30); classes = 1 + (seed mod 6) }
      in
      let inst = Ccs.Generator.generate ~seed spec in
      match Ccs.Io.of_string (Ccs.Io.to_string inst) with
      | Ok inst' ->
          I.n inst = I.n inst' && I.m inst = I.m inst'
          && I.class_load inst = I.class_load inst'
      | Error _ -> false)

let prop_decode_preserves_jobs =
  (* class-level schedules decode to job pieces whose per-job totals are the
     processing times — the canonical cutting of Schedule.to_job_pieces *)
  QCheck.Test.make ~name:"to_job_pieces preserves every job" ~count:150
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let machines = Ccs_util.Prng.int_in rng 1 5 in
      let slots = Ccs_util.Prng.int_in rng 1 3 in
      let classes = max 1 (min (Ccs_util.Prng.int_in rng 1 6) (slots * machines)) in
      let n = Ccs_util.Prng.int_in rng classes 20 in
      let jobs = List.init n (fun i ->
        (Ccs_util.Prng.int_in rng 1 30, if i < classes then i else Ccs_util.Prng.int rng classes)) in
      let inst = I.make ~machines ~slots jobs in
      let sched, _ = Ccs.Approx.Splittable.solve inst in
      let pieces = S.to_job_pieces inst sched in
      let totals = Array.make (I.n inst) Q.zero in
      List.iter
        (fun (_, pl) ->
          List.iter (fun pc -> totals.(pc.S.job) <- Q.add totals.(pc.S.job) pc.S.size) pl)
        pieces;
      let ok = ref true in
      Array.iteri
        (fun j total ->
          if not (Q.equal total (Q.of_int (I.job inst j).I.p)) then ok := false)
        totals;
      !ok)

let prop_round_robin_lemma3 =
  QCheck.Test.make ~name:"Lemma 3: round robin <= avg + max" ~count:300
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let m = Ccs_util.Prng.int_in rng 1 8 in
      let k = Ccs_util.Prng.int_in rng 1 40 in
      let sizes = List.init k (fun _ -> Q.of_int (Ccs_util.Prng.int_in rng 1 100)) in
      let sorted = List.sort (fun a b -> Q.compare b a) sizes in
      let machines = Ccs.Approx.Round_robin.assign ~machines:m sorted in
      let makespan =
        Array.fold_left
          (fun acc items -> Q.max acc (List.fold_left Q.add Q.zero items))
          Q.zero machines
      in
      Q.(makespan <= Ccs.Approx.Round_robin.lemma3_bound ~machines:m sizes))

let () =
  Alcotest.run "core"
    [ ( "instance",
        [ Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "slots clamped" `Quick test_slots_clamped;
          Alcotest.test_case "unschedulable detection" `Quick test_unschedulable ] );
      ( "schedule",
        [ Alcotest.test_case "non-preemptive validator" `Quick test_validate_nonpreemptive;
          Alcotest.test_case "splittable validator" `Quick test_validate_splittable;
          Alcotest.test_case "job-piece decoding" `Quick test_to_job_pieces;
          Alcotest.test_case "preemptive validator" `Quick test_validate_preemptive;
          Alcotest.test_case "preemptive first error wins" `Quick
            test_preemptive_first_error_wins;
          Alcotest.test_case "non-preemptive first error wins" `Quick
            test_nonpreemptive_first_error_wins;
          Alcotest.test_case "block+explicit combination" `Quick
            test_splittable_block_explicit_combination ] );
      ( "bounds",
        [ Alcotest.test_case "values" `Quick test_bounds;
          Alcotest.test_case "ub_integral no overflow" `Quick
            test_ub_integral_no_overflow ] );
      ( "io",
        [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "blank delimiters" `Quick test_io_blank_delimiters;
          Alcotest.test_case "errors" `Quick test_io_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generator_valid; prop_round_robin_lemma3; prop_io_fuzz;
            prop_io_roundtrip_random; prop_decode_preserves_jobs ] ) ]
