CLI end-to-end: generate an instance, solve it with every variant/algorithm
combination, and check the reported numbers are sane and deterministic.

  $ ccs_gen -n 10 -C 3 -m 3 -c 2 --seed 5 -o inst.ccs
  wrote inst.ccs (n=10, C=3)
  $ head -3 inst.ccs
  ccs 1
  machines 3
  slots 2

  $ ccs_solve inst.ccs --variant nonpreemptive --algo approx -q
  instance: n=10 m=3 c=2 C=3
  non-preemptive 7/3-approx: makespan 273 (guess T=212, <= 7/3 T)

  $ ccs_solve inst.ccs --variant nonpreemptive --algo exact -q
  instance: n=10 m=3 c=2 C=3
  non-preemptive exact optimum: 229

--portfolio races the B&B against config-ILP and N-fold; the winner
annotation is deterministic (lowest-index member with a proof):

  $ ccs_solve inst.ccs --variant nonpreemptive --algo exact --portfolio -q
  instance: n=10 m=3 c=2 C=3
  non-preemptive exact optimum: 229 (portfolio winner: bnb)

An exhausted node budget is not a silent failure: the search surfaces its
best incumbent and the proven lower bound, mirroring the anytime driver's
Degraded contract:

  $ ccs_gen -n 18 -C 4 -m 4 -c 2 --p-hi 100 --family bnb-stress --seed 1234 -o hard.ccs
  wrote hard.ccs (n=18, C=4)
  $ ccs_solve hard.ccs --variant nonpreemptive --algo exact --node-limit 500 -q
  instance: n=18 m=4 c=2 C=4
  exact search out of budget: incumbent 236, proven lower bound 224

Under the same tiny budget the portfolio still closes the instance,
because the configuration-ILP member proves the optimum where the
budgeted B&B cannot:

  $ ccs_solve hard.ccs --variant nonpreemptive --algo exact --node-limit 500 --portfolio -q
  instance: n=18 m=4 c=2 C=4
  non-preemptive exact optimum: 236 (portfolio winner: config_ilp)

  $ ccs_solve inst.ccs --variant splittable --algo approx -q
  instance: n=10 m=3 c=2 C=3
  splittable 2-approx: makespan 264 (guess T=635/3, <= 2T)

  $ ccs_solve inst.ccs --variant preemptive --algo approx -q
  instance: n=10 m=3 c=2 C=3
  preemptive 2-approx: makespan 264 (guess T=635/3, <= 2T)

  $ ccs_solve inst.ccs --variant nonpreemptive --algo ptas --epsilon 1 -q
  instance: n=10 m=3 c=2 C=3
  non-preemptive PTAS (delta=1/1): makespan 586 (accepted T=212)

Several instances form a batch; with --jobs they are solved on a domain
pool, and the buffered per-instance output is byte-identical to -j 1:

  $ ccs_gen -n 8 -C 2 -m 2 -c 2 --seed 9 -o inst2.ccs
  wrote inst2.ccs (n=8, C=2)
  $ ccs_solve inst.ccs inst2.ccs --variant nonpreemptive --algo ptas --epsilon 1 -q > batch_j1.out
  $ ccs_solve inst.ccs inst2.ccs --variant nonpreemptive --algo ptas --epsilon 1 -q --jobs 4 > batch_j4.out
  $ diff batch_j1.out batch_j4.out
  $ cat batch_j4.out
  === inst.ccs ===
  instance: n=10 m=3 c=2 C=3
  non-preemptive PTAS (delta=1/1): makespan 586 (accepted T=212)
  === inst2.ccs ===
  instance: n=8 m=2 c=2 C=2
  non-preemptive PTAS (delta=1/1): makespan 310 (accepted T=281)

A malformed instance is rejected with a useful message:

  $ printf 'ccs 1\nslots 2\njob 1 0\n' > bad.ccs
  $ ccs_solve bad.ccs 2>&1
  error: missing 'machines' line
  [1]

An unschedulable instance (more classes than total slots) is refused:

  $ printf 'ccs 1\nmachines 1\nslots 1\njob 1 0\njob 1 1\n' > tight.ccs
  $ ccs_solve tight.ccs --variant splittable --algo approx 2>&1
  instance: n=2 m=1 c=1 C=2
  error: Approx.Splittable.solve: C > c*m, no schedule exists
  [1]
