Flat pipeline end-to-end: generate straight to the ccsb1 binary format,
solve on the flat representation, and check the run-length-compressed
output and the record/flat bit-identity through the CLI.

  $ ccs_gen -n 10 -C 3 -m 3 -c 2 --seed 5 --format flat -o inst.ccsb
  wrote inst.ccsb (n=10, C=3, flat binary)
  $ head -c 6 inst.ccsb
  ccsb1

Binary --format flat requires an output file (the payload is not text):

  $ ccs_gen -n 4 -C 2 -m 2 -c 1 --format flat
  error: --format flat is binary; -o FILE is required
  [2]

The text form of the same seed parses to the same instance, and the flat
solver path reports exactly what the record path reports:

  $ ccs_gen -n 10 -C 3 -m 3 -c 2 --seed 5 -o inst.ccs
  wrote inst.ccs (n=10, C=3)
  $ ccs_solve inst.ccs --variant nonpreemptive --algo approx -q > record.out
  $ ccs_solve inst.ccsb --variant nonpreemptive --algo approx --format flat -q > flat.out
  $ diff record.out flat.out
  $ cat flat.out
  instance: n=10 m=3 c=2 C=3
  non-preemptive 7/3-approx: makespan 273 (guess T=212, <= 7/3 T)

  $ ccs_solve inst.ccsb --variant splittable --algo approx --format flat -q
  instance: n=10 m=3 c=2 C=3
  splittable 2-approx: makespan 264 (guess T=635/3, <= 2T)

Run-length-compressed schedules collapse identical consecutive machines:

  $ ccs_solve inst.ccsb --variant nonpreemptive --algo approx --format flat --compress
  instance: n=10 m=3 c=2 C=3
  non-preemptive 7/3-approx: makespan 273 (guess T=212, <= 7/3 T)
  machine 0 (load 273): class 0: 3 jobs, load 112, class 2: 2 jobs, load 161
  machine 1 (load 210): class 1: 1 jobs, load 49, class 2: 2 jobs, load 161
  machine 2 (load 152): class 0: 2 jobs, load 152

  $ ccs_solve inst.ccsb --variant preemptive --algo approx --format flat --compress
  instance: n=10 m=3 c=2 C=3
  preemptive 2-approx: makespan 264 (guess T=635/3, <= 2T)
  machine 0 (finish 264): class 0: 6 pieces, time 264
  machine 1 (finish 782/3): class 1: 1 pieces, time 49, class 2: 3 pieces, time 635/3
  machine 2 (finish 331/3): class 2: 2 pieces, time 331/3
