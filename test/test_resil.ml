(* Resilience tests: the cancellation contract end to end.

   - Mono clock sanity and Deadline token semantics (expiry, kill,
     parent/child chains, ambient install/restore).
   - Every solver family raises Cancelled promptly under an expired token.
   - The At-ordinal fault sweep: interrupt the degradation ladder at every
     k-th cancellation checkpoint (Cancel and Raise actions) and demand a
     valid outcome each time — validator-clean incumbent, sound lower
     bound vs the exact optimum, balanced span stack.
   - Determinism after chaos: a clean run after an interrupted one still
     produces the baseline answer (no corrupted global state).
   - The checkpoint counter is exact and deterministic for a fixed
     workload (the bench regression gate depends on this).
   - parallel_find_first sibling cancellation: a poisoned task must not
     let an in-flight sibling run to completion (satellite of the same
     PR: a regression test that a poison never serializes the pool). *)

module Q = Rat
module Deadline = Ccs_resil.Deadline
module Faults = Ccs_resil.Faults
module Outcome = Ccs_resil.Outcome
module Driver = Ccs_anytime.Driver
module Mono = Ccs_util.Mono
module Par = Ccs_par

let param = Ccs.Ptas.Common.param 2

let inst =
  Ccs.Instance.make ~machines:3 ~slots:2
    [ (7, 0); (5, 1); (6, 2); (4, 3); (9, 0); (3, 1); (8, 2); (2, 3) ]

(* ---------- clock and tokens ---------- *)

let test_mono () =
  let a = Mono.now_ns () in
  let b = Mono.now_ns () in
  Alcotest.(check bool) "monotone" true (b >= a);
  Alcotest.(check bool) "positive" true (a > 0);
  Alcotest.(check bool) "now_s consistent" true (abs_float (Mono.now_s () -. (float_of_int (Mono.now_ns ()) /. 1e9)) < 1.0)

let test_tokens () =
  Alcotest.(check bool) "never not cancelled" false (Deadline.cancelled Deadline.never);
  Alcotest.(check bool) "never has no limit" true (Deadline.limit_ns Deadline.never = None);
  let expired = Deadline.of_budget_ms 0 in
  Alcotest.(check bool) "0ms budget expires" true (Deadline.expired expired);
  let tok = Deadline.of_budget_ms 60_000 in
  Alcotest.(check bool) "fresh not cancelled" false (Deadline.cancelled tok);
  let kid = Deadline.child tok in
  Deadline.kill kid;
  Alcotest.(check bool) "killed child cancelled" true (Deadline.cancelled kid);
  Alcotest.(check bool) "parent unaffected by child kill" false (Deadline.cancelled tok);
  let kid2 = Deadline.child tok in
  Deadline.kill tok;
  Alcotest.(check bool) "parent kill reaches child" true (Deadline.cancelled kid2);
  (* kill of [never] is a no-op *)
  Deadline.kill Deadline.never;
  Alcotest.(check bool) "never still alive" false (Deadline.cancelled Deadline.never)

let test_ambient_restore () =
  let tok = Deadline.of_budget_ms 60_000 in
  let outer = Deadline.ambient () in
  (try
     Deadline.with_token tok (fun () ->
         Alcotest.(check bool) "installed" true (Deadline.ambient () == tok);
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Deadline.ambient () == outer)

(* ---------- expired token stops every solver family ---------- *)

let cancelled f =
  match f () with
  | _ -> false
  | exception Deadline.Cancelled _ -> true

let test_expired_stops_solvers () =
  let under f () = Deadline.with_token (Deadline.of_budget_ms 0) f in
  Alcotest.(check bool) "bnb" true
    (cancelled (under (fun () -> Ccs_exact.Bnb.solve inst)));
  Alcotest.(check bool) "splittable exact (lp/ilp)" true
    (cancelled (under (fun () -> Ccs_exact.Splittable_opt.solve inst)));
  Alcotest.(check bool) "preemptive exact" true
    (cancelled (under (fun () -> Ccs_exact.Preemptive_opt.opt inst)));
  Alcotest.(check bool) "splittable ptas" true
    (cancelled (under (fun () -> Ccs.Ptas.Splittable_ptas.solve param inst)));
  Alcotest.(check bool) "preemptive ptas" true
    (cancelled (under (fun () -> Ccs.Ptas.Preemptive_ptas.solve param inst)));
  Alcotest.(check bool) "nonpreemptive ptas" true
    (cancelled (under (fun () -> Ccs.Ptas.Nonpreemptive_ptas.solve param inst)));
  Alcotest.(check bool) "splittable approx" true
    (cancelled (under (fun () -> Ccs.Approx.Splittable.solve inst)));
  Alcotest.(check bool) "nonpreemptive approx" true
    (cancelled (under (fun () -> Ccs.Approx.Nonpreemptive.solve inst)))

(* The anytime PTAS under an expired token: clean partial result. *)
let test_ptas_anytime_interrupted () =
  let a =
    Deadline.with_token (Deadline.of_budget_ms 0) (fun () ->
        Ccs.Ptas.Splittable_ptas.solve_anytime param inst)
  in
  Alcotest.(check bool) "not complete" false a.Ccs.Ptas.Common.complete

(* ---------- the At-ordinal sweep ---------- *)

(* Exact optima as ground truth for lower-bound soundness. *)
let opt_nonpre =
  lazy (match Ccs_exact.Bnb.solve inst with Some (o, _) -> Q.of_int o | None -> assert false)

let opt_split =
  lazy (match Ccs_exact.Splittable_opt.solve inst with Some o -> o | None -> assert false)

let opt_pre =
  lazy (match Ccs_exact.Preemptive_opt.opt inst with Some o -> o | None -> assert false)

(* Validate one driver outcome: incumbent passes the regime validator with
   the recorded makespan, the lower bound is sound (<= the regime's true
   optimum), and a degraded outcome always carries an incumbent. *)
let check_outcome what validate opt = function
  | Outcome.Complete (s : _ Driver.solved) -> (
      match validate s.Driver.schedule with
      | Ok mk -> Alcotest.(check string) (what ^ ": complete makespan") (Q.to_string mk) (Q.to_string s.Driver.makespan)
      | Error e -> Alcotest.fail (what ^ ": complete schedule invalid: " ^ e))
  | Outcome.Degraded d -> (
      match d.Outcome.incumbent with
      | None -> Alcotest.fail (what ^ ": degraded without incumbent")
      | Some s -> (
          (match validate s.Driver.schedule with
          | Ok mk ->
              Alcotest.(check string) (what ^ ": incumbent makespan") (Q.to_string mk)
                (Q.to_string s.Driver.makespan);
              Alcotest.(check bool) (what ^ ": lb <= incumbent") true Q.(d.Outcome.lower_bound <= mk);
              Alcotest.(check bool) (what ^ ": optimum not above incumbent") true Q.(opt <= mk)
          | Error e -> Alcotest.fail (what ^ ": incumbent invalid: " ^ e));
          Alcotest.(check bool) (what ^ ": lb sound vs exact optimum") true
            Q.(d.Outcome.lower_bound <= opt)))

let solve_checked what regime =
  match regime with
  | `Split ->
      check_outcome what (Ccs.Schedule.validate_splittable inst) (Lazy.force opt_split)
        (Driver.solve_splittable ~param inst)
  | `Pre ->
      check_outcome what (Ccs.Schedule.validate_preemptive inst) (Lazy.force opt_pre)
        (Driver.solve_preemptive ~param inst)
  | `Nonpre ->
      check_outcome what
        (fun a -> Result.map Q.of_int (Ccs.Schedule.validate_nonpreemptive inst a))
        (Lazy.force opt_nonpre)
        (Driver.solve_nonpreemptive ~param inst)

(* Count the ladder's injection points with a plan that never fires, then
   interrupt at a spread of ordinals covering the whole run — including
   ordinal 0 (before anything happened) and the very last checkpoint. *)
let sweep_points total =
  let pts = ref [] in
  let add k = if k >= 0 && k < total && not (List.mem k !pts) then pts := k :: !pts in
  add 0;
  add (total - 1);
  for i = 1 to 38 do
    add (i * total / 39)
  done;
  List.sort compare !pts

let ordinal_sweep action regime () =
  Faults.arm (Faults.At { ordinal = max_int; action = Faults.Cancel });
  Fun.protect ~finally:Faults.disarm (fun () -> solve_checked "baseline" regime);
  let total = Faults.ordinal () in
  Alcotest.(check bool) "ladder has checkpoints" true (total > 0);
  List.iter
    (fun k ->
      Faults.arm (Faults.At { ordinal = k; action });
      Fun.protect ~finally:Faults.disarm (fun () ->
          solve_checked (Printf.sprintf "fault@%d" k) regime);
      Alcotest.(check int) (Printf.sprintf "spans balanced after fault@%d" k) 0
        (Ccs_obs.Span.open_depth ()))
    (sweep_points total)

(* ---------- determinism after chaos ---------- *)

let makespan_of = function
  | Outcome.Complete s -> s.Driver.makespan
  | Outcome.Degraded _ -> Alcotest.fail "expected a complete outcome"

let test_clean_after_chaos () =
  let baseline = makespan_of (Driver.solve_nonpreemptive ~param inst) in
  Faults.arm (Faults.At { ordinal = 25; action = Faults.Raise });
  Fun.protect ~finally:Faults.disarm (fun () ->
      ignore (Driver.solve_nonpreemptive ~param inst));
  let again = makespan_of (Driver.solve_nonpreemptive ~param inst) in
  Alcotest.(check string) "same makespan after an interrupted run" (Q.to_string baseline)
    (Q.to_string again)

(* ---------- exact checkpoint counting ---------- *)

let test_check_counter_deterministic () =
  let measure () =
    let before = Deadline.checks_total () in
    ignore (Ccs.Approx.Nonpreemptive.solve inst);
    Deadline.checks_total () - before
  in
  let a = measure () and b = measure () in
  Alcotest.(check bool) "checkpoints executed" true (a > 0);
  Alcotest.(check int) "deterministic count" a b;
  (* flush pushes exactly the outstanding delta into the metrics counter *)
  Deadline.reset_stats ();
  ignore (measure ());
  let m = Ccs_obs.Metrics.counter "resil.cancel_checks" in
  let mv0 = Ccs_obs.Metrics.counter_value m in
  Deadline.flush_stats ();
  Alcotest.(check int) "flush delta" (Deadline.checks_total ())
    (Ccs_obs.Metrics.counter_value m - mv0)

(* ---------- find_first sibling cancellation (pool poison) ---------- *)

let chk_spin = Deadline.site "test.spin"

let test_find_first_poison () =
  (* Two genuinely concurrent tasks even on a single-core machine. Task 1
     spins at a cancellation checkpoint; task 0 waits until task 1 is
     running, then raises. The kill must unwind task 1 promptly — if
     sibling cancellation regresses, task 1 spins its full 10s budget and
     the check below fails. *)
  let pool = Par.Pool.create ~force:true ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "forced worker spawned" 1 (Par.Pool.workers pool);
  let sibling_started = Atomic.make false in
  let sibling_killed = Atomic.make false in
  let f i _ =
    if i = 0 then begin
      let t0 = Mono.now_ns () in
      while (not (Atomic.get sibling_started)) && Mono.now_ns () - t0 < 10_000_000_000 do
        Domain.cpu_relax ()
      done;
      Alcotest.(check bool) "sibling started" true (Atomic.get sibling_started);
      failwith "poison"
    end
    else begin
      Atomic.set sibling_started true;
      let t0 = Mono.now_ns () in
      (try
         while Mono.now_ns () - t0 < 10_000_000_000 do
           Deadline.check chk_spin;
           Domain.cpu_relax ()
         done
       with Deadline.Cancelled { reason = Deadline.Killed; _ } as e ->
         Atomic.set sibling_killed true;
         raise e);
      None
    end
  in
  let t0 = Mono.now_ns () in
  (match Par.parallel_find_firsti ~pool f [| (); () |] with
  | _ -> Alcotest.fail "expected the poison to escape"
  | exception Failure msg -> Alcotest.(check string) "poison wins" "poison" msg);
  let elapsed_ms = (Mono.now_ns () - t0) / 1_000_000 in
  Alcotest.(check bool) "sibling was killed" true (Atomic.get sibling_killed);
  Alcotest.(check bool)
    (Printf.sprintf "batch returned promptly (%dms)" elapsed_ms)
    true (elapsed_ms < 5_000)

(* A deadline on the submitting domain reaches pool tasks on workers. *)
let test_deadline_reaches_workers () =
  let pool = Par.Pool.create ~force:true ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  let hits = Atomic.make 0 in
  match
    Deadline.with_token (Deadline.of_budget_ms 0) (fun () ->
        Par.parallel_map ~pool
          (fun i ->
            Atomic.incr hits;
            i)
          (Array.init 64 Fun.id))
  with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Deadline.Cancelled _ ->
      (* the task-boundary checkpoint fired before any task body ran *)
      Alcotest.(check int) "no task body ran" 0 (Atomic.get hits)

let () =
  Alcotest.run "resil"
    [ ( "clock+tokens",
        [ Alcotest.test_case "mono clock" `Quick test_mono;
          Alcotest.test_case "token semantics" `Quick test_tokens;
          Alcotest.test_case "ambient restore" `Quick test_ambient_restore ] );
      ( "cancellation",
        [ Alcotest.test_case "expired token stops every solver" `Quick test_expired_stops_solvers;
          Alcotest.test_case "anytime ptas partial result" `Quick test_ptas_anytime_interrupted ] );
      ( "fault sweep",
        [ Alcotest.test_case "cancel@every-k splittable" `Slow (ordinal_sweep Faults.Cancel `Split);
          Alcotest.test_case "cancel@every-k preemptive" `Slow (ordinal_sweep Faults.Cancel `Pre);
          Alcotest.test_case "cancel@every-k nonpreemptive" `Slow (ordinal_sweep Faults.Cancel `Nonpre);
          Alcotest.test_case "raise@every-k nonpreemptive" `Slow (ordinal_sweep Faults.Raise `Nonpre);
          Alcotest.test_case "clean run after chaos" `Quick test_clean_after_chaos ] );
      ( "stats",
        [ Alcotest.test_case "checkpoint counter" `Quick test_check_counter_deterministic ] );
      ( "pool",
        [ Alcotest.test_case "find_first poison cancels sibling" `Quick test_find_first_poison;
          Alcotest.test_case "deadline reaches workers" `Quick test_deadline_reaches_workers ] )
    ]
