module Q = Rat
module B = Bigint

let q = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check q

let test_normalization () =
  check_q "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  check_q "-6/-4 = 3/2" (Q.of_ints 3 2) (Q.of_ints (-6) (-4));
  check_q "6/-4 = -3/2" (Q.of_ints (-3) 2) (Q.of_ints 6 (-4));
  check_q "0/7 = 0" Q.zero (Q.of_ints 0 7);
  Alcotest.(check string) "den positive" "2" (B.to_string (Q.den (Q.of_ints 5 (-2)) |> B.neg |> B.neg));
  Alcotest.check_raises "x/0" Division_by_zero (fun () -> ignore (Q.of_ints 1 0))

let test_arith () =
  check_q "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "1/2 - 1/3" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "2/3 * 9/4" (Q.of_ints 3 2) (Q.mul (Q.of_ints 2 3) (Q.of_ints 9 4));
  check_q "(2/3) / (4/9)" (Q.of_ints 3 2) (Q.div (Q.of_ints 2 3) (Q.of_ints 4 9));
  check_q "neg" (Q.of_ints (-5) 6) (Q.neg (Q.of_ints 5 6));
  check_q "inv" (Q.of_ints (-2) 5) (Q.inv (Q.of_ints (-5) 2))

let test_floor_ceil () =
  let f s = B.to_int_exn (Q.floor (Q.of_string s)) in
  let c s = B.to_int_exn (Q.ceil (Q.of_string s)) in
  Alcotest.(check int) "floor 7/2" 3 (f "7/2");
  Alcotest.(check int) "ceil 7/2" 4 (c "7/2");
  Alcotest.(check int) "floor -7/2" (-4) (f "-7/2");
  Alcotest.(check int) "ceil -7/2" (-3) (c "-7/2");
  Alcotest.(check int) "floor 4" 4 (f "4");
  Alcotest.(check int) "ceil 4" 4 (c "4")

let test_strings () =
  check_q "parse int" (Q.of_int 17) (Q.of_string "17");
  check_q "parse frac" (Q.of_ints 22 7) (Q.of_string "22/7");
  check_q "parse decimal" (Q.of_ints 13 4) (Q.of_string "3.25");
  check_q "parse neg decimal" (Q.of_ints (-1) 8) (Q.of_string "-0.125");
  Alcotest.(check string) "print" "22/7" (Q.to_string (Q.of_ints 22 7));
  Alcotest.(check string) "print int" "-3" (Q.to_string (Q.of_int (-3)))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(of_ints 1 3 < of_ints 1 2);
  Alcotest.(check bool) "-1/3 > -1/2" true Q.(of_ints (-1) 3 > of_ints (-1) 2);
  Alcotest.(check bool) "eq across repr" true Q.(of_ints 2 4 = of_ints 1 2)

let arb =
  let gen =
    QCheck.Gen.(
      map2
        (fun p q -> Q.of_ints p (if q = 0 then 1 else q))
        (int_range (-10000) 10000) (int_range (-100) 100))
  in
  QCheck.make ~print:Q.to_string gen

let arb_nz =
  QCheck.make ~print:Q.to_string
    (QCheck.Gen.map
       (fun x -> if Q.is_zero x then Q.one else x)
       (QCheck.get_gen arb))

let props =
  [ QCheck.Test.make ~name:"field: a + (-a) = 0" ~count:500 arb (fun a ->
        Q.(equal (add a (neg a)) zero));
    QCheck.Test.make ~name:"field: a * inv a = 1" ~count:500 arb_nz (fun a ->
        Q.(equal (mul a (inv a)) one));
    QCheck.Test.make ~name:"distributivity" ~count:500 (QCheck.triple arb arb arb)
      (fun (a, b, c) -> Q.(equal (mul a (add b c)) (add (mul a b) (mul a c))));
    QCheck.Test.make ~name:"add assoc" ~count:500 (QCheck.triple arb arb arb)
      (fun (a, b, c) -> Q.(equal (add a (add b c)) (add (add a b) c)));
    QCheck.Test.make ~name:"floor <= x < floor+1" ~count:500 arb (fun a ->
        let f = Q.of_bigint (Q.floor a) in
        Q.(f <= a) && Q.(a < add f one));
    QCheck.Test.make ~name:"ceil-floor in {0,1}" ~count:500 arb (fun a ->
        let d = B.sub (Q.ceil a) (Q.floor a) in
        B.is_zero d || B.equal d B.one);
    QCheck.Test.make ~name:"string roundtrip" ~count:500 arb (fun a ->
        Q.equal a (Q.of_string (Q.to_string a)));
    QCheck.Test.make ~name:"compare consistent with sub" ~count:500
      (QCheck.pair arb arb) (fun (a, b) ->
        Q.compare a b = Q.sign (Q.sub a b));
    QCheck.Test.make ~name:"to_float approximates" ~count:500 arb (fun a ->
        let f = Q.to_float a in
        abs_float (f -. (B.to_float (Q.num a) /. B.to_float (Q.den a))) < 1e-9) ]

(* ---------- promotion-boundary properties ---------- *)

(* Integers clustered at the overflow frontiers of the unpacked small-int
   representation: max_int/2 (the add/sub guards), 2^31 (where native
   products start overflowing on 64-bit), and max_int itself (~2^62). The
   fast path must agree bit-for-bit with arithmetic done wholly in Bigint,
   and every result must be in canonical form: small iff it fits. *)
let boundary_pair =
  let open QCheck.Gen in
  let near base = map (fun d -> base + d) (int_range (-2) 2) in
  let frontier =
    oneof
      [ near (max_int / 2); near (-(max_int / 2));
        near (1 lsl 31); near (-(1 lsl 31));
        near (max_int - 2); near (2 - max_int);
        map (fun x -> if x = 0 then 1 else x) (int_range (-5) 5) ]
  in
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "%d/%d" a b)
    (pair frontier (map (fun b -> if b = 0 then 1 else b) frontier))

(* The small form excludes [min_int] components so that [neg]/[abs] can
   never overflow; "fits" means the open-ended range [-max_int, max_int]. *)
let fits b = match B.to_int_opt b with Some i -> i <> min_int | None -> false
let canonical z = Q.is_small z = (fits (Q.num z) && fits (Q.den z))

let boundary_props =
  let via_bigint op x y =
    let xn = Q.num x and xd = Q.den x and yn = Q.num y and yd = Q.den y in
    match op with
    | `Add -> Q.make (B.add (B.mul xn yd) (B.mul yn xd)) (B.mul xd yd)
    | `Sub -> Q.make (B.sub (B.mul xn yd) (B.mul yn xd)) (B.mul xd yd)
    | `Mul -> Q.make (B.mul xn yn) (B.mul xd yd)
    | `Div -> Q.make (B.mul xn yd) (B.mul xd yn)
  in
  let check_op op fast (x, y) =
    let z = fast x y in
    Q.equal z (via_bigint op x y) && canonical z
  in
  let arb2 =
    QCheck.pair boundary_pair boundary_pair
    |> QCheck.map (fun ((a, b), (c, d)) -> (Q.of_ints a b, Q.of_ints c d))
  in
  [ QCheck.Test.make ~name:"boundary add = bigint add" ~count:400 arb2
      (check_op `Add Q.add);
    QCheck.Test.make ~name:"boundary sub = bigint sub" ~count:400 arb2
      (check_op `Sub Q.sub);
    QCheck.Test.make ~name:"boundary mul = bigint mul" ~count:400 arb2
      (check_op `Mul Q.mul);
    QCheck.Test.make ~name:"boundary div = bigint div" ~count:400 arb2 (fun (x, y) ->
        Q.is_zero y || check_op `Div Q.div (x, y));
    QCheck.Test.make ~name:"boundary compare = bigint compare" ~count:400 arb2
      (fun (x, y) ->
        let ref_cmp =
          B.compare (B.mul (Q.num x) (Q.den y)) (B.mul (Q.num y) (Q.den x))
        in
        compare (Q.compare x y) 0 = compare ref_cmp 0) ]

let test_ub_integral_magnitudes () =
  (* The magnitudes Bounds.ub_integral works with — up to n = 10^5 jobs of
     size up to 10^12, so sums near 10^17 and averages over up to 10^5
     machines — must stay entirely on the small-int path. A promotion here
     would put the makespan search's hottest numbers on the slow path. *)
  let before = (Q.stats ()).Q.promotions in
  let n = 100_000 and p = 1_000_000_000_000 in
  let total = ref Q.zero in
  for i = 1 to n do
    total := Q.add !total (Q.of_int (p - i))
  done;
  let avg = Q.div !total (Q.of_int n) in
  let bound = Q.add avg (Q.of_int p) in
  Alcotest.(check bool) "sum positive" true Q.(!total > zero);
  Alcotest.(check bool) "bound > avg" true Q.(bound > avg);
  Alcotest.(check bool) "sum stayed small-form" true (Q.is_small !total);
  Alcotest.(check bool) "avg stayed small-form" true (Q.is_small avg);
  Alcotest.(check int) "no promotions" 0 ((Q.stats ()).Q.promotions - before)

let () =
  Alcotest.run "rat"
    [ ( "unit",
        [ Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "ub_integral magnitudes stay small" `Quick
            test_ub_integral_magnitudes ] );
      ("properties", List.map QCheck_alcotest.to_alcotest (props @ boundary_props)) ]
