(* End-to-end flight-recorder tests: record real solver runs — the exact
   ladder (branch & bound incumbents), a PTAS-start ladder (ilp + lp phases
   under the rung), and an N-fold feasibility probe — then assert the JSONL
   stream a run of [ccs_solve --record] would write is well formed:

   - every line parses, the first is the meta header, timestamps are
     monotone non-decreasing;
   - phase_start/phase_end pairs balance by id and nest LIFO per domain;
   - the lp, ilp and nfold phases carry GC-delta attribution;
   - gap traces are non-increasing in the upper bound and non-decreasing
     in the lower bound within each (src, solve ordinal) group. *)

module Q = Rat
module Jsonx = Ccs_obs.Jsonx
module Recorder = Ccs_obs.Recorder
module Driver = Ccs_anytime.Driver

let param = Ccs.Ptas.Common.param 2

let inst =
  Ccs.Instance.make ~machines:3 ~slots:2
    [ (7, 0); (5, 1); (6, 2); (4, 3); (9, 0); (3, 1); (8, 2); (2, 3) ]

(* One recorded run shared by every test below. *)
let jsonl =
  lazy
    (Recorder.start ();
     Fun.protect ~finally:Recorder.stop (fun () ->
         ignore (Driver.solve_nonpreemptive ~param inst);
         ignore (Driver.solve_nonpreemptive ~param ~start:Driver.Ptas inst);
         ignore
           (Ccs.Ptas.Nfold_form.feasible_splittable param inst
              (Ccs.Bounds.ub_splittable inst));
         Recorder.to_jsonl ()))

let lines () =
  match List.rev (String.split_on_char '\n' (Lazy.force jsonl)) with
  | "" :: rest -> List.rev rest
  | _ -> Alcotest.fail "recording does not end in a newline"

let parse line =
  match Jsonx.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable line %S: %s" line e)

(* Parsed event objects, meta header excluded. *)
let events () = List.tl (lines ()) |> List.map parse

let str k j =
  match Jsonx.member k j with Some (Jsonx.Str s) -> Some s | _ -> None

let num k j =
  match Jsonx.member k j with
  | Some (Jsonx.Float f) -> Some f
  | Some (Jsonx.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field k j =
  match Jsonx.member k j with Some (Jsonx.Int i) -> Some i | _ -> None

let kind j = Option.value ~default:"?" (str "ev" j)

let test_meta_and_parse () =
  let lines = lines () in
  Alcotest.(check bool) "no blank lines" true (List.for_all (( <> ) "") lines);
  let parsed = List.map parse lines in
  let meta = List.hd parsed in
  Alcotest.(check string) "meta first" "meta" (kind meta);
  (match str "format" meta with
  | Some "ccs-recorder" -> ()
  | _ -> Alcotest.fail "meta lacks format=ccs-recorder");
  Alcotest.(check (option int)) "meta event count matches body"
    (Some (List.length parsed - 1))
    (int_field "events" meta);
  Alcotest.(check (option int)) "nothing dropped on this small run" (Some 0)
    (int_field "dropped" meta);
  List.iteri
    (fun i j ->
      if i > 0 && str "ev" j = None then
        Alcotest.fail (Printf.sprintf "event %d lacks an ev kind" i))
    parsed

let test_timestamps_monotone () =
  let ts =
    List.map
      (fun j ->
        match num "t_s" j with
        | Some t -> t
        | None -> Alcotest.fail "event without t_s")
      (events ())
  in
  Alcotest.(check bool) "timestamps non-negative" true
    (List.for_all (fun t -> t >= 0.0) ts);
  let rec mono = function
    | a :: (b :: _ as t) -> a <= b && mono t
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone non-decreasing" true (mono ts)

let test_phase_balance () =
  let evs = events () in
  let starts = List.filter (fun j -> kind j = "phase_start") evs in
  let ends = List.filter (fun j -> kind j = "phase_end") evs in
  let id j =
    match int_field "id" j with
    | Some i -> i
    | None -> Alcotest.fail "phase event without id"
  in
  Alcotest.(check bool) "at least one phase recorded" true (starts <> []);
  Alcotest.(check (list int)) "ends pair starts by id"
    (List.sort compare (List.map id starts))
    (List.sort compare (List.map id ends));
  (* LIFO nesting per domain: an end must close the innermost open start *)
  let stacks : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun j ->
      match kind j with
      | "phase_start" | "phase_end" -> (
          let dom =
            match int_field "dom" j with
            | Some d -> d
            | None -> Alcotest.fail "phase event without dom"
          in
          let stack = Option.value ~default:[] (Hashtbl.find_opt stacks dom) in
          match kind j with
          | "phase_start" -> Hashtbl.replace stacks dom (id j :: stack)
          | _ -> (
              match stack with
              | top :: rest when top = id j -> Hashtbl.replace stacks dom rest
              | _ ->
                  Alcotest.fail
                    (Printf.sprintf "phase_end id=%d does not close dom %d's innermost span"
                       (id j) dom)))
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun dom stack ->
      if stack <> [] then
        Alcotest.fail (Printf.sprintf "dom %d left %d spans open" dom (List.length stack)))
    stacks;
  List.iter
    (fun j ->
      match num "dur_s" j with
      | Some d -> Alcotest.(check bool) "dur_s non-negative" true (d >= 0.0)
      | None -> Alcotest.fail "phase_end without dur_s")
    ends

(* The acceptance-critical attribution: lp, ilp and nfold phase_end events
   must be present and carry a GC allocation delta. *)
let test_gc_attribution () =
  let ends = List.filter (fun j -> kind j = "phase_end") (events ()) in
  let named n = List.filter (fun j -> str "phase" j = Some n) ends in
  List.iter
    (fun want ->
      match named want with
      | [] -> Alcotest.fail (Printf.sprintf "no %S phase recorded" want)
      | js ->
          Alcotest.(check bool)
            (Printf.sprintf "%s phase carries gc_minor_words" want)
            true
            (List.exists
               (fun j ->
                 match num "gc_minor_words" j with
                 | Some w -> w > 0.0
                 | None -> false)
               js))
    [ "lp"; "ilp"; "nfold" ];
  (* the exact rung's branch & bound fans out to worker domains, whose
     allocations only reach [Gc.quick_stat] after their next minor GC — so
     for exact/ptas/rung phases we require presence, not a GC delta *)
  List.iter
    (fun want ->
      if named want = [] then
        Alcotest.fail (Printf.sprintf "no %S phase recorded" want))
    [ "exact"; "ptas"; "rung.exact"; "rung.ptas" ]

let test_gap_traces () =
  let conv =
    List.filter (fun j -> kind j = "incumbent" || kind j = "lower_bound") (events ())
  in
  Alcotest.(check bool) "at least two convergence events" true
    (List.length conv >= 2);
  let groups : (string * int, Jsonx.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun j ->
      match (str "src" j, int_field "solve" j, num "value" j) with
      | Some src, Some solve, Some _ ->
          let key = (src, solve) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key (j :: prev)
      | _ -> Alcotest.fail "convergence event lacks src/solve/value")
    conv;
  let srcs = Hashtbl.fold (fun (src, _) _ acc -> src :: acc) groups [] in
  Alcotest.(check bool) "driver trace present" true (List.mem "driver" srcs);
  Alcotest.(check bool) "branch & bound trace present" true (List.mem "bnb" srcs);
  Hashtbl.iter
    (fun (src, solve) rev_events ->
      let evs = List.rev rev_events in
      let values k =
        List.filter_map
          (fun j -> if kind j = k then num "value" j else None)
          evs
      in
      let ubs = values "incumbent" and lbs = values "lower_bound" in
      let rec noninc = function
        | a :: (b :: _ as t) -> a >= b && noninc t
        | _ -> true
      in
      let rec nondec = function
        | a :: (b :: _ as t) -> a <= b && nondec t
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%d incumbents non-increasing" src solve)
        true (noninc ubs);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%d lower bounds non-decreasing" src solve)
        true (nondec lbs);
      match (List.rev ubs, List.rev lbs) with
      | final_ub :: _, final_lb :: _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d final gap non-negative" src solve)
            true
            (final_ub >= final_lb -. 1e-9)
      | _ -> ())
    groups

let () =
  Alcotest.run "report"
    [ ( "recording",
        [ Alcotest.test_case "meta + every line parses" `Quick test_meta_and_parse;
          Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
          Alcotest.test_case "phase pairs balance" `Quick test_phase_balance;
          Alcotest.test_case "gc attribution on lp/ilp/nfold" `Quick test_gc_attribution;
          Alcotest.test_case "gap traces monotone" `Quick test_gap_traces ] ) ]
