(* Streaming parser, flat representation, binary format, and record↔flat
   parity: the tokenizer must be invariant under chunking (every token
   boundary exercised), both parsers must agree byte-for-byte on results
   AND error messages, and the flat solver paths must be bit-identical to
   the record paths. *)

module I = Ccs.Instance
module F = Ccs.Instance.Flat
module S = Ccs.Schedule
module Io = Ccs.Io
module G = Ccs.Generator
module Q = Rat

let flat_equal a b =
  F.n a = F.n b && F.m a = F.m b && F.c a = F.c b
  && F.num_classes a = F.num_classes b
  &&
  let ok = ref true in
  for i = 0 to F.n a - 1 do
    if F.job_p a i <> F.job_p b i || F.job_cls a i <> F.job_cls b i then ok := false
  done;
  !ok

(* results agree exactly: same Ok instance or same Error string *)
let parse_agree r1 r2 =
  match (r1, r2) with
  | Ok a, Ok b -> flat_equal a b
  | Error e1, Error e2 -> String.equal e1 e2
  | _ -> false

let canonical = "ccs 1\nmachines 31\nslots 2\njob 128 10\njob 7 3\njob 3000 10\n"

let test_chunk_boundaries () =
  let want =
    match Io.of_string_flat canonical with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun chunk ->
      match Io.of_string_flat ~chunk canonical with
      | Ok f ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d equals default" chunk)
            true (flat_equal want f)
      | Error e -> Alcotest.fail (Printf.sprintf "chunk %d: %s" chunk e))
    [ 1; 2; 3; 5; 7; 13; 64 ]

let test_crlf_tab_runs () =
  (* runs of every separator the old parser treated as blank: space, tab,
     CR (also mid-line), form feed — plus comments *)
  let s = "ccs \t\t 1\r\nmachines\t\t31\r\r\nslots \012 2\n# c\r\njob\t128 \t 10\r\n" in
  (match Io.of_string_flat ~chunk:3 s with
  | Ok f ->
      Alcotest.(check int) "n" 1 (F.n f);
      Alcotest.(check int) "m" 31 (F.m f);
      Alcotest.(check int) "p" 128 (F.job_p f 0)
  | Error e -> Alcotest.fail e);
  (* a blank-only line is skipped without consuming a job *)
  match Io.of_string_flat "ccs 1\nmachines 2\nslots 1\n \t \njob 4 0\n" with
  | Ok f -> Alcotest.(check int) "blank line skipped" 1 (F.n f)
  | Error e -> Alcotest.fail e

let test_truncated_final_record () =
  (* missing the class field on the last line, no trailing newline: the
     finish flush must still dispatch (and reject) the partial record —
     two tokens fall through to the header dispatch, like the old parser *)
  (match Io.of_string_flat "ccs 1\nmachines 2\nslots 2\njob 3" with
  | Error e -> Alcotest.(check string) "truncated job" "line 4: unrecognized line" e
  | Ok _ -> Alcotest.fail "truncated job line accepted");
  (match Io.of_string_flat "ccs 1\nmachines 2\nslots 2\njob 3 x" with
  | Error e -> Alcotest.(check string) "bad class token" "line 4: bad job line" e
  | Ok _ -> Alcotest.fail "non-numeric class accepted");
  (* a complete final record without a trailing newline is fine *)
  (match Io.of_string_flat "ccs 1\nmachines 2\nslots 2\njob 3 1" with
  | Ok f -> Alcotest.(check int) "no trailing newline" 1 (F.n f)
  | Error e -> Alcotest.fail e);
  (* header only: the end checks fire in declaration order *)
  match Io.of_string_flat "ccs 1\nmachines 2\nslots 2\n" with
  | Error e -> Alcotest.(check string) "no jobs" "no jobs" e
  | Ok _ -> Alcotest.fail "empty job list accepted"

let test_huge_processing_times () =
  let p12 = 1_000_000_000_000 in
  let s = Printf.sprintf "ccs 1\nmachines 2\nslots 2\njob %d 0\njob %d 1\n" p12 (p12 - 1) in
  match Io.of_string_flat ~chunk:7 s with
  | Ok f ->
      Alcotest.(check int) "p exact at 10^12" p12 (F.job_p f 0);
      Alcotest.(check int) "total load exact" (p12 + (p12 - 1)) (F.total_load f);
      Alcotest.(check int) "pmax" p12 (F.pmax f)
  | Error e -> Alcotest.fail e

let test_chunk_validation () =
  match Io.of_string_flat ~chunk:0 canonical with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk 0 accepted"

let with_temp f =
  let path = Filename.temp_file "ccs_test_stream" ".ccsb" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_binary_roundtrip () =
  let fl =
    match Io.of_string_flat canonical with Ok f -> f | Error e -> Alcotest.fail e
  in
  with_temp (fun path ->
      Io.save_flat path fl;
      match Io.load_flat path with
      | Ok f -> Alcotest.(check bool) "binary roundtrip" true (flat_equal fl f)
      | Error e -> Alcotest.fail e)

let test_binary_errors () =
  (* a ccsb1 magic followed by garbage must report, not crash; and a text
     file through load_flat must fall back to the text parser *)
  with_temp (fun path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "ccsb1\n\001\002");
      (match Io.load_flat path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated binary accepted");
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc canonical);
      (match Io.load_flat path with
      | Ok f -> Alcotest.(check int) "text via load_flat" 3 (F.n f)
      | Error e -> Alcotest.fail e));
  match Io.load_flat "/nonexistent/ccs_test_stream.ccsb" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonexistent path accepted"

(* near-grammar fragments: chunked re-parsing must agree with the default
   on both accepts and rejects, with identical error strings *)
let grammar_gen =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_range 0 14)
         (oneofl
            [ "ccs 1\n"; "ccs"; "machines "; "machines 3\n"; "slots 2\n"; "slots ";
              "job "; "job 5 0\n"; "job 5\n"; "12 3"; "#c\n"; "\r\n"; "\t"; " ";
              "\n"; "9"; "0 "; "1000000000000 "; "x"; "job 1000000000000 1\n" ])))

let prop_chunking_invariant =
  QCheck.Test.make ~name:"chunked parses agree with default (incl. errors)"
    ~count:500
    (QCheck.make grammar_gen ~print:(fun s -> s))
    (fun s ->
      let d = Io.of_string_flat s in
      parse_agree d (Io.of_string_flat ~chunk:1 s)
      && parse_agree d (Io.of_string_flat ~chunk:3 s))

let prop_record_parser_agrees =
  (* of_string and of_string_flat share one lexer; the record result must
     be the converted flat result, and rejects must carry the same text *)
  QCheck.Test.make ~name:"of_string agrees with of_string_flat" ~count:500
    (QCheck.make grammar_gen ~print:(fun s -> s))
    (fun s ->
      match (Io.of_string s, Io.of_string_flat s) with
      | Ok inst, Ok f -> flat_equal (I.to_flat inst) f
      | Error e1, Error e2 -> String.equal e1 e2
      | _ -> false)

let spec_of_seed seed =
  {
    G.n = 1 + (seed mod 60);
    classes = 1 + (seed mod 5);
    machines = 2 + (seed mod 6);
    slots = 1 + (seed mod 3);
    p_lo = 1;
    p_hi = 50;
    family =
      (match seed mod 4 with
      | 0 -> G.Uniform
      | 1 -> Zipf
      | 2 -> Heavy_classes
      | _ -> Large_jobs);
  }

let prop_flat_record_roundtrip =
  QCheck.Test.make ~name:"to_flat/of_flat exact inverses" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = G.generate ~seed (spec_of_seed seed) in
      let fl = I.to_flat inst in
      let inst' = I.of_flat fl in
      I.n inst = I.n inst' && I.m inst = I.m inst' && I.c inst = I.c inst'
      && I.class_load inst = I.class_load inst'
      && List.for_all
           (fun j -> I.job inst j = I.job inst' j)
           (List.init (I.n inst) Fun.id)
      && flat_equal fl (I.to_flat inst'))

let prop_generate_flat_matches =
  QCheck.Test.make ~name:"generate_flat = to_flat . generate" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let spec = spec_of_seed seed in
      flat_equal (G.generate_flat ~seed spec) (I.to_flat (G.generate ~seed spec)))

let prop_text_roundtrip_flat =
  QCheck.Test.make ~name:"to_string_flat streams back identically" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let fl = G.generate_flat ~seed (spec_of_seed seed) in
      match Io.of_string_flat ~chunk:11 (Io.to_string_flat fl) with
      | Ok f -> flat_equal fl f
      | Error _ -> false)

(* bit-identity of the flat solver paths against the record paths *)

let splittable_equal (a : S.splittable) (b : S.splittable) =
  List.length a.S.blocks = List.length b.S.blocks
  && List.for_all2
       (fun (x : S.block) (y : S.block) ->
         x.S.cls = y.S.cls && x.m_start = y.m_start && x.m_count = y.m_count
         && Q.equal x.per_machine y.per_machine)
       a.S.blocks b.S.blocks
  && List.length a.S.explicit_machines = List.length b.S.explicit_machines
  && List.for_all2
       (fun (ma, la) (mb, lb) ->
         ma = mb
         && List.length la = List.length lb
         && List.for_all2
              (fun (ca, qa) (cb, qb) -> ca = cb && Q.equal qa qb)
              la lb)
       a.S.explicit_machines b.S.explicit_machines

let preemptive_equal (a : S.preemptive) (b : S.preemptive) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun la lb ->
         List.length la = List.length lb
         && List.for_all2
              (fun (x : S.ppiece) (y : S.ppiece) ->
                x.S.pjob = y.S.pjob && Q.equal x.start y.start && Q.equal x.len y.len)
              la lb)
       a b

let prop_solve_flat_bit_identical =
  QCheck.Test.make ~name:"solve_flat bit-identical to solve (all variants)"
    ~count:150
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let fl = G.generate_flat ~seed (spec_of_seed seed) in
      if not (F.schedulable fl) then true
      else
        let inst = I.of_flat fl in
        let s_rec, st_rec = Ccs.Approx.Splittable.solve inst in
        let s_flat, st_flat = Ccs.Approx.Splittable.solve_flat fl in
        let p_rec, pt_rec = Ccs.Approx.Preemptive.solve inst in
        let p_flat, pt_flat = Ccs.Approx.Preemptive.solve_flat fl in
        let a_rec, at_rec = Ccs.Approx.Nonpreemptive.solve inst in
        let a_flat, at_flat = Ccs.Approx.Nonpreemptive.solve_flat fl in
        splittable_equal s_rec s_flat
        && Q.equal st_rec.Ccs.Approx.Splittable.t_guess st_flat.Ccs.Approx.Splittable.t_guess
        && st_rec.probes = st_flat.probes
        && st_rec.full_slices = st_flat.full_slices
        && preemptive_equal p_rec p_flat
        && Q.equal pt_rec.Ccs.Approx.Preemptive.t_guess pt_flat.Ccs.Approx.Preemptive.t_guess
        && pt_rec.probes = pt_flat.probes
        && pt_rec.repacked = pt_flat.repacked
        && a_rec = a_flat
        && at_rec = at_flat)

let prop_binary_roundtrip_random =
  QCheck.Test.make ~name:"save_flat/load_flat roundtrip" ~count:50
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let fl = G.generate_flat ~seed (spec_of_seed seed) in
      with_temp (fun path ->
          Io.save_flat path fl;
          match Io.load_flat path with Ok f -> flat_equal fl f | Error _ -> false))

let () =
  Alcotest.run "stream"
    [ ( "tokenizer",
        [ Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "CRLF / tab runs" `Quick test_crlf_tab_runs;
          Alcotest.test_case "truncated final record" `Quick test_truncated_final_record;
          Alcotest.test_case "10^12 processing times" `Quick test_huge_processing_times;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation ] );
      ( "binary",
        [ Alcotest.test_case "roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "errors + text fallback" `Quick test_binary_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chunking_invariant; prop_record_parser_agrees;
            prop_flat_record_roundtrip; prop_generate_flat_matches;
            prop_text_roundtrip_flat; prop_solve_flat_bit_identical;
            prop_binary_roundtrip_random ] ) ]
