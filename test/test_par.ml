(* Ccs_par tests: the sequential-equivalence contract of the combinators
   (qcheck, across pool sizes 1-8), exception ordering, the per-index Prng
   streams, thread-safety of the metrics registry under a parallel batch,
   and an end-to-end check that a seeded PTAS run produces the identical
   schedule on a 1-domain and a 4-domain ambient pool. *)

module Par = Ccs_par
module Prng = Ccs_util.Prng

let with_pool jobs f =
  let pool = Par.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let with_ambient jobs f =
  Par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

(* ---------- combinators vs the sequential loop ---------- *)

let arb_input =
  QCheck.(pair (int_range 1 8) (array_of_size Gen.(int_range 0 40) small_int))

let prop_map_matches_sequential =
  QCheck.Test.make ~name:"parallel_map = Array.map (pool sizes 1-8)" ~count:60
    arb_input (fun (jobs, arr) ->
      let f x = (x * 37) land 1023 in
      with_pool jobs (fun pool -> Par.parallel_map ~pool f arr = Array.map f arr))

let prop_mapi_matches_sequential =
  QCheck.Test.make ~name:"parallel_mapi = Array.mapi (pool sizes 1-8)" ~count:60
    arb_input (fun (jobs, arr) ->
      let f i x = (i * 31) + x in
      with_pool jobs (fun pool -> Par.parallel_mapi ~pool f arr = Array.mapi f arr))

let prop_find_first_matches_sequential =
  QCheck.Test.make ~name:"parallel_find_first = sequential scan (pool sizes 1-8)"
    ~count:120 arb_input (fun (jobs, arr) ->
      let f x = if x mod 7 = 0 then Some (x * 2) else None in
      let expected =
        Array.fold_left
          (fun acc x -> match acc with Some _ -> acc | None -> f x)
          None arr
      in
      with_pool jobs (fun pool -> Par.parallel_find_first ~pool f arr = expected))

let test_map_exception_order () =
  (* Several elements raise; the escaping exception must be the one the
     sequential loop hits first (index 3), at every pool size. *)
  let arr = Array.init 32 (fun i -> i) in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          match
            Par.parallel_map ~pool
              (fun i -> if i >= 3 && i mod 5 = 3 then failwith (string_of_int i) else i)
              arr
          with
          | _ -> Alcotest.fail "expected an exception"
          | exception Failure msg ->
              Alcotest.(check string)
                (Printf.sprintf "lowest-index exception at jobs=%d" jobs)
                "3" msg))
    [ 1; 2; 4; 8 ]

let test_find_first_skips_nothing_before_winner () =
  (* The winner is index 20; every earlier element must have been evaluated
     (the contract says the answer is only reported once they all said
     None). Elements after the winner may or may not run. *)
  let n = 40 in
  let seen = Array.make n false in
  List.iter
    (fun jobs ->
      Array.fill seen 0 n false;
      with_pool jobs (fun pool ->
          let r =
            Par.parallel_find_firsti ~pool
              (fun i () ->
                seen.(i) <- true;
                if i >= 20 then Some i else None)
              (Array.make n ())
          in
          Alcotest.(check (option int))
            (Printf.sprintf "winner at jobs=%d" jobs)
            (Some 20) r;
          for i = 0 to 19 do
            if not seen.(i) then
              Alcotest.failf "element %d not evaluated before reporting (jobs=%d)" i jobs
          done))
    [ 1; 2; 4; 8 ]

let test_nested_batches () =
  (* A task that itself fans out must not deadlock even when the outer batch
     occupies every worker. *)
  with_pool 4 (fun pool ->
      let r =
        Par.parallel_map ~pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Par.parallel_map ~pool (fun j -> (i * 10) + j) (Array.init 8 (fun j -> j))))
          (Array.init 8 (fun i -> i))
      in
      let expected =
        Array.init 8 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 10) + j)))
      in
      Alcotest.(check (array int)) "nested fan-out" expected r)

(* ---------- per-index Prng streams ---------- *)

let test_prng_stream_deterministic () =
  let draw t = List.init 5 (fun _ -> Prng.int_in t 0 1_000_000) in
  let a = draw (Prng.stream ~seed:42 ~index:3) in
  let b = draw (Prng.stream ~seed:42 ~index:3) in
  Alcotest.(check (list int)) "same (seed, index) -> same stream" a b;
  let c = draw (Prng.stream ~seed:42 ~index:4) in
  Alcotest.(check bool) "different index -> different stream" false (a = c);
  let base = draw (Prng.create 42) in
  let zero = draw (Prng.stream ~seed:42 ~index:0) in
  Alcotest.(check (list int)) "index 0 = create seed" base zero

let test_prng_streams_jobs_invariant () =
  (* Drawing from per-index streams inside a parallel batch gives the same
     numbers at any pool size — the whole point of [stream]. *)
  let draw_all pool =
    Par.parallel_mapi ~pool
      (fun i () -> Prng.int_in (Prng.stream ~seed:7 ~index:i) 0 1_000_000)
      (Array.make 16 ())
  in
  let seq = with_pool 1 draw_all in
  List.iter
    (fun jobs ->
      let par = with_pool jobs draw_all in
      Alcotest.(check (array int))
        (Printf.sprintf "streams at jobs=%d" jobs)
        seq par)
    [ 2; 4; 8 ]

(* ---------- metrics under contention ---------- *)

let test_metrics_parallel_incr () =
  let c = Ccs_obs.Metrics.counter "test_par.contended" in
  let h = Ccs_obs.Metrics.histogram "test_par.contended_h" in
  with_pool 8 (fun pool ->
      ignore
        (Par.parallel_map ~pool
           (fun _ ->
             for _ = 1 to 1_000 do
               Ccs_obs.Metrics.incr c;
               Ccs_obs.Metrics.observe h 1.0
             done)
           (Array.make 16 ())));
  Alcotest.(check int) "no lost counter increments" 16_000 (Ccs_obs.Metrics.counter_value c);
  Alcotest.(check int) "no lost observations" 16_000 (Ccs_obs.Metrics.histogram_count h)

(* ---------- end-to-end: seeded PTAS runs are jobs-invariant ---------- *)

let gen_instance seed =
  Ccs.Generator.generate ~seed
    { Ccs.Generator.n = 20; classes = 5; machines = 4; slots = 2; p_lo = 1; p_hi = 50;
      family = Ccs.Generator.Uniform }

let test_ptas_identical_across_jobs () =
  let param = Ccs.Ptas.Common.param 1 in
  List.iter
    (fun seed ->
      let inst = gen_instance seed in
      let solve () = Ccs.Ptas.Nonpreemptive_ptas.solve param inst in
      let sched1, stats1 = with_ambient 1 solve in
      let sched4, stats4 = with_ambient 4 solve in
      Alcotest.(check (array int))
        (Printf.sprintf "assignment identical (seed %d)" seed)
        sched1 sched4;
      Alcotest.(check string)
        (Printf.sprintf "accepted guess identical (seed %d)" seed)
        (Rat.to_string stats1.Ccs.Ptas.Nonpreemptive_ptas.t_accepted)
        (Rat.to_string stats4.Ccs.Ptas.Nonpreemptive_ptas.t_accepted))
    [ 101; 202; 303 ]

let test_multisets_identical_across_jobs () =
  let enumerate () =
    Ccs.Ptas.Common.multisets ~parts:[ 2; 3; 5; 7 ] ~max_sum:21 ~max_count:6 ()
  in
  let seq = with_ambient 1 enumerate in
  let par = with_ambient 4 enumerate in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  Alcotest.(check bool) "same configurations" true (seq = par)

let () =
  QCheck_base_runner.set_seed 20260806;
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "par"
    [ ( "combinators",
        [ q prop_map_matches_sequential;
          q prop_mapi_matches_sequential;
          q prop_find_first_matches_sequential;
          Alcotest.test_case "exception order" `Quick test_map_exception_order;
          Alcotest.test_case "find_first evaluates prefix" `Quick
            test_find_first_skips_nothing_before_winner;
          Alcotest.test_case "nested batches" `Quick test_nested_batches ] );
      ( "prng",
        [ Alcotest.test_case "stream determinism" `Quick test_prng_stream_deterministic;
          Alcotest.test_case "streams jobs-invariant" `Quick test_prng_streams_jobs_invariant ] );
      ( "obs",
        [ Alcotest.test_case "metrics under contention" `Quick test_metrics_parallel_incr ] );
      ( "e2e",
        [ Alcotest.test_case "PTAS identical at jobs 1 vs 4" `Slow
            test_ptas_identical_across_jobs;
          Alcotest.test_case "multisets identical at jobs 1 vs 4" `Quick
            test_multisets_identical_across_jobs ] ) ]
