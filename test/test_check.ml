(* Ccs_check tests: the oracle catches deliberately broken solvers (bad
   certificates, invalid schedules, false invariance claims), the metamorphic
   transforms preserve well-formedness and the promised structure, the
   shrinker only visits schedulable instances and is idempotent, and a seeded
   end-to-end fuzz batch over the real solvers reports zero violations. *)

module Q = Rat
module I = Ccs.Instance
module Prng = Ccs_util.Prng
module Solvers = Ccs_check.Solvers
module Oracle = Ccs_check.Oracle
module Morph = Ccs_check.Morph
module Shrink = Ccs_check.Shrink
module Runner = Ccs_check.Runner

let param = Ccs.Ptas.Common.param 2
let inst_of jobs ~machines ~slots = I.make ~machines ~slots jobs

let small = inst_of [ (3, 0); (4, 1); (5, 0); (2, 1) ] ~machines:2 ~slots:2

let has ~check ?solver vs =
  List.exists
    (fun (v : Oracle.violation) ->
      v.Oracle.check = check
      && match solver with None -> true | Some s -> v.Oracle.solver = s)
    vs

(* A stub solver template; individual tests override the lying parts. *)
let stub ?(name = "inject/stub") ?(regime = Solvers.Splittable) run =
  {
    Solvers.name;
    regime;
    exact = false;
    ratio = Q.of_int 1000;
    scale_exact = false;
    perm_exact = false;
    mono_machines = false;
    witness_growth = Q.of_int 1000;
    applicable = (fun _ _ -> true);
    run;
  }

(* ---------- the oracle catches injected bugs ---------- *)

let test_oracle_catches_bad_guarantee () =
  (* claims makespan <= 1 but reports makespan 10 *)
  let bad =
    stub (fun _ ->
        Solvers.Solved
          {
            Solvers.makespan = Q.of_int 10;
            lower = Q.one;
            upper = Q.one;
            witness = Q.one;
          })
  in
  let _, vs = Oracle.check_with ~metamorphic:false ~mseed:1 ~solvers:[ bad ] small in
  Alcotest.(check bool) "guarantee violation" true (has ~check:"guarantee" vs)

let test_oracle_catches_bad_lower_bound () =
  (* certifies OPT_splittable >= 1000, contradicting every real solver *)
  let lying =
    stub (fun _ ->
        Solvers.Solved
          {
            Solvers.makespan = Q.of_int 1000;
            lower = Q.of_int 1000;
            upper = Q.of_int 1000;
            witness = Q.of_int 1000;
          })
  in
  let solvers = lying :: Solvers.all param in
  let _, vs = Oracle.check_with ~metamorphic:false ~mseed:1 ~solvers small in
  Alcotest.(check bool) "cross-lb violation" true (has ~check:"cross-lb" vs)

let test_oracle_catches_invalid_schedule () =
  let invalid = stub (fun _ -> Solvers.Invalid "oversubscribed machine") in
  let _, vs = Oracle.check_with ~metamorphic:false ~mseed:1 ~solvers:[ invalid ] small in
  Alcotest.(check bool) "validator violation" true
    (has ~check:"validator" ~solver:"inject/stub" vs)

let test_oracle_catches_false_scale_claim () =
  (* claims exact scale equivariance but always answers the same numbers *)
  let constant =
    {
      (stub (fun _ ->
           Solvers.Solved
             {
               Solvers.makespan = Q.of_int 7;
               lower = Q.one;
               upper = Q.of_int 100;
               witness = Q.of_int 7;
             }))
      with
      Solvers.scale_exact = true;
    }
  in
  let _, vs = Oracle.check_with ~metamorphic:true ~mseed:1 ~solvers:[ constant ] small in
  Alcotest.(check bool) "scale violation" true
    (has ~check:"scale/equivariance" vs || has ~check:"scale/witness" vs)

let test_oracle_catches_makespan_below_lb () =
  (* impossibly good: below sum p / m *)
  let magic =
    stub (fun _ ->
        Solvers.Solved
          {
            Solvers.makespan = Q.one;
            lower = Q.one;
            upper = Q.of_int 100;
            witness = Q.one;
          })
  in
  let _, vs = Oracle.check_with ~metamorphic:false ~mseed:1 ~solvers:[ magic ] small in
  Alcotest.(check bool) "regime-lb violation" true (has ~check:"regime-lb" vs)

let test_oracle_clean_on_real_solvers () =
  let _, vs = Oracle.check ~param ~metamorphic:true ~mseed:5 small in
  Alcotest.(check int) "no violations" 0 (List.length vs)

(* ---------- metamorphic transforms ---------- *)

let arb_instance =
  let gen st =
    let seed = QCheck.Gen.int_range 0 1_000_000 st in
    let rng = Prng.stream ~seed ~index:0 in
    Runner.gen_instance rng ~max_n:12
  in
  QCheck.make ~print:Ccs.Io.to_string gen

let prop_transforms_preserve_wellformedness =
  QCheck.Test.make ~name:"metamorphic variants stay schedulable" ~count:80
    arb_instance (fun inst ->
      List.for_all
        (fun t -> I.schedulable (Morph.apply t inst))
        (Morph.probes ~mseed:3 inst))

let prop_scale_scales_sizes =
  QCheck.Test.make ~name:"Scale k multiplies every p_j by k" ~count:80 arb_instance
    (fun inst ->
      let inst' = Morph.apply (Morph.Scale 3) inst in
      I.n inst' = I.n inst
      && List.for_all2
           (fun (p, c) (p', c') -> p' = 3 * p && c' = c)
           (Morph.jobs_of inst) (Morph.jobs_of inst'))

let prop_permute_preserves_multiset =
  QCheck.Test.make ~name:"Permute preserves the job-size multiset" ~count:80
    arb_instance (fun inst ->
      let inst' = Morph.apply (Morph.Permute 11) inst in
      let sizes i = List.sort compare (List.map fst (Morph.jobs_of i)) in
      I.n inst' = I.n inst
      && I.m inst' = I.m inst
      && I.c inst' = I.c inst
      && I.num_classes inst' = I.num_classes inst
      && sizes inst' = sizes inst)

let prop_add_machine_keeps_jobs =
  QCheck.Test.make ~name:"Add_machine only adds a machine" ~count:80 arb_instance
    (fun inst ->
      let inst' = Morph.apply Morph.Add_machine inst in
      I.m inst' = I.m inst + 1 && Morph.jobs_of inst' = Morph.jobs_of inst)

(* ---------- shrinker ---------- *)

let prop_candidates_schedulable =
  QCheck.Test.make ~name:"shrink candidates are schedulable" ~count:80 arb_instance
    (fun inst -> List.for_all I.schedulable (Shrink.candidates inst))

let test_shrink_reaches_small_witness () =
  (* predicate: at least 3 jobs of class 0 — minimal witness has exactly 3
     jobs, all of class 0, unit sizes, 1 machine *)
  let inst =
    inst_of
      [ (8, 0); (9, 0); (2, 1); (7, 0); (5, 1); (3, 2); (6, 0) ]
      ~machines:3 ~slots:2
  in
  let violates i =
    List.length (List.filter (fun (_, c) -> c = 0) (Morph.jobs_of i)) >= 3
  in
  let shrunk = Shrink.shrink ~max_tests:2000 ~violates inst in
  Alcotest.(check bool) "still violates" true (violates shrunk);
  Alcotest.(check int) "3 jobs left" 3 (I.n shrunk);
  Alcotest.(check int) "1 machine left" 1 (I.m shrunk);
  List.iter (fun (p, _) -> Alcotest.(check int) "unit size" 1 p) (Morph.jobs_of shrunk)

let test_shrink_idempotent () =
  let inst =
    inst_of [ (8, 0); (9, 1); (2, 2); (7, 0); (5, 1); (3, 2) ] ~machines:3 ~slots:2
  in
  let violates i = I.n i >= 2 && I.num_classes i >= 2 in
  let once = Shrink.shrink ~violates inst in
  let twice = Shrink.shrink ~violates once in
  Alcotest.(check string) "fixpoint" (Ccs.Io.to_string once) (Ccs.Io.to_string twice)

let test_shrink_respects_budget () =
  let probes = ref 0 in
  let inst = inst_of (List.init 20 (fun i -> (i + 1, i mod 4))) ~machines:4 ~slots:2 in
  let violates _ =
    incr probes;
    true
  in
  ignore (Shrink.shrink ~max_tests:25 ~violates inst);
  Alcotest.(check bool) "budget respected" true (!probes <= 25)

(* ---------- end to end ---------- *)

let test_seeded_run_clean () =
  let config = { Runner.default_config with Runner.count = 6; max_n = 12 } in
  let report = Runner.run config in
  Alcotest.(check int) "checked" 6 report.Runner.checked;
  Alcotest.(check int) "no cases" 0 (List.length report.Runner.cases);
  (* every solver appears in the tally and the ungated ones ran every time *)
  Alcotest.(check int) "tally size" 11 (List.length report.Runner.tallies);
  List.iter
    (fun (t : Oracle.tally) ->
      match t.Oracle.name with
      | "splittable/approx2" | "preemptive/approx2" | "nonpreemptive/approx73" ->
          Alcotest.(check int) (t.Oracle.name ^ " always runs") 6 t.Oracle.solved
      | _ -> ())
    report.Runner.tallies

let test_render_case_is_self_contained () =
  let config = { Runner.default_config with Runner.seed = 9 } in
  let case =
    {
      Runner.index = 4;
      violation = { Oracle.check = "guarantee"; solver = "splittable/approx2"; detail = "d" };
      instance = small;
      original = small;
    }
  in
  let text = Runner.render_case config case in
  let contains sub =
    let n = String.length text and k = String.length sub in
    let rec at i = i + k <= n && (String.sub text i k = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "names the check" true (contains "guarantee");
  Alcotest.(check bool) "replay line" true (contains "ccs_fuzz --seed 9");
  Alcotest.(check bool) "embeds the instance" true (contains "job 3 0")

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [ ( "oracle",
        [ Alcotest.test_case "catches bad guarantee" `Quick
            test_oracle_catches_bad_guarantee;
          Alcotest.test_case "catches lying lower bound" `Quick
            test_oracle_catches_bad_lower_bound;
          Alcotest.test_case "catches invalid schedule" `Quick
            test_oracle_catches_invalid_schedule;
          Alcotest.test_case "catches false scale claim" `Quick
            test_oracle_catches_false_scale_claim;
          Alcotest.test_case "catches sub-LB makespan" `Quick
            test_oracle_catches_makespan_below_lb;
          Alcotest.test_case "clean on the real solvers" `Quick
            test_oracle_clean_on_real_solvers ] );
      ( "morph",
        [ q prop_transforms_preserve_wellformedness;
          q prop_scale_scales_sizes;
          q prop_permute_preserves_multiset;
          q prop_add_machine_keeps_jobs ] );
      ( "shrink",
        [ q prop_candidates_schedulable;
          Alcotest.test_case "reaches the minimal witness" `Quick
            test_shrink_reaches_small_witness;
          Alcotest.test_case "idempotent" `Quick test_shrink_idempotent;
          Alcotest.test_case "respects the probe budget" `Quick
            test_shrink_respects_budget ] );
      ( "e2e",
        [ Alcotest.test_case "seeded batch is clean" `Slow test_seeded_run_clean;
          Alcotest.test_case "render_case is self-contained" `Quick
            test_render_case_is_self_contained ] ) ]
