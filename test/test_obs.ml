(* Ccs_obs tests: level filtering (including the zero-cost guarantee that
   filtered closures never run), JSONL well-formedness, span nesting and
   timing, metrics registry semantics, and the Jsonx printer/parser pair. *)

module Log = Ccs_obs.Log
module Span = Ccs_obs.Span
module Metrics = Ccs_obs.Metrics
module Jsonx = Ccs_obs.Jsonx

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let with_captured_log ?(level = Some Log.Debug) ?(format = Log.Text) f =
  let buf = Buffer.create 256 in
  Log.set_output (Buffer.add_string buf);
  Log.set_format format;
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level (Some Log.Warn);
      Log.set_format Log.Text;
      Log.set_output prerr_string)
    (fun () ->
      f ();
      Buffer.contents buf)

(* ---------- logging ---------- *)

let test_level_filtering () =
  let ran = ref false in
  let out =
    with_captured_log ~level:(Some Log.Warn) (fun () ->
        Log.debug (fun m ->
            ran := true;
            m "invisible");
        Log.warn (fun m -> m "visible"))
  in
  Alcotest.(check bool) "filtered closure never invoked" false !ran;
  Alcotest.(check bool) "warn line present" true (contains ~needle:"visible" out)

let test_level_off () =
  let out =
    with_captured_log ~level:None (fun () -> Log.err (fun m -> m "nothing"))
  in
  Alcotest.(check string) "no output when off" "" out

let test_level_of_string () =
  (match Log.level_of_string "DEBUG" with
  | Ok (Some Log.Debug) -> ()
  | _ -> Alcotest.fail "DEBUG should parse");
  (match Log.level_of_string "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off should parse to None");
  match Log.level_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus should be rejected"

let test_jsonl_well_formed () =
  let out =
    with_captured_log ~format:Log.Jsonl (fun () ->
        Log.info (fun m ->
            m
              ~fields:
                [ Log.int "pivots" 42; Log.str "algo" "ptas\"quoted\"";
                  Log.bool "ok" true; Log.float "t" 1.5 ]
              "solve done"))
  in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line" 1 (List.length lines);
  match Jsonx.of_string (List.hd lines) with
  | Error e -> Alcotest.fail ("JSONL line does not parse: " ^ e)
  | Ok j ->
      (match Jsonx.member "msg" j with
      | Some (Jsonx.Str s) -> Alcotest.(check string) "msg" "solve done" s
      | _ -> Alcotest.fail "missing msg");
      (match Jsonx.member "pivots" j with
      | Some (Jsonx.Int 42) -> ()
      | _ -> Alcotest.fail "missing pivots field");
      (match Jsonx.member "algo" j with
      | Some (Jsonx.Str s) -> Alcotest.(check string) "escaping survives" "ptas\"quoted\"" s
      | _ -> Alcotest.fail "missing algo field");
      (match Jsonx.member "level" j with
      | Some (Jsonx.Str "info") -> ()
      | _ -> Alcotest.fail "missing level")

(* ---------- spans ---------- *)

let test_span_disabled_passthrough () =
  Span.set_enabled false;
  let r = Span.with_ "x" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ())

let test_span_nesting_and_timing () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      let r =
        Span.with_ "outer" ~fields:[ Log.int "n" 3 ] (fun () ->
            ignore (Span.with_ "inner1" (fun () -> Unix.sleepf 0.002; 1));
            ignore (Span.with_ "inner2" (fun () -> 2));
            42)
      in
      Alcotest.(check int) "result" 42 r;
      Alcotest.(check int) "three spans" 3 (Span.count ());
      match Span.roots () with
      | [ outer ] ->
          Alcotest.(check string) "root name" "outer" (Span.name outer);
          let kids = Span.children outer in
          Alcotest.(check (list string)) "children in order" [ "inner1"; "inner2" ]
            (List.map Span.name kids);
          let i1 = List.nth kids 0 and i2 = List.nth kids 1 in
          Alcotest.(check bool) "durations non-negative" true
            (List.for_all (fun s -> Span.duration s >= 0.0) [ outer; i1; i2 ]);
          Alcotest.(check bool) "inner1 took measurable time" true
            (Span.duration i1 > 0.0);
          Alcotest.(check bool) "children start after parent" true
            (Span.start i1 >= Span.start outer && Span.start i2 >= Span.start i1);
          Alcotest.(check bool) "parent spans its children" true
            (Span.duration outer
            >= Span.start i2 +. Span.duration i2 -. Span.start outer -. 1e-9)
      | roots ->
          Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots)))

let test_span_records_on_raise () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite raise" 1 (Span.count ()))

let test_chrome_trace_shape () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      Span.with_ "a" ~fields:[ Log.int "k" 1 ] (fun () ->
          Span.with_ "b" (fun () -> ()));
      match Span.to_chrome_json () with
      | Jsonx.List events ->
          Alcotest.(check int) "two events" 2 (List.length events);
          List.iter
            (fun e ->
              (match Jsonx.member "ph" e with
              | Some (Jsonx.Str "X") -> ()
              | _ -> Alcotest.fail "ph must be X");
              let microseconds = function
                | Some (Jsonx.Int v) -> float_of_int v
                | Some (Jsonx.Float v) ->
                    Alcotest.(check bool) "micros are integral" true (Float.is_integer v);
                    v
                | _ -> Alcotest.fail "ts/dur must be numbers"
              in
              let ts = microseconds (Jsonx.member "ts" e)
              and dur = microseconds (Jsonx.member "dur" e) in
              Alcotest.(check bool) "ts/dur sane" true (ts >= 0.0 && dur >= 0.0))
            events
      | _ -> Alcotest.fail "chrome trace must be a flat list")

(* ---------- metrics ---------- *)

let test_counters_and_reset () =
  let c = Metrics.counter "test.counter" in
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "count" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "same handle on re-lookup" true
    (Metrics.counter "test.counter" == c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle survives" 0 (Metrics.counter_value c)

let test_kind_mismatch () =
  ignore (Metrics.counter "test.kind");
  Alcotest.check_raises "re-registering as gauge fails"
    (Invalid_argument "Metrics: \"test.kind\" is already a counter") (fun () ->
      ignore (Metrics.gauge "test.kind"))

let test_histogram_vs_stats () =
  let h = Metrics.histogram "test.histo" in
  Metrics.reset ();
  let samples = Array.init 101 (fun i -> float_of_int ((i * 37) mod 101)) in
  Array.iter (Metrics.observe h) samples;
  Alcotest.(check int) "count" 101 (Metrics.histogram_count h);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g matches Util.Stats" p)
        (Ccs_util.Stats.percentile samples p)
        (Metrics.histogram_percentile h p))
    [ 0.0; 50.0; 95.0; 100.0 ];
  Alcotest.(check (float 1e-9)) "mean" (Ccs_util.Stats.mean samples)
    (Metrics.histogram_mean h);
  Alcotest.(check (float 1e-9)) "max" (Ccs_util.Stats.maximum samples)
    (Metrics.histogram_max h)

let test_snapshot_active_only () =
  let c = Metrics.counter "test.active" in
  ignore (Metrics.counter "test.inactive");
  Metrics.reset ();
  Metrics.incr c;
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check bool) "active included" true (List.mem "test.active" names);
  Alcotest.(check bool) "inactive excluded" false (List.mem "test.inactive" names);
  let all_names = List.map fst (Metrics.snapshot ~all:true ()) in
  Alcotest.(check bool) "all includes inactive" true (List.mem "test.inactive" all_names)

(* ---------- jsonx ---------- *)

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [ ("s", Jsonx.Str "a\"b\\c\nd\t\xe2\x82\xac");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.25);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]
  in
  match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)

let test_jsonx_unicode_escape () =
  match Jsonx.of_string {|{"s":"é😀"}|} with
  | Ok j -> (
      match Jsonx.member "s" j with
      | Some (Jsonx.Str s) ->
          Alcotest.(check string) "utf8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
      | _ -> Alcotest.fail "missing s")
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_jsonx_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\":1}x" ]

let () =
  Alcotest.run "obs"
    [ ( "log",
        [ Alcotest.test_case "level filtering" `Quick test_level_filtering;
          Alcotest.test_case "off" `Quick test_level_off;
          Alcotest.test_case "level_of_string" `Quick test_level_of_string;
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed ] );
      ( "span",
        [ Alcotest.test_case "disabled passthrough" `Quick test_span_disabled_passthrough;
          Alcotest.test_case "nesting + timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape ] );
      ( "metrics",
        [ Alcotest.test_case "counters + reset" `Quick test_counters_and_reset;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram vs Util.Stats" `Quick test_histogram_vs_stats;
          Alcotest.test_case "snapshot active-only" `Quick test_snapshot_active_only ] );
      ( "jsonx",
        [ Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escape;
          Alcotest.test_case "rejects garbage" `Quick test_jsonx_rejects_garbage ] ) ]
