(* Ccs_obs tests: level filtering (including the zero-cost guarantee that
   filtered closures never run), JSONL well-formedness, span nesting and
   timing, metrics registry semantics, and the Jsonx printer/parser pair. *)

module Log = Ccs_obs.Log
module Span = Ccs_obs.Span
module Metrics = Ccs_obs.Metrics
module Jsonx = Ccs_obs.Jsonx
module Recorder = Ccs_obs.Recorder

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let with_captured_log ?(level = Some Log.Debug) ?(format = Log.Text) f =
  let buf = Buffer.create 256 in
  Log.set_output (Buffer.add_string buf);
  Log.set_format format;
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level (Some Log.Warn);
      Log.set_format Log.Text;
      Log.set_output prerr_string)
    (fun () ->
      f ();
      Buffer.contents buf)

(* ---------- logging ---------- *)

let test_level_filtering () =
  let ran = ref false in
  let out =
    with_captured_log ~level:(Some Log.Warn) (fun () ->
        Log.debug (fun m ->
            ran := true;
            m "invisible");
        Log.warn (fun m -> m "visible"))
  in
  Alcotest.(check bool) "filtered closure never invoked" false !ran;
  Alcotest.(check bool) "warn line present" true (contains ~needle:"visible" out)

let test_level_off () =
  let out =
    with_captured_log ~level:None (fun () -> Log.err (fun m -> m "nothing"))
  in
  Alcotest.(check string) "no output when off" "" out

let test_level_of_string () =
  (match Log.level_of_string "DEBUG" with
  | Ok (Some Log.Debug) -> ()
  | _ -> Alcotest.fail "DEBUG should parse");
  (match Log.level_of_string "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off should parse to None");
  match Log.level_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus should be rejected"

let test_jsonl_well_formed () =
  let out =
    with_captured_log ~format:Log.Jsonl (fun () ->
        Log.info (fun m ->
            m
              ~fields:
                [ Log.int "pivots" 42; Log.str "algo" "ptas\"quoted\"";
                  Log.bool "ok" true; Log.float "t" 1.5 ]
              "solve done"))
  in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line" 1 (List.length lines);
  match Jsonx.of_string (List.hd lines) with
  | Error e -> Alcotest.fail ("JSONL line does not parse: " ^ e)
  | Ok j ->
      (match Jsonx.member "msg" j with
      | Some (Jsonx.Str s) -> Alcotest.(check string) "msg" "solve done" s
      | _ -> Alcotest.fail "missing msg");
      (match Jsonx.member "pivots" j with
      | Some (Jsonx.Int 42) -> ()
      | _ -> Alcotest.fail "missing pivots field");
      (match Jsonx.member "algo" j with
      | Some (Jsonx.Str s) -> Alcotest.(check string) "escaping survives" "ptas\"quoted\"" s
      | _ -> Alcotest.fail "missing algo field");
      (match Jsonx.member "level" j with
      | Some (Jsonx.Str "info") -> ()
      | _ -> Alcotest.fail "missing level")

(* ---------- spans ---------- *)

let test_span_disabled_passthrough () =
  Span.set_enabled false;
  let r = Span.with_ "x" (fun () -> 7) in
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ())

let test_span_nesting_and_timing () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      let r =
        Span.with_ "outer" ~fields:[ Log.int "n" 3 ] (fun () ->
            ignore (Span.with_ "inner1" (fun () -> Unix.sleepf 0.002; 1));
            ignore (Span.with_ "inner2" (fun () -> 2));
            42)
      in
      Alcotest.(check int) "result" 42 r;
      Alcotest.(check int) "three spans" 3 (Span.count ());
      match Span.roots () with
      | [ outer ] ->
          Alcotest.(check string) "root name" "outer" (Span.name outer);
          let kids = Span.children outer in
          Alcotest.(check (list string)) "children in order" [ "inner1"; "inner2" ]
            (List.map Span.name kids);
          let i1 = List.nth kids 0 and i2 = List.nth kids 1 in
          Alcotest.(check bool) "durations non-negative" true
            (List.for_all (fun s -> Span.duration s >= 0.0) [ outer; i1; i2 ]);
          Alcotest.(check bool) "inner1 took measurable time" true
            (Span.duration i1 > 0.0);
          Alcotest.(check bool) "children start after parent" true
            (Span.start i1 >= Span.start outer && Span.start i2 >= Span.start i1);
          Alcotest.(check bool) "parent spans its children" true
            (Span.duration outer
            >= Span.start i2 +. Span.duration i2 -. Span.start outer -. 1e-9)
      | roots ->
          Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots)))

let test_span_records_on_raise () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite raise" 1 (Span.count ()))

let test_chrome_trace_shape () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      Span.with_ "a" ~fields:[ Log.int "k" 1 ] (fun () ->
          Span.with_ "b" (fun () -> ()));
      match Span.to_chrome_json () with
      | Jsonx.List events ->
          Alcotest.(check int) "two events" 2 (List.length events);
          List.iter
            (fun e ->
              (match Jsonx.member "ph" e with
              | Some (Jsonx.Str "X") -> ()
              | _ -> Alcotest.fail "ph must be X");
              let microseconds = function
                | Some (Jsonx.Int v) -> float_of_int v
                | Some (Jsonx.Float v) ->
                    Alcotest.(check bool) "micros are integral" true (Float.is_integer v);
                    v
                | _ -> Alcotest.fail "ts/dur must be numbers"
              in
              let ts = microseconds (Jsonx.member "ts" e)
              and dur = microseconds (Jsonx.member "dur" e) in
              Alcotest.(check bool) "ts/dur sane" true (ts >= 0.0 && dur >= 0.0))
            events
      | _ -> Alcotest.fail "chrome trace must be a flat list")

(* ---------- metrics ---------- *)

let test_counters_and_reset () =
  let c = Metrics.counter "test.counter" in
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "count" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "same handle on re-lookup" true
    (Metrics.counter "test.counter" == c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle survives" 0 (Metrics.counter_value c)

let test_kind_mismatch () =
  ignore (Metrics.counter "test.kind");
  Alcotest.check_raises "re-registering as gauge fails"
    (Invalid_argument "Metrics: \"test.kind\" is already a counter") (fun () ->
      ignore (Metrics.gauge "test.kind"))

let test_histogram_vs_stats () =
  let h = Metrics.histogram "test.histo" in
  Metrics.reset ();
  let samples = Array.init 101 (fun i -> float_of_int ((i * 37) mod 101)) in
  Array.iter (Metrics.observe h) samples;
  Alcotest.(check int) "count" 101 (Metrics.histogram_count h);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g matches Util.Stats" p)
        (Ccs_util.Stats.percentile samples p)
        (Metrics.histogram_percentile h p))
    [ 0.0; 50.0; 95.0; 100.0 ];
  Alcotest.(check (float 1e-9)) "mean" (Ccs_util.Stats.mean samples)
    (Metrics.histogram_mean h);
  Alcotest.(check (float 1e-9)) "max" (Ccs_util.Stats.maximum samples)
    (Metrics.histogram_max h)

let test_snapshot_active_only () =
  let c = Metrics.counter "test.active" in
  ignore (Metrics.counter "test.inactive");
  Metrics.reset ();
  Metrics.incr c;
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check bool) "active included" true (List.mem "test.active" names);
  Alcotest.(check bool) "inactive excluded" false (List.mem "test.inactive" names);
  let all_names = List.map fst (Metrics.snapshot ~all:true ()) in
  Alcotest.(check bool) "all includes inactive" true (List.mem "test.inactive" all_names)

let test_name_convention () =
  let rejects name =
    match Metrics.counter name with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" name)
  in
  (* non-canonical unit aliases and malformed segments *)
  List.iter rejects
    [ "test.bad_us"; "test.bad_msec"; "test.bad_kb"; "test.bad_percent";
      "Test.upper"; "test..empty"; "9leading.digit"; "test.hy-phen"; "" ];
  (* canonical suffixes and dimensionless names register fine *)
  ignore (Metrics.counter "test.nameok.plain");
  ignore (Metrics.histogram "test.nameok.lat_ms");
  ignore (Metrics.gauge "test.nameok.mem_words");
  ignore (Metrics.log_histogram "test.nameok.rung_s");
  (* find-or-create: a second lookup of an accepted name is not re-checked *)
  ignore (Metrics.counter "test.nameok.plain")

let test_log_histogram () =
  let h = Metrics.log_histogram "test.loghist_s" in
  Metrics.reset ();
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.log_histogram_quantile h 50.0));
  Alcotest.(check bool) "empty max is nan" true
    (Float.is_nan (Metrics.log_histogram_max h));
  List.iter (Metrics.observe_log h) [ 0.003; 0.004; 2.0; 100.0 ];
  Alcotest.(check int) "count" 4 (Metrics.log_histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 102.007 (Metrics.log_histogram_sum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.log_histogram_max h);
  (* 0.003 and 0.004 both land in the (0.0025, 0.005] bucket, so the p50
     upper estimate is that bucket's bound *)
  Alcotest.(check (float 1e-9)) "p50 is a bucket bound" 0.005
    (Metrics.log_histogram_quantile h 50.0);
  Alcotest.(check (float 1e-9)) "p100 clamps to observed max" 100.0
    (Metrics.log_histogram_quantile h 100.0);
  let b = Metrics.log_bounds in
  Alcotest.(check int) "3 bounds per decade over 13 decades" 39 (Array.length b);
  Alcotest.(check bool) "bounds positive and strictly increasing" true
    (Array.for_all (fun x -> x > 0.0) b
    && Array.for_all Fun.id
         (Array.init (Array.length b - 1) (fun i -> b.(i) < b.(i + 1))))

(* Line-level OpenMetrics validator: every line of the exposition must be a
   well-formed comment ([# TYPE|UNIT|HELP name ...]), a sample whose family
   was declared above it, or the final [# EOF]. *)
let test_openmetrics_lines () =
  let c = Metrics.counter ~help:"Validator fodder" "test.om.reqs" in
  let g = Metrics.gauge "test.om.load_ratio" in
  let h = Metrics.histogram "test.om.lat_s" in
  let lh = Metrics.log_histogram "test.om.rung_s" in
  ignore (Metrics.gauge "test.om.never_set");
  Metrics.reset ();
  Metrics.add c 3;
  Metrics.set_gauge g 0.5;
  List.iter (Metrics.observe h) [ 0.001; 0.02; 3.0 ];
  List.iter (Metrics.observe_log lh) [ 0.004; 7.0 ];
  let text = Metrics.to_openmetrics () in
  Alcotest.(check bool) "terminated by # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  let lines =
    match List.rev (String.split_on_char '\n' text) with
    | "" :: rest -> List.rev rest
    | _ -> Alcotest.fail "missing trailing newline"
  in
  let n_lines = List.length lines in
  let name_ok n =
    String.length n > 4
    && String.sub n 0 4 = "ccs_"
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
         n
  in
  let families = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let fail reason =
        Alcotest.fail (Printf.sprintf "line %d %S: %s" (i + 1) line reason)
      in
      if line = "" then fail "blank line"
      else if line = "# EOF" then begin
        if i <> n_lines - 1 then fail "EOF before last line"
      end
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: kw :: n :: rest -> (
            if not (name_ok n) then fail "bad family name";
            match kw with
            | "TYPE" ->
                if not (rest = [ "counter" ] || rest = [ "gauge" ] || rest = [ "histogram" ])
                then fail "bad TYPE";
                Hashtbl.replace families n ()
            | "UNIT" ->
                if
                  not
                    (match rest with
                    | [ u ] -> List.mem u [ "s"; "ms"; "words"; "bytes"; "ratio" ]
                    | _ -> false)
                then fail "non-canonical UNIT"
            | "HELP" -> if rest = [] then fail "empty HELP"
            | _ -> fail "unknown comment keyword")
        | _ -> fail "malformed comment"
      end
      else begin
        match String.index_opt line ' ' with
        | None -> fail "sample without value"
        | Some sp -> (
            let lhs = String.sub line 0 sp
            and value = String.sub line (sp + 1) (String.length line - sp - 1) in
            (match float_of_string_opt value with
            | Some v when Float.is_finite v && v >= 0.0 -> ()
            | _ -> fail "value is not a non-negative finite number");
            let base =
              match String.index_opt lhs '{' with
              | None -> lhs
              | Some b ->
                  if lhs.[String.length lhs - 1] <> '}' then fail "unclosed label set";
                  let labels = String.sub lhs (b + 1) (String.length lhs - b - 2) in
                  if
                    not
                      (String.length labels > 5
                      && String.sub labels 0 4 = "le=\""
                      && labels.[String.length labels - 1] = '"')
                  then fail "only a le=\"...\" label is expected";
                  String.sub lhs 0 b
            in
            if not (name_ok base) then fail "bad sample name";
            let candidates =
              base
              :: List.filter_map
                   (fun suf ->
                     let ls = String.length suf and lb = String.length base in
                     if lb > ls && String.sub base (lb - ls) ls = suf then
                       Some (String.sub base 0 (lb - ls))
                     else None)
                   [ "_total"; "_bucket"; "_count"; "_sum" ]
            in
            if not (List.exists (Hashtbl.mem families) candidates) then
              fail "sample before (or without) its # TYPE line")
      end)
    lines;
  (* spot checks on the families we populated above *)
  let has needle = contains ~needle text in
  Alcotest.(check bool) "counter sampled as _total" true
    (has "ccs_test_om_reqs_total 3\n");
  Alcotest.(check bool) "help line" true
    (has "# HELP ccs_test_om_reqs Validator fodder\n");
  Alcotest.(check bool) "unit line from _s suffix" true
    (has "# UNIT ccs_test_om_lat_s s\n");
  Alcotest.(check bool) "ratio unit line" true
    (has "# UNIT ccs_test_om_load_ratio ratio\n");
  Alcotest.(check bool) "gauge sample" true (has "ccs_test_om_load_ratio 0.5\n");
  Alcotest.(check bool) "unset gauge omitted" false (has "ccs_test_om_never_set");
  let bucket_counts =
    List.filter_map
      (fun line ->
        let pre = "ccs_test_om_lat_s_bucket{le=\"" in
        if
          String.length line > String.length pre
          && String.sub line 0 (String.length pre) = pre
        then
          match String.index_opt line ' ' with
          | Some sp ->
              int_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check int) "one bucket per bound plus +Inf"
    (Array.length Metrics.log_bounds + 1)
    (List.length bucket_counts);
  let rec nondec = function
    | a :: (b :: _ as t) -> a <= b && nondec t
    | _ -> true
  in
  Alcotest.(check bool) "buckets are cumulative" true (nondec bucket_counts);
  Alcotest.(check int) "+Inf bucket equals count" 3
    (List.nth bucket_counts (List.length bucket_counts - 1));
  Alcotest.(check bool) "_count sample" true (has "ccs_test_om_lat_s_count 3\n");
  Alcotest.(check bool) "_sum sample" true (has "ccs_test_om_lat_s_sum 3.021\n")

(* ---------- recorder ---------- *)

let test_recorder_off () =
  Alcotest.(check bool) "inactive by default" false (Recorder.active ());
  Recorder.emit "noise" [];
  Alcotest.(check int) "nothing buffered when off" 0
    (List.length (Recorder.events ()));
  Alcotest.(check int) "phase is passthrough" 9 (Recorder.phase "x" (fun () -> 9));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Recorder.start: capacity must be positive") (fun () ->
      Recorder.start ~capacity:0 ())

let test_recorder_phase_pairing () =
  Recorder.start ();
  Fun.protect ~finally:Recorder.stop (fun () ->
      let r = Recorder.phase "outer" (fun () -> Recorder.phase "inner" (fun () -> 5)) in
      Alcotest.(check int) "value" 5 r;
      (try Recorder.phase "boom" (fun () -> failwith "x") with Failure _ -> ());
      let evs = Recorder.events () in
      let by_kind k = List.filter (fun e -> e.Recorder.kind = k) evs in
      let starts = by_kind "phase_start" and ends = by_kind "phase_end" in
      Alcotest.(check int) "three starts" 3 (List.length starts);
      Alcotest.(check int) "three ends" 3 (List.length ends);
      let id e =
        match List.assoc_opt "id" e.Recorder.fields with
        | Some (Jsonx.Int i) -> i
        | _ -> Alcotest.fail "phase event without id"
      in
      Alcotest.(check (list int)) "ends pair starts by id"
        (List.sort compare (List.map id starts))
        (List.sort compare (List.map id ends));
      List.iter
        (fun e ->
          match List.assoc_opt "dur_s" e.Recorder.fields with
          | Some (Jsonx.Float d) ->
              Alcotest.(check bool) "duration non-negative" true (d >= 0.0)
          | _ -> Alcotest.fail "phase_end without dur_s")
        ends;
      let boom =
        List.find
          (fun e ->
            List.assoc_opt "phase" e.Recorder.fields = Some (Jsonx.Str "boom"))
          ends
      in
      Alcotest.(check bool) "raise is flagged" true
        (List.assoc_opt "raised" boom.Recorder.fields = Some (Jsonx.Bool true));
      let rec mono = function
        | a :: (b :: _ as t) -> a.Recorder.t_s <= b.Recorder.t_s && mono t
        | _ -> true
      in
      Alcotest.(check bool) "timestamps monotone" true (mono evs))

let test_recorder_ring_drop () =
  Recorder.start ~capacity:4 ();
  Fun.protect ~finally:Recorder.stop (fun () ->
      for i = 0 to 9 do
        Recorder.emit "tick" [ ("i", Jsonx.Int i) ]
      done;
      Alcotest.(check int) "dropped count" 6 (Recorder.dropped ());
      let evs = Recorder.events () in
      let idx e =
        match List.assoc_opt "i" e.Recorder.fields with
        | Some (Jsonx.Int i) -> i
        | _ -> -1
      in
      Alcotest.(check (list int)) "newest retained, oldest first" [ 6; 7; 8; 9 ]
        (List.map idx evs);
      let first_line = List.hd (String.split_on_char '\n' (Recorder.to_jsonl ())) in
      match Jsonx.of_string first_line with
      | Error e -> Alcotest.fail ("meta line does not parse: " ^ e)
      | Ok j ->
          Alcotest.(check bool) "meta header" true
            (Jsonx.member "ev" j = Some (Jsonx.Str "meta")
            && Jsonx.member "format" j = Some (Jsonx.Str "ccs-recorder"));
          Alcotest.(check bool) "meta reports events and drops" true
            (Jsonx.member "events" j = Some (Jsonx.Int 4)
            && Jsonx.member "dropped" j = Some (Jsonx.Int 6)))

(* ---------- jsonx ---------- *)

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [ ("s", Jsonx.Str "a\"b\\c\nd\t\xe2\x82\xac");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.25);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]
  in
  match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)

let test_jsonx_unicode_escape () =
  match Jsonx.of_string {|{"s":"é😀"}|} with
  | Ok j -> (
      match Jsonx.member "s" j with
      | Some (Jsonx.Str s) ->
          Alcotest.(check string) "utf8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
      | _ -> Alcotest.fail "missing s")
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_jsonx_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\":1}x" ]

let () =
  Alcotest.run "obs"
    [ ( "log",
        [ Alcotest.test_case "level filtering" `Quick test_level_filtering;
          Alcotest.test_case "off" `Quick test_level_off;
          Alcotest.test_case "level_of_string" `Quick test_level_of_string;
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed ] );
      ( "span",
        [ Alcotest.test_case "disabled passthrough" `Quick test_span_disabled_passthrough;
          Alcotest.test_case "nesting + timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape ] );
      ( "metrics",
        [ Alcotest.test_case "counters + reset" `Quick test_counters_and_reset;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram vs Util.Stats" `Quick test_histogram_vs_stats;
          Alcotest.test_case "snapshot active-only" `Quick test_snapshot_active_only;
          Alcotest.test_case "name convention" `Quick test_name_convention;
          Alcotest.test_case "log histogram" `Quick test_log_histogram;
          Alcotest.test_case "openmetrics line validator" `Quick test_openmetrics_lines ] );
      ( "recorder",
        [ Alcotest.test_case "off by default" `Quick test_recorder_off;
          Alcotest.test_case "phase pairing" `Quick test_recorder_phase_pairing;
          Alcotest.test_case "ring drop accounting" `Quick test_recorder_ring_drop ] );
      ( "jsonx",
        [ Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escape;
          Alcotest.test_case "rejects garbage" `Quick test_jsonx_rejects_garbage ] ) ]
