(* Section 4 PTASs: every produced schedule is validated independently;
   makespans are checked against the per-case guarantee formulas, against
   exact optima on small instances, and the oracles are cross-validated
   against the paper's literal N-fold formulation. *)

module I = Ccs.Instance
module S = Ccs.Schedule
module Q = Rat
module C = Ccs.Ptas.Common

let random_instance ?(max_n = 12) ?(max_m = 3) ?(max_p = 30) seed =
  let rng = Ccs_util.Prng.create seed in
  let machines = Ccs_util.Prng.int_in rng 1 max_m in
  let slots = Ccs_util.Prng.int_in rng 1 3 in
  let classes = min (Ccs_util.Prng.int_in rng 1 5) (max 1 (slots * machines)) in
  let classes = min classes max_n in
  let spec =
    {
      Ccs.Generator.n = Ccs_util.Prng.int_in rng classes max_n;
      classes;
      machines;
      slots;
      p_lo = 1;
      p_hi = max_p;
      family = (match seed mod 3 with 0 -> Ccs.Generator.Uniform | 1 -> Zipf | _ -> Heavy_classes);
    }
  in
  Ccs.Generator.generate ~seed:(seed * 13 + 5) spec

let p2 = C.param 2

(* splittable guarantee: Tbar + delta*T = (1 + 5 delta) T *)
let splittable_guarantee p t =
  let delta = C.delta p in
  Q.mul (Q.add Q.one (Q.mul (Q.of_int 5) delta)) t

(* ---------- splittable PTAS ---------- *)

let prop_splittable_ptas_valid =
  QCheck.Test.make ~name:"Thm 10: splittable PTAS valid + within guarantee" ~count:25
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let sched, stats = Ccs.Ptas.Splittable_ptas.solve p2 inst in
      match S.validate_splittable inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
      | Ok makespan ->
          let t_accepted = stats.Ccs.Ptas.Splittable_ptas.t_accepted in
          Q.(makespan <= splittable_guarantee p2 t_accepted))

let prop_splittable_ptas_vs_exact =
  QCheck.Test.make ~name:"Thm 10: accepted T within (1+delta) of exact opt" ~count:8
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:7 ~max_p:20 seed in
      match Ccs_exact.Splittable_opt.solve ~max_nodes:400 inst with
      | None -> QCheck.assume_fail ()
      | Some opt ->
          let _, stats = Ccs.Ptas.Splittable_ptas.solve p2 inst in
          (* completeness: the search cannot overshoot the optimum by more
             than one geometric grid step *)
          let t_accepted = stats.Ccs.Ptas.Splittable_ptas.t_accepted in
          Q.(t_accepted <= Q.mul (Q.add Q.one (C.delta p2)) opt))

let test_splittable_ptas_huge_m () =
  let inst =
    I.make ~machines:1_000_000_000_000 ~slots:1 [ (500, 0); (499, 1); (498, 2); (3, 0) ]
  in
  let sched, stats = Ccs.Ptas.Splittable_ptas.solve p2 inst in
  Alcotest.(check bool) "compressed" true stats.Ccs.Ptas.Splittable_ptas.compressed;
  match S.validate_splittable inst sched with
  | Ok makespan ->
      let t_accepted = stats.Ccs.Ptas.Splittable_ptas.t_accepted in
      Alcotest.(check bool) "guarantee" true
        Q.(makespan <= splittable_guarantee p2 t_accepted)
  | Error e -> Alcotest.fail e

let prop_oracle_matches_nfold_form =
  (* delta = 1: the coarsest accuracy keeps the duplicated N-fold small
     enough for the flattened exact solve; agreement is what matters. *)
  QCheck.Test.make ~name:"aggregated oracle = paper's N-fold form (delta=1)" ~count:8
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let p1 = C.param 1 in
      let inst = random_instance ~max_n:6 ~max_m:2 ~max_p:12 seed in
      let lb = Ccs.Bounds.lb_splittable inst in
      try
        List.for_all
          (fun num ->
            let t = Q.mul lb (Q.of_ints num 8) in
            let agg = Ccs.Ptas.Splittable_ptas.oracle p1 inst t <> None in
            let nf = Ccs.Ptas.Nfold_form.feasible_splittable p1 inst t in
            agg = nf)
          [ 8; 11; 16 ]
      with C.Budget_exceeded -> QCheck.assume_fail ())

let prop_np_oracle_matches_nfold_form =
  QCheck.Test.make ~name:"non-preemptive oracle = paper's N-fold form (delta=1)" ~count:8
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let p1 = C.param 1 in
      let inst = random_instance ~max_n:6 ~max_m:2 ~max_p:12 seed in
      let lb =
        Q.of_int
          (max (I.pmax inst)
             ((I.total_load inst + I.m inst - 1) / I.m inst))
      in
      try
        (* probe at pmax (large classes exist) and two larger guesses *)
        List.for_all
          (fun t ->
            let agg = Ccs.Ptas.Nonpreemptive_ptas.oracle p1 inst t <> None in
            let nf = Ccs.Ptas.Nfold_form.feasible_nonpreemptive p1 inst t in
            agg = nf)
          [ Q.of_int (I.pmax inst); lb; Q.mul lb (Q.of_ints 3 2) ]
      with C.Budget_exceeded -> QCheck.assume_fail ())

let test_nfold_form_shape () =
  (* r and s as the paper claims: s = 2 locally uniform rows, r independent
     of the number of classes. *)
  let inst = I.make ~machines:2 ~slots:2 [ (8, 0); (5, 1); (3, 2); (2, 2) ] in
  let b = Ccs.Ptas.Nfold_form.build_splittable p2 inst (Ccs.Bounds.lb_splittable inst) in
  Alcotest.(check int) "s = 2" 2 b.Ccs.Ptas.Nfold_form.program.Nfold.s;
  Alcotest.(check int) "n = C" (I.num_classes inst) b.Ccs.Ptas.Nfold_form.program.Nfold.n;
  let expected_r = 1 + b.Ccs.Ptas.Nfold_form.n_modules + (2 * b.Ccs.Ptas.Nfold_form.n_hb) in
  Alcotest.(check int) "r = 1 + |M| + 2|HB|" expected_r b.Ccs.Ptas.Nfold_form.program.Nfold.r

(* ---------- non-preemptive PTAS ---------- *)

let prop_nonpreemptive_ptas_valid =
  QCheck.Test.make ~name:"Thm 14: non-preemptive PTAS valid + within guarantee" ~count:25
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance seed in
      let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve p2 inst in
      match S.validate_nonpreemptive inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
      | Ok makespan ->
          let t_accepted = stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted in
          Q.(Q.of_int makespan <= Ccs.Ptas.Nonpreemptive_ptas.guarantee p2 t_accepted))

let prop_nonpreemptive_ptas_vs_exact =
  QCheck.Test.make ~name:"Thm 14: accepted T within (1+delta) of exact opt" ~count:12
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:9 seed in
      match Ccs_exact.Bnb.solve inst with
      | None -> QCheck.assume_fail ()
      | Some (opt, _) ->
          let _, stats = Ccs.Ptas.Nonpreemptive_ptas.solve p2 inst in
          let t_accepted = stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted in
          Q.(t_accepted <= Q.mul (Q.add Q.one (C.delta p2)) (Q.of_int opt)))

let test_nonpreemptive_grouping_heavy () =
  (* many tiny jobs force the Lemma 12 bundling path *)
  let jobs = List.init 24 (fun i -> (1, i mod 3)) in
  let inst = I.make ~machines:2 ~slots:2 jobs in
  let sched, _ = Ccs.Ptas.Nonpreemptive_ptas.solve p2 inst in
  match S.validate_nonpreemptive inst sched with
  | Ok mk -> Alcotest.(check bool) "sane makespan" true (mk >= 12 && mk <= 24)
  | Error e -> Alcotest.fail e

(* ---------- preemptive PTAS ---------- *)

let prop_preemptive_ptas_valid =
  QCheck.Test.make ~name:"Thm 19: preemptive PTAS valid + within guarantee" ~count:20
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:10 seed in
      let sched, stats = Ccs.Ptas.Preemptive_ptas.solve p2 inst in
      match S.validate_preemptive inst sched with
      | Error e -> QCheck.Test.fail_reportf "invalid: %s" e
      | Ok makespan ->
          let t_accepted = stats.Ccs.Ptas.Preemptive_ptas.t_accepted in
          Q.(makespan <= Ccs.Ptas.Preemptive_ptas.guarantee p2 t_accepted))

let prop_preemptive_ptas_vs_split_opt =
  QCheck.Test.make ~name:"Thm 19: accepted T within (1+delta) of preemptive opt bound" ~count:10
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let inst = random_instance ~max_n:8 seed in
      (* the non-preemptive optimum upper-bounds the preemptive optimum *)
      match Ccs_exact.Bnb.solve inst with
      | None -> QCheck.assume_fail ()
      | Some (np_opt, _) ->
          let _, stats = Ccs.Ptas.Preemptive_ptas.solve p2 inst in
          let t_accepted = stats.Ccs.Ptas.Preemptive_ptas.t_accepted in
          Q.(t_accepted <= Q.mul (Q.add Q.one (C.delta p2)) (Q.of_int np_opt)))

let test_preemptive_no_self_parallel_stress () =
  (* jobs exactly at the layer boundaries stress the flow realization *)
  let inst = I.make ~machines:2 ~slots:1 [ (8, 0); (8, 1); (4, 0); (4, 1) ] in
  let sched, _ = Ccs.Ptas.Preemptive_ptas.solve p2 inst in
  match S.validate_preemptive inst sched with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ---------- delta sweep ---------- *)

let test_delta_sweep () =
  (* finer delta must never produce a worse guarantee-normalized result *)
  let inst = I.make ~machines:2 ~slots:2 [ (9, 0); (7, 1); (5, 2); (4, 3); (2, 0) ] in
  List.iter
    (fun d ->
      let p = C.param d in
      let sched, stats = Ccs.Ptas.Nonpreemptive_ptas.solve p inst in
      match S.validate_nonpreemptive inst sched with
      | Ok mk ->
          let t_accepted = stats.Ccs.Ptas.Nonpreemptive_ptas.t_accepted in
          Alcotest.(check bool)
            (Printf.sprintf "d=%d within guarantee" d)
            true
            Q.(Q.of_int mk <= Ccs.Ptas.Nonpreemptive_ptas.guarantee p t_accepted)
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3 ]

let test_common_multisets () =
  let ms = C.multisets ~parts:[ 2; 3 ] ~max_sum:6 ~max_count:3 () in
  (* {}, {2}, {3}, {2,2}, {3,2}, {3,3}, {2,2,2} *)
  Alcotest.(check int) "count" 7 (List.length ms);
  let bounded = C.bounded_multisets ~parts:[ (2, 1); (3, 2) ] ~max_sum:8 ~max_count:3 () in
  (* {}, {2}, {3}, {3,2}, {3,3}, {3,3,2} *)
  Alcotest.(check int) "bounded count" 6 (List.length bounded)

let test_geometric_search () =
  let oracle t = if Q.(t >= Q.of_int 10) then Some (Q.to_string t) else None in
  let _, accepted =
    C.geometric_search ~lb:Q.one ~ub:(Q.of_int 100) ~delta:(Q.of_ints 1 2) ~oracle ()
  in
  Alcotest.(check bool) "within one grid step" true
    Q.(accepted >= Q.of_int 10 && accepted <= Q.of_int 15)

let () =
  Alcotest.run "ptas"
    [ ( "common",
        [ Alcotest.test_case "multiset enumeration" `Quick test_common_multisets;
          Alcotest.test_case "geometric search" `Quick test_geometric_search ] );
      ( "unit",
        [ Alcotest.test_case "splittable huge m (Thm 11)" `Quick test_splittable_ptas_huge_m;
          Alcotest.test_case "N-fold block shape" `Quick test_nfold_form_shape;
          Alcotest.test_case "non-preemptive grouping" `Quick test_nonpreemptive_grouping_heavy;
          Alcotest.test_case "preemptive boundary stress" `Quick test_preemptive_no_self_parallel_stress;
          Alcotest.test_case "delta sweep" `Quick test_delta_sweep ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_splittable_ptas_valid; prop_splittable_ptas_vs_exact;
            prop_oracle_matches_nfold_form; prop_np_oracle_matches_nfold_form;
            prop_nonpreemptive_ptas_valid;
            prop_nonpreemptive_ptas_vs_exact; prop_preemptive_ptas_valid;
            prop_preemptive_ptas_vs_split_opt ] ) ]
