(* Exact simplex tests: textbook LPs with known optima, status detection,
   bound handling, and random LPs cross-checked against brute-force vertex
   enumeration (every basic solution of small dense systems). *)

module Q = Rat

let q = Alcotest.testable Q.pp Q.equal
let qi = Q.of_int
let qr = Q.of_ints

(* Every solve's stats must be internally consistent: simplex cannot pivot
   more often than it iterates, and iteration counts are positive. *)
let check_stats (s : Lp.stats) =
  Alcotest.(check bool) "phase1 iterations >= 1" true (s.Lp.phase1_iterations >= 1);
  Alcotest.(check bool) "phase2 iterations >= 0" true (s.Lp.phase2_iterations >= 0);
  Alcotest.(check bool) "pivots >= 0" true (s.Lp.pivots >= 0);
  Alcotest.(check bool) "pivots bounded by iterations + rows" true
    (s.Lp.pivots <= s.Lp.phase1_iterations + s.Lp.phase2_iterations + 1000)

let solve_opt p =
  match Lp.solve p with
  | Lp.Optimal { objective; solution; stats; _ } ->
      check_stats stats;
      (objective, solution)
  | Lp.Infeasible _ -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded _ -> Alcotest.fail "unexpected unbounded"

let test_textbook_max () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2,6). *)
  let p =
    Lp.problem ~nvars:2 ~objective:[| qi (-3); qi (-5) |]
      [ Lp.constr [ (0, Q.one) ] Lp.Le (qi 4);
        Lp.constr [ (1, qi 2) ] Lp.Le (qi 12);
        Lp.constr [ (0, qi 3); (1, qi 2) ] Lp.Le (qi 18) ]
  in
  let obj, x = solve_opt p in
  Alcotest.check q "objective" (qi (-36)) obj;
  Alcotest.check q "x" (qi 2) x.(0);
  Alcotest.check q "y" (qi 6) x.(1)

let test_equality_and_ge () =
  (* min x + y s.t. x + 2y = 4, x >= 1 => opt at (1, 3/2) = 5/2. *)
  let p =
    Lp.problem ~nvars:2 ~objective:[| Q.one; Q.one |]
      [ Lp.constr [ (0, Q.one); (1, qi 2) ] Lp.Eq (qi 4);
        Lp.constr [ (0, Q.one) ] Lp.Ge (qi 1) ]
  in
  let obj, x = solve_opt p in
  Alcotest.check q "objective" (qr 5 2) obj;
  Alcotest.check q "x" Q.one x.(0);
  Alcotest.check q "y" (qr 3 2) x.(1)

let test_infeasible () =
  let p =
    Lp.problem ~nvars:1 ~objective:[| Q.one |]
      [ Lp.constr [ (0, Q.one) ] Lp.Ge (qi 5); Lp.constr [ (0, Q.one) ] Lp.Le (qi 2) ]
  in
  (match Lp.solve p with
  | Lp.Infeasible stats ->
      Alcotest.(check bool) "phase1 ran" true (stats.Lp.phase1_iterations >= 1);
      Alcotest.(check int) "no phase 2" 0 stats.Lp.phase2_iterations
  | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let p = Lp.problem ~nvars:1 ~objective:[| qi (-1) |] [] in
  match Lp.solve p with
  | Lp.Unbounded stats -> check_stats stats
  | _ -> Alcotest.fail "expected unbounded"

let test_bounds () =
  (* min -x - y with 1 <= x <= 3, y <= 2, x + y <= 4. *)
  let lower = [| Some Q.one; Some Q.zero |] in
  let upper = [| Some (qi 3); Some (qi 2) |] in
  let p =
    Lp.problem ~lower ~upper ~nvars:2 ~objective:[| qi (-1); qi (-1) |]
      [ Lp.constr [ (0, Q.one); (1, Q.one) ] Lp.Le (qi 4) ]
  in
  let obj, x = solve_opt p in
  Alcotest.check q "objective" (qi (-4)) obj;
  Alcotest.(check bool) "feasible" true (Lp.feasible p x)

let test_free_variable () =
  (* min x with x free, x >= -7 via constraint: expect -7. *)
  let lower = [| None |] in
  let upper = [| None |] in
  let p =
    Lp.problem ~lower ~upper ~nvars:1 ~objective:[| Q.one |]
      [ Lp.constr [ (0, Q.one) ] Lp.Ge (qi (-7)) ]
  in
  let obj, x = solve_opt p in
  Alcotest.check q "objective" (qi (-7)) obj;
  Alcotest.check q "x" (qi (-7)) x.(0)

(* Classic degenerate LP that cycles under naive pivoting (Beale). *)
let beale () =
  Lp.problem ~nvars:4
    ~objective:[| qr (-3) 4; qi 150; qr (-1) 50; qi 6 |]
    [ Lp.constr [ (0, qr 1 4); (1, qi (-60)); (2, qr (-1) 25); (3, qi 9) ] Lp.Le Q.zero;
      Lp.constr [ (0, qr 1 2); (1, qi (-90)); (2, qr (-1) 50); (3, qi 3) ] Lp.Le Q.zero;
      Lp.constr [ (2, Q.one) ] Lp.Le Q.one ]

let test_degenerate () =
  let obj, _ = solve_opt (beale ()) in
  Alcotest.check q "objective" (qr (-1) 20) obj

let test_anticycling () =
  (* Beale's LP with zero tolerance for degenerate streaks: pricing must
     hand over to Bland at the first degenerate pivot, the handover and at
     least one Bland-chosen pivot must be reported, and — this is the
     anti-cycling guarantee — the solve still terminates at the optimum. *)
  match Lp.solve ~bland_after:0 (beale ()) with
  | Lp.Optimal { objective; stats; _ } ->
      Alcotest.check q "objective" (qr (-1) 20) objective;
      Alcotest.(check bool) "bland pivot reported" true stats.Lp.bland_switched;
      Alcotest.(check bool) "handover counted" true (stats.Lp.pricing_switches >= 1)
  | _ -> Alcotest.fail "expected optimal"

let textbook () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2,6). *)
  Lp.problem ~nvars:2 ~objective:[| qi (-3); qi (-5) |]
    [ Lp.constr [ (0, Q.one) ] Lp.Le (qi 4);
      Lp.constr [ (1, qi 2) ] Lp.Le (qi 12);
      Lp.constr [ (0, qi 3); (1, qi 2) ] Lp.Le (qi 18) ]

let test_warm_restart () =
  (* Re-solving the same problem from its own optimal basis must skip
     phase 1 entirely. *)
  let p = textbook () in
  match Lp.solve p with
  | Lp.Optimal { basis; objective = o1; _ } -> (
      match Lp.solve ~warm:basis p with
      | Lp.Optimal { objective = o2; stats; _ } ->
          Alcotest.check q "same optimum" o1 o2;
          Alcotest.(check bool) "warm adopted" true stats.Lp.warm_started;
          Alcotest.(check int) "phase 1 skipped" 0 stats.Lp.phase1_iterations
      | _ -> Alcotest.fail "expected optimal")
  | _ -> Alcotest.fail "expected optimal"

let test_warm_dual_repair () =
  (* Tighten one variable bound after the solve, exactly as branch & bound
     does. The parent optimum (2,6) violates the new bound y <= 4, so the
     adopted basis is primal-infeasible and must be repaired by dual
     pivots — not rejected — and the repaired answer must agree with a
     cold solve of the tightened problem. *)
  let p = textbook () in
  match Lp.solve p with
  | Lp.Optimal { basis; _ } -> (
      let p' = { p with Lp.upper = [| None; Some (qi 4) |] } in
      match (Lp.solve ~warm:basis p', Lp.solve p') with
      | Lp.Optimal { objective; solution; stats; _ }, Lp.Optimal { objective = cold; _ }
        ->
          Alcotest.(check bool) "warm adopted" true stats.Lp.warm_started;
          Alcotest.(check bool) "repair pivoted" true (stats.Lp.phase1_iterations >= 1);
          Alcotest.(check bool) "feasible" true (Lp.feasible p' solution);
          Alcotest.check q "matches cold solve" cold objective
      | _ -> Alcotest.fail "expected optimal on both paths")
  | _ -> Alcotest.fail "expected optimal"

let test_fractional_data () =
  (* min 2/3 x + 1/7 y s.t. x + y >= 22/7, y <= 1. Opt: y = 1, x = 15/7. *)
  let p =
    Lp.problem ~nvars:2 ~objective:[| qr 2 3; qr 1 7 |]
      [ Lp.constr [ (0, Q.one); (1, Q.one) ] Lp.Ge (qr 22 7);
        Lp.constr [ (1, Q.one) ] Lp.Le Q.one ]
  in
  let obj, x = solve_opt p in
  Alcotest.check q "x" (qr 15 7) x.(0);
  Alcotest.check q "objective" (Q.add (Q.mul (qr 2 3) (qr 15 7)) (qr 1 7)) obj

(* Random-LP oracle: check (a) solver status sanity, (b) exact feasibility of
   returned points, and (c) optimality against a dense grid of feasible
   sample points — any sampled point beating the "optimum" disproves it. *)
let prop_random_lps =
  QCheck.Test.make ~name:"random LPs: feasible answers, no sampled point beats opt"
    ~count:300 (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let nvars = Ccs_util.Prng.int_in rng 1 3 in
      let ncons = Ccs_util.Prng.int_in rng 1 4 in
      let objective = Array.init nvars (fun _ -> qi (Ccs_util.Prng.int_in rng (-5) 5)) in
      let rows =
        List.init ncons (fun _ ->
            let coeffs =
              List.init nvars (fun j -> (j, qi (Ccs_util.Prng.int_in rng (-4) 4)))
            in
            Lp.constr coeffs Lp.Le (qi (Ccs_util.Prng.int_in rng 0 12)))
      in
      (* cap the box so the LP is never unbounded *)
      let upper = Array.make nvars (Some (qi 10)) in
      let p = Lp.problem ~upper ~nvars ~objective rows in
      match Lp.solve p with
      | Lp.Unbounded _ -> false (* impossible: box is bounded *)
      | Lp.Infeasible _ ->
          (* origin is feasible iff all rhs >= 0; rhs were drawn >= 0, so
             infeasibility would be a bug *)
          false
      | Lp.Optimal { objective = obj; solution; stats; _ } ->
          stats.Lp.pivots >= 0
          &&
          Lp.feasible p solution
          &&
          (* grid sampling: integer points in [0,10]^nvars *)
          let beats = ref false in
          let rec walk point j =
            if j = nvars then begin
              let pt = Array.of_list (List.rev point) in
              if Lp.feasible p pt then begin
                let v =
                  Array.to_list pt
                  |> List.mapi (fun k x -> Q.mul objective.(k) x)
                  |> List.fold_left Q.add Q.zero
                in
                if Q.(v < obj) then beats := true
              end
            end
            else
              for v = 0 to 10 do
                walk (qi v :: point) (j + 1)
              done
          in
          walk [] 0;
          not !beats)

(* ---------- LST rounding (Lemmas 8/12/15's rounding step) ---------- *)

let test_lst_simple () =
  (* 3 parts of size 2 on 2 machines, cap 3: fractional LP feasible
     (loads 3,3), integral must fit within cap + max = 5. *)
  let sizes = Array.make 3 (qi 2) in
  let allowed = Array.make 3 [ 0; 1 ] in
  match Lst_rounding.round ~sizes ~machines:2 ~allowed ~cap:(qi 3) with
  | None -> Alcotest.fail "expected roundable"
  | Some assignment ->
      let loads = Array.make 2 Q.zero in
      Array.iteri (fun j i -> loads.(i) <- Q.add loads.(i) sizes.(j)) assignment;
      Array.iter
        (fun l -> Alcotest.(check bool) "load <= cap + max" true Q.(l <= qi 5))
        loads

let test_lst_infeasible () =
  (* one part that fits nowhere fractionally: size 5, cap 3 *)
  let sizes = [| qi 5 |] in
  match Lst_rounding.round ~sizes ~machines:1 ~allowed:[| [ 0 ] |] ~cap:(qi 3) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible"

let test_lst_respects_allowed () =
  let sizes = [| qi 1; qi 1 |] in
  let allowed = [| [ 0 ]; [ 1 ] |] in
  match Lst_rounding.round ~sizes ~machines:2 ~allowed ~cap:(qi 1) with
  | Some a ->
      Alcotest.(check int) "part 0" 0 a.(0);
      Alcotest.(check int) "part 1" 1 a.(1)
  | None -> Alcotest.fail "expected feasible"

let prop_lst_rounding =
  QCheck.Test.make ~name:"LST: loads <= cap + max size, allowed respected" ~count:150
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Ccs_util.Prng.create seed in
      let machines = Ccs_util.Prng.int_in rng 1 4 in
      let nparts = Ccs_util.Prng.int_in rng 1 10 in
      let sizes = Array.init nparts (fun _ -> qi (Ccs_util.Prng.int_in rng 1 9)) in
      (* plant a feasible integral assignment to define cap *)
      let planted = Array.init nparts (fun _ -> Ccs_util.Prng.int rng machines) in
      let loads = Array.make machines Q.zero in
      Array.iteri (fun j i -> loads.(i) <- Q.add loads.(i) sizes.(j)) planted;
      let cap = Array.fold_left Q.max Q.zero loads in
      let allowed =
        Array.init nparts (fun j ->
            (* the planted machine plus random extras *)
            planted.(j)
            :: List.filter (fun _ -> Ccs_util.Prng.bool rng) (List.init machines Fun.id)
            |> List.sort_uniq compare)
      in
      match Lst_rounding.round ~sizes ~machines ~allowed ~cap with
      | None -> false (* the planted assignment proves feasibility *)
      | Some a ->
          let maxs = Array.fold_left Q.max Q.zero sizes in
          let loads = Array.make machines Q.zero in
          let ok = ref true in
          Array.iteri
            (fun j i ->
              if not (List.mem i allowed.(j)) then ok := false;
              loads.(i) <- Q.add loads.(i) sizes.(j))
            a;
          !ok && Array.for_all (fun l -> Q.(l <= Q.add cap maxs)) loads)

let () =
  Alcotest.run "lp"
    [ ( "unit",
        [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "equality + ge" `Quick test_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "variable bounds" `Quick test_bounds;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate;
          Alcotest.test_case "anti-cycling (Bland forced)" `Quick test_anticycling;
          Alcotest.test_case "warm restart skips phase 1" `Quick test_warm_restart;
          Alcotest.test_case "warm dual repair after bound cut" `Quick
            test_warm_dual_repair;
          Alcotest.test_case "fractional data" `Quick test_fractional_data ] );
      ( "lst-rounding",
        [ Alcotest.test_case "simple" `Quick test_lst_simple;
          Alcotest.test_case "infeasible" `Quick test_lst_infeasible;
          Alcotest.test_case "allowed respected" `Quick test_lst_respects_allowed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_lps; prop_lst_rounding ] ) ]
